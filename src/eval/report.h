#ifndef LOSSYTS_EVAL_REPORT_H_
#define LOSSYTS_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace lossyts::eval {

/// Minimal fixed-width table renderer for the bench binaries: every bench
/// prints the same rows/series the paper's corresponding table or figure
/// reports, in plain text.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Renders with column-aligned padding and a header separator.
  std::string ToString() const;

  /// Convenience: render straight to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision (fixed notation).
std::string FormatDouble(double value, int precision = 3);

/// Mean of a vector (0 for empty input).
double MeanOf(const std::vector<double>& values);

/// Median of a vector (0 for empty input).
double MedianOf(std::vector<double> values);

/// Half-width of the normal-approximation 95% confidence interval of the
/// mean (1.96 · sd / sqrt(n)); 0 when fewer than 2 samples.
double CiHalfWidth95(const std::vector<double>& values);

}  // namespace lossyts::eval

#endif  // LOSSYTS_EVAL_REPORT_H_
