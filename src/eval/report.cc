#include "eval/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace lossyts::eval {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableWriter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TableWriter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TableWriter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

double MeanOf(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double MedianOf(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double CiHalfWidth95(const std::vector<double>& values) {
  const size_t n = values.size();
  if (n < 2) return 0.0;
  const double mean = MeanOf(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  const double sd = std::sqrt(ss / static_cast<double>(n - 1));
  return 1.96 * sd / std::sqrt(static_cast<double>(n));
}

}  // namespace lossyts::eval
