#include "eval/tfe_predictor.h"

#include <algorithm>
#include <cmath>

#include "analysis/treeshap.h"
#include "features/registry.h"

namespace lossyts::eval {

size_t TfePredictor::FeatureCount() {
  return features::kFeatureCount + 2;  // Characteristics + TE + CR.
}

Result<std::vector<double>> TfePredictor::BuildFeatures(
    const TimeSeries& raw, const TimeSeries& decompressed,
    size_t season_length, double te_nrmse, double compression_ratio) {
  Result<features::FeatureMap> raw_features =
      features::ComputeAllFeatures(raw, season_length);
  if (!raw_features.ok()) return raw_features.status();
  Result<features::FeatureMap> lossy_features =
      features::ComputeAllFeatures(decompressed, season_length);
  if (!lossy_features.ok()) return lossy_features.status();

  std::vector<double> out;
  out.reserve(FeatureCount());
  for (const std::string& name : features::FeatureNames()) {
    const double r = raw_features->at(name);
    const double l = lossy_features->at(name);
    out.push_back((l - r) / std::max(std::abs(r), 1e-9));
  }
  out.push_back(te_nrmse);
  out.push_back(compression_ratio);
  return out;
}

Status TfePredictor::Fit(const std::vector<Example>& examples) {
  if (examples.size() < 10) {
    return Status::InvalidArgument("need at least 10 training examples");
  }
  training_rows_.clear();
  std::vector<double> targets;
  for (const Example& e : examples) {
    if (e.features.size() != FeatureCount()) {
      return Status::InvalidArgument("example feature count mismatch");
    }
    training_rows_.push_back(e.features);
    targets.push_back(e.tfe);
  }
  model_ = analysis::GradientBoostedTrees(options_.gbm);
  if (Status s = model_.Fit(training_rows_, targets); !s.ok()) return s;

  double mean = 0.0;
  for (double t : targets) mean += t;
  mean /= static_cast<double>(targets.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < training_rows_.size(); ++i) {
    const double pred = model_.Predict(training_rows_[i]);
    ss_res += (targets[i] - pred) * (targets[i] - pred);
    ss_tot += (targets[i] - mean) * (targets[i] - mean);
  }
  r_squared_ = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
  fitted_ = true;
  return Status::OK();
}

Result<double> TfePredictor::Predict(
    const std::vector<double>& features) const {
  if (!fitted_) return Status::FailedPrecondition("Predict before Fit");
  if (features.size() != FeatureCount()) {
    return Status::InvalidArgument("feature count mismatch");
  }
  return model_.Predict(features);
}

Result<std::vector<double>> TfePredictor::Importance() const {
  if (!fitted_) return Status::FailedPrecondition("Importance before Fit");
  return analysis::MeanAbsoluteShap(model_, training_rows_, FeatureCount());
}

}  // namespace lossyts::eval
