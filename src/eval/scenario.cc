#include "eval/scenario.h"

#include <algorithm>
#include <memory>

#include "compress/pipeline.h"
#include "forecast/registry.h"

namespace lossyts::eval {

Result<std::vector<double>> EvaluateOnTest(const forecast::Forecaster& model,
                                           const TimeSeries& test,
                                           const TimeSeries* transformed_test,
                                           size_t input_length, size_t horizon,
                                           const MetricRequest& metrics,
                                           const ScenarioOptions& options) {
  if (transformed_test != nullptr &&
      transformed_test->size() != test.size()) {
    return Status::InvalidArgument(
        "transformed test split length differs from raw test split");
  }
  const size_t span = input_length + horizon;
  if (test.size() < span) {
    return Status::FailedPrecondition("test split too short for one window");
  }

  size_t stride = std::max<size_t>(1, options.eval_stride);
  const size_t positions = (test.size() - span) / stride + 1;
  if (options.max_eval_windows > 0 && positions > options.max_eval_windows) {
    stride = (test.size() - span) / (options.max_eval_windows - 1);
  }

  const std::vector<double>& raw = test.values();
  const std::vector<double>& inputs =
      transformed_test != nullptr ? transformed_test->values() : raw;

  std::vector<double> actual;
  std::vector<double> predicted;
  size_t windows = 0;
  for (size_t start = 0; start + span <= raw.size(); start += stride) {
    std::vector<double> window(inputs.begin() + start,
                               inputs.begin() + start + input_length);
    Result<std::vector<double>> pred = model.Predict(window);
    if (!pred.ok()) return pred.status();
    for (size_t s = 0; s < horizon; ++s) {
      actual.push_back(raw[start + input_length + s]);
      predicted.push_back((*pred)[s]);
    }
    ++windows;
    if (options.max_eval_windows > 0 && windows >= options.max_eval_windows) {
      break;
    }
  }
  MetricContext ctx;
  ctx.actual = &actual;
  ctx.predicted = &predicted;
  ctx.insample = metrics.insample;
  ctx.season_length = metrics.season_length;
  ctx.series = metrics.series;
  return EvaluateMetrics(metrics.names, ctx);
}

Result<std::vector<double>> EvaluateRetrainOnDecompressed(
    const std::string& model_name, const forecast::ForecastConfig& config,
    const TimeSeries& train, const TimeSeries& val, const TimeSeries& test,
    const std::string& compressor_name, double error_bound,
    const MetricRequest& metrics, const ScenarioOptions& options) {
  Result<std::unique_ptr<compress::Compressor>> compressor =
      compress::MakeCompressor(compressor_name);
  if (!compressor.ok()) return compressor.status();

  auto transform = [&](const TimeSeries& series) -> Result<TimeSeries> {
    Result<std::vector<uint8_t>> blob =
        (*compressor)->Compress(series, error_bound);
    if (!blob.ok()) return blob.status();
    return (*compressor)->Decompress(*blob);
  };

  Result<TimeSeries> train_t = transform(train);
  if (!train_t.ok()) return train_t.status();
  Result<TimeSeries> val_t = transform(val);
  if (!val_t.ok()) return val_t.status();
  Result<TimeSeries> test_t = transform(test);
  if (!test_t.ok()) return test_t.status();

  Result<std::unique_ptr<forecast::Forecaster>> model =
      forecast::MakeForecaster(model_name, config);
  if (!model.ok()) return model.status();
  if (Status s = (*model)->Fit(*train_t, *val_t); !s.ok()) return s;

  return EvaluateOnTest(**model, test, &*test_t, config.input_length,
                        config.horizon, metrics, options);
}

}  // namespace lossyts::eval
