#include "eval/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "compress/pipeline.h"
#include "core/failpoint.h"
#include "data/datasets.h"
#include "forecast/registry.h"
#include "zip/crc32.h"

namespace lossyts::eval {

namespace {

constexpr char kManifestPrefixV2[] = "#lossyts-grid-checkpoint v2 options=";
constexpr char kManifestPrefixV1[] = "#lossyts-grid-checkpoint v1 options=";
constexpr char kMetricsField[] = " metrics=";
constexpr char kCompleteFooter[] = "#complete";

std::string RowCrcHex(const std::string& row) {
  char hex[9];
  std::snprintf(hex, sizeof(hex), "%08x",
                zip::ComputeCrc32(
                    reinterpret_cast<const uint8_t*>(row.data()), row.size()));
  return hex;
}

std::string JoinMetricNames(const std::vector<std::string>& names) {
  std::string joined;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) joined += ';';
    joined += names[i];
  }
  return joined;
}

std::string HeaderLine(const std::vector<std::string>& metric_names) {
  std::string header = "dataset,model,compressor,error_bound,seed";
  for (const std::string& name : metric_names) header += ',' + name;
  header +=
      ",tfe,te_nrmse,te_rmse,compression_ratio,segment_count,error_code,"
      "attempts,error";
  return header;
}

void AppendDouble(std::string& out, double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out += buffer;
  out += '|';
}

// Parses one "crc,row" line into checkpoint.records. Returns false when the
// scan must stop: the complete footer, a torn or malformed line, a CRC
// mismatch, or a row whose metric arity differs from the resuming sweep's —
// everything salvaged so far stays valid.
bool ParseLine(const std::string& line, size_t metric_arity,
               GridCheckpoint& checkpoint) {
  if (line == kCompleteFooter) {
    checkpoint.complete = true;
    return false;
  }
  if (line.size() < 10 || line[8] != ',') return false;
  const std::string hex = line.substr(0, 8);
  char* end = nullptr;
  const unsigned long crc = std::strtoul(hex.c_str(), &end, 16);
  if (end != hex.c_str() + 8) return false;
  const std::string row = line.substr(9);
  if (zip::ComputeCrc32(reinterpret_cast<const uint8_t*>(row.data()),
                        row.size()) != static_cast<uint32_t>(crc)) {
    return false;
  }
  Result<GridRecord> record = ParseGridRow(row);
  if (!record.ok()) return false;
  if (record->metrics.size() != metric_arity) return false;
  checkpoint.records.push_back(std::move(*record));
  return true;
}

}  // namespace

uint32_t GridOptionsHash(const GridOptions& options) {
  // Serialize the resolved sweep definition; resolving the empty-list
  // defaults first means "all datasets" and an explicit full list hash
  // identically.
  std::string repr = "v1|";
  const std::vector<std::string>& datasets =
      options.datasets.empty() ? data::DatasetNames() : options.datasets;
  const std::vector<std::string>& models =
      options.models.empty() ? forecast::ModelNames() : options.models;
  const std::vector<std::string>& compressors =
      options.compressors.empty() ? compress::LossyCompressorNames()
                                  : options.compressors;
  const std::vector<double>& error_bounds =
      options.error_bounds.empty() ? compress::PaperErrorBounds()
                                   : options.error_bounds;
  for (const std::string& d : datasets) repr += d + '|';
  for (const std::string& m : models) repr += m + '|';
  for (const std::string& c : compressors) repr += c + '|';
  for (double eb : error_bounds) AppendDouble(repr, eb);
  for (uint64_t seed : options.seeds) repr += std::to_string(seed) + '|';
  AppendDouble(repr, options.data.length_fraction);
  repr += std::to_string(options.data.seed) + '|';
  const forecast::ForecastConfig& f = options.forecast;
  repr += std::to_string(f.input_length) + '|' + std::to_string(f.horizon) +
          '|' + std::to_string(f.season_length) + '|' +
          std::to_string(f.seed) + '|' + std::to_string(f.max_epochs) + '|' +
          std::to_string(f.early_stop_patience) + '|' +
          std::to_string(f.max_train_windows) + '|' +
          std::to_string(f.batch_size) + '|';
  AppendDouble(repr, f.dropout);
  repr += std::to_string(options.scenario.eval_stride) + '|' +
          std::to_string(options.scenario.max_eval_windows);
  // Store-sourced sweeps measure a different compression ratio (serving
  // ratio, see eval/store_source.h), so they must not share a checkpoint
  // with recompression sweeps. Appended only when set so every pre-existing
  // cache keeps its hash.
  if (!options.store_dir.empty()) repr += "|store=" + options.store_dir;
  // Extra metrics change every record's arity; appended only when the
  // resolved list goes beyond the pinned four so every pre-existing cache
  // keeps its hash. An unresolvable list (unknown metric name) hashes the
  // raw spelling — the sweep itself rejects it before any cell runs.
  if (!options.metrics.empty()) {
    Result<std::vector<std::string>> resolved =
        ResolveMetricNames(options.metrics);
    const std::vector<std::string>& names =
        resolved.ok() ? *resolved : options.metrics;
    if (names != PinnedForecastMetrics()) {
      repr += "|metrics=" + JoinMetricNames(names);
    }
  }
  return zip::ComputeCrc32(reinterpret_cast<const uint8_t*>(repr.data()),
                           repr.size());
}

Result<GridCheckpoint> LoadGridCheckpoint(
    const std::string& path, uint32_t options_hash,
    const std::vector<std::string>& metric_names) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("no grid checkpoint at " + path);
  }
  std::string line;
  if (!std::getline(file, line)) {
    return Status::Corruption(path + " is empty");
  }
  const bool pinned_only = metric_names == PinnedForecastMetrics();

  GridCheckpoint checkpoint;
  const bool v2 = line.rfind(kManifestPrefixV2, 0) == 0;
  const bool v1 = !v2 && line.rfind(kManifestPrefixV1, 0) == 0;
  if (!v2 && !v1) {
    // Pre-checkpoint cache: a plain CSV written by SaveGridCsv. Treat a
    // clean parse as a complete sweep so existing caches keep working —
    // but only for the four metrics its columns can carry.
    file.close();
    if (!pinned_only) {
      checkpoint.compatible = false;
      checkpoint.reason =
          "legacy CSV cache carries only r/rse/rmse/nrmse and cannot serve "
          "a sweep with extra metrics (" +
          JoinMetricNames(metric_names) + ")";
      return checkpoint;
    }
    Result<std::vector<GridRecord>> legacy = LoadGridCsv(path);
    if (!legacy.ok()) return legacy.status();
    checkpoint.records = std::move(*legacy);
    checkpoint.complete = true;
    checkpoint.legacy = true;
    return checkpoint;
  }

  const size_t prefix_len =
      v2 ? std::strlen(kManifestPrefixV2) : std::strlen(kManifestPrefixV1);
  char* end = nullptr;
  const std::string rest = line.substr(prefix_len);
  const unsigned long stored = std::strtoul(rest.c_str(), &end, 16);
  if (end == rest.c_str() || static_cast<uint32_t>(stored) != options_hash) {
    checkpoint.compatible = false;
    checkpoint.reason = "manifest options hash does not match this sweep";
    return checkpoint;
  }
  if (v1) {
    // v1 checkpoints carry exactly the pinned four metric columns. They
    // resume cleanly for a pinned-four sweep and are rejected with a clear
    // reason otherwise — never silently misparsed.
    if (!pinned_only) {
      checkpoint.compatible = false;
      checkpoint.reason =
          "v1 checkpoint carries only r/rse/rmse/nrmse and cannot serve a "
          "sweep with extra metrics (" +
          JoinMetricNames(metric_names) + ")";
      return checkpoint;
    }
  } else {
    const size_t at = rest.find(kMetricsField);
    const std::string stored_metrics =
        at == std::string::npos
            ? std::string()
            : rest.substr(at + std::strlen(kMetricsField));
    if (stored_metrics != JoinMetricNames(metric_names)) {
      checkpoint.compatible = false;
      checkpoint.reason = "checkpoint computes metrics [" + stored_metrics +
                          "]; this sweep needs [" +
                          JoinMetricNames(metric_names) + "]";
      return checkpoint;
    }
  }

  while (std::getline(file, line)) {
    if (line.rfind("dataset,", 0) == 0) continue;  // Human-readable header.
    if (!ParseLine(line, metric_names.size(), checkpoint)) break;
  }
  return checkpoint;
}

Status GridCheckpointWriter::Open(const std::string& path,
                                  uint32_t options_hash,
                                  const std::vector<GridRecord>& salvaged,
                                  const std::vector<std::string>& metric_names) {
  path_ = path;
  file_.open(path, std::ios::trunc);
  if (!file_.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  char manifest[64];
  std::snprintf(manifest, sizeof(manifest), "%s%08x", kManifestPrefixV2,
                options_hash);
  file_ << manifest << kMetricsField << JoinMetricNames(metric_names) << '\n'
        << HeaderLine(metric_names) << '\n';
  for (const GridRecord& record : salvaged) {
    const std::string row = FormatGridRow(record);
    file_ << RowCrcHex(row) << ',' << row << '\n';
  }
  file_.flush();
  if (!file_.good()) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

Status GridCheckpointWriter::Append(const GridRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  LOSSYTS_FAILPOINT("cache_write");
  if (!file_.is_open()) {
    return Status::FailedPrecondition("checkpoint writer is not open");
  }
  const std::string row = FormatGridRow(record);
  file_ << RowCrcHex(row) << ',' << row << '\n';
  file_.flush();
  if (!file_.good()) return Status::IoError("write to " + path_ + " failed");
  return Status::OK();
}

Status GridCheckpointWriter::MarkComplete() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!file_.is_open()) {
    return Status::FailedPrecondition("checkpoint writer is not open");
  }
  file_ << kCompleteFooter << '\n';
  file_.flush();
  if (!file_.good()) return Status::IoError("write to " + path_ + " failed");
  return Status::OK();
}

}  // namespace lossyts::eval
