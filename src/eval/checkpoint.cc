#include "eval/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "compress/pipeline.h"
#include "core/failpoint.h"
#include "data/datasets.h"
#include "forecast/registry.h"
#include "zip/crc32.h"

namespace lossyts::eval {

namespace {

constexpr char kManifestPrefix[] = "#lossyts-grid-checkpoint v1 options=";
constexpr char kCompleteFooter[] = "#complete";

std::string RowCrcHex(const std::string& row) {
  char hex[9];
  std::snprintf(hex, sizeof(hex), "%08x",
                zip::ComputeCrc32(
                    reinterpret_cast<const uint8_t*>(row.data()), row.size()));
  return hex;
}

std::string HeaderLine() {
  return "dataset,model,compressor,error_bound,seed,r,rse,rmse,nrmse,tfe,"
         "te_nrmse,te_rmse,compression_ratio,segment_count,error_code,"
         "attempts,error";
}

void AppendDouble(std::string& out, double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out += buffer;
  out += '|';
}

// Parses one "crc,row" line into checkpoint.records. Returns false when the
// scan must stop: the complete footer, a torn or malformed line, or a CRC
// mismatch — everything salvaged so far stays valid.
bool ParseLine(const std::string& line, GridCheckpoint& checkpoint) {
  if (line == kCompleteFooter) {
    checkpoint.complete = true;
    return false;
  }
  if (line.size() < 10 || line[8] != ',') return false;
  const std::string hex = line.substr(0, 8);
  char* end = nullptr;
  const unsigned long crc = std::strtoul(hex.c_str(), &end, 16);
  if (end != hex.c_str() + 8) return false;
  const std::string row = line.substr(9);
  if (zip::ComputeCrc32(reinterpret_cast<const uint8_t*>(row.data()),
                        row.size()) != static_cast<uint32_t>(crc)) {
    return false;
  }
  Result<GridRecord> record = ParseGridRow(row);
  if (!record.ok()) return false;
  checkpoint.records.push_back(std::move(*record));
  return true;
}

}  // namespace

uint32_t GridOptionsHash(const GridOptions& options) {
  // Serialize the resolved sweep definition; resolving the empty-list
  // defaults first means "all datasets" and an explicit full list hash
  // identically.
  std::string repr = "v1|";
  const std::vector<std::string>& datasets =
      options.datasets.empty() ? data::DatasetNames() : options.datasets;
  const std::vector<std::string>& models =
      options.models.empty() ? forecast::ModelNames() : options.models;
  const std::vector<std::string>& compressors =
      options.compressors.empty() ? compress::LossyCompressorNames()
                                  : options.compressors;
  const std::vector<double>& error_bounds =
      options.error_bounds.empty() ? compress::PaperErrorBounds()
                                   : options.error_bounds;
  for (const std::string& d : datasets) repr += d + '|';
  for (const std::string& m : models) repr += m + '|';
  for (const std::string& c : compressors) repr += c + '|';
  for (double eb : error_bounds) AppendDouble(repr, eb);
  for (uint64_t seed : options.seeds) repr += std::to_string(seed) + '|';
  AppendDouble(repr, options.data.length_fraction);
  repr += std::to_string(options.data.seed) + '|';
  const forecast::ForecastConfig& f = options.forecast;
  repr += std::to_string(f.input_length) + '|' + std::to_string(f.horizon) +
          '|' + std::to_string(f.season_length) + '|' +
          std::to_string(f.seed) + '|' + std::to_string(f.max_epochs) + '|' +
          std::to_string(f.early_stop_patience) + '|' +
          std::to_string(f.max_train_windows) + '|' +
          std::to_string(f.batch_size) + '|';
  AppendDouble(repr, f.dropout);
  repr += std::to_string(options.scenario.eval_stride) + '|' +
          std::to_string(options.scenario.max_eval_windows);
  // Store-sourced sweeps measure a different compression ratio (serving
  // ratio, see eval/store_source.h), so they must not share a checkpoint
  // with recompression sweeps. Appended only when set so every pre-existing
  // cache keeps its hash.
  if (!options.store_dir.empty()) repr += "|store=" + options.store_dir;
  return zip::ComputeCrc32(reinterpret_cast<const uint8_t*>(repr.data()),
                           repr.size());
}

Result<GridCheckpoint> LoadGridCheckpoint(const std::string& path,
                                          uint32_t options_hash) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("no grid checkpoint at " + path);
  }
  std::string line;
  if (!std::getline(file, line)) {
    return Status::Corruption(path + " is empty");
  }

  GridCheckpoint checkpoint;
  if (line.rfind(kManifestPrefix, 0) != 0) {
    // Pre-checkpoint cache: a plain CSV written by SaveGridCsv. Treat a
    // clean parse as a complete sweep so existing caches keep working.
    file.close();
    Result<std::vector<GridRecord>> legacy = LoadGridCsv(path);
    if (!legacy.ok()) return legacy.status();
    checkpoint.records = std::move(*legacy);
    checkpoint.complete = true;
    checkpoint.legacy = true;
    return checkpoint;
  }

  char* end = nullptr;
  const std::string hex = line.substr(std::strlen(kManifestPrefix));
  const unsigned long stored = std::strtoul(hex.c_str(), &end, 16);
  if (end == hex.c_str() || static_cast<uint32_t>(stored) != options_hash) {
    checkpoint.compatible = false;
    return checkpoint;
  }

  while (std::getline(file, line)) {
    if (line.rfind("dataset,", 0) == 0) continue;  // Human-readable header.
    if (!ParseLine(line, checkpoint)) break;
  }
  return checkpoint;
}

Status GridCheckpointWriter::Open(const std::string& path,
                                  uint32_t options_hash,
                                  const std::vector<GridRecord>& salvaged) {
  path_ = path;
  file_.open(path, std::ios::trunc);
  if (!file_.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  char manifest[64];
  std::snprintf(manifest, sizeof(manifest), "%s%08x", kManifestPrefix,
                options_hash);
  file_ << manifest << '\n' << HeaderLine() << '\n';
  for (const GridRecord& record : salvaged) {
    const std::string row = FormatGridRow(record);
    file_ << RowCrcHex(row) << ',' << row << '\n';
  }
  file_.flush();
  if (!file_.good()) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

Status GridCheckpointWriter::Append(const GridRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  LOSSYTS_FAILPOINT("cache_write");
  if (!file_.is_open()) {
    return Status::FailedPrecondition("checkpoint writer is not open");
  }
  const std::string row = FormatGridRow(record);
  file_ << RowCrcHex(row) << ',' << row << '\n';
  file_.flush();
  if (!file_.good()) return Status::IoError("write to " + path_ + " failed");
  return Status::OK();
}

Status GridCheckpointWriter::MarkComplete() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!file_.is_open()) {
    return Status::FailedPrecondition("checkpoint writer is not open");
  }
  file_ << kCompleteFooter << '\n';
  file_.flush();
  if (!file_.good()) return Status::IoError("write to " + path_ + " failed");
  return Status::OK();
}

}  // namespace lossyts::eval
