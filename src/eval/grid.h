#ifndef LOSSYTS_EVAL_GRID_H_
#define LOSSYTS_EVAL_GRID_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "data/datasets.h"
#include "eval/scenario.h"
#include "forecast/forecaster.h"

namespace lossyts::eval {

/// One row of the evaluation grid: a (dataset, model, seed, compressor,
/// error bound) cell with its forecasting metrics, the compression-side
/// measurements of that cell, and the TFE against the same model+seed's raw
/// baseline. Baseline rows carry compressor = "NONE" and error_bound = 0.
struct GridRecord {
  std::string dataset;
  std::string model;
  std::string compressor;
  double error_bound = 0.0;
  uint64_t seed = 0;

  // Forecasting accuracy (predictions vs. raw targets, §3.5).
  double r = 0.0;
  double rse = 0.0;
  double rmse = 0.0;
  double nrmse = 0.0;
  /// TFE computed on NRMSE (Definition 9); 0 for baseline rows.
  double tfe = 0.0;

  // Compression-side measurements on the test split (0 for baseline rows).
  double te_nrmse = 0.0;
  double te_rmse = 0.0;
  double compression_ratio = 0.0;
  double segment_count = 0.0;
};

/// Full-sweep configuration. Defaults reproduce the paper's grid at
/// laptop-scale: all six datasets, all seven models, PMC/SWING/SZ at the 13
/// §3.2 error bounds, with scaled-down series and window budgets.
struct GridOptions {
  std::vector<std::string> datasets;     // Empty = all six.
  std::vector<std::string> models;       // Empty = all seven.
  std::vector<std::string> compressors;  // Empty = PMC, SWING, SZ.
  std::vector<double> error_bounds;      // Empty = the paper's 13 bounds.
  std::vector<uint64_t> seeds = {1};
  data::DatasetOptions data;
  forecast::ForecastConfig forecast;
  ScenarioOptions scenario;
  bool verbose = false;  ///< Progress lines on stderr.

  GridOptions() { data.length_fraction = 0.05; }
};

/// Runs Algorithm 1 over the whole grid: per dataset, transform the test
/// split once per (compressor, error bound); per model and seed, train once
/// on the raw train/val splits and predict from every transformed test.
Result<std::vector<GridRecord>> RunGrid(const GridOptions& options);

/// CSV persistence so the bench binaries share one expensive sweep.
Status SaveGridCsv(const std::vector<GridRecord>& records,
                   const std::string& path);
Result<std::vector<GridRecord>> LoadGridCsv(const std::string& path);

/// Loads `path` if present, otherwise runs the grid and saves it.
Result<std::vector<GridRecord>> LoadOrRunGrid(const GridOptions& options,
                                              const std::string& path);

/// The canonical cache location used by all bench binaries.
std::string DefaultGridCachePath();

}  // namespace lossyts::eval

#endif  // LOSSYTS_EVAL_GRID_H_
