#ifndef LOSSYTS_EVAL_GRID_H_
#define LOSSYTS_EVAL_GRID_H_

#include <functional>
#include <string>
#include <vector>

#include "core/metric_registry.h"
#include "core/status.h"
#include "data/datasets.h"
#include "eval/scenario.h"
#include "forecast/forecaster.h"

namespace lossyts::eval {

/// One row of the evaluation grid: a (dataset, model, seed, compressor,
/// error bound) cell with its forecasting metrics, the compression-side
/// measurements of that cell, and the TFE against the same model+seed's raw
/// baseline. Baseline rows carry compressor = "NONE" and error_bound = 0.
///
/// A cell that could not be computed (compressor error, failed fit,
/// non-finite metrics) stays in the record stream as a *failed* row: its
/// metrics are zero, `error_code` carries the StatusCode of the final
/// attempt and `error` its message. Failed rows make partial sweeps explicit
/// and give checkpoint/resume a complete cell inventory.
struct GridRecord {
  std::string dataset;
  std::string model;
  std::string compressor;
  double error_bound = 0.0;
  uint64_t seed = 0;

  /// Forecasting accuracy (predictions vs. raw targets), one value per
  /// resolved metric name of the sweep (ResolveMetricNames: the pinned
  /// R/RSE/RMSE/NRMSE first, then any extras). Failed cells keep the
  /// sweep's arity, zero-filled.
  std::vector<double> metrics = std::vector<double>(4, 0.0);

  /// Value at a metric index, 0 when the record predates that metric.
  double metric(size_t index) const {
    return index < metrics.size() ? metrics[index] : 0.0;
  }
  // The pinned paper metrics by their fixed indices.
  double r() const { return metric(kMetricR); }
  double rse() const { return metric(kMetricRse); }
  double rmse() const { return metric(kMetricRmse); }
  double nrmse() const { return metric(kMetricNrmse); }

  /// TFE computed on NRMSE (Definition 9); 0 for baseline rows.
  double tfe = 0.0;

  // Compression-side measurements on the test split (0 for baseline rows).
  double te_nrmse = 0.0;
  double te_rmse = 0.0;
  double compression_ratio = 0.0;
  double segment_count = 0.0;

  // Fault-tolerance bookkeeping.
  int32_t error_code = 0;  ///< StatusCode of the failure; 0 for ok cells.
  int32_t attempts = 1;    ///< Fit/transform attempts consumed (1 = first try).
  std::string error;       ///< Failure message; empty for ok cells.

  bool failed() const { return error_code != 0; }
};

/// Full-sweep configuration. Defaults reproduce the paper's grid at
/// laptop-scale: all six datasets, all seven models, PMC/SWING/SZ at the 13
/// §3.2 error bounds, with scaled-down series and window budgets.
struct GridOptions {
  std::vector<std::string> datasets;     // Empty = all six.
  std::vector<std::string> models;       // Empty = all seven.
  std::vector<std::string> compressors;  // Empty = PMC, SWING, SZ.
  std::vector<double> error_bounds;      // Empty = the paper's 13 bounds.
  std::vector<uint64_t> seeds = {1};
  /// Extra metric names computed per cell beyond the pinned four (registry
  /// names, e.g. "mae", "smape", "pinball@0.9"; see core/metric_registry.h).
  /// Resolved through ResolveMetricNames, so duplicates of the pinned four
  /// are dropped. Metrics needing prediction intervals (coverage) are
  /// rejected — the grid produces point forecasts only. Participates in
  /// GridOptionsHash only when non-empty, so pre-existing caches keep their
  /// hashes.
  std::vector<std::string> metrics;
  data::DatasetOptions data;
  forecast::ForecastConfig forecast;
  ScenarioOptions scenario;
  bool verbose = false;  ///< Progress lines on stderr (mutex-guarded).
  /// When non-empty, CompressAtBound stages source their transform artifacts
  /// from the chunk store files under this directory (see
  /// eval/store_source.h), falling back to recompression per combination
  /// when the store is missing or invalid. Participates in GridOptionsHash
  /// (only when set, so caches from before this option keep their hashes).
  std::string store_dir;
  /// Extra attempts after a failed fit or compression transform. Retried
  /// fits run with RetrySeed()-derived seeds so a divergent initialization
  /// does not permanently kill the cell; the record keeps the original seed
  /// as its identity. 0 disables retries.
  int max_cell_retries = 1;
  /// Worker threads for the stage DAG (see grid_stages.h). 1 (the default)
  /// executes inline on the calling thread; 0 resolves to the hardware
  /// concurrency. The produced records are bit-identical for every value —
  /// each stage's randomness derives from its cell identity, never from
  /// scheduling — and jobs is excluded from GridOptionsHash, so checkpoints
  /// written at any parallelism resume at any other.
  int jobs = 1;

  GridOptions() { data.length_fraction = 0.05; }
};

/// Identity of one cell inside a sweep ("dataset|model|compressor|eb|seed");
/// checkpoint/resume keys records by this string.
std::string CellKey(const GridRecord& record);

/// Seed used for retry `attempt` (0-based) of a cell whose identity seed is
/// `seed`. Attempt 0 is the identity seed itself; later attempts derive a
/// deterministic reseed so reruns of a sweep retry identically.
uint64_t RetrySeed(uint64_t seed, int attempt);

/// Runs Algorithm 1 over the whole grid as an artifact-keyed stage DAG
/// (LoadDataset -> CompressAtBound -> FitModel -> EvaluateCell, see
/// grid_stages.h) on a work-stealing pool of GridOptions::jobs threads: per
/// dataset, the test split is transformed once per (compressor, error
/// bound); per model and seed, one fit is trained on the raw train/val
/// splits and shared — via the artifact store — by every cell that
/// references it. Records are returned in canonical cell order regardless
/// of completion order.
///
/// Failures are isolated per cell: a failed transform, fit or evaluation is
/// retried (per GridOptions::max_cell_retries) and then recorded as a failed
/// GridRecord without aborting sibling cells. Only configuration errors
/// (unknown dataset/model/compressor names, unloadable datasets) abort the
/// sweep, since every cell they touch would fail identically; with jobs > 1
/// the first such error in canonical order is reported.
Result<std::vector<GridRecord>> RunGrid(const GridOptions& options);

/// Resumable core of RunGrid. Cells whose CellKey appears in `existing` are
/// not recomputed; their salvaged records are spliced into the output at
/// their canonical grid position (failed salvaged cells are kept as failed —
/// a checkpointed failure already consumed its retries). `on_record`, when
/// non-null, observes every *freshly computed* record as it is produced (the
/// checkpoint writer's append hook); calls are serialized through a
/// single-writer channel, in completion order — canonical order at jobs = 1,
/// unspecified otherwise (resume re-orders by CellKey, so checkpoints do not
/// depend on it); a non-OK return aborts the sweep.
Result<std::vector<GridRecord>> RunGridResumable(
    const GridOptions& options, const std::vector<GridRecord>& existing,
    const std::function<Status(const GridRecord&)>& on_record);

/// Pointers to the failed rows of a sweep, for failure reports.
std::vector<const GridRecord*> FailedRecords(
    const std::vector<GridRecord>& records);

/// CSV persistence so the bench binaries share one expensive sweep. The
/// header names each metric column after `metric_names` (which must match
/// the records' arity); the default is the pinned four.
Status SaveGridCsv(const std::vector<GridRecord>& records,
                   const std::string& path,
                   const std::vector<std::string>& metric_names =
                       PinnedForecastMetrics());
Result<std::vector<GridRecord>> LoadGridCsv(const std::string& path);

/// One record as a CSV row (no newline) in SaveGridCsv column order, and its
/// inverse. Shared by the CSV cache and the CRC-framed checkpoint. The v2
/// row self-describes its metric arity with an `m<N>` marker field after the
/// seed, followed by the N metric values. Parsing also accepts the two v1
/// layouts (fixed r/rse/rmse/nrmse columns): 17 columns, and the legacy
/// 14-column format from before fault-tolerance bookkeeping existed.
std::string FormatGridRow(const GridRecord& record);
Result<GridRecord> ParseGridRow(const std::string& row);

/// Loads `path` if present, otherwise runs the grid and saves it. The cache
/// is a CRC-framed checkpoint (see checkpoint.h): rows are appended as they
/// are produced, and a partial or torn cache — e.g. after a crash — is
/// salvaged and resumed, recomputing only the missing cells. A cache written
/// for different GridOptions is discarded. Legacy plain-CSV caches load
/// as complete sweeps.
Result<std::vector<GridRecord>> LoadOrRunGrid(const GridOptions& options,
                                              const std::string& path);

/// The canonical cache location used by all bench binaries.
std::string DefaultGridCachePath();

}  // namespace lossyts::eval

#endif  // LOSSYTS_EVAL_GRID_H_
