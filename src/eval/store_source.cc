#include "eval/store_source.h"

#include <sys/stat.h>

#include <cerrno>
#include <cmath>
#include <cstdio>

#include "compress/pipeline.h"
#include "core/metrics.h"
#include "store/format.h"
#include "store/reader.h"
#include "store/segments.h"
#include "store/writer.h"

namespace lossyts::eval {

namespace {

std::string FormatBound(double error_bound) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", error_bound);
  return buffer;
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IoError("cannot create directory " + dir);
}

}  // namespace

std::string TransformStorePath(const std::string& dir,
                               const std::string& dataset,
                               const std::string& compressor,
                               double error_bound) {
  return dir + "/" + dataset + "_" + compressor + "_eb" +
         FormatBound(error_bound) + ".lts";
}

Status BuildTransformStores(const GridOptions& options,
                            const std::string& dir) {
  if (Status s = EnsureDir(dir); !s.ok()) return s;
  const std::vector<std::string>& datasets =
      options.datasets.empty() ? data::DatasetNames() : options.datasets;
  const std::vector<std::string>& compressors =
      options.compressors.empty() ? compress::LossyCompressorNames()
                                  : options.compressors;
  const std::vector<double>& error_bounds =
      options.error_bounds.empty() ? compress::PaperErrorBounds()
                                   : options.error_bounds;

  for (const std::string& dataset_name : datasets) {
    DatasetArtifact dataset = LoadDatasetStage(dataset_name, options.data);
    if (!dataset.status.ok()) return dataset.status;
    for (const std::string& compressor_name : compressors) {
      for (double eb : error_bounds) {
        store::StoreOptions store_options;
        store_options.error_bound = eb;
        store_options.codecs = {compressor_name};
        const std::string path =
            TransformStorePath(dir, dataset_name, compressor_name, eb);
        Result<std::unique_ptr<store::StoreWriter>> writer =
            store::StoreWriter::Create(path, store_options);
        if (!writer.ok()) return writer.status();
        if (Status s = (*writer)->Append(dataset.split.test); !s.ok()) {
          return s;
        }
        if (Status s = (*writer)->Finish(); !s.ok()) return s;
      }
    }
  }
  return Status::OK();
}

Result<TransformArtifact> LoadTransformFromStore(
    const std::string& dir, const std::string& dataset_name,
    const std::string& compressor_name, double error_bound,
    const TimeSeries& test) {
  const std::string path =
      TransformStorePath(dir, dataset_name, compressor_name, error_bound);
  Result<std::unique_ptr<store::StoreReader>> opened =
      store::StoreReader::Open(path);
  if (!opened.ok()) return opened.status();
  const store::StoreReader& reader = **opened;

  if (!reader.clean()) {
    return Status::FailedPrecondition(
        path + " is a salvaged (incomplete) store; refusing to source from "
               "it");
  }
  // The store must have been built for exactly this request: same bound
  // (bit-equal — both sides come from the same parsed double), a
  // single-codec list naming this compressor, and the test split's grid.
  if (reader.header().error_bound != error_bound) {
    return Status::FailedPrecondition(
        path + " was built at bound " +
        std::to_string(reader.header().error_bound) + ", requested " +
        std::to_string(error_bound));
  }
  if (reader.header().codecs.size() != 1 ||
      reader.header().codecs[0] != compressor_name) {
    return Status::FailedPrecondition(path +
                                      " was built with a different codec "
                                      "list than the requested compressor");
  }
  if (reader.total_points() != test.size() ||
      reader.start_timestamp() != test.start_timestamp() ||
      reader.interval_seconds() != test.interval_seconds()) {
    return Status::FailedPrecondition(
        path + " does not cover the requested test split (stale store?)");
  }

  Result<TimeSeries> series = reader.ReadAll();
  if (!series.ok()) return series.status();

  TransformArtifact artifact;
  Result<double> te_rmse = Rmse(test.values(), series->values());
  if (!te_rmse.ok()) return te_rmse.status();
  Result<double> te_nrmse = Nrmse(test.values(), series->values());
  if (!te_nrmse.ok()) return te_nrmse.status();
  artifact.te_rmse = *te_rmse;
  artifact.te_nrmse = *te_nrmse;
  if (!std::isfinite(artifact.te_rmse) || !std::isfinite(artifact.te_nrmse)) {
    return Status::Internal("non-finite transform metrics from store");
  }

  // Serving compression ratio: gzip(raw CSV) over the bytes actually held
  // on disk. This differs from the pipeline's per-blob gzip ratio — the
  // store pays chunk framing and index overhead but skips the extra gzip
  // pass — so records sourced from a store are labeled as such.
  artifact.compression_ratio =
      static_cast<double>(compress::RawGzipSize(test)) /
      static_cast<double>(reader.file_size());

  // Segment count: exact from the chunk models where they exist, the
  // constant-run proxy otherwise (matching pipeline.cc for SZ).
  size_t segments = 0;
  bool model_chunks = true;
  for (size_t i = 0; i < reader.chunks().size(); ++i) {
    if (!store::SupportsPushdown(reader.chunks()[i].algorithm)) {
      model_chunks = false;
      break;
    }
    Result<store::SegmentSet> set =
        store::ParseSegments(reader.ChunkPayload(i));
    if (!set.ok()) return set.status();
    segments += set->segments.size();
  }
  if (!model_chunks) segments = compress::CountConstantRuns(*series);
  artifact.segment_count = static_cast<double>(segments);

  artifact.series = std::move(*series);
  artifact.status = Status::OK();
  artifact.attempts = 1;
  artifact.from_store = true;
  return artifact;
}

}  // namespace lossyts::eval
