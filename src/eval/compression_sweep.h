#ifndef LOSSYTS_EVAL_COMPRESSION_SWEEP_H_
#define LOSSYTS_EVAL_COMPRESSION_SWEEP_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "data/datasets.h"

namespace lossyts::eval {

/// One cell of the compression-only sweep behind Figures 2-3 and Table 3:
/// a (dataset, compressor, error bound) triple with its TE, CR and segment
/// count measured on the full (scaled) dataset. GORILLA appears once per
/// dataset with error_bound = 0 as the lossless baseline.
struct SweepRecord {
  std::string dataset;
  std::string compressor;
  double error_bound = 0.0;
  double te_nrmse = 0.0;
  double te_rmse = 0.0;
  double compression_ratio = 0.0;
  double segment_count = 0.0;
  double raw_gz_bytes = 0.0;
  double gz_bytes = 0.0;
};

struct SweepOptions {
  std::vector<std::string> datasets;  // Empty = all six.
  std::vector<double> error_bounds;   // Empty = the paper's 13 bounds.
  data::DatasetOptions data;
  bool include_gorilla = true;
  bool verbose = false;
  /// Worker threads (one task per dataset). 1 = sequential, 0 = hardware
  /// concurrency. Records are slot-indexed, so the output is identical for
  /// every value.
  int jobs = 1;

  SweepOptions() { data.length_fraction = 0.125; }
};

/// Runs the sweep (PMC, SWING, SZ at every bound, plus GORILLA), one pool
/// task per dataset. Record order is canonical regardless of jobs.
Result<std::vector<SweepRecord>> RunCompressionSweep(
    const SweepOptions& options);

/// CSV persistence, mirroring the forecasting grid cache.
Status SaveSweepCsv(const std::vector<SweepRecord>& records,
                    const std::string& path);
Result<std::vector<SweepRecord>> LoadSweepCsv(const std::string& path);
Result<std::vector<SweepRecord>> LoadOrRunSweep(const SweepOptions& options,
                                                const std::string& path);

std::string DefaultSweepCachePath();

}  // namespace lossyts::eval

#endif  // LOSSYTS_EVAL_COMPRESSION_SWEEP_H_
