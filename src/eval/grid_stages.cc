#include "eval/grid_stages.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "compress/pipeline.h"
#include "core/progress.h"
#include "core/split.h"
#include "forecast/registry.h"
#include "eval/scenario.h"
#include "eval/store_source.h"

namespace lossyts::eval {

namespace {

bool MetricsFinite(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

GridRecord FailedCell(const CellSpec& spec, const Status& status,
                      int attempts, size_t metric_arity) {
  GridRecord record;
  record.dataset = spec.dataset;
  record.model = spec.model;
  record.compressor = spec.compressor;
  record.error_bound = spec.error_bound;
  record.seed = spec.seed;
  record.metrics.assign(metric_arity, 0.0);
  record.error_code = static_cast<int32_t>(status.code());
  record.error = status.message();
  record.attempts = attempts;
  return record;
}

/// The metric request every grid evaluation shares: scaled metrics (MASE)
/// see the raw train split as their in-sample series, labeled with the
/// dataset name for error messages.
MetricRequest CellMetricRequest(const std::vector<std::string>& metric_names,
                                const DatasetArtifact& dataset) {
  MetricRequest request;
  request.names = metric_names;
  request.insample = &dataset.split.train.values();
  // season_length 0 means "no dominant season"; MASE then scales by the
  // lag-1 naive forecast.
  request.season_length =
      std::max(1, static_cast<int>(dataset.dataset.season_length));
  request.series = dataset.dataset.name;
  return request;
}

}  // namespace

DatasetArtifact LoadDatasetStage(const std::string& name,
                                 const data::DatasetOptions& options) {
  DatasetArtifact artifact;
  Result<data::Dataset> dataset = data::MakeDataset(name, options);
  if (!dataset.ok()) {
    artifact.status = dataset.status();
    return artifact;
  }
  Result<TrainValTest> split = SplitSeries(dataset->series);
  if (!split.ok()) {
    artifact.status = split.status();
    return artifact;
  }
  artifact.status = Status::OK();
  artifact.dataset = std::move(*dataset);
  artifact.split = std::move(*split);
  return artifact;
}

TransformArtifact CompressAtBoundStage(const std::string& dataset_name,
                                       const std::string& compressor_name,
                                       double error_bound,
                                       const TimeSeries& test,
                                       const std::string& store_dir,
                                       int max_attempts, bool verbose) {
  TransformArtifact out;
  if (!store_dir.empty()) {
    Result<TransformArtifact> stored = LoadTransformFromStore(
        store_dir, dataset_name, compressor_name, error_bound, test);
    if (stored.ok()) return std::move(*stored);
    // A missing/stale/corrupt store degrades to recompression: the sweep
    // still completes, just without the storage-sourced artifact.
    if (verbose) {
      Progress::Printf("[grid] store source %s eb=%g on %s unavailable (%s); "
                       "recompressing\n",
                       compressor_name.c_str(), error_bound,
                       dataset_name.c_str(),
                       stored.status().ToString().c_str());
    }
  }
  Result<std::unique_ptr<compress::Compressor>> compressor =
      compress::MakeCompressor(compressor_name);
  if (!compressor.ok()) {
    // Unknown compressor names are pre-validated by RunGridResumable, so
    // this is unreachable there; standalone callers see it as a failed
    // transform.
    out.status = compressor.status();
    return out;
  }
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    out.attempts = attempt + 1;
    Result<compress::PipelineResult> pipeline =
        compress::RunPipeline(**compressor, test, error_bound);
    if (!pipeline.ok()) {
      out.status = pipeline.status();
      continue;
    }
    if (!std::isfinite(pipeline->te_nrmse) ||
        !std::isfinite(pipeline->te_rmse) ||
        !std::isfinite(pipeline->compression_ratio)) {
      out.status = Status::Internal("non-finite transform metrics");
      continue;
    }
    out.status = Status::OK();
    out.series = std::move(pipeline->decompressed);
    out.te_nrmse = pipeline->te_nrmse;
    out.te_rmse = pipeline->te_rmse;
    out.compression_ratio = pipeline->compression_ratio;
    out.segment_count = static_cast<double>(pipeline->segment_count);
    break;
  }
  if (!out.status.ok() && verbose) {
    Progress::Printf("[grid] transform %s eb=%g on %s failed: %s\n",
                     compressor_name.c_str(), error_bound,
                     dataset_name.c_str(), out.status.ToString().c_str());
  }
  return out;
}

FitArtifact FitModelStage(const std::string& model_name,
                          const DatasetArtifact& dataset,
                          const GridOptions& options, uint64_t seed,
                          const GridRecord* salvaged_baseline,
                          const std::vector<std::string>& metric_names) {
  FitArtifact artifact;
  const int max_attempts = 1 + std::max(0, options.max_cell_retries);

  // Fit with retry: each retry derives a fresh deterministic seed from the
  // cell identity, so a divergent initialization gets a genuinely different
  // start while reruns of the sweep retry identically.
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    artifact.fit_attempts = attempt + 1;
    forecast::ForecastConfig config = options.forecast;
    config.season_length = dataset.dataset.season_length;
    config.seed = RetrySeed(seed, attempt);
    Result<std::unique_ptr<forecast::Forecaster>> made =
        forecast::MakeForecaster(model_name, config);
    if (!made.ok()) {
      // Unknown model: configuration error, aborts the sweep.
      artifact.fit_status = made.status();
      artifact.config_error = true;
      return artifact;
    }
    if (options.verbose) {
      Progress::Printf("[grid] fitting %s on %s (seed %llu%s)\n",
                       model_name.c_str(), dataset.dataset.name.c_str(),
                       static_cast<unsigned long long>(seed),
                       attempt > 0 ? ", retry" : "");
    }
    artifact.fit_status = (*made)->Fit(dataset.split.train, dataset.split.val);
    if (artifact.fit_status.ok()) {
      artifact.model = std::move(*made);
      break;
    }
    if (options.verbose) {
      Progress::Printf("[grid] fit %s on %s failed: %s\n", model_name.c_str(),
                       dataset.dataset.name.c_str(),
                       artifact.fit_status.ToString().c_str());
    }
  }
  if (!artifact.fit_status.ok()) return artifact;

  // Baseline: reuse the salvaged row's metrics when present (TFE needs its
  // NRMSE), otherwise evaluate on the raw test split.
  if (salvaged_baseline != nullptr) {
    artifact.baseline_salvaged = true;
    artifact.baseline_ok = !salvaged_baseline->failed();
    artifact.baseline_nrmse = salvaged_baseline->nrmse();
    return artifact;
  }
  Result<std::vector<double>> baseline = EvaluateOnTest(
      *artifact.model, dataset.split.test, nullptr,
      options.forecast.input_length, options.forecast.horizon,
      CellMetricRequest(metric_names, dataset), options.scenario);
  artifact.baseline_status =
      baseline.ok() ? (MetricsFinite(*baseline)
                           ? Status::OK()
                           : Status::Internal("non-finite baseline metrics"))
                    : baseline.status();
  if (artifact.baseline_status.ok()) {
    artifact.baseline_metrics = *baseline;
    artifact.baseline_ok = true;
    artifact.baseline_nrmse = (*baseline)[kMetricNrmse];
  }
  return artifact;
}

GridRecord EvaluateCellStage(const CellSpec& spec, const GridOptions& options,
                             const DatasetArtifact& dataset,
                             const FitArtifact& fit,
                             const TransformArtifact* transform,
                             const std::vector<std::string>& metric_names) {
  const size_t arity = metric_names.size();
  // A failed fit poisons every cell of its (dataset, model, seed) group.
  if (!fit.fit_status.ok()) {
    return FailedCell(spec, fit.fit_status, fit.fit_attempts, arity);
  }

  if (spec.is_baseline()) {
    if (!fit.baseline_status.ok()) {
      return FailedCell(spec, fit.baseline_status, fit.fit_attempts, arity);
    }
    GridRecord record;
    record.dataset = spec.dataset;
    record.model = spec.model;
    record.compressor = "NONE";
    record.seed = spec.seed;
    record.metrics = fit.baseline_metrics;
    record.attempts = fit.fit_attempts;
    return record;
  }

  Status cell_status = transform->status;
  int cell_attempts = transform->attempts;
  if (cell_status.ok() && !fit.baseline_ok) {
    cell_status = Status::FailedPrecondition("baseline evaluation failed for " +
                                             spec.model);
    cell_attempts = 1;
  }
  std::vector<double> metrics;
  if (cell_status.ok()) {
    Result<std::vector<double>> evaluated = EvaluateOnTest(
        *fit.model, dataset.split.test, &transform->series,
        options.forecast.input_length, options.forecast.horizon,
        CellMetricRequest(metric_names, dataset), options.scenario);
    if (!evaluated.ok()) {
      cell_status = evaluated.status();
    } else if (!MetricsFinite(*evaluated)) {
      cell_status = Status::Internal("non-finite cell metrics");
    } else {
      metrics = std::move(*evaluated);
    }
  }
  if (!cell_status.ok()) {
    return FailedCell(spec, cell_status, cell_attempts, arity);
  }

  GridRecord record;
  record.dataset = spec.dataset;
  record.model = spec.model;
  record.compressor = spec.compressor;
  record.error_bound = spec.error_bound;
  record.seed = spec.seed;
  record.tfe = Tfe(metrics[kMetricNrmse], fit.baseline_nrmse);
  record.metrics = std::move(metrics);
  record.te_nrmse = transform->te_nrmse;
  record.te_rmse = transform->te_rmse;
  record.compression_ratio = transform->compression_ratio;
  record.segment_count = transform->segment_count;
  record.attempts = cell_attempts;
  return record;
}

}  // namespace lossyts::eval
