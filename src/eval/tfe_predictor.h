#ifndef LOSSYTS_EVAL_TFE_PREDICTOR_H_
#define LOSSYTS_EVAL_TFE_PREDICTOR_H_

#include <string>
#include <vector>

#include "analysis/gbm.h"
#include "core/status.h"
#include "core/time_series.h"

namespace lossyts::eval {

/// The paper's §5 research direction made concrete: a model that predicts
/// the impact of lossy compression (TFE) on forecasting from the compression
/// characteristics — the change of the 42 time-series characteristics plus
/// the realized TE and CR — without running any forecasting model.
///
/// Feature layout: [42 signed relative characteristic changes in
/// features::FeatureNames() order, te_nrmse, compression_ratio].
class TfePredictor {
 public:
  struct Options {
    analysis::GradientBoostedTrees::Options gbm;

    Options() {
      gbm.num_trees = 60;
      gbm.subsample = 0.8;
      gbm.tree.max_depth = 3;
    }
  };

  struct Example {
    std::vector<double> features;
    double tfe = 0.0;
  };

  TfePredictor() : TfePredictor(Options()) {}
  explicit TfePredictor(const Options& options) : options_(options) {}

  /// Number of features per example (42 characteristics + TE + CR).
  static size_t FeatureCount();

  /// Assembles a feature vector from a raw/decompressed series pair and the
  /// compression-side measurements. `season_length` must allow feature
  /// computation (see features::ComputeAllFeatures); pass 0 for
  /// non-seasonal handling.
  static Result<std::vector<double>> BuildFeatures(
      const TimeSeries& raw, const TimeSeries& decompressed,
      size_t season_length, double te_nrmse, double compression_ratio);

  /// Trains on examples (needs at least 10). Records the in-sample R².
  Status Fit(const std::vector<Example>& examples);

  /// Predicts the TFE for one feature vector.
  Result<double> Predict(const std::vector<double>& features) const;

  /// Mean-|SHAP| importance per feature over the training rows.
  Result<std::vector<double>> Importance() const;

  double r_squared() const { return r_squared_; }
  bool fitted() const { return fitted_; }

 private:
  Options options_;
  analysis::GradientBoostedTrees model_;
  std::vector<std::vector<double>> training_rows_;
  double r_squared_ = 0.0;
  bool fitted_ = false;
};

}  // namespace lossyts::eval

#endif  // LOSSYTS_EVAL_TFE_PREDICTOR_H_
