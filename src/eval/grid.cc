#include "eval/grid.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "compress/pipeline.h"
#include "core/progress.h"
#include "core/seed.h"
#include "core/thread_pool.h"
#include "eval/artifact_store.h"
#include "eval/checkpoint.h"
#include "eval/grid_stages.h"
#include "forecast/registry.h"

namespace lossyts::eval {

namespace {

std::string KeyOf(const std::string& dataset, const std::string& model,
                  const std::string& compressor, double error_bound,
                  uint64_t seed) {
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), "|%.17g|%llu", error_bound,
                static_cast<unsigned long long>(seed));
  return dataset + '|' + model + '|' + compressor + suffix;
}

bool ParseDoubleField(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

bool ParseU64Field(const std::string& s, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0';
}

bool ParseI32Field(const std::string& s, int32_t* out) {
  char* end = nullptr;
  *out = static_cast<int32_t>(std::strtol(s.c_str(), &end, 10));
  return end != s.c_str() && *end == '\0';
}

void AppendG17(std::string& out, double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out += buffer;
}

// Single-writer channel in front of the checkpoint sink: concurrent cells
// append through it, one at a time, and the first sink failure latches and
// aborts the rest of the sweep (an unwritable checkpoint must not silently
// degrade into an unresumable run).
class RecordChannel {
 public:
  explicit RecordChannel(const std::function<Status(const GridRecord&)>& sink)
      : sink_(sink) {}

  void Emit(const GridRecord& record) {
    if (!sink_) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (!status_.ok()) return;
    status_ = sink_(record);
  }

  bool failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !status_.ok();
  }

  Status status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }

 private:
  const std::function<Status(const GridRecord&)>& sink_;
  mutable std::mutex mu_;
  Status status_;
};

// The sweep compiled into an explicit artifact DAG. Cells are enumerated in
// canonical grid order up front; each missing cell carries a dependency
// counter (fit, plus transform for compressed cells) and is scheduled the
// moment its last input artifact is published. Salvaged cells have no node:
// their records are spliced straight into the canonical output slot.
struct CellNode {
  CellSpec spec;
  size_t fit = 0;        // Index into GridPlan::fits.
  size_t transform = 0;  // Index into GridPlan::transforms; unused for baseline.
};

struct TransformNode {
  size_t dataset = 0;  // Index into GridPlan::datasets.
  std::string key;     // dataset|compressor|eb
  std::string compressor;
  double error_bound = 0.0;
  std::vector<size_t> cells;  // Dependent cell indices.
};

struct FitNode {
  size_t dataset = 0;
  std::string key;  // dataset|model|seed
  std::string model;
  uint64_t seed = 0;
  const GridRecord* salvaged_baseline = nullptr;
  std::vector<size_t> cells;  // Every missing cell of the group.
};

struct DatasetNode {
  std::string name;
  bool needed = false;
  std::vector<size_t> transforms;
  std::vector<size_t> fits;
};

}  // namespace

std::string CellKey(const GridRecord& record) {
  return KeyOf(record.dataset, record.model, record.compressor,
               record.error_bound, record.seed);
}

uint64_t RetrySeed(uint64_t seed, int attempt) {
  if (attempt <= 0) return seed;
  return MixSeed(seed, static_cast<uint64_t>(attempt));
}

std::vector<const GridRecord*> FailedRecords(
    const std::vector<GridRecord>& records) {
  std::vector<const GridRecord*> failed;
  for (const GridRecord& r : records) {
    if (r.failed()) failed.push_back(&r);
  }
  return failed;
}

Result<std::vector<GridRecord>> RunGrid(const GridOptions& options) {
  return RunGridResumable(options, {}, nullptr);
}

Result<std::vector<GridRecord>> RunGridResumable(
    const GridOptions& options, const std::vector<GridRecord>& existing,
    const std::function<Status(const GridRecord&)>& on_record) {
  const std::vector<std::string>& datasets =
      options.datasets.empty() ? data::DatasetNames() : options.datasets;
  const std::vector<std::string>& models =
      options.models.empty() ? forecast::ModelNames() : options.models;
  const std::vector<std::string>& compressors =
      options.compressors.empty() ? compress::LossyCompressorNames()
                                  : options.compressors;
  const std::vector<double>& error_bounds =
      options.error_bounds.empty() ? compress::PaperErrorBounds()
                                   : options.error_bounds;
  const int max_attempts = 1 + std::max(0, options.max_cell_retries);

  // Unknown compressor names are configuration errors that would fail every
  // transform identically; reject them before any work is scheduled.
  for (const std::string& name : compressors) {
    Result<std::unique_ptr<compress::Compressor>> compressor =
        compress::MakeCompressor(name);
    if (!compressor.ok()) return compressor.status();
  }
  // Same for the metric list: every cell evaluates the same resolved names,
  // so an unknown metric — or one the grid cannot feed (coverage needs
  // prediction intervals; cells produce point forecasts) — is a
  // configuration error, not a per-cell failure.
  Result<std::vector<std::string>> resolved_metrics =
      ResolveMetricNames(options.metrics);
  if (!resolved_metrics.ok()) return resolved_metrics.status();
  const std::vector<std::string> metric_names = std::move(*resolved_metrics);
  for (const std::string& name : metric_names) {
    Result<MetricSpec> spec = MetricRegistry::Global().Parse(name);
    if (!spec.ok()) return spec.status();
    if (spec->needs_interval) {
      return Status::InvalidArgument(
          "metric '" + name +
          "' needs prediction intervals; the grid evaluates point forecasts");
    }
  }

  std::unordered_map<std::string, size_t> done;
  done.reserve(existing.size());
  for (size_t i = 0; i < existing.size(); ++i) {
    done.emplace(CellKey(existing[i]), i);
  }
  auto salvaged = [&](const std::string& dataset, const std::string& model,
                      const std::string& compressor, double eb,
                      uint64_t seed) -> const GridRecord* {
    auto it = done.find(KeyOf(dataset, model, compressor, eb, seed));
    return it == done.end() ? nullptr : &existing[it->second];
  };

  // ---- Compile the sweep into the artifact DAG (canonical cell order). ----
  std::vector<CellNode> cells;
  std::vector<TransformNode> transforms;
  std::vector<FitNode> fits;
  std::vector<DatasetNode> dataset_nodes(datasets.size());
  std::vector<GridRecord> results;
  std::vector<char> missing;  // Parallel to results: 1 = has a CellNode.

  std::unordered_map<std::string, size_t> transform_index;
  for (size_t di = 0; di < datasets.size(); ++di) {
    const std::string& dataset_name = datasets[di];
    DatasetNode& dnode = dataset_nodes[di];
    dnode.name = dataset_name;
    for (const std::string& model_name : models) {
      for (uint64_t seed : options.seeds) {
        const size_t fit_index = fits.size();
        FitNode fnode;
        fnode.dataset = di;
        fnode.key = dataset_name + '|' + model_name + '|' +
                    std::to_string(seed);
        fnode.model = model_name;
        fnode.seed = seed;
        fnode.salvaged_baseline =
            salvaged(dataset_name, model_name, "NONE", 0.0, seed);

        auto add_cell = [&](const std::string& compressor, double eb,
                            const GridRecord* existing_record) {
          if (existing_record != nullptr) {
            results.push_back(*existing_record);
            missing.push_back(0);
            return;
          }
          CellNode cell;
          cell.spec = {dataset_name, model_name, compressor, eb, seed};
          cell.fit = fit_index;
          if (compressor != "NONE") {
            const std::string tkey = [&] {
              char suffix[32];
              std::snprintf(suffix, sizeof(suffix), "|%.17g", eb);
              return dataset_name + '|' + compressor + suffix;
            }();
            auto [it, inserted] =
                transform_index.emplace(tkey, transforms.size());
            if (inserted) {
              TransformNode tnode;
              tnode.dataset = di;
              tnode.key = tkey;
              tnode.compressor = compressor;
              tnode.error_bound = eb;
              transforms.push_back(std::move(tnode));
            }
            cell.transform = it->second;
            transforms[it->second].cells.push_back(results.size());
          }
          fnode.cells.push_back(results.size());
          results.emplace_back();
          missing.push_back(1);
          cells.push_back(std::move(cell));
          dnode.needed = true;
        };

        add_cell("NONE", 0.0, fnode.salvaged_baseline);
        for (const std::string& compressor_name : compressors) {
          for (double eb : error_bounds) {
            add_cell(compressor_name, eb,
                     salvaged(dataset_name, model_name, compressor_name, eb,
                              seed));
          }
        }
        if (!fnode.cells.empty()) {
          dnode.fits.push_back(fits.size());
          fits.push_back(std::move(fnode));
        }
      }
    }
  }
  // results/missing are parallel to the canonical cell positions, but
  // `cells` holds only missing positions; map from cells -> result slots.
  std::vector<size_t> cell_slot;
  cell_slot.reserve(cells.size());
  for (size_t i = 0; i < results.size(); ++i) {
    if (missing[i]) cell_slot.push_back(i);
  }
  for (size_t ti = 0; ti < transforms.size(); ++ti) {
    dataset_nodes[transforms[ti].dataset].transforms.push_back(ti);
  }

  // Dependency counters: fit, plus transform for compressed cells. The
  // transform/fit nodes record *result-slot* indices; remap to cell indices.
  std::unordered_map<size_t, size_t> slot_to_cell;
  for (size_t ci = 0; ci < cell_slot.size(); ++ci) {
    slot_to_cell.emplace(cell_slot[ci], ci);
  }
  std::vector<std::atomic<int>> deps(cells.size());
  for (size_t ci = 0; ci < cells.size(); ++ci) {
    deps[ci].store(cells[ci].spec.is_baseline() ? 1 : 2,
                   std::memory_order_relaxed);
  }

  // ---- Execute on the shared pool. ----
  ArtifactStore<DatasetArtifact> dataset_store;
  ArtifactStore<TransformArtifact> transform_store;
  ArtifactStore<FitArtifact> fit_store;
  RecordChannel channel(on_record);
  std::vector<Status> dataset_status(datasets.size());
  std::vector<Status> fit_config_status(fits.size());
  std::atomic<bool> config_abort{false};

  ThreadPool pool(options.jobs);

  auto run_cell = [&](size_t ci) {
    if (config_abort.load(std::memory_order_relaxed) || channel.failed()) {
      return;
    }
    const CellNode& cell = cells[ci];
    std::shared_ptr<const DatasetArtifact> dataset =
        dataset_store.Lookup(cell.spec.dataset);
    std::shared_ptr<const FitArtifact> fit =
        fit_store.Lookup(fits[cell.fit].key);
    std::shared_ptr<const TransformArtifact> transform =
        cell.spec.is_baseline()
            ? nullptr
            : transform_store.Lookup(transforms[cell.transform].key);
    GridRecord record = EvaluateCellStage(cell.spec, options, *dataset, *fit,
                                          transform.get(), metric_names);
    channel.Emit(record);
    results[cell_slot[ci]] = std::move(record);
  };

  auto resolve_dep = [&](size_t slot) {
    const size_t ci = slot_to_cell.at(slot);
    if (deps[ci].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      pool.Submit([&, ci] { run_cell(ci); });
    }
  };

  for (size_t di = 0; di < datasets.size(); ++di) {
    if (!dataset_nodes[di].needed) continue;
    pool.Submit([&, di] {
      const DatasetNode& dnode = dataset_nodes[di];
      std::shared_ptr<const DatasetArtifact> artifact =
          dataset_store.GetOrCompute(dnode.name, [&] {
            return LoadDatasetStage(dnode.name, options.data);
          });
      if (!artifact->status.ok()) {
        // Unknown dataset / generation failure: configuration error. The
        // dataset's transforms, fits and cells are never scheduled; the
        // sweep reports this status after the pool drains.
        dataset_status[di] = artifact->status;
        config_abort.store(true, std::memory_order_relaxed);
        return;
      }
      for (const size_t ti : dnode.transforms) {
        pool.Submit([&, ti] {
          const TransformNode& tnode = transforms[ti];
          transform_store.GetOrCompute(tnode.key, [&] {
            return CompressAtBoundStage(
                dataset_nodes[tnode.dataset].name, tnode.compressor,
                tnode.error_bound,
                dataset_store.Lookup(dataset_nodes[tnode.dataset].name)
                    ->split.test,
                options.store_dir, max_attempts, options.verbose);
          });
          for (const size_t slot : tnode.cells) resolve_dep(slot);
        });
      }
      for (const size_t fi : dnode.fits) {
        pool.Submit([&, fi] {
          const FitNode& fnode = fits[fi];
          std::shared_ptr<const FitArtifact> fit =
              fit_store.GetOrCompute(fnode.key, [&] {
                return FitModelStage(
                    fnode.model,
                    *dataset_store.Lookup(dataset_nodes[fnode.dataset].name),
                    options, fnode.seed, fnode.salvaged_baseline,
                    metric_names);
              });
          if (fit->config_error) {
            // Unknown model: configuration error; dependent cells are left
            // unscheduled and the sweep aborts after the drain.
            fit_config_status[fi] = fit->fit_status;
            config_abort.store(true, std::memory_order_relaxed);
            return;
          }
          for (const size_t slot : fnode.cells) resolve_dep(slot);
        });
      }
    });
  }
  pool.Wait();

  if (options.verbose) {
    // Artifact-cache effectiveness: how much sharing the DAG achieved. A
    // miss is a computed artifact, a hit a reuse by a sibling cell.
    Progress::Printf(
        "[grid] artifact cache: datasets %llu hits / %llu misses, "
        "transforms %llu hits / %llu misses, fits %llu hits / %llu misses\n",
        static_cast<unsigned long long>(dataset_store.hits()),
        static_cast<unsigned long long>(dataset_store.misses()),
        static_cast<unsigned long long>(transform_store.hits()),
        static_cast<unsigned long long>(transform_store.misses()),
        static_cast<unsigned long long>(fit_store.hits()),
        static_cast<unsigned long long>(fit_store.misses()));
  }

  // Configuration errors abort the sweep deterministically: the first
  // failing dataset (then model) in canonical order wins, matching the
  // sequential implementation's first-encountered semantics.
  for (size_t di = 0; di < datasets.size(); ++di) {
    if (!dataset_status[di].ok()) return dataset_status[di];
  }
  for (size_t fi = 0; fi < fits.size(); ++fi) {
    if (!fit_config_status[fi].ok()) return fit_config_status[fi];
  }
  if (channel.failed()) return channel.status();
  return results;
}

std::string FormatGridRow(const GridRecord& r) {
  std::string row = r.dataset + ',' + r.model + ',' + r.compressor + ',';
  AppendG17(row, r.error_bound);
  row += ',' + std::to_string(r.seed) + ',';
  // v2 marker: the row self-describes its metric arity, so parsers never
  // have to guess where the fixed tail columns start.
  row += 'm' + std::to_string(r.metrics.size());
  for (double value : r.metrics) {
    row += ',';
    AppendG17(row, value);
  }
  row += ',';
  AppendG17(row, r.tfe);
  row += ',';
  AppendG17(row, r.te_nrmse);
  row += ',';
  AppendG17(row, r.te_rmse);
  row += ',';
  AppendG17(row, r.compression_ratio);
  row += ',';
  AppendG17(row, r.segment_count);
  row += ',' + std::to_string(r.error_code) + ',' +
         std::to_string(r.attempts) + ',';
  // Sanitize the message so it can never break the one-record-per-row frame.
  for (char c : r.error) row += (c == ',' || c == '\n' || c == '\r') ? ';' : c;
  return row;
}

Result<GridRecord> ParseGridRow(const std::string& row) {
  std::stringstream stream(row);
  std::string field;
  std::vector<std::string> fields;
  while (std::getline(stream, field, ',')) fields.push_back(field);
  // A trailing empty error field is eaten by getline; restore it.
  if (!row.empty() && row.back() == ',') fields.emplace_back();

  GridRecord r;
  // v2 rows carry an explicit metric-arity marker after the seed; without
  // it the row is one of the two fixed v1 layouts (r/rse/rmse/nrmse
  // columns), with or without the fault-tolerance tail.
  uint64_t arity = 0;
  const bool v2 = fields.size() > 5 && fields[5].size() > 1 &&
                  fields[5][0] == 'm' &&
                  ParseU64Field(fields[5].substr(1), &arity);
  if (v2) {
    if (arity == 0 || fields.size() != 14 + arity) {
      return Status::Corruption("malformed grid row: " + row);
    }
  } else if (fields.size() != 14 && fields.size() != 17) {
    return Status::Corruption("malformed grid row: " + row);
  }

  r.dataset = fields[0];
  r.model = fields[1];
  r.compressor = fields[2];
  bool ok = ParseDoubleField(fields[3], &r.error_bound) &&
            ParseU64Field(fields[4], &r.seed);
  const size_t metric_count = v2 ? static_cast<size_t>(arity) : 4;
  const size_t metrics_at = v2 ? 6 : 5;
  r.metrics.assign(metric_count, 0.0);
  for (size_t i = 0; ok && i < metric_count; ++i) {
    ok = ParseDoubleField(fields[metrics_at + i], &r.metrics[i]);
  }
  const size_t tail = metrics_at + metric_count;
  ok = ok && ParseDoubleField(fields[tail], &r.tfe) &&
       ParseDoubleField(fields[tail + 1], &r.te_nrmse) &&
       ParseDoubleField(fields[tail + 2], &r.te_rmse) &&
       ParseDoubleField(fields[tail + 3], &r.compression_ratio) &&
       ParseDoubleField(fields[tail + 4], &r.segment_count);
  if (ok && (v2 || fields.size() == 17)) {
    ok = ParseI32Field(fields[tail + 5], &r.error_code) &&
         ParseI32Field(fields[tail + 6], &r.attempts);
    r.error = fields[tail + 7];
  }
  if (!ok) return Status::Corruption("malformed grid row: " + row);
  return r;
}

Status SaveGridCsv(const std::vector<GridRecord>& records,
                   const std::string& path,
                   const std::vector<std::string>& metric_names) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  file << "dataset,model,compressor,error_bound,seed";
  for (const std::string& name : metric_names) file << ',' << name;
  file << ",tfe,te_nrmse,te_rmse,compression_ratio,segment_count,error_code,"
          "attempts,error\n";
  for (const GridRecord& r : records) {
    file << FormatGridRow(r) << '\n';
  }
  if (!file.good()) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

Result<std::vector<GridRecord>> LoadGridCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("no grid cache at " + path);
  }
  std::string line;
  if (!std::getline(file, line)) {
    return Status::Corruption(path + " is empty");
  }
  std::vector<GridRecord> records;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    Result<GridRecord> record = ParseGridRow(line);
    if (!record.ok()) return record.status();
    records.push_back(std::move(*record));
  }
  return records;
}

Result<std::vector<GridRecord>> LoadOrRunGrid(const GridOptions& options,
                                              const std::string& path) {
  Result<std::vector<std::string>> metric_names =
      ResolveMetricNames(options.metrics);
  if (!metric_names.ok()) return metric_names.status();
  const uint32_t options_hash = GridOptionsHash(options);
  std::vector<GridRecord> salvaged;
  Result<GridCheckpoint> loaded =
      LoadGridCheckpoint(path, options_hash, *metric_names);
  if (loaded.ok() && loaded->compatible) {
    if (loaded->complete) return std::move(loaded->records);
    salvaged = std::move(loaded->records);
    if (options.verbose) {
      Progress::Printf("[grid] resuming %s: %zu rows salvaged\n", path.c_str(),
                       salvaged.size());
    }
  } else if (loaded.ok() && !loaded->compatible && options.verbose) {
    Progress::Printf(
        "[grid] cache %s was built for different options; rerunning (%s)\n",
        path.c_str(), loaded->reason.c_str());
  }
  GridCheckpointWriter writer;
  if (Status s = writer.Open(path, options_hash, salvaged, *metric_names);
      !s.ok()) {
    return s;
  }
  Result<std::vector<GridRecord>> records = RunGridResumable(
      options, salvaged,
      [&writer](const GridRecord& r) { return writer.Append(r); });
  if (!records.ok()) return records.status();
  if (Status s = writer.MarkComplete(); !s.ok()) return s;
  return records;
}

std::string DefaultGridCachePath() { return "lossyts_grid_cache.csv"; }

}  // namespace lossyts::eval
