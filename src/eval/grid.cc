#include "eval/grid.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "compress/pipeline.h"
#include "core/split.h"
#include "forecast/registry.h"

namespace lossyts::eval {

namespace {

struct TransformedTest {
  std::string compressor;
  double error_bound;
  TimeSeries series;
  double te_nrmse;
  double te_rmse;
  double compression_ratio;
  double segment_count;
};

}  // namespace

Result<std::vector<GridRecord>> RunGrid(const GridOptions& options) {
  const std::vector<std::string>& datasets =
      options.datasets.empty() ? data::DatasetNames() : options.datasets;
  const std::vector<std::string>& models =
      options.models.empty() ? forecast::ModelNames() : options.models;
  const std::vector<std::string>& compressors =
      options.compressors.empty() ? compress::LossyCompressorNames()
                                  : options.compressors;
  const std::vector<double>& error_bounds =
      options.error_bounds.empty() ? compress::PaperErrorBounds()
                                   : options.error_bounds;

  std::vector<GridRecord> records;
  for (const std::string& dataset_name : datasets) {
    Result<data::Dataset> dataset =
        data::MakeDataset(dataset_name, options.data);
    if (!dataset.ok()) return dataset.status();
    Result<TrainValTest> split = SplitSeries(dataset->series);
    if (!split.ok()) return split.status();

    // Transform the test split once per (compressor, error bound).
    std::vector<TransformedTest> transformed;
    for (const std::string& compressor_name : compressors) {
      Result<std::unique_ptr<compress::Compressor>> compressor =
          compress::MakeCompressor(compressor_name);
      if (!compressor.ok()) return compressor.status();
      for (double eb : error_bounds) {
        Result<compress::PipelineResult> pipeline =
            compress::RunPipeline(**compressor, split->test, eb);
        if (!pipeline.ok()) return pipeline.status();
        TransformedTest t;
        t.compressor = compressor_name;
        t.error_bound = eb;
        t.series = std::move(pipeline->decompressed);
        t.te_nrmse = pipeline->te_nrmse;
        t.te_rmse = pipeline->te_rmse;
        t.compression_ratio = pipeline->compression_ratio;
        t.segment_count = static_cast<double>(pipeline->segment_count);
        transformed.push_back(std::move(t));
      }
    }

    for (const std::string& model_name : models) {
      for (uint64_t seed : options.seeds) {
        forecast::ForecastConfig config = options.forecast;
        config.season_length = dataset->season_length;
        config.seed = seed;
        Result<std::unique_ptr<forecast::Forecaster>> model =
            forecast::MakeForecaster(model_name, config);
        if (!model.ok()) return model.status();
        if (options.verbose) {
          std::fprintf(stderr, "[grid] fitting %s on %s (seed %llu)\n",
                       model_name.c_str(), dataset_name.c_str(),
                       static_cast<unsigned long long>(seed));
        }
        if (Status s = (*model)->Fit(split->train, split->val); !s.ok()) {
          return s;
        }

        Result<MetricSet> baseline = EvaluateOnTest(
            **model, split->test, nullptr, config.input_length,
            config.horizon, options.scenario);
        if (!baseline.ok()) return baseline.status();

        GridRecord base;
        base.dataset = dataset_name;
        base.model = model_name;
        base.compressor = "NONE";
        base.seed = seed;
        base.r = baseline->r;
        base.rse = baseline->rse;
        base.rmse = baseline->rmse;
        base.nrmse = baseline->nrmse;
        records.push_back(base);

        for (const TransformedTest& t : transformed) {
          Result<MetricSet> metrics = EvaluateOnTest(
              **model, split->test, &t.series, config.input_length,
              config.horizon, options.scenario);
          if (!metrics.ok()) return metrics.status();
          GridRecord rec;
          rec.dataset = dataset_name;
          rec.model = model_name;
          rec.compressor = t.compressor;
          rec.error_bound = t.error_bound;
          rec.seed = seed;
          rec.r = metrics->r;
          rec.rse = metrics->rse;
          rec.rmse = metrics->rmse;
          rec.nrmse = metrics->nrmse;
          rec.tfe = Tfe(metrics->nrmse, baseline->nrmse);
          rec.te_nrmse = t.te_nrmse;
          rec.te_rmse = t.te_rmse;
          rec.compression_ratio = t.compression_ratio;
          rec.segment_count = t.segment_count;
          records.push_back(rec);
        }
      }
    }
  }
  return records;
}

Status SaveGridCsv(const std::vector<GridRecord>& records,
                   const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  file << "dataset,model,compressor,error_bound,seed,r,rse,rmse,nrmse,tfe,"
          "te_nrmse,te_rmse,compression_ratio,segment_count\n";
  file.precision(12);
  for (const GridRecord& r : records) {
    file << r.dataset << ',' << r.model << ',' << r.compressor << ','
         << r.error_bound << ',' << r.seed << ',' << r.r << ',' << r.rse
         << ',' << r.rmse << ',' << r.nrmse << ',' << r.tfe << ','
         << r.te_nrmse << ',' << r.te_rmse << ',' << r.compression_ratio
         << ',' << r.segment_count << '\n';
  }
  if (!file.good()) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

Result<std::vector<GridRecord>> LoadGridCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("no grid cache at " + path);
  }
  std::string line;
  if (!std::getline(file, line)) {
    return Status::Corruption(path + " is empty");
  }
  std::vector<GridRecord> records;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    std::stringstream row(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(row, field, ',')) fields.push_back(field);
    if (fields.size() != 14) {
      return Status::Corruption(path + ": malformed row: " + line);
    }
    GridRecord r;
    r.dataset = fields[0];
    r.model = fields[1];
    r.compressor = fields[2];
    r.error_bound = std::stod(fields[3]);
    r.seed = static_cast<uint64_t>(std::stoull(fields[4]));
    r.r = std::stod(fields[5]);
    r.rse = std::stod(fields[6]);
    r.rmse = std::stod(fields[7]);
    r.nrmse = std::stod(fields[8]);
    r.tfe = std::stod(fields[9]);
    r.te_nrmse = std::stod(fields[10]);
    r.te_rmse = std::stod(fields[11]);
    r.compression_ratio = std::stod(fields[12]);
    r.segment_count = std::stod(fields[13]);
    records.push_back(std::move(r));
  }
  return records;
}

Result<std::vector<GridRecord>> LoadOrRunGrid(const GridOptions& options,
                                              const std::string& path) {
  Result<std::vector<GridRecord>> cached = LoadGridCsv(path);
  if (cached.ok()) return cached;
  Result<std::vector<GridRecord>> records = RunGrid(options);
  if (!records.ok()) return records.status();
  if (Status s = SaveGridCsv(*records, path); !s.ok()) return s;
  return records;
}

std::string DefaultGridCachePath() { return "lossyts_grid_cache.csv"; }

}  // namespace lossyts::eval
