#include "eval/grid.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "compress/pipeline.h"
#include "core/rng.h"
#include "core/split.h"
#include "eval/checkpoint.h"
#include "forecast/registry.h"

namespace lossyts::eval {

namespace {

// Outcome of transforming one dataset's test split with one
// (compressor, error bound) pair, including how it failed if it did.
struct TransformOutcome {
  TimeSeries series;
  double te_nrmse = 0.0;
  double te_rmse = 0.0;
  double compression_ratio = 0.0;
  double segment_count = 0.0;
  Status status;
  int attempts = 1;
};

std::string KeyOf(const std::string& dataset, const std::string& model,
                  const std::string& compressor, double error_bound,
                  uint64_t seed) {
  char suffix[64];
  std::snprintf(suffix, sizeof(suffix), "|%.17g|%llu", error_bound,
                static_cast<unsigned long long>(seed));
  return dataset + '|' + model + '|' + compressor + suffix;
}

bool MetricsFinite(const MetricSet& m) {
  return std::isfinite(m.r) && std::isfinite(m.rse) && std::isfinite(m.rmse) &&
         std::isfinite(m.nrmse);
}

GridRecord FailedCell(const std::string& dataset, const std::string& model,
                      const std::string& compressor, double error_bound,
                      uint64_t seed, const Status& status, int attempts) {
  GridRecord record;
  record.dataset = dataset;
  record.model = model;
  record.compressor = compressor;
  record.error_bound = error_bound;
  record.seed = seed;
  record.error_code = static_cast<int32_t>(status.code());
  record.error = status.message();
  record.attempts = attempts;
  return record;
}

bool ParseDoubleField(const std::string& s, double* out) {
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

bool ParseU64Field(const std::string& s, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0';
}

bool ParseI32Field(const std::string& s, int32_t* out) {
  char* end = nullptr;
  *out = static_cast<int32_t>(std::strtol(s.c_str(), &end, 10));
  return end != s.c_str() && *end == '\0';
}

void AppendG17(std::string& out, double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out += buffer;
}

}  // namespace

std::string CellKey(const GridRecord& record) {
  return KeyOf(record.dataset, record.model, record.compressor,
               record.error_bound, record.seed);
}

uint64_t RetrySeed(uint64_t seed, int attempt) {
  if (attempt <= 0) return seed;
  Rng rng(seed ^ (static_cast<uint64_t>(attempt) * 0x9E3779B97F4A7C15ULL));
  return rng.NextU64();
}

std::vector<const GridRecord*> FailedRecords(
    const std::vector<GridRecord>& records) {
  std::vector<const GridRecord*> failed;
  for (const GridRecord& r : records) {
    if (r.failed()) failed.push_back(&r);
  }
  return failed;
}

Result<std::vector<GridRecord>> RunGrid(const GridOptions& options) {
  return RunGridResumable(options, {}, nullptr);
}

Result<std::vector<GridRecord>> RunGridResumable(
    const GridOptions& options, const std::vector<GridRecord>& existing,
    const std::function<Status(const GridRecord&)>& on_record) {
  const std::vector<std::string>& datasets =
      options.datasets.empty() ? data::DatasetNames() : options.datasets;
  const std::vector<std::string>& models =
      options.models.empty() ? forecast::ModelNames() : options.models;
  const std::vector<std::string>& compressors =
      options.compressors.empty() ? compress::LossyCompressorNames()
                                  : options.compressors;
  const std::vector<double>& error_bounds =
      options.error_bounds.empty() ? compress::PaperErrorBounds()
                                   : options.error_bounds;
  const int max_attempts = 1 + std::max(0, options.max_cell_retries);

  std::unordered_map<std::string, size_t> done;
  done.reserve(existing.size());
  for (size_t i = 0; i < existing.size(); ++i) {
    done.emplace(CellKey(existing[i]), i);
  }

  std::vector<GridRecord> records;
  Status sink_error;
  // Routes a freshly computed record through the checkpoint sink; false
  // aborts the sweep with sink_error (an unwritable checkpoint must not
  // silently degrade into an unresumable run).
  auto emit_fresh = [&](GridRecord record) {
    if (on_record) {
      if (Status s = on_record(record); !s.ok()) {
        sink_error = s;
        return false;
      }
    }
    records.push_back(std::move(record));
    return true;
  };

  for (const std::string& dataset_name : datasets) {
    auto salvaged = [&](const std::string& model,
                        const std::string& compressor, double eb,
                        uint64_t seed) -> const GridRecord* {
      auto it = done.find(KeyOf(dataset_name, model, compressor, eb, seed));
      return it == done.end() ? nullptr : &existing[it->second];
    };

    // Resume fast path: when every cell of this dataset is already on file,
    // splice the salvaged rows in canonical order and skip the dataset's
    // generation, transforms and fits entirely.
    bool dataset_needed = false;
    for (const std::string& model_name : models) {
      for (uint64_t seed : options.seeds) {
        if (!salvaged(model_name, "NONE", 0.0, seed)) dataset_needed = true;
        for (const std::string& compressor_name : compressors) {
          for (double eb : error_bounds) {
            if (!salvaged(model_name, compressor_name, eb, seed)) {
              dataset_needed = true;
            }
          }
        }
      }
    }
    if (!dataset_needed) {
      for (const std::string& model_name : models) {
        for (uint64_t seed : options.seeds) {
          records.push_back(*salvaged(model_name, "NONE", 0.0, seed));
          for (const std::string& compressor_name : compressors) {
            for (double eb : error_bounds) {
              records.push_back(*salvaged(model_name, compressor_name, eb,
                                          seed));
            }
          }
        }
      }
      continue;
    }

    // Unknown dataset names and generation failures abort the sweep: they
    // are configuration errors that would fail every cell identically.
    Result<data::Dataset> dataset =
        data::MakeDataset(dataset_name, options.data);
    if (!dataset.ok()) return dataset.status();
    Result<TrainValTest> split = SplitSeries(dataset->series);
    if (!split.ok()) return split.status();

    // Transform the test split once per (compressor, error bound) that some
    // missing cell still needs. A failed transform is retried and then
    // recorded per dependent cell; it never aborts sibling transforms.
    std::vector<std::vector<TransformOutcome>> transformed(compressors.size());
    for (size_t ci = 0; ci < compressors.size(); ++ci) {
      Result<std::unique_ptr<compress::Compressor>> compressor =
          compress::MakeCompressor(compressors[ci]);
      if (!compressor.ok()) return compressor.status();
      transformed[ci].resize(error_bounds.size());
      for (size_t ei = 0; ei < error_bounds.size(); ++ei) {
        bool needed = false;
        for (const std::string& model_name : models) {
          for (uint64_t seed : options.seeds) {
            if (!salvaged(model_name, compressors[ci], error_bounds[ei],
                          seed)) {
              needed = true;
            }
          }
        }
        if (!needed) continue;
        TransformOutcome& out = transformed[ci][ei];
        for (int attempt = 0; attempt < max_attempts; ++attempt) {
          out.attempts = attempt + 1;
          Result<compress::PipelineResult> pipeline = compress::RunPipeline(
              **compressor, split->test, error_bounds[ei]);
          if (!pipeline.ok()) {
            out.status = pipeline.status();
            continue;
          }
          if (!std::isfinite(pipeline->te_nrmse) ||
              !std::isfinite(pipeline->te_rmse) ||
              !std::isfinite(pipeline->compression_ratio)) {
            out.status = Status::Internal("non-finite transform metrics");
            continue;
          }
          out.status = Status::OK();
          out.series = std::move(pipeline->decompressed);
          out.te_nrmse = pipeline->te_nrmse;
          out.te_rmse = pipeline->te_rmse;
          out.compression_ratio = pipeline->compression_ratio;
          out.segment_count = static_cast<double>(pipeline->segment_count);
          break;
        }
        if (!out.status.ok() && options.verbose) {
          std::fprintf(stderr, "[grid] transform %s eb=%g on %s failed: %s\n",
                       compressors[ci].c_str(), error_bounds[ei],
                       dataset_name.c_str(), out.status.ToString().c_str());
        }
      }
    }

    for (const std::string& model_name : models) {
      for (uint64_t seed : options.seeds) {
        const GridRecord* base_existing =
            salvaged(model_name, "NONE", 0.0, seed);
        bool any_missing = base_existing == nullptr;
        for (size_t ci = 0; ci < compressors.size() && !any_missing; ++ci) {
          for (size_t ei = 0; ei < error_bounds.size() && !any_missing;
               ++ei) {
            any_missing =
                !salvaged(model_name, compressors[ci], error_bounds[ei], seed);
          }
        }
        if (!any_missing) {
          records.push_back(*base_existing);
          for (size_t ci = 0; ci < compressors.size(); ++ci) {
            for (size_t ei = 0; ei < error_bounds.size(); ++ei) {
              records.push_back(*salvaged(model_name, compressors[ci],
                                          error_bounds[ei], seed));
            }
          }
          continue;
        }

        // Fit with retry: each retry derives a fresh deterministic seed, so
        // a divergent initialization gets a genuinely different start while
        // reruns of the sweep retry identically.
        std::unique_ptr<forecast::Forecaster> model;
        Status fit_status;
        int fit_attempts = 0;
        for (int attempt = 0; attempt < max_attempts; ++attempt) {
          fit_attempts = attempt + 1;
          forecast::ForecastConfig config = options.forecast;
          config.season_length = dataset->season_length;
          config.seed = RetrySeed(seed, attempt);
          Result<std::unique_ptr<forecast::Forecaster>> made =
              forecast::MakeForecaster(model_name, config);
          if (!made.ok()) return made.status();  // Unknown model: config error.
          if (options.verbose) {
            std::fprintf(stderr, "[grid] fitting %s on %s (seed %llu%s)\n",
                         model_name.c_str(), dataset_name.c_str(),
                         static_cast<unsigned long long>(seed),
                         attempt > 0 ? ", retry" : "");
          }
          fit_status = (*made)->Fit(split->train, split->val);
          if (fit_status.ok()) {
            model = std::move(*made);
            break;
          }
          if (options.verbose) {
            std::fprintf(stderr, "[grid] fit %s on %s failed: %s\n",
                         model_name.c_str(), dataset_name.c_str(),
                         fit_status.ToString().c_str());
          }
        }

        if (!fit_status.ok()) {
          // No model: every still-missing cell of this (model, seed) fails
          // with the fit status; salvaged cells are spliced through.
          if (base_existing) {
            records.push_back(*base_existing);
          } else if (!emit_fresh(FailedCell(dataset_name, model_name, "NONE",
                                            0.0, seed, fit_status,
                                            fit_attempts))) {
            return sink_error;
          }
          for (size_t ci = 0; ci < compressors.size(); ++ci) {
            for (size_t ei = 0; ei < error_bounds.size(); ++ei) {
              const GridRecord* cell = salvaged(model_name, compressors[ci],
                                                error_bounds[ei], seed);
              if (cell) {
                records.push_back(*cell);
              } else if (!emit_fresh(FailedCell(
                             dataset_name, model_name, compressors[ci],
                             error_bounds[ei], seed, fit_status,
                             fit_attempts))) {
                return sink_error;
              }
            }
          }
          continue;
        }

        // Baseline: reuse the salvaged row's metrics when present (TFE needs
        // its NRMSE), otherwise evaluate and record.
        double baseline_nrmse = 0.0;
        bool baseline_ok = false;
        if (base_existing) {
          records.push_back(*base_existing);
          baseline_ok = !base_existing->failed();
          baseline_nrmse = base_existing->nrmse;
        } else {
          Result<MetricSet> baseline = EvaluateOnTest(
              *model, split->test, nullptr, options.forecast.input_length,
              options.forecast.horizon, options.scenario);
          Status base_status =
              baseline.ok()
                  ? (MetricsFinite(*baseline)
                         ? Status::OK()
                         : Status::Internal("non-finite baseline metrics"))
                  : baseline.status();
          if (!base_status.ok()) {
            if (!emit_fresh(FailedCell(dataset_name, model_name, "NONE", 0.0,
                                       seed, base_status, fit_attempts))) {
              return sink_error;
            }
          } else {
            GridRecord base;
            base.dataset = dataset_name;
            base.model = model_name;
            base.compressor = "NONE";
            base.seed = seed;
            base.r = baseline->r;
            base.rse = baseline->rse;
            base.rmse = baseline->rmse;
            base.nrmse = baseline->nrmse;
            base.attempts = fit_attempts;
            baseline_ok = true;
            baseline_nrmse = base.nrmse;
            if (!emit_fresh(std::move(base))) return sink_error;
          }
        }

        for (size_t ci = 0; ci < compressors.size(); ++ci) {
          for (size_t ei = 0; ei < error_bounds.size(); ++ei) {
            const GridRecord* cell = salvaged(model_name, compressors[ci],
                                              error_bounds[ei], seed);
            if (cell) {
              records.push_back(*cell);
              continue;
            }
            const TransformOutcome& t = transformed[ci][ei];
            Status cell_status = t.status;
            int cell_attempts = t.attempts;
            MetricSet metrics;
            if (cell_status.ok() && !baseline_ok) {
              cell_status = Status::FailedPrecondition(
                  "baseline evaluation failed for " + model_name);
              cell_attempts = 1;
            }
            if (cell_status.ok()) {
              Result<MetricSet> evaluated = EvaluateOnTest(
                  *model, split->test, &t.series,
                  options.forecast.input_length, options.forecast.horizon,
                  options.scenario);
              if (!evaluated.ok()) {
                cell_status = evaluated.status();
              } else if (!MetricsFinite(*evaluated)) {
                cell_status = Status::Internal("non-finite cell metrics");
              } else {
                metrics = *evaluated;
              }
            }
            if (!cell_status.ok()) {
              if (!emit_fresh(FailedCell(dataset_name, model_name,
                                         compressors[ci], error_bounds[ei],
                                         seed, cell_status, cell_attempts))) {
                return sink_error;
              }
              continue;
            }
            GridRecord rec;
            rec.dataset = dataset_name;
            rec.model = model_name;
            rec.compressor = compressors[ci];
            rec.error_bound = error_bounds[ei];
            rec.seed = seed;
            rec.r = metrics.r;
            rec.rse = metrics.rse;
            rec.rmse = metrics.rmse;
            rec.nrmse = metrics.nrmse;
            rec.tfe = Tfe(metrics.nrmse, baseline_nrmse);
            rec.te_nrmse = t.te_nrmse;
            rec.te_rmse = t.te_rmse;
            rec.compression_ratio = t.compression_ratio;
            rec.segment_count = t.segment_count;
            rec.attempts = cell_attempts;
            if (!emit_fresh(std::move(rec))) return sink_error;
          }
        }
      }
    }
  }
  return records;
}

std::string FormatGridRow(const GridRecord& r) {
  std::string row = r.dataset + ',' + r.model + ',' + r.compressor + ',';
  AppendG17(row, r.error_bound);
  row += ',' + std::to_string(r.seed) + ',';
  AppendG17(row, r.r);
  row += ',';
  AppendG17(row, r.rse);
  row += ',';
  AppendG17(row, r.rmse);
  row += ',';
  AppendG17(row, r.nrmse);
  row += ',';
  AppendG17(row, r.tfe);
  row += ',';
  AppendG17(row, r.te_nrmse);
  row += ',';
  AppendG17(row, r.te_rmse);
  row += ',';
  AppendG17(row, r.compression_ratio);
  row += ',';
  AppendG17(row, r.segment_count);
  row += ',' + std::to_string(r.error_code) + ',' +
         std::to_string(r.attempts) + ',';
  // Sanitize the message so it can never break the one-record-per-row frame.
  for (char c : r.error) row += (c == ',' || c == '\n' || c == '\r') ? ';' : c;
  return row;
}

Result<GridRecord> ParseGridRow(const std::string& row) {
  std::stringstream stream(row);
  std::string field;
  std::vector<std::string> fields;
  while (std::getline(stream, field, ',')) fields.push_back(field);
  // A trailing empty error field is eaten by getline; restore it.
  if (fields.size() == 16 && !row.empty() && row.back() == ',') {
    fields.emplace_back();
  }
  if (fields.size() != 14 && fields.size() != 17) {
    return Status::Corruption("malformed grid row: " + row);
  }
  GridRecord r;
  r.dataset = fields[0];
  r.model = fields[1];
  r.compressor = fields[2];
  bool ok = ParseDoubleField(fields[3], &r.error_bound) &&
            ParseU64Field(fields[4], &r.seed) &&
            ParseDoubleField(fields[5], &r.r) &&
            ParseDoubleField(fields[6], &r.rse) &&
            ParseDoubleField(fields[7], &r.rmse) &&
            ParseDoubleField(fields[8], &r.nrmse) &&
            ParseDoubleField(fields[9], &r.tfe) &&
            ParseDoubleField(fields[10], &r.te_nrmse) &&
            ParseDoubleField(fields[11], &r.te_rmse) &&
            ParseDoubleField(fields[12], &r.compression_ratio) &&
            ParseDoubleField(fields[13], &r.segment_count);
  if (ok && fields.size() == 17) {
    ok = ParseI32Field(fields[14], &r.error_code) &&
         ParseI32Field(fields[15], &r.attempts);
    r.error = fields[16];
  }
  if (!ok) return Status::Corruption("malformed grid row: " + row);
  return r;
}

Status SaveGridCsv(const std::vector<GridRecord>& records,
                   const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  file << "dataset,model,compressor,error_bound,seed,r,rse,rmse,nrmse,tfe,"
          "te_nrmse,te_rmse,compression_ratio,segment_count,error_code,"
          "attempts,error\n";
  for (const GridRecord& r : records) {
    file << FormatGridRow(r) << '\n';
  }
  if (!file.good()) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

Result<std::vector<GridRecord>> LoadGridCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("no grid cache at " + path);
  }
  std::string line;
  if (!std::getline(file, line)) {
    return Status::Corruption(path + " is empty");
  }
  std::vector<GridRecord> records;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    Result<GridRecord> record = ParseGridRow(line);
    if (!record.ok()) return record.status();
    records.push_back(std::move(*record));
  }
  return records;
}

Result<std::vector<GridRecord>> LoadOrRunGrid(const GridOptions& options,
                                              const std::string& path) {
  const uint32_t options_hash = GridOptionsHash(options);
  std::vector<GridRecord> salvaged;
  Result<GridCheckpoint> loaded = LoadGridCheckpoint(path, options_hash);
  if (loaded.ok() && loaded->compatible) {
    if (loaded->complete) return std::move(loaded->records);
    salvaged = std::move(loaded->records);
    if (options.verbose) {
      std::fprintf(stderr, "[grid] resuming %s: %zu rows salvaged\n",
                   path.c_str(), salvaged.size());
    }
  } else if (loaded.ok() && !loaded->compatible && options.verbose) {
    std::fprintf(stderr,
                 "[grid] cache %s was built for different options; rerunning\n",
                 path.c_str());
  }
  GridCheckpointWriter writer;
  if (Status s = writer.Open(path, options_hash, salvaged); !s.ok()) return s;
  Result<std::vector<GridRecord>> records = RunGridResumable(
      options, salvaged,
      [&writer](const GridRecord& r) { return writer.Append(r); });
  if (!records.ok()) return records.status();
  if (Status s = writer.MarkComplete(); !s.ok()) return s;
  return records;
}

std::string DefaultGridCachePath() { return "lossyts_grid_cache.csv"; }

}  // namespace lossyts::eval
