#ifndef LOSSYTS_EVAL_STORE_SOURCE_H_
#define LOSSYTS_EVAL_STORE_SOURCE_H_

#include <string>

#include "core/status.h"
#include "core/time_series.h"
#include "eval/grid_stages.h"

namespace lossyts::eval {

// Sourcing CompressAtBound artifacts from chunk store files instead of
// recompressing: BuildTransformStores ingests every (dataset, compressor,
// error bound) combination's chronological test split into a per-combination
// single-codec store under a directory, and a grid run pointed at that
// directory (GridOptions::store_dir) has its CompressAtBoundStage read the
// reconstructed series straight out of the store — the "train directly from
// compressed storage" path. The store is trusted only after validation:
// bound, codec list and time grid must match the request exactly, and a
// missing/stale/corrupt file falls back to recompression.

/// Canonical store file path for one (dataset, compressor, bound)
/// combination, e.g. "<dir>/Solar_PMC_eb0.05.lts".
std::string TransformStorePath(const std::string& dir,
                               const std::string& dataset,
                               const std::string& compressor,
                               double error_bound);

/// Ingests the test split of every combination in `options` (empty lists
/// resolve to the grid defaults) into store files under `dir`, creating the
/// directory if needed. Existing files are overwritten; ingestion is
/// deterministic, so a rebuild is byte-identical.
Status BuildTransformStores(const GridOptions& options,
                            const std::string& dir);

/// Sources one TransformArtifact from `dir`. Validates that the store is
/// clean (complete footer), was built at exactly `error_bound` with exactly
/// `compressor_name`, and reconstructs onto `test`'s time grid; computes the
/// TE metrics against `test`, the serving compression ratio
/// (gzip(raw CSV) / store file bytes) and the segment count. Any failure
/// returns the status — the caller decides whether to fall back.
Result<TransformArtifact> LoadTransformFromStore(
    const std::string& dir, const std::string& dataset_name,
    const std::string& compressor_name, double error_bound,
    const TimeSeries& test);

}  // namespace lossyts::eval

#endif  // LOSSYTS_EVAL_STORE_SOURCE_H_
