#ifndef LOSSYTS_EVAL_ARTIFACT_STORE_H_
#define LOSSYTS_EVAL_ARTIFACT_STORE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace lossyts::eval {

/// Thread-safe, compute-once memoization of stage outputs, keyed by the
/// artifact's identity string (a CellKey prefix: "dataset",
/// "dataset|compressor|eb", "dataset|model|seed", ...).
///
/// The grid's stage DAG publishes every intermediate product — decompressed
/// series, fitted baselines, per-cell metrics — through one of these stores,
/// which is what guarantees a (dataset, compressor, bound) transform is
/// computed once per sweep instead of once per model x seed, no matter how
/// the cells are scheduled.
///
/// GetOrCompute() runs `make` at most once per key; concurrent callers for
/// the same key block until the first computation finishes (std::call_once
/// on a per-key slot), then share the immutable result. Artifacts are
/// immutable after publication — the shared_ptr<const T> is safe to read
/// from any thread.
template <typename T>
class ArtifactStore {
 public:
  /// Returns the artifact for `key`, computing it with `make` if this is the
  /// first request. Never returns nullptr.
  std::shared_ptr<const T> GetOrCompute(const std::string& key,
                                        const std::function<T()>& make) {
    std::shared_ptr<Slot> slot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::shared_ptr<Slot>& entry = slots_[key];
      if (entry == nullptr) {
        entry = std::make_shared<Slot>();
        ++misses_;
      } else {
        ++hits_;
      }
      slot = entry;
    }
    std::call_once(slot->once, [&] {
      std::shared_ptr<const T> value = std::make_shared<const T>(make());
      // Publish under mu_ so a concurrent Lookup() on another key's path
      // reads a consistent pointer; GetOrCompute() callers are already
      // synchronized by call_once itself.
      std::lock_guard<std::mutex> lock(mu_);
      slot->value = std::move(value);
    });
    return slot->value;
  }

  /// The artifact for `key` if already computed, else nullptr. A key whose
  /// computation is in flight also reads as nullptr — Lookup never blocks.
  std::shared_ptr<const T> Lookup(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = slots_.find(key);
    if (it == slots_.end()) return nullptr;
    return it->second->value;
  }

  /// Number of keys ever requested (including in-flight computations).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return slots_.size();
  }

  /// Cache-effectiveness counters: a GetOrCompute on an existing slot (even
  /// one still computing — the caller shares, not recomputes) is a hit, a
  /// first request is a miss. hits + misses == total GetOrCompute calls;
  /// surfaced through the Progress reporter after a sweep.
  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  struct Slot {
    std::once_flag once;
    std::shared_ptr<const T> value;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Slot>> slots_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace lossyts::eval

#endif  // LOSSYTS_EVAL_ARTIFACT_STORE_H_
