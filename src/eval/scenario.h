#ifndef LOSSYTS_EVAL_SCENARIO_H_
#define LOSSYTS_EVAL_SCENARIO_H_

#include <string>
#include <vector>

#include "core/metric_registry.h"
#include "core/status.h"
#include "core/time_series.h"
#include "forecast/forecaster.h"

namespace lossyts::eval {

/// Options for the evaluation scenario of §3.6 (Algorithm 1).
struct ScenarioOptions {
  /// Step between consecutive evaluation windows in the test split.
  size_t eval_stride = 24;
  /// Upper bound on evaluation windows (0 = unlimited); windows are spread
  /// uniformly over the test split when capped.
  size_t max_eval_windows = 64;
};

/// Which metrics a scenario evaluation computes, plus the extra context some
/// of them need. Defaults to the paper's pinned four (R/RSE/RMSE/NRMSE).
struct MetricRequest {
  /// Canonical registry names, evaluated in order over the pooled
  /// actual/predicted horizons.
  std::vector<std::string> names = PinnedForecastMetrics();
  /// In-sample (training) values for scaled metrics such as MASE.
  const std::vector<double>* insample = nullptr;
  int season_length = 1;
  /// Label used in metric error messages (e.g. the dataset name).
  std::string series;
};

/// Evaluates a *trained* forecaster on the test split, optionally feeding it
/// lossy-transformed inputs (Algorithm 1, line 7-9): prediction windows are
/// taken from `transformed_test` (pass nullptr for the raw baseline), while
/// the target values y are always taken from the raw `test` — the paper's
/// central measurement choice.
///
/// Returns one value per requested metric, pooled over all predicted
/// horizons, positionally matching `metrics.names`.
Result<std::vector<double>> EvaluateOnTest(
    const forecast::Forecaster& model, const TimeSeries& test,
    const TimeSeries* transformed_test, size_t input_length, size_t horizon,
    const MetricRequest& metrics = {}, const ScenarioOptions& options = {});

/// The §4.4.1 retraining variant: compress-decompress *all three* splits,
/// fit a fresh model (created by name) on the decompressed train/val, and
/// evaluate with decompressed inputs against raw targets. Used by the
/// Figure 7 reproduction.
Result<std::vector<double>> EvaluateRetrainOnDecompressed(
    const std::string& model_name, const forecast::ForecastConfig& config,
    const TimeSeries& train, const TimeSeries& val, const TimeSeries& test,
    const std::string& compressor_name, double error_bound,
    const MetricRequest& metrics = {}, const ScenarioOptions& options = {});

/// Transformation forecasting error (Definition 9):
/// TFE = (D(F(X̂), y) − D(F(X), y)) / D(F(X), y). Negative values mean the
/// compression *improved* forecasting accuracy.
inline double Tfe(double transformed_error, double baseline_error) {
  if (baseline_error == 0.0) return 0.0;
  return (transformed_error - baseline_error) / baseline_error;
}

}  // namespace lossyts::eval

#endif  // LOSSYTS_EVAL_SCENARIO_H_
