#ifndef LOSSYTS_EVAL_GRID_STAGES_H_
#define LOSSYTS_EVAL_GRID_STAGES_H_

#include <memory>
#include <string>

#include "core/metric_registry.h"
#include "core/split.h"
#include "core/status.h"
#include "data/datasets.h"
#include "eval/grid.h"
#include "forecast/forecaster.h"

namespace lossyts::eval {

// The evaluation grid decomposed into four explicit, separately-testable
// stages, wired together by RunGridResumable as an artifact-keyed DAG:
//
//   LoadDataset ──┬─> CompressAtBound ──┐
//                 └─> FitModel ─────────┴─> EvaluateCell
//
// Stage outputs are immutable artifacts memoized in an ArtifactStore keyed
// by the stage's identity (see artifact_store.h):
//
//   DatasetArtifact    key = dataset
//   TransformArtifact  key = dataset|compressor|eb
//   FitArtifact        key = dataset|model|seed   (baseline metrics ride here)
//
// so a transform is computed once per (dataset, compressor, bound) and a fit
// once per (dataset, model, seed), shared by every cell that references
// them. Each stage derives any randomness from its identity (the cell seed
// through RetrySeed), never from execution order: running the DAG on one
// thread or sixteen produces bit-identical records.
//
// Failure contract (unchanged from the monolithic RunGrid): a stage failure
// is *data*, not control flow — it is recorded in the artifact's Status and
// turned into failed GridRecords by EvaluateCellStage for exactly the
// dependent cells. Only configuration errors (unknown dataset / model /
// compressor names) abort the whole sweep.

/// Output of the LoadDataset stage: the generated dataset and its
/// chronological train/val/test split. `status` non-OK is a configuration
/// error (unknown name, generation failure) and aborts the sweep.
struct DatasetArtifact {
  Status status;
  data::Dataset dataset;
  TrainValTest split;
};

/// Output of the CompressAtBound stage: one dataset's test split transformed
/// by one (compressor, error bound) pair, plus the compression-side
/// measurements. `status` non-OK means every attempt failed; dependent cells
/// become failed records carrying it.
struct TransformArtifact {
  TimeSeries series;
  double te_nrmse = 0.0;
  double te_rmse = 0.0;
  double compression_ratio = 0.0;
  double segment_count = 0.0;
  Status status;
  int attempts = 1;
  /// True when the artifact was sourced from a chunk store file
  /// (eval/store_source.h) instead of being recompressed. Store-sourced
  /// artifacts carry the *serving* compression ratio (raw gzip bytes over
  /// store file bytes) rather than the pipeline's per-blob gzip ratio.
  bool from_store = false;
};

/// Output of the FitModel stage: a model trained on the raw train/val splits
/// of one (dataset, model, seed), plus the baseline (uncompressed-input)
/// evaluation that every compressed cell's TFE normalizes against. When the
/// baseline row was salvaged from a checkpoint, its metrics are reused and
/// `baseline_salvaged` is set instead of re-evaluating.
struct FitArtifact {
  /// Trained model; nullptr when every attempt failed. Immutable after fit —
  /// Predict() is const, so concurrent EvaluateCell stages share it.
  std::shared_ptr<const forecast::Forecaster> model;
  Status fit_status;
  int fit_attempts = 1;
  /// True when MakeForecaster itself failed (unknown model name): a
  /// configuration error that aborts the sweep rather than failing cells.
  bool config_error = false;

  // Baseline evaluation (compressor = "NONE"): one value per resolved
  // metric name of the sweep.
  Status baseline_status;
  std::vector<double> baseline_metrics;
  bool baseline_ok = false;
  double baseline_nrmse = 0.0;
  bool baseline_salvaged = false;
};

/// Identity of one grid cell; compressor "NONE" (error_bound 0) is the
/// baseline cell of its (dataset, model, seed) group.
struct CellSpec {
  std::string dataset;
  std::string model;
  std::string compressor;
  double error_bound = 0.0;
  uint64_t seed = 0;

  bool is_baseline() const { return compressor == "NONE"; }
};

/// Stage 1: generate `name` and split it chronologically.
DatasetArtifact LoadDatasetStage(const std::string& name,
                                 const data::DatasetOptions& options);

/// Stage 2: run `compressor_name` at `error_bound` over the test split, with
/// up to `max_attempts` tries. When `store_dir` is non-empty the stage first
/// tries to source the artifact from that directory's chunk store files
/// (eval/store_source.h), falling back to recompression — with a verbose
/// note — when the store is missing, stale, or invalid. Verbose failures are
/// reported through the core progress reporter.
TransformArtifact CompressAtBoundStage(const std::string& dataset_name,
                                       const std::string& compressor_name,
                                       double error_bound,
                                       const TimeSeries& test,
                                       const std::string& store_dir,
                                       int max_attempts, bool verbose);

/// Stage 3: fit `model_name` on the raw splits with per-attempt reseeding
/// (RetrySeed), then evaluate the baseline over `metric_names` (the sweep's
/// resolved metric list) — unless `salvaged_baseline` (a checkpointed
/// "NONE" row for this group) already carries its metrics.
FitArtifact FitModelStage(const std::string& model_name,
                          const DatasetArtifact& dataset,
                          const GridOptions& options, uint64_t seed,
                          const GridRecord* salvaged_baseline,
                          const std::vector<std::string>& metric_names =
                              PinnedForecastMetrics());

/// Stage 4: produce `spec`'s GridRecord from its input artifacts, with one
/// metric value per `metric_names` entry. Baseline cells pass transform =
/// nullptr. Failure precedence matches the monolithic implementation: fit
/// failure poisons the whole group, then a failed transform, then a failed
/// baseline (FailedPrecondition), and only a clean set of inputs reaches
/// EvaluateOnTest. Scaled metrics (MASE) see the dataset's raw train split
/// as their in-sample series.
GridRecord EvaluateCellStage(const CellSpec& spec, const GridOptions& options,
                             const DatasetArtifact& dataset,
                             const FitArtifact& fit,
                             const TransformArtifact* transform,
                             const std::vector<std::string>& metric_names =
                                 PinnedForecastMetrics());

}  // namespace lossyts::eval

#endif  // LOSSYTS_EVAL_GRID_STAGES_H_
