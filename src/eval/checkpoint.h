#ifndef LOSSYTS_EVAL_CHECKPOINT_H_
#define LOSSYTS_EVAL_CHECKPOINT_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "eval/grid.h"

namespace lossyts::eval {

// Incremental, crash-tolerant persistence for grid sweeps.
//
// File layout (text, one record per line):
//
//   #lossyts-grid-checkpoint v2 options=<8-hex> metrics=<name;name;...>
//   dataset,model,compressor,...          <- human-readable column header
//   <8-hex CRC32 of the row text>,<row>   <- one line per GridRecord
//   ...
//   #complete                             <- footer, written last
//
// Each row is framed with its own CRC32 (the gzip polynomial from
// src/zip/crc32.h), so a torn final row — the normal result of killing a
// sweep mid-write — is detected and dropped while every earlier row is
// salvaged. The manifest hash ties the file to the exact GridOptions that
// produced it; resuming under different options would silently mix
// incompatible sweeps. The v2 manifest additionally records the sweep's
// resolved metric-name list, so rows are only salvaged into a sweep that
// computes the same metric vector.
//
// Compatibility: v1 manifests ("#lossyts-grid-checkpoint v1 options=<hex>",
// fixed r/rse/rmse/nrmse columns) resume cleanly when the requested metrics
// are exactly the pinned four, and are rejected with a clear reason — never
// silently misparsed — when the sweep asks for more. Plain pre-checkpoint
// CSV caches behave the same way.

/// Hash over every GridOptions field that affects the produced records
/// (resolved dataset/model/compressor/error-bound/seed lists plus the data,
/// forecast and scenario configs, and — when beyond the pinned four — the
/// resolved metric list). Retry and verbosity knobs are excluded: they
/// change how failures are handled, not what a completed cell contains.
uint32_t GridOptionsHash(const GridOptions& options);

/// What LoadGridCheckpoint salvaged from disk.
struct GridCheckpoint {
  std::vector<GridRecord> records;  ///< Valid rows, in file order.
  bool complete = false;            ///< The "#complete" footer was present.
  bool compatible = true;  ///< Manifest hash and metric list both matched.
  bool legacy = false;     ///< Plain pre-checkpoint CSV cache.
  std::string reason;      ///< Why `compatible` is false, for the user.
};

/// Reads a checkpoint, salvaging every row whose CRC frame verifies; the
/// first torn or corrupt row — or a row whose metric arity does not match
/// `metric_names` — ends the scan and everything before it survives.
/// `metric_names` is the resuming sweep's resolved metric list
/// (ResolveMetricNames). Plain CSV caches (no manifest line) are parsed
/// with LoadGridCsv and reported as complete legacy sweeps, provided the
/// sweep requests exactly the pinned four metrics. NotFound when the file
/// does not exist.
Result<GridCheckpoint> LoadGridCheckpoint(
    const std::string& path, uint32_t options_hash,
    const std::vector<std::string>& metric_names = PinnedForecastMetrics());

/// Append-mode checkpoint writer. Open() rewrites the file with the v2
/// manifest (carrying `metric_names`) and the salvaged rows of a resumed
/// sweep; Append() writes one CRC-framed row and flushes, so a crash loses
/// at most the row being written.
///
/// Append() and MarkComplete() are mutex-guarded, so the writer doubles as
/// the single-writer end of the grid's record channel: concurrent cells
/// append through it one whole row at a time. Rows land in completion
/// order under a parallel sweep; resume keys records by CellKey, so file
/// order never matters.
class GridCheckpointWriter {
 public:
  Status Open(const std::string& path, uint32_t options_hash,
              const std::vector<GridRecord>& salvaged,
              const std::vector<std::string>& metric_names =
                  PinnedForecastMetrics());
  Status Append(const GridRecord& record);
  Status MarkComplete();

 private:
  std::mutex mu_;
  std::ofstream file_;
  std::string path_;
};

}  // namespace lossyts::eval

#endif  // LOSSYTS_EVAL_CHECKPOINT_H_
