#ifndef LOSSYTS_EVAL_CHECKPOINT_H_
#define LOSSYTS_EVAL_CHECKPOINT_H_

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "eval/grid.h"

namespace lossyts::eval {

// Incremental, crash-tolerant persistence for grid sweeps.
//
// File layout (text, one record per line):
//
//   #lossyts-grid-checkpoint v1 options=<8-hex GridOptionsHash>
//   dataset,model,compressor,...          <- human-readable column header
//   <8-hex CRC32 of the row text>,<row>   <- one line per GridRecord
//   ...
//   #complete                             <- footer, written last
//
// Each row is framed with its own CRC32 (the gzip polynomial from
// src/zip/crc32.h), so a torn final row — the normal result of killing a
// sweep mid-write — is detected and dropped while every earlier row is
// salvaged. The manifest hash ties the file to the exact GridOptions that
// produced it; resuming under different options would silently mix
// incompatible sweeps.

/// Hash over every GridOptions field that affects the produced records
/// (resolved dataset/model/compressor/error-bound/seed lists plus the data,
/// forecast and scenario configs). Retry and verbosity knobs are excluded:
/// they change how failures are handled, not what a completed cell contains.
uint32_t GridOptionsHash(const GridOptions& options);

/// What LoadGridCheckpoint salvaged from disk.
struct GridCheckpoint {
  std::vector<GridRecord> records;  ///< Valid rows, in file order.
  bool complete = false;            ///< The "#complete" footer was present.
  bool compatible = true;           ///< Manifest hash matched options_hash.
  bool legacy = false;              ///< Plain pre-checkpoint CSV cache.
};

/// Reads a checkpoint, salvaging every row whose CRC frame verifies; the
/// first torn or corrupt row ends the scan and everything before it
/// survives. Plain CSV caches (no manifest line) are parsed with
/// LoadGridCsv and reported as complete legacy sweeps. NotFound when the
/// file does not exist.
Result<GridCheckpoint> LoadGridCheckpoint(const std::string& path,
                                          uint32_t options_hash);

/// Append-mode checkpoint writer. Open() rewrites the file with the manifest
/// and the salvaged rows of a resumed sweep; Append() writes one CRC-framed
/// row and flushes, so a crash loses at most the row being written.
///
/// Append() and MarkComplete() are mutex-guarded, so the writer doubles as
/// the single-writer end of the grid's record channel: concurrent cells
/// append through it one whole row at a time. Rows land in completion
/// order under a parallel sweep; resume keys records by CellKey, so file
/// order never matters.
class GridCheckpointWriter {
 public:
  Status Open(const std::string& path, uint32_t options_hash,
              const std::vector<GridRecord>& salvaged);
  Status Append(const GridRecord& record);
  Status MarkComplete();

 private:
  std::mutex mu_;
  std::ofstream file_;
  std::string path_;
};

}  // namespace lossyts::eval

#endif  // LOSSYTS_EVAL_CHECKPOINT_H_
