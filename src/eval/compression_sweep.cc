#include "eval/compression_sweep.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "compress/pipeline.h"
#include "core/progress.h"
#include "core/thread_pool.h"

namespace lossyts::eval {

namespace {

// One dataset's slice of the sweep: generation plus every (compressor,
// bound) transform, written into a pre-sized slot range so the parallel
// sweep emits records in the same canonical order as the sequential one.
Status SweepOneDataset(const std::string& dataset_name,
                       const SweepOptions& options,
                       const std::vector<double>& error_bounds,
                       SweepRecord* out) {
  Result<data::Dataset> dataset = data::MakeDataset(dataset_name, options.data);
  if (!dataset.ok()) return dataset.status();
  if (options.verbose) {
    Progress::Printf("[sweep] compressing %s (%zu points)\n",
                     dataset_name.c_str(), dataset->series.size());
  }

  for (const std::string& compressor_name : compress::LossyCompressorNames()) {
    Result<std::unique_ptr<compress::Compressor>> compressor =
        compress::MakeCompressor(compressor_name);
    if (!compressor.ok()) return compressor.status();
    for (double eb : error_bounds) {
      Result<compress::PipelineResult> result =
          compress::RunPipeline(**compressor, dataset->series, eb);
      if (!result.ok()) return result.status();
      SweepRecord& rec = *out++;
      rec.dataset = dataset_name;
      rec.compressor = compressor_name;
      rec.error_bound = eb;
      rec.te_nrmse = result->te_nrmse;
      rec.te_rmse = result->te_rmse;
      rec.compression_ratio = result->compression_ratio;
      rec.segment_count = static_cast<double>(result->segment_count);
      rec.raw_gz_bytes = static_cast<double>(result->raw_gz_bytes);
      rec.gz_bytes = static_cast<double>(result->gz_bytes);
    }
  }

  if (options.include_gorilla) {
    Result<std::unique_ptr<compress::Compressor>> gorilla =
        compress::MakeCompressor("GORILLA");
    if (!gorilla.ok()) return gorilla.status();
    Result<compress::PipelineResult> result =
        compress::RunPipeline(**gorilla, dataset->series, 0.0);
    if (!result.ok()) return result.status();
    SweepRecord& rec = *out;
    rec.dataset = dataset_name;
    rec.compressor = "GORILLA";
    rec.compression_ratio = result->compression_ratio;
    rec.segment_count = static_cast<double>(result->segment_count);
    rec.raw_gz_bytes = static_cast<double>(result->raw_gz_bytes);
    rec.gz_bytes = static_cast<double>(result->gz_bytes);
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<SweepRecord>> RunCompressionSweep(
    const SweepOptions& options) {
  const std::vector<std::string>& datasets =
      options.datasets.empty() ? data::DatasetNames() : options.datasets;
  const std::vector<double>& error_bounds =
      options.error_bounds.empty() ? compress::PaperErrorBounds()
                                   : options.error_bounds;

  const size_t per_dataset =
      compress::LossyCompressorNames().size() * error_bounds.size() +
      (options.include_gorilla ? 1 : 0);
  std::vector<SweepRecord> records(datasets.size() * per_dataset);
  std::vector<Status> status(datasets.size());

  ThreadPool pool(options.jobs);
  for (size_t di = 0; di < datasets.size(); ++di) {
    pool.Submit([&, di] {
      status[di] = SweepOneDataset(datasets[di], options, error_bounds,
                                   records.data() + di * per_dataset);
    });
  }
  pool.Wait();

  // The first failing dataset in canonical order wins, matching the
  // sequential implementation's first-encountered error.
  for (const Status& s : status) {
    if (!s.ok()) return s;
  }
  return records;
}

Status SaveSweepCsv(const std::vector<SweepRecord>& records,
                    const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  file << "dataset,compressor,error_bound,te_nrmse,te_rmse,"
          "compression_ratio,segment_count,raw_gz_bytes,gz_bytes\n";
  file.precision(12);
  for (const SweepRecord& r : records) {
    file << r.dataset << ',' << r.compressor << ',' << r.error_bound << ','
         << r.te_nrmse << ',' << r.te_rmse << ',' << r.compression_ratio
         << ',' << r.segment_count << ',' << r.raw_gz_bytes << ','
         << r.gz_bytes << '\n';
  }
  if (!file.good()) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

Result<std::vector<SweepRecord>> LoadSweepCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::NotFound("no sweep cache at " + path);
  }
  std::string line;
  if (!std::getline(file, line)) {
    return Status::Corruption(path + " is empty");
  }
  std::vector<SweepRecord> records;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    std::stringstream row(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(row, field, ',')) fields.push_back(field);
    if (fields.size() != 9) {
      return Status::Corruption(path + ": malformed row: " + line);
    }
    SweepRecord r;
    r.dataset = fields[0];
    r.compressor = fields[1];
    r.error_bound = std::stod(fields[2]);
    r.te_nrmse = std::stod(fields[3]);
    r.te_rmse = std::stod(fields[4]);
    r.compression_ratio = std::stod(fields[5]);
    r.segment_count = std::stod(fields[6]);
    r.raw_gz_bytes = std::stod(fields[7]);
    r.gz_bytes = std::stod(fields[8]);
    records.push_back(std::move(r));
  }
  return records;
}

Result<std::vector<SweepRecord>> LoadOrRunSweep(const SweepOptions& options,
                                                const std::string& path) {
  Result<std::vector<SweepRecord>> cached = LoadSweepCsv(path);
  if (cached.ok()) return cached;
  Result<std::vector<SweepRecord>> records = RunCompressionSweep(options);
  if (!records.ok()) return records.status();
  if (Status s = SaveSweepCsv(*records, path); !s.ok()) return s;
  return records;
}

std::string DefaultSweepCachePath() { return "lossyts_sweep_cache.csv"; }

}  // namespace lossyts::eval
