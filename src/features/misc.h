#ifndef LOSSYTS_FEATURES_MISC_H_
#define LOSSYTS_FEATURES_MISC_H_

#include <cstddef>
#include <vector>

namespace lossyts::features {

/// flat_spots: the longest run of consecutive values that fall into the same
/// decile bin of the series' range.
size_t FlatSpots(const std::vector<double>& x);

/// crossing_points: number of times the series crosses its median.
size_t CrossingPoints(const std::vector<double>& x);

/// lumpiness: variance of the variances of non-overlapping blocks of the
/// standardized series.
double Lumpiness(const std::vector<double>& x, size_t block);

/// stability: variance of the means of non-overlapping blocks of the
/// standardized series.
double Stability(const std::vector<double>& x, size_t block);

/// Hurst exponent via the classical rescaled-range (R/S) slope estimate over
/// dyadic block sizes. ~0.5 for white noise, > 0.5 for persistent series.
double HurstExponent(const std::vector<double>& x);

/// nonlinearity: Teräsvirta-style statistic — n·R² of regressing the linear
/// AR(2) residuals on quadratic and cubic terms of the lags.
double Nonlinearity(const std::vector<double>& x);

/// arch_stat: R² of regressing squared demeaned values on their first lag —
/// a measure of conditional heteroskedasticity (ARCH effect).
double ArchStat(const std::vector<double>& x);

/// Holt's linear-trend smoothing parameters (alpha: level, beta: trend)
/// fitted by one-step-ahead SSE grid search. These are the `alpha`/`beta`
/// features of Table 4.
struct HoltParameters {
  double alpha = 0.0;
  double beta = 0.0;
};
HoltParameters FitHolt(const std::vector<double>& x);

/// Standardizes (z-scores) the series; constant input maps to zeros.
std::vector<double> Standardize(const std::vector<double>& x);

}  // namespace lossyts::features

#endif  // LOSSYTS_FEATURES_MISC_H_
