#include "features/misc.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lossyts::features {

namespace {

double Mean(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - m) * (x - m);
  return ss / static_cast<double>(v.size() - 1);
}

// Solves the small normal-equation system A beta = b by Gaussian elimination
// with partial pivoting; returns false when singular.
bool SolveLinearSystem(std::vector<std::vector<double>>& a,
                       std::vector<double>& b) {
  const size_t n = a.size();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      for (size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  for (size_t i = 0; i < n; ++i) b[i] /= a[i][i];
  return true;
}

// R² of the OLS regression of y on the given regressor columns (intercept
// added automatically).
double RSquared(const std::vector<std::vector<double>>& columns,
                const std::vector<double>& y) {
  const size_t n = y.size();
  const size_t k = columns.size() + 1;
  std::vector<std::vector<double>> xtx(k, std::vector<double>(k, 0.0));
  std::vector<double> xty(k, 0.0);
  for (size_t t = 0; t < n; ++t) {
    std::vector<double> row(k);
    row[0] = 1.0;
    for (size_t j = 0; j < columns.size(); ++j) row[j + 1] = columns[j][t];
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) xtx[i][j] += row[i] * row[j];
      xty[i] += row[i] * y[t];
    }
  }
  std::vector<double> beta = xty;
  if (!SolveLinearSystem(xtx, beta)) return 0.0;

  const double mean_y = Mean(y);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t t = 0; t < n; ++t) {
    double pred = beta[0];
    for (size_t j = 0; j < columns.size(); ++j) {
      pred += beta[j + 1] * columns[j][t];
    }
    ss_res += (y[t] - pred) * (y[t] - pred);
    ss_tot += (y[t] - mean_y) * (y[t] - mean_y);
  }
  if (ss_tot <= 0.0) return 0.0;
  return std::clamp(1.0 - ss_res / ss_tot, 0.0, 1.0);
}

}  // namespace

std::vector<double> Standardize(const std::vector<double>& x) {
  std::vector<double> out(x.size(), 0.0);
  const double m = Mean(x);
  const double sd = std::sqrt(Variance(x));
  if (sd <= 0.0) return out;
  for (size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - m) / sd;
  return out;
}

size_t FlatSpots(const std::vector<double>& x) {
  if (x.empty()) return 0;
  const auto [mn_it, mx_it] = std::minmax_element(x.begin(), x.end());
  const double mn = *mn_it;
  const double range = *mx_it - mn;
  if (range <= 0.0) return x.size();  // Entirely flat.
  auto bin = [&](double v) {
    int b = static_cast<int>((v - mn) / range * 10.0);
    return std::clamp(b, 0, 9);
  };
  size_t longest = 1;
  size_t run = 1;
  for (size_t i = 1; i < x.size(); ++i) {
    if (bin(x[i]) == bin(x[i - 1])) {
      ++run;
      longest = std::max(longest, run);
    } else {
      run = 1;
    }
  }
  return longest;
}

size_t CrossingPoints(const std::vector<double>& x) {
  if (x.size() < 2) return 0;
  std::vector<double> sorted = x;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted.size() % 2 == 1
                            ? sorted[sorted.size() / 2]
                            : 0.5 * (sorted[sorted.size() / 2 - 1] +
                                     sorted[sorted.size() / 2]);
  size_t crossings = 0;
  bool above = x[0] > median;
  for (size_t i = 1; i < x.size(); ++i) {
    const bool now_above = x[i] > median;
    if (now_above != above) ++crossings;
    above = now_above;
  }
  return crossings;
}

double Lumpiness(const std::vector<double>& x, size_t block) {
  if (block < 2 || x.size() < 2 * block) return 0.0;
  const std::vector<double> z = Standardize(x);
  std::vector<double> block_vars;
  for (size_t start = 0; start + block <= z.size(); start += block) {
    std::vector<double> chunk(z.begin() + start, z.begin() + start + block);
    block_vars.push_back(Variance(chunk));
  }
  return Variance(block_vars);
}

double Stability(const std::vector<double>& x, size_t block) {
  if (block < 2 || x.size() < 2 * block) return 0.0;
  const std::vector<double> z = Standardize(x);
  std::vector<double> block_means;
  for (size_t start = 0; start + block <= z.size(); start += block) {
    std::vector<double> chunk(z.begin() + start, z.begin() + start + block);
    block_means.push_back(Mean(chunk));
  }
  return Variance(block_means);
}

double HurstExponent(const std::vector<double>& x) {
  if (x.size() < 32) return 0.5;
  std::vector<double> log_size;
  std::vector<double> log_rs;
  for (size_t block = 8; block * 2 <= x.size(); block *= 2) {
    double rs_sum = 0.0;
    size_t count = 0;
    for (size_t start = 0; start + block <= x.size(); start += block) {
      std::vector<double> chunk(x.begin() + start, x.begin() + start + block);
      const double m = Mean(chunk);
      double s = 0.0;
      double mn = 0.0;
      double mx = 0.0;
      double ss = 0.0;
      for (double v : chunk) {
        s += v - m;
        mn = std::min(mn, s);
        mx = std::max(mx, s);
        ss += (v - m) * (v - m);
      }
      const double sd = std::sqrt(ss / static_cast<double>(block));
      if (sd > 1e-12) {
        rs_sum += (mx - mn) / sd;
        ++count;
      }
    }
    if (count > 0) {
      log_size.push_back(std::log(static_cast<double>(block)));
      log_rs.push_back(std::log(rs_sum / static_cast<double>(count)));
    }
  }
  if (log_size.size() < 2) return 0.5;
  // OLS slope of log(R/S) on log(block size).
  const double mx = Mean(log_size);
  const double my = Mean(log_rs);
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < log_size.size(); ++i) {
    num += (log_size[i] - mx) * (log_rs[i] - my);
    den += (log_size[i] - mx) * (log_size[i] - mx);
  }
  if (den <= 0.0) return 0.5;
  return std::clamp(num / den, 0.0, 1.0);
}

double Nonlinearity(const std::vector<double>& x) {
  if (x.size() < 16) return 0.0;
  const std::vector<double> z = Standardize(x);
  const size_t n = z.size() - 2;
  std::vector<double> y(n);
  std::vector<double> lag1(n);
  std::vector<double> lag2(n);
  for (size_t t = 0; t < n; ++t) {
    y[t] = z[t + 2];
    lag1[t] = z[t + 1];
    lag2[t] = z[t];
  }
  // Residuals of the linear AR(2).
  // Reuse RSquared machinery by computing predictions explicitly.
  std::vector<std::vector<double>> linear_cols = {lag1, lag2};
  const double r2_linear = RSquared(linear_cols, y);
  // Augment with quadratic and cubic interaction terms (Teräsvirta).
  std::vector<std::vector<double>> aug = linear_cols;
  auto push_product = [&](const std::vector<double>& a,
                          const std::vector<double>& b) {
    std::vector<double> col(n);
    for (size_t t = 0; t < n; ++t) col[t] = a[t] * b[t];
    aug.push_back(std::move(col));
  };
  push_product(lag1, lag1);
  push_product(lag1, lag2);
  push_product(lag2, lag2);
  std::vector<double> cubic(n);
  for (size_t t = 0; t < n; ++t) cubic[t] = lag1[t] * lag1[t] * lag1[t];
  aug.push_back(std::move(cubic));
  const double r2_aug = RSquared(aug, y);
  const double gain = std::max(0.0, r2_aug - r2_linear);
  return static_cast<double>(n) * gain;
}

double ArchStat(const std::vector<double>& x) {
  if (x.size() < 16) return 0.0;
  const std::vector<double> z = Standardize(x);
  std::vector<double> sq(z.size());
  for (size_t i = 0; i < z.size(); ++i) sq[i] = z[i] * z[i];
  const size_t n = sq.size() - 1;
  std::vector<double> y(sq.begin() + 1, sq.end());
  std::vector<double> lag(sq.begin(), sq.end() - 1);
  (void)n;
  std::vector<std::vector<double>> cols = {lag};
  return RSquared(cols, y);
}

HoltParameters FitHolt(const std::vector<double>& x) {
  HoltParameters best;
  if (x.size() < 8) return best;
  double best_sse = std::numeric_limits<double>::infinity();
  for (double alpha = 0.05; alpha <= 0.95; alpha += 0.09) {
    for (double beta = 0.01; beta <= 0.95; beta += 0.09) {
      double level = x[0];
      double trend = x[1] - x[0];
      double sse = 0.0;
      for (size_t t = 1; t < x.size(); ++t) {
        const double forecast = level + trend;
        const double err = x[t] - forecast;
        sse += err * err;
        const double new_level = alpha * x[t] + (1.0 - alpha) * forecast;
        trend = beta * (new_level - level) + (1.0 - beta) * trend;
        level = new_level;
      }
      if (sse < best_sse) {
        best_sse = sse;
        best.alpha = alpha;
        best.beta = beta;
      }
    }
  }
  return best;
}

}  // namespace lossyts::features
