#ifndef LOSSYTS_FEATURES_ACF_H_
#define LOSSYTS_FEATURES_ACF_H_

#include <cstddef>
#include <vector>

namespace lossyts::features {

/// Sample autocorrelation function for lags 1..max_lag (biased estimator,
/// normalized by lag-0 autocovariance, matching R's acf()). Returns zeros
/// when the series is constant or shorter than the lag.
std::vector<double> Acf(const std::vector<double>& x, int max_lag);

/// Partial autocorrelation for lags 1..max_lag via the Durbin-Levinson
/// recursion over the sample ACF.
std::vector<double> Pacf(const std::vector<double>& x, int max_lag);

/// d-th order differencing (d >= 1). Output has size x.size() - d.
std::vector<double> Diff(const std::vector<double>& x, int d = 1);

/// Sum of squares of the first k entries (the "acf10"/"pacf5" aggregates of
/// the tsfeatures package).
double SumOfSquares(const std::vector<double>& values, size_t k);

}  // namespace lossyts::features

#endif  // LOSSYTS_FEATURES_ACF_H_
