#include "features/decompose.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace lossyts::features {

namespace {

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double mean = 0.0;
  for (double x : v) mean += x;
  mean /= static_cast<double>(v.size());
  double ss = 0.0;
  for (double x : v) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(v.size() - 1);
}

// Centered moving average of window `w`; for even w the standard 2xMA is
// used. Valid range is [half, n - half) with half = w/2.
std::vector<double> CenteredMovingAverage(const std::vector<double>& x,
                                          size_t w, size_t* half_out) {
  const size_t n = x.size();
  const size_t half = w / 2;
  *half_out = half;
  std::vector<double> trend(n, 0.0);
  if (w % 2 == 1) {
    double sum = 0.0;
    for (size_t i = 0; i < w; ++i) sum += x[i];
    for (size_t c = half; c + half < n; ++c) {
      trend[c] = sum / static_cast<double>(w);
      if (c + half + 1 < n) sum += x[c + half + 1] - x[c - half];
    }
  } else {
    // 2xMA: average of two adjacent w-windows.
    for (size_t c = half; c + half < n; ++c) {
      double sum = 0.5 * x[c - half] + 0.5 * x[c + half];
      for (size_t k = c - half + 1; k < c + half; ++k) sum += x[k];
      trend[c] = sum / static_cast<double>(w);
    }
  }
  return trend;
}

}  // namespace

Result<Decomposition> Decompose(const std::vector<double>& x, size_t period) {
  if (period < 2) {
    return Status::InvalidArgument("seasonal period must be >= 2");
  }
  if (x.size() < 3 * period) {
    return Status::FailedPrecondition(
        "series of length " + std::to_string(x.size()) +
        " too short for seasonal period " + std::to_string(period));
  }
  Decomposition d;
  d.period = period;
  size_t half = 0;
  std::vector<double> full_trend = CenteredMovingAverage(x, period, &half);
  d.valid_begin = half;
  d.valid_end = x.size() - half;

  // Seasonal indices: average detrended value per phase, then center.
  std::vector<double> phase_sum(period, 0.0);
  std::vector<size_t> phase_count(period, 0);
  for (size_t i = d.valid_begin; i < d.valid_end; ++i) {
    phase_sum[i % period] += x[i] - full_trend[i];
    phase_count[i % period]++;
  }
  std::vector<double> seasonal_index(period, 0.0);
  double mean_index = 0.0;
  for (size_t p = 0; p < period; ++p) {
    seasonal_index[p] =
        phase_count[p] > 0
            ? phase_sum[p] / static_cast<double>(phase_count[p])
            : 0.0;
    mean_index += seasonal_index[p];
  }
  mean_index /= static_cast<double>(period);
  for (double& s : seasonal_index) s -= mean_index;

  const size_t m = d.valid_end - d.valid_begin;
  d.trend.resize(m);
  d.seasonal.resize(m);
  d.remainder.resize(m);
  for (size_t k = 0; k < m; ++k) {
    const size_t i = d.valid_begin + k;
    d.trend[k] = full_trend[i];
    d.seasonal[k] = seasonal_index[i % period];
    d.remainder[k] = x[i] - d.trend[k] - d.seasonal[k];
  }
  return d;
}

Result<Decomposition> DetrendOnly(const std::vector<double>& x,
                                  size_t window) {
  if (window < 2) return Status::InvalidArgument("window must be >= 2");
  if (x.size() < 3 * window) {
    return Status::FailedPrecondition("series too short for detrending");
  }
  Decomposition d;
  d.period = 0;
  size_t half = 0;
  std::vector<double> full_trend = CenteredMovingAverage(x, window, &half);
  d.valid_begin = half;
  d.valid_end = x.size() - half;
  const size_t m = d.valid_end - d.valid_begin;
  d.trend.resize(m);
  d.seasonal.assign(m, 0.0);
  d.remainder.resize(m);
  for (size_t k = 0; k < m; ++k) {
    const size_t i = d.valid_begin + k;
    d.trend[k] = full_trend[i];
    d.remainder[k] = x[i] - d.trend[k];
  }
  return d;
}

double TrendStrength(const Decomposition& d) {
  std::vector<double> deseasonalized(d.trend.size());
  for (size_t i = 0; i < d.trend.size(); ++i) {
    deseasonalized[i] = d.trend[i] + d.remainder[i];
  }
  const double var_r = Variance(d.remainder);
  const double var_d = Variance(deseasonalized);
  if (var_d <= 0.0) return 0.0;
  return std::max(0.0, 1.0 - var_r / var_d);
}

double SeasonalStrength(const Decomposition& d) {
  if (d.period == 0) return 0.0;
  std::vector<double> detrended(d.seasonal.size());
  for (size_t i = 0; i < d.seasonal.size(); ++i) {
    detrended[i] = d.seasonal[i] + d.remainder[i];
  }
  const double var_r = Variance(d.remainder);
  const double var_d = Variance(detrended);
  if (var_d <= 0.0) return 0.0;
  return std::max(0.0, 1.0 - var_r / var_d);
}

double Spike(const Decomposition& d) {
  const std::vector<double>& r = d.remainder;
  const size_t n = r.size();
  if (n < 3) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : r) {
    sum += x;
    sum_sq += x * x;
  }
  // Leave-one-out variance for each point, then the variance of those.
  std::vector<double> loo(n);
  const double m = static_cast<double>(n - 1);
  for (size_t i = 0; i < n; ++i) {
    const double s = sum - r[i];
    const double ss = sum_sq - r[i] * r[i];
    loo[i] = std::max(0.0, ss / m - (s / m) * (s / m));
  }
  return Variance(loo);
}

namespace {

// Coefficient of the degree-k orthogonal polynomial term when regressing the
// trend on normalized time. Uses discrete Legendre-style bases on [-1, 1].
double OrthoPolyCoefficient(const std::vector<double>& y, int degree) {
  const size_t n = y.size();
  if (n < 3) return 0.0;
  std::vector<double> basis(n);
  for (size_t i = 0; i < n; ++i) {
    const double t =
        2.0 * static_cast<double>(i) / static_cast<double>(n - 1) - 1.0;
    basis[i] = degree == 1 ? t : (1.5 * t * t - 0.5);
  }
  // Center the basis (degree-2 basis is not orthogonal to the constant on a
  // discrete grid without centering).
  double bm = 0.0;
  for (double b : basis) bm += b;
  bm /= static_cast<double>(n);
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double b = basis[i] - bm;
    num += b * y[i];
    den += b * b;
  }
  return den > 0.0 ? num / std::sqrt(den) : 0.0;
}

}  // namespace

double Linearity(const Decomposition& d) {
  return OrthoPolyCoefficient(d.trend, 1);
}

double Curvature(const Decomposition& d) {
  return OrthoPolyCoefficient(d.trend, 2);
}

size_t SeasonalPeak(const Decomposition& d) {
  if (d.period == 0 || d.seasonal.empty()) return 0;
  size_t best = 0;
  for (size_t p = 0; p < std::min(d.period, d.seasonal.size()); ++p) {
    if (d.seasonal[p] > d.seasonal[best]) best = p;
  }
  return (best + d.valid_begin) % d.period;
}

size_t SeasonalTrough(const Decomposition& d) {
  if (d.period == 0 || d.seasonal.empty()) return 0;
  size_t best = 0;
  for (size_t p = 0; p < std::min(d.period, d.seasonal.size()); ++p) {
    if (d.seasonal[p] < d.seasonal[best]) best = p;
  }
  return (best + d.valid_begin) % d.period;
}

}  // namespace lossyts::features
