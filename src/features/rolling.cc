#include "features/rolling.h"

#include <algorithm>
#include <cmath>

namespace lossyts::features {

namespace {

// Smallest variance used in the KL computation; windows flattened by lossy
// compression hit this floor and produce large (capped) divergences.
constexpr double kVarianceFloor = 1e-10;

ShiftResult MaxAdjacentDifference(const std::vector<double>& stat,
                                  size_t width) {
  ShiftResult result;
  if (stat.size() <= width) return result;
  for (size_t i = 0; i + width < stat.size(); ++i) {
    const double shift = std::abs(stat[i + width] - stat[i]);
    if (shift > result.max_shift) {
      result.max_shift = shift;
      result.index = i + width;
    }
  }
  return result;
}

}  // namespace

std::vector<double> RollingMeans(const std::vector<double>& x, size_t width) {
  if (width == 0 || x.size() < width) return {};
  std::vector<double> out(x.size() - width + 1);
  double sum = 0.0;
  for (size_t i = 0; i < width; ++i) sum += x[i];
  out[0] = sum / static_cast<double>(width);
  for (size_t i = 1; i < out.size(); ++i) {
    sum += x[i + width - 1] - x[i - 1];
    out[i] = sum / static_cast<double>(width);
  }
  return out;
}

std::vector<double> RollingVariances(const std::vector<double>& x,
                                     size_t width) {
  if (width == 0 || x.size() < width) return {};
  std::vector<double> out(x.size() - width + 1);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (size_t i = 0; i < width; ++i) {
    sum += x[i];
    sum_sq += x[i] * x[i];
  }
  const double w = static_cast<double>(width);
  out[0] = std::max(0.0, sum_sq / w - (sum / w) * (sum / w));
  for (size_t i = 1; i < out.size(); ++i) {
    sum += x[i + width - 1] - x[i - 1];
    sum_sq += x[i + width - 1] * x[i + width - 1] - x[i - 1] * x[i - 1];
    out[i] = std::max(0.0, sum_sq / w - (sum / w) * (sum / w));
  }
  return out;
}

ShiftResult MaxLevelShift(const std::vector<double>& x, size_t width) {
  return MaxAdjacentDifference(RollingMeans(x, width), width);
}

ShiftResult MaxVarShift(const std::vector<double>& x, size_t width) {
  return MaxAdjacentDifference(RollingVariances(x, width), width);
}

ShiftResult MaxKlShift(const std::vector<double>& x, size_t width,
                       double cap) {
  ShiftResult result;
  const std::vector<double> means = RollingMeans(x, width);
  const std::vector<double> vars = RollingVariances(x, width);
  if (means.size() <= width) return result;
  for (size_t i = 0; i + width < means.size(); ++i) {
    // KL(N(m1,v1) || N(m2,v2)) in closed form, with a variance floor.
    const double v1 = std::max(vars[i], kVarianceFloor);
    const double v2 = std::max(vars[i + width], kVarianceFloor);
    const double dm = means[i + width] - means[i];
    double kl =
        0.5 * (std::log(v2 / v1) + (v1 + dm * dm) / v2 - 1.0);
    kl = std::clamp(kl, 0.0, cap);
    if (kl > result.max_shift) {
      result.max_shift = kl;
      result.index = i + width;
    }
  }
  return result;
}

}  // namespace lossyts::features
