#include "features/unitroot.h"

#include <algorithm>
#include <cmath>

namespace lossyts::features {

namespace {

// Bartlett-kernel long-run variance of a (zero-mean) residual series.
double LongRunVariance(const std::vector<double>& u, int lags) {
  const double n = static_cast<double>(u.size());
  double lrv = 0.0;
  for (double v : u) lrv += v * v;
  lrv /= n;
  for (int l = 1; l <= lags; ++l) {
    if (static_cast<size_t>(l) >= u.size()) break;
    double gamma = 0.0;
    for (size_t t = static_cast<size_t>(l); t < u.size(); ++t) {
      gamma += u[t] * u[t - l];
    }
    gamma /= n;
    const double weight =
        1.0 - static_cast<double>(l) / static_cast<double>(lags + 1);
    lrv += 2.0 * weight * gamma;
  }
  return std::max(lrv, 1e-12);
}

int DefaultLags(size_t n) {
  return static_cast<int>(
      std::trunc(4.0 * std::pow(static_cast<double>(n) / 100.0, 0.25)));
}

}  // namespace

double UnitrootKpss(const std::vector<double>& x) {
  const size_t n = x.size();
  if (n < 8) return 0.0;
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(n);

  std::vector<double> u(n);
  for (size_t i = 0; i < n; ++i) u[i] = x[i] - mean;

  double s = 0.0;
  double sum_s2 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    s += u[i];
    sum_s2 += s * s;
  }
  const double lrv = LongRunVariance(u, DefaultLags(n));
  return sum_s2 / (static_cast<double>(n) * static_cast<double>(n) * lrv);
}

double UnitrootPp(const std::vector<double>& x) {
  const size_t n = x.size();
  if (n < 8) return 0.0;

  // OLS of x_t on (1, x_{t-1}).
  const size_t m = n - 1;
  double mean_y = 0.0;
  double mean_z = 0.0;
  for (size_t t = 1; t < n; ++t) {
    mean_y += x[t];
    mean_z += x[t - 1];
  }
  mean_y /= static_cast<double>(m);
  mean_z /= static_cast<double>(m);
  double szz = 0.0;
  double szy = 0.0;
  for (size_t t = 1; t < n; ++t) {
    const double dz = x[t - 1] - mean_z;
    szz += dz * dz;
    szy += dz * (x[t] - mean_y);
  }
  if (szz <= 1e-12) return 0.0;
  const double rho = szy / szz;
  const double mu = mean_y - rho * mean_z;

  std::vector<double> u(m);
  double sigma2 = 0.0;
  for (size_t t = 1; t < n; ++t) {
    u[t - 1] = x[t] - mu - rho * x[t - 1];
    sigma2 += u[t - 1] * u[t - 1];
  }
  sigma2 /= static_cast<double>(m);
  const double lambda2 = LongRunVariance(u, DefaultLags(m));

  const double se_rho = std::sqrt(sigma2 / szz);
  const double t_rho = (rho - 1.0) / se_rho;
  // Z-tau with the Newey-West serial-correlation correction.
  return std::sqrt(sigma2 / lambda2) * t_rho -
         (lambda2 - sigma2) /
             (2.0 * std::sqrt(lambda2) * std::sqrt(szz / static_cast<double>(m)) *
              std::sqrt(static_cast<double>(m)));
}

}  // namespace lossyts::features
