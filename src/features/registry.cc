#include "features/registry.h"

#include <algorithm>
#include <cmath>

#include "features/acf.h"
#include "features/decompose.h"
#include "features/misc.h"
#include "features/rolling.h"
#include "features/spectral.h"
#include "features/unitroot.h"

namespace lossyts::features {

const std::vector<std::string>& FeatureNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      // Moments and shape.
      "mean", "var", "entropy", "lumpiness", "stability", "flat_spots",
      "crossing_points", "hurst", "nonlinearity", "arch_stat",
      // Rolling-window distribution shifts.
      "max_level_shift", "time_level_shift", "max_var_shift",
      "time_var_shift", "max_kl_shift", "time_kl_shift",
      // Autocorrelation structure.
      "x_acf1", "x_acf10", "diff1_acf1", "diff1_acf10", "diff2_acf1",
      "diff2_acf10", "seas_acf1", "x_pacf5", "diff1x_pacf5", "diff2x_pacf5",
      "seas_pacf",
      // Decomposition-based.
      "trend", "seas_strength", "spike", "linearity", "curvature", "e_acf1",
      "e_acf10", "peak", "trough", "nperiods", "seasonal_period",
      // Stationarity and smoothing parameters.
      "unitroot_kpss", "unitroot_pp", "alpha", "beta"};
  return names;
}

Result<FeatureMap> ComputeAllFeatures(const TimeSeries& series,
                                      size_t season_length) {
  const std::vector<double>& x = series.values();
  if (x.size() < 64) {
    return Status::FailedPrecondition(
        "need at least 64 points to compute features");
  }
  const bool seasonal = season_length >= 2;
  if (seasonal && x.size() < 3 * season_length) {
    return Status::FailedPrecondition(
        "series shorter than three seasonal periods");
  }

  FeatureMap f;

  // Moments and shape.
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double var = 0.0;
  for (double v : x) var += (v - mean) * (v - mean);
  var /= static_cast<double>(x.size() - 1);
  f["mean"] = mean;
  f["var"] = var;
  f["entropy"] = SpectralEntropy(x);

  // tsfeatures convention: window width = frequency when seasonal, else 10.
  const size_t width = seasonal ? season_length : 10;
  f["lumpiness"] = Lumpiness(x, width);
  f["stability"] = Stability(x, width);
  f["flat_spots"] = static_cast<double>(FlatSpots(x));
  f["crossing_points"] = static_cast<double>(CrossingPoints(x));
  f["hurst"] = HurstExponent(x);
  f["nonlinearity"] = Nonlinearity(x);
  f["arch_stat"] = ArchStat(x);

  // Rolling shifts.
  const ShiftResult level = MaxLevelShift(x, width);
  const ShiftResult var_shift = MaxVarShift(x, width);
  const ShiftResult kl = MaxKlShift(x, width);
  f["max_level_shift"] = level.max_shift;
  f["time_level_shift"] = static_cast<double>(level.index);
  f["max_var_shift"] = var_shift.max_shift;
  f["time_var_shift"] = static_cast<double>(var_shift.index);
  f["max_kl_shift"] = kl.max_shift;
  f["time_kl_shift"] = static_cast<double>(kl.index);

  // Autocorrelation structure.
  const int seas_lag = seasonal ? static_cast<int>(season_length) : 1;
  const int max_lag = std::max(10, seas_lag);
  const std::vector<double> acf = Acf(x, max_lag);
  f["x_acf1"] = acf.empty() ? 0.0 : acf[0];
  f["x_acf10"] = SumOfSquares(acf, 10);
  const std::vector<double> d1 = Diff(x, 1);
  const std::vector<double> d1_acf = Acf(d1, 10);
  f["diff1_acf1"] = d1_acf.empty() ? 0.0 : d1_acf[0];
  f["diff1_acf10"] = SumOfSquares(d1_acf, 10);
  const std::vector<double> d2 = Diff(x, 2);
  const std::vector<double> d2_acf = Acf(d2, 10);
  f["diff2_acf1"] = d2_acf.empty() ? 0.0 : d2_acf[0];
  f["diff2_acf10"] = SumOfSquares(d2_acf, 10);
  f["seas_acf1"] =
      seasonal && acf.size() >= static_cast<size_t>(seas_lag)
          ? acf[seas_lag - 1]
          : 0.0;

  const std::vector<double> pacf = Pacf(x, std::max(5, seas_lag));
  f["x_pacf5"] = SumOfSquares(pacf, 5);
  f["diff1x_pacf5"] = SumOfSquares(Pacf(d1, 5), 5);
  f["diff2x_pacf5"] = SumOfSquares(Pacf(d2, 5), 5);
  f["seas_pacf"] = seasonal && pacf.size() >= static_cast<size_t>(seas_lag)
                       ? pacf[seas_lag - 1]
                       : 0.0;

  // Decomposition.
  Result<Decomposition> decomp =
      seasonal ? Decompose(x, season_length) : DetrendOnly(x, 10);
  if (!decomp.ok()) return decomp.status();
  f["trend"] = TrendStrength(*decomp);
  f["seas_strength"] = SeasonalStrength(*decomp);
  f["spike"] = Spike(*decomp);
  f["linearity"] = Linearity(*decomp);
  f["curvature"] = Curvature(*decomp);
  const std::vector<double> e_acf = Acf(decomp->remainder, 10);
  f["e_acf1"] = e_acf.empty() ? 0.0 : e_acf[0];
  f["e_acf10"] = SumOfSquares(e_acf, 10);
  f["peak"] = static_cast<double>(SeasonalPeak(*decomp));
  f["trough"] = static_cast<double>(SeasonalTrough(*decomp));
  f["nperiods"] = seasonal ? 1.0 : 0.0;
  f["seasonal_period"] = static_cast<double>(seasonal ? season_length : 1);

  // Stationarity and smoothing.
  f["unitroot_kpss"] = UnitrootKpss(x);
  f["unitroot_pp"] = UnitrootPp(x);
  const HoltParameters holt = FitHolt(x);
  f["alpha"] = holt.alpha;
  f["beta"] = holt.beta;

  return f;
}

FeatureMap RelativeDifferencePercent(const FeatureMap& original,
                                     const FeatureMap& transformed) {
  FeatureMap out;
  for (const auto& [name, value] : original) {
    auto it = transformed.find(name);
    if (it == transformed.end()) continue;
    const double denom = std::max(std::abs(value), 1e-9);
    out[name] = 100.0 * std::abs(value - it->second) / denom;
  }
  return out;
}

}  // namespace lossyts::features
