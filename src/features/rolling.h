#ifndef LOSSYTS_FEATURES_ROLLING_H_
#define LOSSYTS_FEATURES_ROLLING_H_

#include <cstddef>
#include <vector>

namespace lossyts::features {

/// Result of a rolling-shift scan: the maximal shift between two adjacent
/// windows and the index (of the boundary point) where it occurs.
struct ShiftResult {
  double max_shift = 0.0;
  size_t index = 0;
};

/// Rolling means over windows of `width` samples; output[i] is the mean of
/// x[i .. i+width-1]. Empty when the series is shorter than the window.
std::vector<double> RollingMeans(const std::vector<double>& x, size_t width);

/// Rolling (population) variances over windows of `width` samples.
std::vector<double> RollingVariances(const std::vector<double>& x,
                                     size_t width);

/// max_level_shift: largest absolute difference between the means of two
/// adjacent non-overlapping windows of `width` samples.
ShiftResult MaxLevelShift(const std::vector<double>& x, size_t width);

/// max_var_shift: same scan on rolling variances.
ShiftResult MaxVarShift(const std::vector<double>& x, size_t width);

/// max_kl_shift: largest Kullback-Leibler divergence between Gaussian
/// density estimates of two adjacent windows. The divergence is clamped at
/// `cap` because a compressor that flattens a window (variance → 0) would
/// otherwise produce infinities — the very sensitivity the paper discusses
/// for PMC in §4.3.3.
ShiftResult MaxKlShift(const std::vector<double>& x, size_t width,
                       double cap = 50.0);

}  // namespace lossyts::features

#endif  // LOSSYTS_FEATURES_ROLLING_H_
