#ifndef LOSSYTS_FEATURES_UNITROOT_H_
#define LOSSYTS_FEATURES_UNITROOT_H_

#include <vector>

namespace lossyts::features {

/// KPSS level-stationarity test statistic (Kwiatkowski et al. 1992):
/// eta = sum_t S_t^2 / (n^2 * lrv), with S_t the partial sums of the demeaned
/// series and lrv a Bartlett-kernel long-run variance with the standard
/// truncation lag trunc(4*(n/100)^(1/4)). Larger values indicate
/// non-stationarity. This is the `unitroot_kpss` feature.
double UnitrootKpss(const std::vector<double>& x);

/// Phillips-Perron Z-tau statistic for the regression x_t = mu + rho x_{t-1},
/// with the Bartlett long-run variance correction (Newey-West). More negative
/// values reject the unit root more strongly. This is the `unitroot_pp`
/// feature.
double UnitrootPp(const std::vector<double>& x);

}  // namespace lossyts::features

#endif  // LOSSYTS_FEATURES_UNITROOT_H_
