#ifndef LOSSYTS_FEATURES_REGISTRY_H_
#define LOSSYTS_FEATURES_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/time_series.h"

namespace lossyts::features {

/// A named feature vector; std::map keeps deterministic (alphabetical)
/// iteration order for reports.
using FeatureMap = std::map<std::string, double>;

/// Number of characteristics computed by ComputeAllFeatures — the paper's
/// "42 time series characteristics" (§4.3.1).
inline constexpr size_t kFeatureCount = 42;

/// Names of all 42 features, in the order documented in DESIGN.md.
const std::vector<std::string>& FeatureNames();

/// Computes all 42 characteristics of the series. `season_length` is the
/// dominant seasonal period in samples (>= 2 enables the seasonal features;
/// smaller values compute the non-seasonal fallbacks). Fails when the series
/// is too short (< 3 seasons or < 64 points).
Result<FeatureMap> ComputeAllFeatures(const TimeSeries& series,
                                      size_t season_length);

/// Relative difference in percent between two feature maps, per feature:
/// 100 * |a - b| / max(|a|, tiny). This is the measurement behind the
/// paper's Table 6 characteristic-sensitivity analysis.
FeatureMap RelativeDifferencePercent(const FeatureMap& original,
                                     const FeatureMap& transformed);

}  // namespace lossyts::features

#endif  // LOSSYTS_FEATURES_REGISTRY_H_
