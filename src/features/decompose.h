#ifndef LOSSYTS_FEATURES_DECOMPOSE_H_
#define LOSSYTS_FEATURES_DECOMPOSE_H_

#include <cstddef>
#include <vector>

#include "core/status.h"

namespace lossyts::features {

/// Classical additive decomposition of a seasonal series into trend
/// (centered moving average over one period), seasonal (period-averaged
/// detrended values, normalized to zero mean) and remainder components.
///
/// The edges where the centered moving average is undefined are trimmed:
/// all component vectors cover x[valid_begin, valid_end).
struct Decomposition {
  std::vector<double> trend;
  std::vector<double> seasonal;
  std::vector<double> remainder;
  size_t valid_begin = 0;
  size_t valid_end = 0;
  size_t period = 0;
};

/// Decomposes `x` with the given seasonal period (>= 2, and the series must
/// span at least three periods). For period < 2 use DetrendOnly.
Result<Decomposition> Decompose(const std::vector<double>& x, size_t period);

/// Non-seasonal fallback: trend via a moving average of `window` samples,
/// seasonal identically zero.
Result<Decomposition> DetrendOnly(const std::vector<double>& x, size_t window);

/// STL-style component strengths (Hyndman & Athanasopoulos, FPP3 §4.3):
/// strength = max(0, 1 − var(remainder)/var(component + remainder)).
double TrendStrength(const Decomposition& d);
double SeasonalStrength(const Decomposition& d);

/// spike: variance of the leave-one-out variances of the remainder.
double Spike(const Decomposition& d);

/// linearity/curvature: coefficients of an orthogonal-polynomial regression
/// of the trend component on time (degree 1 and 2 terms respectively).
double Linearity(const Decomposition& d);
double Curvature(const Decomposition& d);

/// Index (0-based, within one period) of the seasonal component's peak and
/// trough.
size_t SeasonalPeak(const Decomposition& d);
size_t SeasonalTrough(const Decomposition& d);

}  // namespace lossyts::features

#endif  // LOSSYTS_FEATURES_DECOMPOSE_H_
