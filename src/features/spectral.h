#ifndef LOSSYTS_FEATURES_SPECTRAL_H_
#define LOSSYTS_FEATURES_SPECTRAL_H_

#include <complex>
#include <vector>

namespace lossyts::features {

/// In-place radix-2 Cooley-Tukey FFT. The input size must be a power of two.
void Fft(std::vector<std::complex<double>>& a, bool inverse = false);

/// Periodogram of a demeaned, zero-padded series at the Fourier frequencies
/// (excluding frequency zero).
std::vector<double> Periodogram(const std::vector<double>& x);

/// Shannon spectral entropy of the normalized periodogram, scaled to [0, 1]
/// (1 = white noise, 0 = single dominant frequency). The `entropy` feature.
double SpectralEntropy(const std::vector<double>& x);

}  // namespace lossyts::features

#endif  // LOSSYTS_FEATURES_SPECTRAL_H_
