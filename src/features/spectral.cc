#include "features/spectral.h"

#include <cmath>

namespace lossyts::features {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

void Fft(std::vector<std::complex<double>>& a, bool inverse) {
  const size_t n = a.size();
  if (n < 2) return;
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * kPi / static_cast<double>(len) *
                         (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

std::vector<double> Periodogram(const std::vector<double>& x) {
  if (x.size() < 4) return {};
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());

  size_t n = 1;
  while (n < x.size()) n <<= 1;
  std::vector<std::complex<double>> a(n, 0.0);
  for (size_t i = 0; i < x.size(); ++i) a[i] = x[i] - mean;
  Fft(a);

  std::vector<double> power(n / 2);
  for (size_t k = 1; k <= n / 2; ++k) {
    power[k - 1] = std::norm(a[k]);
  }
  return power;
}

double SpectralEntropy(const std::vector<double>& x) {
  const std::vector<double> power = Periodogram(x);
  if (power.empty()) return 0.0;
  double total = 0.0;
  for (double p : power) total += p;
  if (total <= 0.0) return 0.0;  // Constant series.
  double h = 0.0;
  for (double p : power) {
    if (p > 0.0) {
      const double q = p / total;
      h -= q * std::log(q);
    }
  }
  return h / std::log(static_cast<double>(power.size()));
}

}  // namespace lossyts::features
