#include "features/acf.h"

#include <algorithm>
#include <cmath>

namespace lossyts::features {

std::vector<double> Acf(const std::vector<double>& x, int max_lag) {
  std::vector<double> acf(static_cast<size_t>(std::max(max_lag, 0)), 0.0);
  const size_t n = x.size();
  if (n < 2 || max_lag < 1) return acf;

  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(n);

  double c0 = 0.0;
  for (double v : x) c0 += (v - mean) * (v - mean);
  if (c0 <= 0.0) return acf;  // Constant series.

  for (int lag = 1; lag <= max_lag; ++lag) {
    if (static_cast<size_t>(lag) >= n) break;
    double c = 0.0;
    for (size_t t = static_cast<size_t>(lag); t < n; ++t) {
      c += (x[t] - mean) * (x[t - lag] - mean);
    }
    acf[lag - 1] = c / c0;
  }
  return acf;
}

std::vector<double> Pacf(const std::vector<double>& x, int max_lag) {
  std::vector<double> pacf(static_cast<size_t>(std::max(max_lag, 0)), 0.0);
  if (max_lag < 1 || x.size() < 3) return pacf;
  const std::vector<double> rho = Acf(x, max_lag);

  // Durbin-Levinson: phi[k][k] is the partial autocorrelation at lag k.
  std::vector<double> phi_prev(max_lag + 1, 0.0);
  std::vector<double> phi(max_lag + 1, 0.0);
  phi_prev[1] = rho.empty() ? 0.0 : rho[0];
  pacf[0] = phi_prev[1];
  for (int k = 2; k <= max_lag; ++k) {
    double num = rho[k - 1];
    double den = 1.0;
    for (int j = 1; j < k; ++j) {
      num -= phi_prev[j] * rho[k - 1 - j];
      den -= phi_prev[j] * rho[j - 1];
    }
    const double phikk = std::abs(den) > 1e-12 ? num / den : 0.0;
    for (int j = 1; j < k; ++j) {
      phi[j] = phi_prev[j] - phikk * phi_prev[k - j];
    }
    phi[k] = phikk;
    pacf[k - 1] = phikk;
    phi_prev = phi;
  }
  return pacf;
}

std::vector<double> Diff(const std::vector<double>& x, int d) {
  std::vector<double> out = x;
  for (int k = 0; k < d; ++k) {
    if (out.size() < 2) return {};
    std::vector<double> next(out.size() - 1);
    for (size_t i = 1; i < out.size(); ++i) next[i - 1] = out[i] - out[i - 1];
    out = std::move(next);
  }
  return out;
}

double SumOfSquares(const std::vector<double>& values, size_t k) {
  double sum = 0.0;
  for (size_t i = 0; i < std::min(k, values.size()); ++i) {
    sum += values[i] * values[i];
  }
  return sum;
}

}  // namespace lossyts::features
