#ifndef LOSSYTS_STORE_SEGMENTS_H_
#define LOSSYTS_STORE_SEGMENTS_H_

#include <cstdint>
#include <vector>

#include "compress/header.h"
#include "core/status.h"

namespace lossyts::store {

/// One explicit model segment lifted out of a PMC-Mean or Swing blob. Both
/// codecs reduce to the same linear form v̂(k) = anchor + slope·k over the
/// segment's local offsets (PMC is the slope = 0 special case), which is what
/// lets the query layer share one pushdown implementation.
struct SegmentModel {
  uint32_t start = 0;   ///< In-chunk offset of the segment's first point.
  uint32_t length = 0;  ///< Point count (>= 1 after a successful parse).
  double anchor = 0.0;  ///< PMC mean, or Swing's exact first value.
  double slope = 0.0;   ///< Value change per index step; 0 for PMC.
};

/// A chunk's blob header plus its segment list.
struct SegmentSet {
  compress::BlobHeader header;
  std::vector<SegmentModel> segments;
};

/// Parses a PMC or Swing blob into explicit segments without materializing
/// any points — the basis of both pushdown aggregation and early-stop point
/// reads on model chunks. Applies the same count/overrun guards as the full
/// decoders; Corruption for malformed blobs or other algorithms.
Result<SegmentSet> ParseSegments(const std::vector<uint8_t>& blob);

/// Reconstructs the segment's k-th local point with exactly the decoder's
/// arithmetic (swing.cc ReconstructPoint; exact for PMC since slope is 0),
/// so a pushdown point read is bit-identical to a full decode.
inline double SegmentValueAt(const SegmentModel& s, size_t k) {
  return s.anchor + s.slope * static_cast<double>(k);
}

/// Closed-form aggregate of a segment restricted to local offsets
/// [first, last], both inclusive and both < length.
struct SegmentAggregate {
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Upper bound on Σ|v̂| over the range (exact unless a Swing segment
  /// crosses zero inside it); scaled by ε/(1−ε) this bounds the aggregate's
  /// deviation from the raw data (query.h).
  double abs_sum = 0.0;
  double max_abs = 0.0;  ///< max|v̂| over the range (exact: linear extremes).
  uint64_t count = 0;
};

SegmentAggregate AggregateSegment(const SegmentModel& s, uint32_t first,
                                  uint32_t last);

}  // namespace lossyts::store

#endif  // LOSSYTS_STORE_SEGMENTS_H_
