#include "store/segments.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "compress/serde.h"

namespace lossyts::store {

namespace {

// PMC per-segment coefficient width flags (pmc.cc).
constexpr uint8_t kF32 = 0;
constexpr uint8_t kF64 = 1;

Result<SegmentSet> ParsePmc(compress::ByteReader& reader) {
  Result<compress::BlobHeader> header =
      compress::ReadHeader(reader, compress::AlgorithmId::kPmc);
  if (!header.ok()) return header.status();
  Result<uint32_t> num_segments = reader.GetU32();
  if (!num_segments.ok()) return num_segments.status();

  SegmentSet set;
  set.header = *header;
  set.segments.reserve(std::min<size_t>(*num_segments, size_t{1} << 16));
  uint64_t covered = 0;
  for (uint32_t s = 0; s < *num_segments; ++s) {
    Result<uint16_t> length = reader.GetU16();
    if (!length.ok()) return length.status();
    if (covered + *length > header->num_points) {
      return Status::Corruption("PMC segment lengths overrun the point count");
    }
    Result<uint8_t> width = reader.GetU8();
    if (!width.ok()) return width.status();
    double mean = 0.0;
    if (*width == kF32) {
      Result<uint32_t> bits = reader.GetU32();
      if (!bits.ok()) return bits.status();
      float f;
      uint32_t b = *bits;
      std::memcpy(&f, &b, sizeof(f));
      mean = static_cast<double>(f);
    } else if (*width == kF64) {
      Result<double> value = reader.GetDouble();
      if (!value.ok()) return value.status();
      mean = *value;
    } else {
      return Status::Corruption("invalid PMC coefficient width flag");
    }
    SegmentModel model;
    model.start = static_cast<uint32_t>(covered);
    model.length = *length;
    model.anchor = mean;
    model.slope = 0.0;
    set.segments.push_back(model);
    covered += *length;
  }
  if (covered != header->num_points) {
    return Status::Corruption("PMC segment lengths do not sum to point count");
  }
  return set;
}

Result<SegmentSet> ParseSwing(compress::ByteReader& reader) {
  Result<compress::BlobHeader> header =
      compress::ReadHeader(reader, compress::AlgorithmId::kSwing);
  if (!header.ok()) return header.status();
  Result<uint32_t> num_segments = reader.GetU32();
  if (!num_segments.ok()) return num_segments.status();

  SegmentSet set;
  set.header = *header;
  set.segments.reserve(std::min<size_t>(*num_segments, size_t{1} << 16));
  uint64_t covered = 0;
  for (uint32_t s = 0; s < *num_segments; ++s) {
    Result<uint16_t> length = reader.GetU16();
    if (!length.ok()) return length.status();
    if (covered + *length > header->num_points) {
      return Status::Corruption(
          "Swing segment lengths overrun the point count");
    }
    Result<double> anchor = reader.GetDouble();
    if (!anchor.ok()) return anchor.status();
    Result<double> slope = reader.GetDouble();
    if (!slope.ok()) return slope.status();
    SegmentModel model;
    model.start = static_cast<uint32_t>(covered);
    model.length = *length;
    model.anchor = *anchor;
    model.slope = *slope;
    set.segments.push_back(model);
    covered += *length;
  }
  if (covered != header->num_points) {
    return Status::Corruption(
        "Swing segment lengths do not sum to point count");
  }
  return set;
}

}  // namespace

Result<SegmentSet> ParseSegments(const std::vector<uint8_t>& blob) {
  if (blob.empty()) return Status::Corruption("empty blob has no segments");
  compress::ByteReader reader(blob);
  switch (blob[0]) {
    case static_cast<uint8_t>(compress::AlgorithmId::kPmc):
      return ParsePmc(reader);
    case static_cast<uint8_t>(compress::AlgorithmId::kSwing):
      return ParseSwing(reader);
    default:
      return Status::InvalidArgument(
          "blob algorithm has no explicit segment model");
  }
}

SegmentAggregate AggregateSegment(const SegmentModel& s, uint32_t first,
                                  uint32_t last) {
  SegmentAggregate agg;
  const uint64_t n = static_cast<uint64_t>(last) - first + 1;
  agg.count = n;
  // Endpoint reconstructions; a linear function's extremes over an index
  // range sit at the range ends, so these pin min/max/max_abs exactly.
  const double v_first = SegmentValueAt(s, first);
  const double v_last = SegmentValueAt(s, last);
  agg.min = std::min(v_first, v_last);
  agg.max = std::max(v_first, v_last);
  agg.max_abs = std::max(std::fabs(v_first), std::fabs(v_last));
  // Σ v̂(k) for k in [first, last]: n·anchor + slope·Σk, with
  // Σk = (first + last)·n / 2 (one of the factors is even).
  const uint64_t index_sum_2 = (static_cast<uint64_t>(first) + last) * n;
  agg.sum = static_cast<double>(n) * s.anchor +
            s.slope * (static_cast<double>(index_sum_2) * 0.5);
  // Σ|v̂|: exact (|Σ v̂|) when the line keeps one sign over the range, else
  // over-approximated by n·max|v̂| — an upper bound is all the error report
  // needs, and crossing segments are rare at real bounds.
  if ((v_first >= 0.0 && v_last >= 0.0) || (v_first <= 0.0 && v_last <= 0.0)) {
    agg.abs_sum = std::fabs(agg.sum);
  } else {
    agg.abs_sum = static_cast<double>(n) * agg.max_abs;
  }
  return agg;
}

}  // namespace lossyts::store
