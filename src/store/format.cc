#include "store/format.h"

#include "zip/crc32.h"

namespace lossyts::store {

void WriteStoreHeader(const StoreHeader& header, compress::ByteWriter& writer) {
  compress::ByteWriter body;
  body.PutU8(kFormatVersion);
  body.PutDouble(header.error_bound);
  body.PutU32(header.chunk_span);
  body.PutU8(static_cast<uint8_t>(header.codecs.size()));
  for (const std::string& name : header.codecs) {
    body.PutU8(static_cast<uint8_t>(name.size()));
    for (char c : name) body.PutU8(static_cast<uint8_t>(c));
  }
  std::vector<uint8_t> bytes = body.Finish();
  writer.PutU32(kFileMagic);
  writer.PutBytes(bytes);
  writer.PutU32(zip::ComputeCrc32(bytes.data(), bytes.size()));
}

Result<StoreHeader> ReadStoreHeader(compress::ByteReader& reader) {
  Result<uint32_t> magic = reader.GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kFileMagic) {
    return Status::Corruption("not a chunk store file (bad magic)");
  }

  // The CRC covers version..names, so remember where the body starts.
  const size_t body_start = reader.position();
  const uint8_t* body_ptr = reader.current();

  StoreHeader header;
  Result<uint8_t> version = reader.GetU8();
  if (!version.ok()) return version.status();
  if (*version != kFormatVersion) {
    return Status::Corruption("unsupported store format version " +
                              std::to_string(*version));
  }
  Result<double> eb = reader.GetDouble();
  if (!eb.ok()) return eb.status();
  header.error_bound = *eb;
  Result<uint32_t> span = reader.GetU32();
  if (!span.ok()) return span.status();
  if (*span == 0) {
    return Status::Corruption("store header has zero chunk span");
  }
  header.chunk_span = *span;
  Result<uint8_t> codec_count = reader.GetU8();
  if (!codec_count.ok()) return codec_count.status();
  for (uint8_t i = 0; i < *codec_count; ++i) {
    Result<uint8_t> len = reader.GetU8();
    if (!len.ok()) return len.status();
    std::string name;
    name.reserve(*len);
    for (uint8_t j = 0; j < *len; ++j) {
      Result<uint8_t> c = reader.GetU8();
      if (!c.ok()) return c.status();
      name.push_back(static_cast<char>(*c));
    }
    header.codecs.push_back(std::move(name));
  }

  const size_t body_size = reader.position() - body_start;
  Result<uint32_t> crc = reader.GetU32();
  if (!crc.ok()) return crc.status();
  if (*crc != zip::ComputeCrc32(body_ptr, body_size)) {
    return Status::Corruption("store header checksum mismatch");
  }
  return header;
}

}  // namespace lossyts::store
