#include "store/writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "compress/pipeline.h"
#include "compress/serde.h"
#include "core/failpoint.h"
#include "zip/crc32.h"

namespace lossyts::store {

namespace {

/// fsyncs the directory containing `path` so a freshly created file's
/// directory entry survives power loss (the classic create-then-crash hole).
Status SyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("cannot open directory " + dir + " for fsync: " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync of directory " + dir + " failed: " +
                           std::strerror(errno));
  }
  return Status::OK();
}

const std::vector<std::string>& DefaultCodecs() {
  // The paper's three PEBLC methods plus one lossless fallback so chunks
  // with non-finite values (which the lossy codecs reject) still ingest.
  static const std::vector<std::string> kDefault = {"PMC", "SWING", "SZ",
                                                    "GORILLA"};
  return kDefault;
}

bool AllFinite(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<StoreWriter>> StoreWriter::Create(
    const std::string& path, const StoreOptions& options) {
  if (Status s = compress::CheckErrorBound(options.error_bound); !s.ok()) {
    return s;
  }
  if (options.chunk_span == 0) {
    return Status::InvalidArgument("chunk span must be >= 1");
  }
  if (options.chunk_span > 65535) {
    // A chunk is one codec blob, and PMC/Swing segment lengths are u16; a
    // span past that could not even represent a single-segment chunk.
    return Status::InvalidArgument(
        "chunk span exceeds the u16 segment-length wire format: " +
        std::to_string(options.chunk_span));
  }

  std::unique_ptr<StoreWriter> writer(new StoreWriter());
  writer->options_ = options;
  if (writer->options_.codecs.empty()) {
    writer->options_.codecs = DefaultCodecs();
  }
  if (writer->options_.codecs.size() > 255) {
    return Status::InvalidArgument("too many codecs for the u8 header field");
  }
  for (const std::string& name : writer->options_.codecs) {
    if (name.size() > 255) {
      return Status::InvalidArgument("codec name too long: " + name);
    }
    Result<std::unique_ptr<compress::Compressor>> codec =
        compress::MakeCompressor(name);
    if (!codec.ok()) return codec.status();
    writer->codecs_.push_back(std::move(*codec));
  }

  writer->path_ = path;
  writer->fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (writer->fd_ < 0) {
    return Status::IoError("cannot open " + path + " for writing: " +
                           std::strerror(errno));
  }
  if (options.sync) {
    // Make the directory entry itself durable; without this a power loss
    // after Finish could forget the file ever existed.
    if (Status s = SyncParentDirectory(path); !s.ok()) return s;
  }

  StoreHeader header;
  header.error_bound = writer->options_.error_bound;
  header.chunk_span = writer->options_.chunk_span;
  header.codecs = writer->options_.codecs;
  compress::ByteWriter bytes;
  WriteStoreHeader(header, bytes);
  if (Status s = writer->WriteAll(bytes.Finish()); !s.ok()) return s;
  return writer;
}

StoreWriter::~StoreWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status StoreWriter::WriteAll(const std::vector<uint8_t>& bytes) {
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + written,
                              bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      failed_ = true;
      return Status::IoError("write to " + path_ + " failed: " +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  offset_ += bytes.size();
  return Status::OK();
}

void StoreWriter::WriteTorn(const std::vector<uint8_t>& bytes) {
  size_t written = 0;
  const size_t half = bytes.size() / 2;
  while (written < half) {
    const ssize_t n = ::write(fd_, bytes.data() + written, half - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // The writer is dead anyway; best-effort torn tail.
    }
    written += static_cast<size_t>(n);
  }
}

Status StoreWriter::SyncFile() {
  if (!options_.sync) return Status::OK();
  if (::fsync(fd_) != 0) {
    failed_ = true;
    return Status::IoError("fsync of " + path_ + " failed: " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status StoreWriter::WriteChunk(const std::vector<double>& values,
                               int64_t first_timestamp) {
  TimeSeries chunk(first_timestamp, interval_, values);

  // Trial-compress with every configured codec; smallest blob wins, ties
  // break toward the earlier codec (part of the determinism contract). Lossy
  // codecs reject non-finite values, so skip them outright for such chunks
  // instead of collecting per-codec errors.
  const bool finite = AllFinite(values);
  std::vector<uint8_t> best;
  Status first_error = Status::OK();
  for (size_t i = 0; i < codecs_.size(); ++i) {
    const std::string_view name = codecs_[i]->name();
    const bool lossless = name == "GORILLA" || name == "CHIMP";
    if (!finite && !lossless) continue;
    Result<std::vector<uint8_t>> blob =
        codecs_[i]->Compress(chunk, options_.error_bound);
    if (!blob.ok()) {
      if (first_error.ok()) first_error = blob.status();
      continue;
    }
    if (best.empty() || blob->size() < best.size()) best = std::move(*blob);
  }
  if (best.empty()) {
    failed_ = true;
    if (!first_error.ok()) return first_error;
    return Status::InvalidArgument(
        "no configured codec can compress this chunk (non-finite values "
        "and no lossless codec in the list?)");
  }

  compress::ByteWriter frame;
  frame.PutU32(kChunkMagic);
  if (Status s = compress::PutCountU32(frame, best.size(), "chunk payload");
      !s.ok()) {
    failed_ = true;
    return s;
  }
  frame.PutBytes(best);
  frame.PutU32(zip::ComputeCrc32(best.data(), best.size()));
  std::vector<uint8_t> bytes = frame.Finish();

  ChunkInfo info;
  info.offset = offset_;
  info.first_timestamp = first_timestamp;
  info.num_points = static_cast<uint32_t>(values.size());
  info.algorithm = static_cast<compress::AlgorithmId>(best[0]);
  info.payload_size = static_cast<uint32_t>(best.size());
  info.interval_seconds = interval_;

  // Crash injection: when the failpoint fires, half the frame reaches the
  // file (a torn tail the reader's CRC scan must drop) and the writer is
  // dead — exactly the state a killed process leaves behind.
  Status crash = FailPoints::Hit("store_write");
  if (!crash.ok()) {
    failed_ = true;
    WriteTorn(bytes);
    return crash;
  }

  if (Status s = WriteAll(bytes); !s.ok()) return s;
  chunks_.push_back(info);
  points_flushed_ += values.size();
  return Status::OK();
}

Status StoreWriter::Append(const TimeSeries& series) {
  if (finished_) {
    return Status::FailedPrecondition("store writer is already finished");
  }
  if (failed_) {
    return Status::FailedPrecondition("store writer failed earlier");
  }
  if (series.empty()) return Status::OK();
  if (series.interval_seconds() <= 0) {
    return Status::InvalidArgument("store requires a positive interval");
  }

  if (!grid_fixed_) {
    start_timestamp_ = series.start_timestamp();
    interval_ = series.interval_seconds();
    grid_fixed_ = true;
  } else {
    if (series.interval_seconds() != interval_) {
      return Status::InvalidArgument(
          "append interval " + std::to_string(series.interval_seconds()) +
          " does not match the store's " + std::to_string(interval_));
    }
    const int64_t expected =
        start_timestamp_ +
        static_cast<int64_t>(points_written()) * interval_;
    if (series.start_timestamp() != expected) {
      return Status::InvalidArgument(
          "append breaks the regular grid: expected timestamp " +
          std::to_string(expected) + ", got " +
          std::to_string(series.start_timestamp()));
    }
  }

  for (double v : series.values()) buffer_.push_back(v);
  points_buffered_ = buffer_.size();

  while (buffer_.size() >= options_.chunk_span) {
    std::vector<double> chunk(buffer_.begin(),
                              buffer_.begin() + options_.chunk_span);
    const int64_t first_ts =
        start_timestamp_ + static_cast<int64_t>(points_flushed_) * interval_;
    if (Status s = WriteChunk(chunk, first_ts); !s.ok()) return s;
    buffer_.erase(buffer_.begin(), buffer_.begin() + options_.chunk_span);
    points_buffered_ = buffer_.size();
  }
  return Status::OK();
}

Status StoreWriter::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("store writer is already finished");
  }
  if (failed_) {
    return Status::FailedPrecondition("store writer failed earlier");
  }
  if (!buffer_.empty()) {
    const int64_t first_ts =
        start_timestamp_ + static_cast<int64_t>(points_flushed_) * interval_;
    if (Status s = WriteChunk(buffer_, first_ts); !s.ok()) return s;
    buffer_.clear();
    points_buffered_ = 0;
  }

  // Durability barrier: every chunk frame must be on stable storage before
  // the footer that declares the file complete goes out, otherwise a power
  // loss could leave a footer-valid file whose data region is torn — the one
  // state the strict open trusts without a salvage scan.
  if (Status s = SyncFile(); !s.ok()) return s;

  const uint64_t index_offset = offset_;
  compress::ByteWriter entries;
  for (const ChunkInfo& chunk : chunks_) {
    entries.PutU64(chunk.offset);
    entries.PutI64(chunk.first_timestamp);
    entries.PutU32(chunk.num_points);
    entries.PutU8(static_cast<uint8_t>(chunk.algorithm));
  }
  std::vector<uint8_t> entry_bytes = entries.Finish();

  compress::ByteWriter tail;
  tail.PutU32(kIndexMagic);
  if (Status s = compress::PutCountU32(tail, chunks_.size(), "index entry");
      !s.ok()) {
    failed_ = true;
    return s;
  }
  tail.PutBytes(entry_bytes);
  tail.PutU32(zip::ComputeCrc32(entry_bytes.data(), entry_bytes.size()));

  compress::ByteWriter footer_body;
  footer_body.PutU64(index_offset);
  footer_body.PutU32(static_cast<uint32_t>(chunks_.size()));
  std::vector<uint8_t> footer_bytes = footer_body.Finish();
  tail.PutU32(kFooterMagic);
  tail.PutBytes(footer_bytes);
  tail.PutU32(zip::ComputeCrc32(footer_bytes.data(), footer_bytes.size()));

  Status crash = FailPoints::Hit("store_write");
  if (!crash.ok()) {
    // A crash between the last chunk and the footer: the reader salvages
    // every chunk but reports the file as not clean.
    failed_ = true;
    return crash;
  }

  if (Status s = WriteAll(tail.Finish()); !s.ok()) return s;
  if (Status s = SyncFile(); !s.ok()) return s;
  if (::close(fd_) != 0) {
    fd_ = -1;
    failed_ = true;
    return Status::IoError("closing " + path_ + " failed: " +
                           std::strerror(errno));
  }
  fd_ = -1;
  finished_ = true;
  return Status::OK();
}

}  // namespace lossyts::store
