#include "store/query.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/thread_pool.h"
#include "store/segments.h"

namespace lossyts::store {

namespace {

// Deterministic per-chunk partial: computed identically whichever thread
// runs it, merged sequentially in chunk order.
struct ChunkPartial {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double abs_sum = 0.0;  ///< Upper bound on Σ|v̂| over the selected span.
  double max_abs = 0.0;
  uint64_t count = 0;
  bool lossless = false;
  bool pushdown = false;
};

// The selected local span [first, last] of chunk `index`.
Result<ChunkPartial> ComputeChunkPartial(const StoreReader& reader,
                                         size_t index, uint32_t first,
                                         uint32_t last, bool allow_pushdown) {
  const ChunkInfo& chunk = reader.chunks()[index];
  ChunkPartial partial;
  partial.lossless = IsLosslessAlgorithm(chunk.algorithm);

  if (allow_pushdown && SupportsPushdown(chunk.algorithm)) {
    Result<SegmentSet> set = ParseSegments(reader.ChunkPayload(index));
    if (!set.ok()) return set.status();
    partial.pushdown = true;
    for (const SegmentModel& segment : set->segments) {
      const uint32_t seg_first = segment.start;
      const uint32_t seg_last = segment.start + segment.length - 1;
      if (seg_last < first || seg_first > last) continue;
      const uint32_t lo = std::max(first, seg_first) - segment.start;
      const uint32_t hi = std::min(last, seg_last) - segment.start;
      const SegmentAggregate agg = AggregateSegment(segment, lo, hi);
      partial.sum += agg.sum;
      partial.min = std::min(partial.min, agg.min);
      partial.max = std::max(partial.max, agg.max);
      partial.abs_sum += agg.abs_sum;
      partial.max_abs = std::max(partial.max_abs, agg.max_abs);
      partial.count += agg.count;
    }
    if (partial.count != static_cast<uint64_t>(last) - first + 1) {
      return Status::Corruption("chunk segments do not cover the selection");
    }
    return partial;
  }

  Result<std::shared_ptr<const std::vector<double>>> values =
      reader.DecodeChunkValues(index);
  if (!values.ok()) return values.status();
  const std::vector<double>& v = **values;
  if (last >= v.size()) {
    return Status::Corruption("chunk selection exceeds the decoded length");
  }
  for (uint32_t k = first; k <= last; ++k) {
    partial.sum += v[k];
    partial.min = std::min(partial.min, v[k]);
    partial.max = std::max(partial.max, v[k]);
    const double a = std::fabs(v[k]);
    partial.abs_sum += a;
    partial.max_abs = std::max(partial.max_abs, a);
    ++partial.count;
  }
  return partial;
}

// Local span of chunk `index` selected by `sel`.
void LocalSpan(const StoreReader& reader, const StoreReader::Selection& sel,
               size_t index, uint32_t& first, uint32_t& last) {
  first = index == sel.first_chunk ? sel.first_local : 0;
  last = index == sel.last_chunk ? sel.last_local
                                 : reader.chunks()[index].num_points - 1;
}

Result<AggregateResult> MergePartials(
    const StoreReader& reader, AggregateKind kind,
    const std::vector<ChunkPartial>& partials) {
  AggregateResult result;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double sum_bound = 0.0;
  double point_bound = 0.0;
  // ε/(1−ε) maps a bound relative to raw values onto reconstructed ones;
  // lossless chunks contribute zero regardless.
  const double eb = reader.header().error_bound;
  const double factor = eb / (1.0 - eb);
  for (const ChunkPartial& partial : partials) {
    sum += partial.sum;
    min = std::min(min, partial.min);
    max = std::max(max, partial.max);
    result.count += partial.count;
    if (!partial.lossless) {
      sum_bound += factor * partial.abs_sum;
      point_bound = std::max(point_bound, factor * partial.max_abs);
    }
    if (partial.pushdown) {
      ++result.pushdown_chunks;
    } else {
      ++result.decoded_chunks;
    }
  }

  if (result.count == 0 &&
      (kind == AggregateKind::kMin || kind == AggregateKind::kMax ||
       kind == AggregateKind::kMean)) {
    return Status::OutOfRange("empty selection has no " +
                              std::string(AggregateKindName(kind)));
  }
  switch (kind) {
    case AggregateKind::kMin:
      result.value = min;
      result.error_bound = point_bound;
      break;
    case AggregateKind::kMax:
      result.value = max;
      result.error_bound = point_bound;
      break;
    case AggregateKind::kSum:
      result.value = sum;
      result.error_bound = sum_bound;
      break;
    case AggregateKind::kCount:
      result.value = static_cast<double>(result.count);
      result.error_bound = 0.0;
      break;
    case AggregateKind::kMean:
      result.value = sum / static_cast<double>(result.count);
      result.error_bound = sum_bound / static_cast<double>(result.count);
      break;
  }
  return result;
}

}  // namespace

Result<AggregateKind> ParseAggregateKind(const std::string& name) {
  if (name == "MIN") return AggregateKind::kMin;
  if (name == "MAX") return AggregateKind::kMax;
  if (name == "SUM") return AggregateKind::kSum;
  if (name == "COUNT") return AggregateKind::kCount;
  if (name == "MEAN") return AggregateKind::kMean;
  return Status::InvalidArgument(
      "unknown aggregate '" + name + "' (expected MIN/MAX/SUM/COUNT/MEAN)");
}

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kMax:
      return "MAX";
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kCount:
      return "COUNT";
    case AggregateKind::kMean:
      return "MEAN";
  }
  return "?";
}

Result<AggregateResult> AggregateRange(const StoreReader& reader,
                                       AggregateKind kind, int64_t t0,
                                       int64_t t1,
                                       const AggregateOptions& options) {
  std::vector<const StoreReader*> readers = {&reader};
  Result<std::vector<AggregateResult>> results =
      AggregateStores(readers, kind, t0, t1, options);
  if (!results.ok()) return results.status();
  return std::move((*results)[0]);
}

Result<std::vector<AggregateResult>> AggregateStores(
    const std::vector<const StoreReader*>& readers, AggregateKind kind,
    int64_t t0, int64_t t1, const AggregateOptions& options) {
  // Resolve every store's selection first so invalid arguments surface
  // before any work is scheduled.
  std::vector<StoreReader::Selection> selections;
  selections.reserve(readers.size());
  for (const StoreReader* reader : readers) {
    Result<StoreReader::Selection> sel = reader->Select(t0, t1);
    if (!sel.ok()) return sel.status();
    selections.push_back(*sel);
  }

  // One task per (store, chunk) on a shared pool; each writes its own slot.
  struct Slot {
    size_t store = 0;
    size_t chunk = 0;
    Result<ChunkPartial> partial = Status::Internal("partial did not run");
  };
  std::vector<Slot> slots;
  for (size_t s = 0; s < readers.size(); ++s) {
    const StoreReader::Selection& sel = selections[s];
    if (sel.count == 0) continue;
    for (size_t c = sel.first_chunk; c <= sel.last_chunk; ++c) {
      Slot slot;
      slot.store = s;
      slot.chunk = c;
      slots.push_back(std::move(slot));
    }
  }
  {
    ThreadPool pool(options.jobs);
    for (size_t i = 0; i < slots.size(); ++i) {
      pool.Submit([&readers, &selections, &slots, &options, i]() {
        Slot& slot = slots[i];
        const StoreReader& reader = *readers[slot.store];
        uint32_t first = 0;
        uint32_t last = 0;
        LocalSpan(reader, selections[slot.store], slot.chunk, first, last);
        slot.partial = ComputeChunkPartial(reader, slot.chunk, first, last,
                                           options.allow_pushdown);
      });
    }
    pool.Wait();
  }

  // Merge in canonical (store, chunk) order — slots were built that way.
  std::vector<AggregateResult> results;
  results.reserve(readers.size());
  size_t cursor = 0;
  for (size_t s = 0; s < readers.size(); ++s) {
    std::vector<ChunkPartial> partials;
    while (cursor < slots.size() && slots[cursor].store == s) {
      if (!slots[cursor].partial.ok()) return slots[cursor].partial.status();
      partials.push_back(*slots[cursor].partial);
      ++cursor;
    }
    Result<AggregateResult> merged = MergePartials(*readers[s], kind, partials);
    if (!merged.ok()) return merged.status();
    results.push_back(*merged);
  }
  return results;
}

}  // namespace lossyts::store
