#ifndef LOSSYTS_STORE_QUERY_H_
#define LOSSYTS_STORE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "store/reader.h"

namespace lossyts::store {

/// Range aggregates answerable by segment pushdown.
enum class AggregateKind { kMin, kMax, kSum, kCount, kMean };

/// Parses "MIN"/"MAX"/"SUM"/"COUNT"/"MEAN" (case-sensitive, CLI spelling).
Result<AggregateKind> ParseAggregateKind(const std::string& name);
const char* AggregateKindName(AggregateKind kind);

struct AggregateOptions {
  int jobs = 1;
  /// When false, every chunk is decoded even if its model supports pushdown
  /// — the reference path the equivalence tests and bench compare against.
  bool allow_pushdown = true;
};

/// An aggregate over reconstructed values, plus a guaranteed bound on how
/// far it can sit from the same aggregate over the raw (pre-compression)
/// data. The bound derives from the store's relative error bound ε: every
/// raw value obeys |v̂ − v| ≤ ε·|v| ≤ ε/(1−ε)·|v̂|, so
///   SUM   deviates by at most Σ ε/(1−ε)·|v̂_i|,
///   MEAN  by that sum divided by the count,
///   MIN/MAX by at most max_i ε/(1−ε)·|v̂_i|,
///   COUNT by 0,
/// with lossless (Gorilla/Chimp) chunks contributing zero. The reported
/// bound is an upper bound, not an estimate.
struct AggregateResult {
  double value = 0.0;
  uint64_t count = 0;
  double error_bound = 0.0;  ///< Absolute bound vs the raw data.
  size_t pushdown_chunks = 0;
  size_t decoded_chunks = 0;
};

/// Aggregates the reconstructed values with timestamps in [t0, t1]
/// (inclusive, clamped to the stored extent). PMC/Swing chunks are answered
/// directly on their segment models in O(segments); other codecs fall back
/// to a cached chunk decode. Per-chunk work fans out on `jobs` threads and
/// partials merge in canonical chunk order, so the result is byte-identical
/// for every jobs value. An empty selection yields 0 for COUNT and SUM and
/// OutOfRange for MIN/MAX/MEAN.
Result<AggregateResult> AggregateRange(const StoreReader& reader,
                                       AggregateKind kind, int64_t t0,
                                       int64_t t1,
                                       const AggregateOptions& options = {});

/// Multi-series fan-out: evaluates the same aggregate over every store on
/// one shared pool (per-(store, chunk) tasks), returning results in input
/// order. Equivalent to calling AggregateRange per store, just better
/// parallelised.
Result<std::vector<AggregateResult>> AggregateStores(
    const std::vector<const StoreReader*>& readers, AggregateKind kind,
    int64_t t0, int64_t t1, const AggregateOptions& options = {});

}  // namespace lossyts::store

#endif  // LOSSYTS_STORE_QUERY_H_
