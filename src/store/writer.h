#ifndef LOSSYTS_STORE_WRITER_H_
#define LOSSYTS_STORE_WRITER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "core/status.h"
#include "core/time_series.h"
#include "store/format.h"

namespace lossyts::store {

/// Append-only ingestion of one regular series into a chunk store file.
///
/// Points are buffered until a full chunk span accumulates; each chunk is
/// trial-compressed with every configured codec at the store's error bound
/// and the smallest blob wins (ties break toward the earlier codec name, so
/// ingestion is fully deterministic: same input + options ⇒ byte-identical
/// file). Chunk frames are flushed as they complete, which is what makes a
/// killed ingestion salvageable: the file is always a valid header plus a
/// prefix of complete frames, possibly followed by one torn frame that the
/// reader's CRC scan drops. Finish() writes the tail chunk, the sparse time
/// index and the footer that marks the file complete.
///
/// With StoreOptions::sync the writer also carries a power-loss contract:
/// the directory entry is fsync'd at creation, the data region is fsync'd
/// before the footer goes out, and the footer is fsync'd before Finish
/// returns — so a machine that loses power after a clean close can never
/// reopen the file as footer-valid-but-data-torn.
///
/// Not thread-safe; one writer per file.
class StoreWriter {
 public:
  /// Creates (truncating) `path`. Validates the error bound, resolves every
  /// codec name through compress::MakeCompressor, and writes the file header.
  static Result<std::unique_ptr<StoreWriter>> Create(
      const std::string& path, const StoreOptions& options);

  /// Closes the file descriptor if Finish was never reached (an abandoned or
  /// crashed ingestion leaves a salvageable frame prefix behind).
  ~StoreWriter();

  /// Appends `series` to the stream. The first call fixes the start
  /// timestamp and sampling interval; every later call must continue the
  /// regular grid exactly (same interval, first timestamp == the next
  /// expected one) — gaps are InvalidArgument, not silently bridged.
  Status Append(const TimeSeries& series);

  /// Flushes the partial tail chunk (if any), writes the index block and
  /// footer, and closes the file. No Append may follow.
  Status Finish();

  uint64_t points_written() const { return points_buffered_ + points_flushed_; }
  size_t chunks_written() const { return chunks_.size(); }
  uint64_t bytes_written() const { return offset_; }

 private:
  StoreWriter() = default;

  /// Compresses `values` starting at `first_timestamp` and appends the
  /// framed chunk record. Carries the "store_write" failpoint: when it
  /// fires, half the frame reaches the file before the error returns,
  /// modelling a crash mid-write (the torn tail the reader must drop).
  Status WriteChunk(const std::vector<double>& values,
                    int64_t first_timestamp);
  Status WriteAll(const std::vector<uint8_t>& bytes);
  /// Writes a prefix of `bytes` without error handling (the torn-frame
  /// crash model of the "store_write" failpoint).
  void WriteTorn(const std::vector<uint8_t>& bytes);
  /// fsyncs the file when options_.sync is set; a no-op otherwise.
  Status SyncFile();

  std::string path_;
  int fd_ = -1;
  StoreOptions options_;
  std::vector<std::unique_ptr<compress::Compressor>> codecs_;

  bool finished_ = false;
  bool failed_ = false;

  int64_t start_timestamp_ = 0;
  int32_t interval_ = 0;
  bool grid_fixed_ = false;

  std::vector<double> buffer_;       ///< Points not yet in a written chunk.
  uint64_t points_flushed_ = 0;      ///< Points inside written chunks.
  uint64_t points_buffered_ = 0;     ///< == buffer_.size(), kept as u64.
  uint64_t offset_ = 0;              ///< Bytes written so far.
  std::vector<ChunkInfo> chunks_;    ///< Index entries accumulated so far.
};

}  // namespace lossyts::store

#endif  // LOSSYTS_STORE_WRITER_H_
