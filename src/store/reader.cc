#include "store/reader.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "compress/chimp.h"
#include "compress/gorilla.h"
#include "compress/header.h"
#include "compress/pipeline.h"
#include "compress/serde.h"
#include "core/thread_pool.h"
#include "store/segments.h"
#include "zip/crc32.h"

namespace lossyts::store {

namespace {

bool KnownAlgorithm(uint8_t id) {
  return id >= static_cast<uint8_t>(compress::AlgorithmId::kPmc) &&
         id <= static_cast<uint8_t>(compress::AlgorithmId::kPpa);
}

}  // namespace

Result<std::unique_ptr<StoreReader>> StoreReader::Open(
    const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::NotFound("no store file at " + path);
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                             std::istreambuf_iterator<char>());
  if (file.bad()) {
    return Status::IoError("reading " + path + " failed");
  }
  return OpenBytes(std::move(bytes));
}

Result<std::unique_ptr<StoreReader>> StoreReader::OpenBytes(
    std::vector<uint8_t> bytes) {
  std::unique_ptr<StoreReader> reader(new StoreReader());
  if (Status s = reader->Load(std::move(bytes)); !s.ok()) return s;
  return reader;
}

Result<ChunkInfo> StoreReader::ParseFrameAt(size_t offset,
                                            size_t strict_end) const {
  compress::ByteReader frame(bytes_.data() + offset, strict_end - offset);
  Result<uint32_t> magic = frame.GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kChunkMagic) {
    return Status::Corruption("chunk frame has a bad magic");
  }
  Result<uint32_t> payload_size = frame.GetU32();
  if (!payload_size.ok()) return payload_size.status();
  if (*payload_size == 0) {
    return Status::Corruption("chunk frame with an empty payload");
  }
  if (static_cast<uint64_t>(*payload_size) + 4 > frame.remaining()) {
    return Status::Corruption("chunk frame truncated");
  }
  const uint8_t* payload = frame.current();
  if (Status s = frame.Skip(*payload_size); !s.ok()) return s;
  Result<uint32_t> crc = frame.GetU32();
  if (!crc.ok()) return crc.status();
  if (*crc != zip::ComputeCrc32(payload, *payload_size)) {
    return Status::Corruption("chunk payload checksum mismatch");
  }

  if (!KnownAlgorithm(payload[0])) {
    return Status::Corruption("chunk blob has an unknown algorithm id");
  }
  compress::ByteReader blob(payload, *payload_size);
  Result<compress::BlobHeader> header = compress::ReadHeader(
      blob, static_cast<compress::AlgorithmId>(payload[0]));
  if (!header.ok()) return header.status();
  if (header->num_points == 0) {
    return Status::Corruption("chunk blob with zero points");
  }
  if (header->num_points > header_.chunk_span) {
    return Status::Corruption("chunk holds more points than the chunk span");
  }
  if (header->interval_seconds == 0) {
    return Status::Corruption("chunk blob with a zero sampling interval");
  }

  ChunkInfo info;
  info.offset = offset;
  info.first_timestamp = header->first_timestamp;
  info.num_points = header->num_points;
  info.algorithm = header->algorithm;
  info.payload_size = *payload_size;
  info.interval_seconds = header->interval_seconds;
  return info;
}

Status StoreReader::Load(std::vector<uint8_t> bytes) {
  bytes_ = std::move(bytes);
  compress::ByteReader reader(bytes_);
  Result<StoreHeader> header = ReadStoreHeader(reader);
  if (!header.ok()) return header.status();
  header_ = std::move(*header);
  const size_t data_begin = reader.position();

  // A valid footer at EOF switches Load into strict (complete) mode.
  bool footer_valid = false;
  uint64_t index_offset = 0;
  uint32_t footer_chunks = 0;
  if (bytes_.size() >= data_begin + kFooterSize) {
    compress::ByteReader footer(bytes_.data() + (bytes_.size() - kFooterSize),
                                kFooterSize);
    Result<uint32_t> magic = footer.GetU32();
    const uint8_t* body = footer.current();
    Result<uint64_t> off = footer.GetU64();
    Result<uint32_t> count = footer.GetU32();
    Result<uint32_t> crc = footer.GetU32();
    if (magic.ok() && *magic == kFooterMagic && off.ok() && count.ok() &&
        crc.ok() && *crc == zip::ComputeCrc32(body, 12)) {
      footer_valid = true;
      index_offset = *off;
      footer_chunks = *count;
    }
  }

  if (footer_valid) {
    // Complete mode: the index must parse, the chunk scan must consume
    // exactly the frame region, and the two must agree entry-for-entry.
    if (index_offset < data_begin ||
        index_offset > bytes_.size() - kFooterSize) {
      return Status::Corruption("store footer points outside the file");
    }
    compress::ByteReader index(bytes_.data() + index_offset,
                               bytes_.size() - kFooterSize - index_offset);
    Result<uint32_t> magic = index.GetU32();
    if (!magic.ok()) return magic.status();
    if (*magic != kIndexMagic) {
      return Status::Corruption("store index has a bad magic");
    }
    Result<uint32_t> entry_count = index.GetU32();
    if (!entry_count.ok()) return entry_count.status();
    if (*entry_count != footer_chunks) {
      return Status::Corruption("store index and footer disagree on count");
    }
    const uint64_t entries_size =
        static_cast<uint64_t>(*entry_count) * kIndexEntrySize;
    if (index.remaining() != entries_size + 4) {
      return Status::Corruption("store index size is inconsistent");
    }
    const uint8_t* entries_begin = index.current();
    std::vector<ChunkInfo> expected;
    expected.reserve(std::min<size_t>(*entry_count, size_t{1} << 16));
    for (uint32_t i = 0; i < *entry_count; ++i) {
      ChunkInfo info;
      Result<uint64_t> off = index.GetU64();
      if (!off.ok()) return off.status();
      info.offset = *off;
      Result<int64_t> ts = index.GetI64();
      if (!ts.ok()) return ts.status();
      info.first_timestamp = *ts;
      Result<uint32_t> n = index.GetU32();
      if (!n.ok()) return n.status();
      info.num_points = *n;
      Result<uint8_t> alg = index.GetU8();
      if (!alg.ok()) return alg.status();
      if (!KnownAlgorithm(*alg)) {
        return Status::Corruption("store index entry has an unknown codec");
      }
      info.algorithm = static_cast<compress::AlgorithmId>(*alg);
      expected.push_back(info);
    }
    Result<uint32_t> crc = index.GetU32();
    if (!crc.ok()) return crc.status();
    if (*crc != zip::ComputeCrc32(entries_begin, entries_size)) {
      return Status::Corruption("store index checksum mismatch");
    }

    size_t pos = data_begin;
    for (size_t i = 0; i < expected.size(); ++i) {
      if (pos >= index_offset) {
        return Status::Corruption("store index lists more chunks than exist");
      }
      Result<ChunkInfo> info = ParseFrameAt(pos, index_offset);
      if (!info.ok()) return info.status();
      if (info->offset != expected[i].offset ||
          info->first_timestamp != expected[i].first_timestamp ||
          info->num_points != expected[i].num_points ||
          info->algorithm != expected[i].algorithm) {
        return Status::Corruption("store index disagrees with chunk " +
                                  std::to_string(i));
      }
      if (chunks_.empty()) {
        start_timestamp_ = info->first_timestamp;
        interval_ = info->interval_seconds;
      } else {
        const ChunkInfo& prev = chunks_.back();
        if (info->interval_seconds != interval_ ||
            info->first_timestamp !=
                prev.first_timestamp +
                    static_cast<int64_t>(prev.num_points) * interval_) {
          return Status::Corruption(
              "store chunks do not chain on the time grid");
        }
      }
      chunks_.push_back(*info);
      pos += kChunkFrameOverhead + info->payload_size;
    }
    if (pos != index_offset) {
      return Status::Corruption("store has chunk data the index omits");
    }
    clean_ = true;
  } else {
    // Salvage mode: keep the longest valid frame prefix, drop the torn tail.
    size_t pos = data_begin;
    while (pos + kChunkFrameOverhead <= bytes_.size()) {
      Result<ChunkInfo> info = ParseFrameAt(pos, bytes_.size());
      if (!info.ok()) break;
      if (chunks_.empty()) {
        start_timestamp_ = info->first_timestamp;
        interval_ = info->interval_seconds;
      } else {
        const ChunkInfo& prev = chunks_.back();
        if (info->interval_seconds != interval_ ||
            info->first_timestamp !=
                prev.first_timestamp +
                    static_cast<int64_t>(prev.num_points) * interval_) {
          break;
        }
      }
      chunks_.push_back(*info);
      pos += kChunkFrameOverhead + info->payload_size;
    }
    clean_ = false;
  }

  chunk_start_index_.reserve(chunks_.size());
  for (const ChunkInfo& chunk : chunks_) {
    chunk_start_index_.push_back(total_points_);
    total_points_ += chunk.num_points;
  }
  return Status::OK();
}

int64_t StoreReader::last_timestamp() const {
  if (total_points_ == 0) return start_timestamp_;
  return start_timestamp_ +
         static_cast<int64_t>(total_points_ - 1) * interval_;
}

std::vector<uint8_t> StoreReader::ChunkPayload(size_t index) const {
  const ChunkInfo& chunk = chunks_[index];
  const uint8_t* begin = bytes_.data() + chunk.offset + 8;
  return std::vector<uint8_t>(begin, begin + chunk.payload_size);
}

void StoreReader::TouchLocked(std::map<size_t, CacheEntry>::iterator it)
    const {
  lru_.splice(lru_.begin(), lru_, it->second.lru);
}

std::shared_ptr<const std::vector<double>> StoreReader::InsertLocked(
    size_t index, std::shared_ptr<const std::vector<double>> values) const {
  auto it = cache_.find(index);
  if (it != cache_.end()) {
    // A racing decode got here first; keep its entry (identical values).
    TouchLocked(it);
    return it->second.values;
  }
  lru_.push_front(index);
  cache_.emplace(index, CacheEntry{values, lru_.begin()});
  while (cache_.size() > cache_capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  return values;
}

Result<std::shared_ptr<const std::vector<double>>>
StoreReader::DecodeChunkValues(size_t index) const {
  if (index >= chunks_.size()) {
    return Status::OutOfRange("chunk index " + std::to_string(index) +
                              " out of range");
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(index);
    if (it != cache_.end()) {
      ++cache_hits_;
      TouchLocked(it);
      return it->second.values;
    }
  }
  // Decode outside the lock so parallel range scans overlap; two threads
  // racing on the same cold chunk both decode (each counting a miss) and
  // the first insert wins — the values are identical either way.
  Result<TimeSeries> decoded = compress::DecompressAny(ChunkPayload(index));
  if (!decoded.ok()) return decoded.status();
  if (decoded->size() != chunks_[index].num_points) {
    return Status::Corruption("chunk decoded to an unexpected point count");
  }
  auto values = std::make_shared<const std::vector<double>>(
      std::move(decoded->mutable_values()));
  std::lock_guard<std::mutex> lock(cache_mu_);
  ++cache_misses_;
  return InsertLocked(index, std::move(values));
}

Result<StoreReader::Selection> StoreReader::Select(int64_t t0,
                                                   int64_t t1) const {
  if (t0 > t1) {
    return Status::InvalidArgument("inverted time range");
  }
  Selection sel;
  if (total_points_ == 0 || t1 < start_timestamp_ || t0 > last_timestamp()) {
    return sel;  // count == 0: empty intersection.
  }
  const int64_t interval = interval_;
  uint64_t g0 = 0;
  if (t0 > start_timestamp_) {
    g0 = static_cast<uint64_t>((t0 - start_timestamp_ + interval - 1) /
                               interval);
  }
  uint64_t g1 = total_points_ - 1;
  if (t1 < last_timestamp()) {
    g1 = static_cast<uint64_t>((t1 - start_timestamp_) / interval);
  }
  if (g0 > g1) return sel;

  // Chunk containing a global index: the last start_index <= g.
  auto chunk_of = [this](uint64_t g) {
    auto it = std::upper_bound(chunk_start_index_.begin(),
                               chunk_start_index_.end(), g);
    return static_cast<size_t>(it - chunk_start_index_.begin()) - 1;
  };
  sel.first_chunk = chunk_of(g0);
  sel.last_chunk = chunk_of(g1);
  sel.first_local =
      static_cast<uint32_t>(g0 - chunk_start_index_[sel.first_chunk]);
  sel.last_local =
      static_cast<uint32_t>(g1 - chunk_start_index_[sel.last_chunk]);
  sel.count = g1 - g0 + 1;
  sel.start_timestamp =
      start_timestamp_ + static_cast<int64_t>(g0) * interval;
  return sel;
}

Result<double> StoreReader::ReadPoint(int64_t timestamp) const {
  if (total_points_ == 0) {
    return Status::NotFound("the store is empty");
  }
  if (timestamp < start_timestamp_ || timestamp > last_timestamp()) {
    return Status::NotFound("timestamp " + std::to_string(timestamp) +
                            " is outside the stored range");
  }
  if ((timestamp - start_timestamp_) % interval_ != 0) {
    return Status::InvalidArgument("timestamp " + std::to_string(timestamp) +
                                   " is off the sampling grid");
  }
  const uint64_t g =
      static_cast<uint64_t>((timestamp - start_timestamp_) / interval_);
  auto it = std::upper_bound(chunk_start_index_.begin(),
                             chunk_start_index_.end(), g);
  const size_t chunk_index =
      static_cast<size_t>(it - chunk_start_index_.begin()) - 1;
  const size_t k = static_cast<size_t>(g - chunk_start_index_[chunk_index]);
  const ChunkInfo& chunk = chunks_[chunk_index];

  // An already-decoded chunk answers from the cache regardless of codec.
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto cached = cache_.find(chunk_index);
    if (cached != cache_.end()) {
      ++cache_hits_;
      TouchLocked(cached);
      return (*cached->second.values)[k];
    }
  }

  switch (chunk.algorithm) {
    case compress::AlgorithmId::kPmc:
    case compress::AlgorithmId::kSwing: {
      // Model chunks: walk the segment list, no point materialization.
      Result<SegmentSet> set = ParseSegments(ChunkPayload(chunk_index));
      if (!set.ok()) return set.status();
      for (const SegmentModel& segment : set->segments) {
        if (k < static_cast<size_t>(segment.start) + segment.length) {
          return SegmentValueAt(segment, k - segment.start);
        }
      }
      return Status::Corruption("chunk segments do not cover the point");
    }
    case compress::AlgorithmId::kGorilla: {
      Result<TimeSeries> prefix =
          compress::GorillaCompressor().DecompressPrefix(
              ChunkPayload(chunk_index), k + 1);
      if (!prefix.ok()) return prefix.status();
      return prefix->values().back();
    }
    case compress::AlgorithmId::kChimp: {
      Result<TimeSeries> prefix = compress::ChimpCompressor().DecompressPrefix(
          ChunkPayload(chunk_index), k + 1);
      if (!prefix.ok()) return prefix.status();
      return prefix->values().back();
    }
    default: {
      // SZ (and any future codec without a cheaper path): full decode, which
      // also warms the cache for neighbouring reads.
      Result<std::shared_ptr<const std::vector<double>>> values =
          DecodeChunkValues(chunk_index);
      if (!values.ok()) return values.status();
      return (**values)[k];
    }
  }
}

Result<TimeSeries> StoreReader::ReadRange(int64_t t0, int64_t t1,
                                          int jobs) const {
  Result<Selection> selection = Select(t0, t1);
  if (!selection.ok()) return selection.status();
  if (selection->count == 0) {
    return TimeSeries(start_timestamp_, interval_, {});
  }
  const Selection& sel = *selection;
  const size_t n_chunks = sel.last_chunk - sel.first_chunk + 1;

  // Slot-indexed parallel decode, merged in chunk order below — the output
  // is byte-identical for every jobs value.
  std::vector<Result<std::shared_ptr<const std::vector<double>>>> slots(
      n_chunks, Status::Internal("chunk decode did not run"));
  {
    ThreadPool pool(jobs);
    for (size_t i = 0; i < n_chunks; ++i) {
      pool.Submit([this, &slots, &sel, i]() {
        slots[i] = DecodeChunkValues(sel.first_chunk + i);
      });
    }
    pool.Wait();
  }
  for (size_t i = 0; i < n_chunks; ++i) {
    if (!slots[i].ok()) return slots[i].status();
  }

  std::vector<double> values;
  values.reserve(sel.count);
  for (size_t i = 0; i < n_chunks; ++i) {
    const size_t chunk_index = sel.first_chunk + i;
    const std::vector<double>& decoded = **slots[i];
    const size_t from = chunk_index == sel.first_chunk ? sel.first_local : 0;
    const size_t to = chunk_index == sel.last_chunk
                          ? sel.last_local
                          : chunks_[chunk_index].num_points - 1;
    values.insert(values.end(), decoded.begin() + from,
                  decoded.begin() + to + 1);
  }
  return TimeSeries(sel.start_timestamp, interval_, std::move(values));
}

Result<TimeSeries> StoreReader::ReadAll(int jobs) const {
  if (total_points_ == 0) {
    return TimeSeries(start_timestamp_, interval_, {});
  }
  return ReadRange(start_timestamp_, last_timestamp(), jobs);
}

uint64_t StoreReader::cache_hits() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_hits_;
}

uint64_t StoreReader::cache_misses() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_misses_;
}

void StoreReader::ClearChunkCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.clear();
  lru_.clear();
}

size_t StoreReader::cached_chunks() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.size();
}

size_t StoreReader::chunk_cache_capacity() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_capacity_;
}

void StoreReader::SetChunkCacheCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_capacity_ = capacity < 1 ? 1 : capacity;
  while (cache_.size() > cache_capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace lossyts::store
