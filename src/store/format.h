#ifndef LOSSYTS_STORE_FORMAT_H_
#define LOSSYTS_STORE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "compress/serde.h"
#include "core/status.h"

namespace lossyts::store {

// On-disk layout of a chunk store file (all integers little-endian, written
// through compress::ByteWriter; every variable-size region is CRC32-framed
// with the gzip polynomial from zip/crc32.h, the same framing discipline as
// the eval/checkpoint row frames):
//
//   StoreFile  := FileHeader ChunkRecord* [IndexBlock Footer]
//
//   FileHeader := u32 kFileMagic, u8 version, f64 error_bound,
//                 u32 chunk_span, u8 codec_count,
//                 codec_count x (u8 name_len, name bytes),
//                 u32 crc32(version..names)
//   ChunkRecord:= u32 kChunkMagic, u32 payload_size, payload bytes,
//                 u32 crc32(payload)
//   IndexBlock := u32 kIndexMagic, u32 entry_count,
//                 entry_count x IndexEntry, u32 crc32(entries)
//   IndexEntry := u64 chunk_offset, i64 first_timestamp, u32 num_points,
//                 u8 algorithm_id                          (21 bytes)
//   Footer     := u32 kFooterMagic, u64 index_offset, u32 chunk_count,
//                 u32 crc32(index_offset, chunk_count)     (20 bytes)
//
// Each chunk payload is one of the library's self-describing compressed
// blobs (compress/header.h): its own header carries the algorithm id, first
// timestamp, sampling interval and point count, so a chunk decodes with
// compress::DecompressAny and the sparse index is fully rebuildable from a
// sequential scan of the frames. The index and footer are written once by
// StoreWriter::Finish; a file killed mid-ingestion simply ends after the
// last complete chunk frame and reopens via the salvage scan (reader.h).

inline constexpr uint32_t kFileMagic = 0x3153544Cu;    // "LTS1"
inline constexpr uint32_t kChunkMagic = 0x4353544Cu;   // "LTSC"
inline constexpr uint32_t kIndexMagic = 0x4953544Cu;   // "LTSI"
inline constexpr uint32_t kFooterMagic = 0x4653544Cu;  // "LTSF"
inline constexpr uint8_t kFormatVersion = 1;

/// Fixed byte sizes of the framed regions (for offset arithmetic in the
/// writer, the salvage scan and the conform store mutator).
inline constexpr size_t kChunkFrameOverhead = 12;  // magic + size + crc.
inline constexpr size_t kIndexEntrySize = 21;
inline constexpr size_t kFooterSize = 20;

/// Ingestion configuration. The defaults trial-compress every chunk with the
/// three PEBLC codecs plus the Gorilla lossless baseline and keep the best
/// ratio; restricting `codecs` to a single name produces the per-compressor
/// stores the evaluation grid sources transforms from (eval/store_source.h).
struct StoreOptions {
  /// Relative pointwise bound the lossy codecs are run at; also recorded in
  /// the file header as the bound every query's error report derives from.
  double error_bound = 0.05;
  /// Points per chunk; the final chunk of a stream may be shorter.
  uint32_t chunk_span = 1024;
  /// Codec names in compress::MakeCompressor spelling. Ties on compressed
  /// size break toward the earlier name, so the list order is part of the
  /// store's determinism contract. Empty selects PMC, SWING, SZ, GORILLA.
  std::vector<std::string> codecs;
  /// Power-loss durability: fsync the containing directory after the file is
  /// created, fsync the data region before the footer is written (so a file
  /// can never be footer-valid but data-torn), and fsync again after the
  /// footer. Off by default so tests and benches stay fast; the serve
  /// daemon's checkpoints turn it on.
  bool sync = false;
};

/// Identity of one chunk, as recorded in the sparse index: where its frame
/// starts, when it starts, how many points it holds and which codec won the
/// ingestion trial. `payload_size`/`interval_seconds` are recovered from the
/// frame and blob header on open (they are not index fields on disk).
struct ChunkInfo {
  uint64_t offset = 0;  ///< File offset of the chunk frame's magic.
  int64_t first_timestamp = 0;
  uint32_t num_points = 0;
  compress::AlgorithmId algorithm = compress::AlgorithmId::kPmc;
  uint32_t payload_size = 0;
  int32_t interval_seconds = 0;
};

/// Codecs whose blobs reconstruct bit-exactly: their chunks contribute zero
/// to every query's reported error bound.
inline bool IsLosslessAlgorithm(compress::AlgorithmId id) {
  return id == compress::AlgorithmId::kGorilla ||
         id == compress::AlgorithmId::kChimp;
}

/// Codecs whose blobs are explicit segment models (constant / linear), the
/// precondition for answering aggregates by pushdown without decoding.
inline bool SupportsPushdown(compress::AlgorithmId id) {
  return id == compress::AlgorithmId::kPmc ||
         id == compress::AlgorithmId::kSwing;
}

/// Resolved file header contents shared by the writer and reader.
struct StoreHeader {
  double error_bound = 0.0;
  uint32_t chunk_span = 0;
  std::vector<std::string> codecs;
};

/// Serializes `header` (including its CRC frame) onto `writer`.
void WriteStoreHeader(const StoreHeader& header, compress::ByteWriter& writer);

/// Parses and CRC-verifies a file header, leaving `reader` positioned at the
/// first chunk frame. Corruption on any mismatch.
Result<StoreHeader> ReadStoreHeader(compress::ByteReader& reader);

}  // namespace lossyts::store

#endif  // LOSSYTS_STORE_FORMAT_H_
