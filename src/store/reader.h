#ifndef LOSSYTS_STORE_READER_H_
#define LOSSYTS_STORE_READER_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/time_series.h"
#include "store/format.h"

namespace lossyts::store {

/// Read access to one chunk store file.
///
/// Open() loads the whole file (the working set of every evaluation dataset
/// is in-memory sized) and validates it in one of two modes:
///
///  - A file with a valid footer is *complete*: the index block must parse,
///    every chunk frame must CRC-verify and chain contiguously on the time
///    grid, and the scan must agree with the index byte-for-byte — any
///    disagreement is Corruption, because a file that claims completeness
///    and contradicts itself must not silently serve answers.
///  - A file without a valid footer is a *salvage*: the scan keeps the
///    longest prefix of valid frames and drops the torn tail, mirroring the
///    eval/checkpoint salvage contract; clean() reports false so callers can
///    distinguish recovered data from a finished ingestion.
///
/// Point and range reads are served through a mutex-guarded decoded-chunk
/// LRU cache with hit/miss counters, bounded to chunk_cache_capacity()
/// entries so a long-lived process (the serve daemon) cannot grow a reader
/// without limit. Point reads on model chunks (PMC/Swing)
/// walk the segment list without materializing the chunk; on Gorilla/Chimp
/// chunks they early-stop via DecompressPrefix. Range reads fan the chunk
/// decodes out on core/thread_pool and concatenate in chunk order, so the
/// result is byte-identical for every jobs value.
///
/// Thread-safe: all read methods may be called concurrently.
class StoreReader {
 public:
  static Result<std::unique_ptr<StoreReader>> Open(const std::string& path);
  /// Same validation over an in-memory image (the conform mutation battery's
  /// entry point — mutants never touch the filesystem).
  static Result<std::unique_ptr<StoreReader>> OpenBytes(
      std::vector<uint8_t> bytes);

  const StoreHeader& header() const { return header_; }
  /// True when the footer was present and consistent; false for a salvaged
  /// (crash-recovered) prefix.
  bool clean() const { return clean_; }
  const std::vector<ChunkInfo>& chunks() const { return chunks_; }
  uint64_t total_points() const { return total_points_; }
  int64_t start_timestamp() const { return start_timestamp_; }
  int32_t interval_seconds() const { return interval_; }
  int64_t last_timestamp() const;  ///< Timestamp of the final point.
  size_t file_size() const { return bytes_.size(); }

  /// Reads the reconstructed value at exactly `timestamp`. NotFound outside
  /// the stored range, InvalidArgument off the sampling grid.
  Result<double> ReadPoint(int64_t timestamp) const;

  /// Reconstructs all points with timestamps in [t0, t1] (inclusive; the
  /// range is clamped to the stored extent, and an empty intersection yields
  /// an empty series). Chunk decodes run on `jobs` threads.
  Result<TimeSeries> ReadRange(int64_t t0, int64_t t1, int jobs = 1) const;

  /// Reconstructs the entire series.
  Result<TimeSeries> ReadAll(int jobs = 1) const;

  /// The point span selected by [t0, t1] after grid clamping; count == 0
  /// means the intersection is empty (other fields are then meaningless).
  struct Selection {
    size_t first_chunk = 0;
    size_t last_chunk = 0;
    uint32_t first_local = 0;  ///< In-chunk offset within first_chunk.
    uint32_t last_local = 0;   ///< In-chunk offset within last_chunk.
    uint64_t count = 0;
    int64_t start_timestamp = 0;
  };
  Result<Selection> Select(int64_t t0, int64_t t1) const;

  /// Decoded values of chunk `index`, via the cache (decode-once per chunk
  /// unless ClearChunkCache intervenes).
  Result<std::shared_ptr<const std::vector<double>>> DecodeChunkValues(
      size_t index) const;

  /// Copy of chunk `index`'s codec blob (for segment parsing / pushdown).
  std::vector<uint8_t> ChunkPayload(size_t index) const;

  /// Chunk-cache effectiveness counters (monotone; approximate only in the
  /// sense that two threads racing on the same cold chunk may both count a
  /// miss). Surfaced through the Progress reporter by the CLI and stages.
  uint64_t cache_hits() const;
  uint64_t cache_misses() const;
  void ClearChunkCache();

  /// Decoded chunks currently cached (always <= chunk_cache_capacity()).
  size_t cached_chunks() const;
  /// LRU bound on the decoded-chunk cache. Defaults to
  /// kDefaultChunkCacheCapacity; setting a smaller capacity evicts
  /// least-recently-used entries immediately. Must be >= 1.
  size_t chunk_cache_capacity() const;
  void SetChunkCacheCapacity(size_t capacity);

  static constexpr size_t kDefaultChunkCacheCapacity = 64;

 private:
  StoreReader() = default;

  Status Load(std::vector<uint8_t> bytes);
  /// Parses and validates the frame at `offset`; `strict_end` is the first
  /// byte the frame must not cross (index start in complete mode, EOF in
  /// salvage mode).
  Result<ChunkInfo> ParseFrameAt(size_t offset, size_t strict_end) const;

  std::vector<uint8_t> bytes_;
  StoreHeader header_;
  std::vector<ChunkInfo> chunks_;
  std::vector<uint64_t> chunk_start_index_;  ///< Global index of chunk start.
  bool clean_ = false;
  uint64_t total_points_ = 0;
  int64_t start_timestamp_ = 0;
  int32_t interval_ = 1;

  /// One cached decode, threaded into the recency list; `lru` points at this
  /// entry's position in lru_ (front = most recent).
  struct CacheEntry {
    std::shared_ptr<const std::vector<double>> values;
    std::list<size_t>::iterator lru;
  };
  /// Callers hold cache_mu_. Moves `it` to the recency front / inserts a new
  /// entry and evicts past the capacity.
  void TouchLocked(std::map<size_t, CacheEntry>::iterator it) const;
  std::shared_ptr<const std::vector<double>> InsertLocked(
      size_t index, std::shared_ptr<const std::vector<double>> values) const;

  mutable std::mutex cache_mu_;
  mutable std::map<size_t, CacheEntry> cache_;
  mutable std::list<size_t> lru_;  ///< Chunk indices, most recent first.
  mutable size_t cache_capacity_ = kDefaultChunkCacheCapacity;
  mutable uint64_t cache_hits_ = 0;
  mutable uint64_t cache_misses_ = 0;
};

}  // namespace lossyts::store

#endif  // LOSSYTS_STORE_READER_H_
