#include "serve/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "compress/serde.h"
#include "core/failpoint.h"
#include "zip/crc32.h"

namespace lossyts::serve {

namespace {

/// Error messages longer than this are truncated on the wire; the cap keeps
/// a reply frame small no matter what a Status carries.
constexpr size_t kMaxMessageBytes = 4096;

void PutShortString(compress::ByteWriter& writer, const std::string& s) {
  writer.PutU8(static_cast<uint8_t>(s.size()));
  for (const char c : s) writer.PutU8(static_cast<uint8_t>(c));
}

Result<std::string> GetShortString(compress::ByteReader& reader) {
  Result<uint8_t> len = reader.GetU8();
  if (!len.ok()) return len.status();
  std::string s;
  s.reserve(*len);
  for (uint8_t i = 0; i < *len; ++i) {
    Result<uint8_t> c = reader.GetU8();
    if (!c.ok()) return c.status();
    s.push_back(static_cast<char>(*c));
  }
  return s;
}

void PutLongString(compress::ByteWriter& writer, const std::string& s) {
  const size_t n = std::min(s.size(), kMaxMessageBytes);
  writer.PutU32(static_cast<uint32_t>(n));
  for (size_t i = 0; i < n; ++i) writer.PutU8(static_cast<uint8_t>(s[i]));
}

Result<std::string> GetLongString(compress::ByteReader& reader) {
  Result<uint32_t> len = reader.GetU32();
  if (!len.ok()) return len.status();
  if (*len > kMaxMessageBytes) {
    return Status::Corruption("message length field is implausible");
  }
  if (reader.remaining() < *len) {
    return Status::Corruption("message truncated");
  }
  std::string s(reinterpret_cast<const char*>(reader.current()), *len);
  if (Status st = reader.Skip(*len); !st.ok()) return st;
  return s;
}

void PutValues(compress::ByteWriter& writer,
               const std::vector<double>& values) {
  writer.PutU32(static_cast<uint32_t>(values.size()));
  for (const double v : values) writer.PutDouble(v);
}

Result<std::vector<double>> GetValues(compress::ByteReader& reader) {
  Result<uint32_t> count = reader.GetU32();
  if (!count.ok()) return count.status();
  if (reader.remaining() != static_cast<uint64_t>(*count) * sizeof(double)) {
    return Status::Corruption("value count disagrees with the payload");
  }
  std::vector<double> values;
  values.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    Result<double> v = reader.GetDouble();
    if (!v.ok()) return v.status();
    values.push_back(*v);
  }
  return values;
}

void PutStringList(compress::ByteWriter& writer,
                   const std::vector<std::string>& names) {
  writer.PutU32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) PutShortString(writer, name);
}

Result<std::vector<std::string>> GetStringList(compress::ByteReader& reader) {
  Result<uint32_t> count = reader.GetU32();
  if (!count.ok()) return count.status();
  // Each entry costs at least its length byte; a count past the payload is
  // corrupt, not a huge allocation.
  if (*count > reader.remaining()) {
    return Status::Corruption("string list count is implausible");
  }
  std::vector<std::string> names;
  names.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    Result<std::string> name = GetShortString(reader);
    if (!name.ok()) return name.status();
    names.push_back(std::move(*name));
  }
  return names;
}

/// Doubles inside a larger payload: count-prefixed, without GetValues'
/// payload-exhaustion check (query rows are not the final field).
void PutDoubleList(compress::ByteWriter& writer,
                   const std::vector<double>& values) {
  writer.PutU32(static_cast<uint32_t>(values.size()));
  for (const double v : values) writer.PutDouble(v);
}

Result<std::vector<double>> GetDoubleList(compress::ByteReader& reader) {
  Result<uint32_t> count = reader.GetU32();
  if (!count.ok()) return count.status();
  if (reader.remaining() < static_cast<uint64_t>(*count) * sizeof(double)) {
    return Status::Corruption("double list count is implausible");
  }
  std::vector<double> values;
  values.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    Result<double> v = reader.GetDouble();
    if (!v.ok()) return v.status();
    values.push_back(*v);
  }
  return values;
}

void PutQueryResult(compress::ByteWriter& writer,
                    const query::QueryResult& result) {
  PutStringList(writer, result.metric_names);
  PutStringList(writer, result.aggregate_names);
  writer.PutU32(static_cast<uint32_t>(result.rows.size()));
  for (const query::GroupRow& row : result.rows) {
    PutShortString(writer, row.group);
    writer.PutU64(row.series_count);
    writer.PutU64(row.points);
    PutDoubleList(writer, row.aggregates);
    PutDoubleList(writer, row.metrics);
  }
}

Result<query::QueryResult> GetQueryResult(compress::ByteReader& reader) {
  query::QueryResult result;
  Result<std::vector<std::string>> metric_names = GetStringList(reader);
  if (!metric_names.ok()) return metric_names.status();
  result.metric_names = std::move(*metric_names);
  Result<std::vector<std::string>> aggregate_names = GetStringList(reader);
  if (!aggregate_names.ok()) return aggregate_names.status();
  result.aggregate_names = std::move(*aggregate_names);
  Result<uint32_t> count = reader.GetU32();
  if (!count.ok()) return count.status();
  if (*count > reader.remaining()) {
    return Status::Corruption("group row count is implausible");
  }
  result.rows.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    query::GroupRow row;
    Result<std::string> group = GetShortString(reader);
    if (!group.ok()) return group.status();
    row.group = std::move(*group);
    Result<uint64_t> series_count = reader.GetU64();
    if (!series_count.ok()) return series_count.status();
    row.series_count = *series_count;
    Result<uint64_t> points = reader.GetU64();
    if (!points.ok()) return points.status();
    row.points = *points;
    Result<std::vector<double>> aggregates = GetDoubleList(reader);
    if (!aggregates.ok()) return aggregates.status();
    row.aggregates = std::move(*aggregates);
    Result<std::vector<double>> metrics = GetDoubleList(reader);
    if (!metrics.ok()) return metrics.status();
    row.metrics = std::move(*metrics);
    result.rows.push_back(std::move(row));
  }
  return result;
}

StatusCode CodeFromWire(uint8_t code) {
  switch (code) {
    case static_cast<uint8_t>(StatusCode::kInvalidArgument):
      return StatusCode::kInvalidArgument;
    case static_cast<uint8_t>(StatusCode::kOutOfRange):
      return StatusCode::kOutOfRange;
    case static_cast<uint8_t>(StatusCode::kCorruption):
      return StatusCode::kCorruption;
    case static_cast<uint8_t>(StatusCode::kNotFound):
      return StatusCode::kNotFound;
    case static_cast<uint8_t>(StatusCode::kFailedPrecondition):
      return StatusCode::kFailedPrecondition;
    case static_cast<uint8_t>(StatusCode::kIoError):
      return StatusCode::kIoError;
    case static_cast<uint8_t>(StatusCode::kUnavailable):
      return StatusCode::kUnavailable;
    default:
      return StatusCode::kInternal;
  }
}

Status MakeStatus(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(msg));
    case StatusCode::kIoError:
      return Status::IoError(std::move(msg));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(msg));
    case StatusCode::kInternal:
      break;
  }
  return Status::Internal(std::move(msg));
}

void PutStats(compress::ByteWriter& writer, const ServeStats& stats) {
  writer.PutU64(stats.shards);
  writer.PutU64(stats.series);
  writer.PutU64(stats.points);
  writer.PutU64(stats.wal_bytes);
  writer.PutU64(stats.appended_ops);
  writer.PutU64(stats.flushes);
  writer.PutU64(stats.flush_failures);
  writer.PutU64(stats.salvaged_stores);
  writer.PutU64(stats.replayed_records);
  writer.PutU64(stats.failed_shards);
  writer.PutU64(stats.accepted);
  writer.PutU64(stats.rejected);
  writer.PutU64(stats.deadline_misses);
  writer.PutU64(stats.evicted_clients);
}

Result<ServeStats> GetStats(compress::ByteReader& reader) {
  ServeStats stats;
  uint64_t* fields[] = {
      &stats.shards,          &stats.series,
      &stats.points,          &stats.wal_bytes,
      &stats.appended_ops,    &stats.flushes,
      &stats.flush_failures,  &stats.salvaged_stores,
      &stats.replayed_records, &stats.failed_shards,
      &stats.accepted,        &stats.rejected,
      &stats.deadline_misses, &stats.evicted_clients,
  };
  for (uint64_t* field : fields) {
    Result<uint64_t> v = reader.GetU64();
    if (!v.ok()) return v.status();
    *field = *v;
  }
  return stats;
}

}  // namespace

std::vector<uint8_t> EncodeRequest(const Request& request) {
  compress::ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(request.type));
  switch (request.type) {
    case RequestType::kAppend:
      PutShortString(writer, request.series);
      writer.PutI64(request.first_timestamp);
      writer.PutI32(request.interval_seconds);
      PutValues(writer, request.values);
      break;
    case RequestType::kReadRange:
      PutShortString(writer, request.series);
      writer.PutI64(request.t0);
      writer.PutI64(request.t1);
      break;
    case RequestType::kQuery:
      PutStringList(writer, request.query.metrics);
      PutShortString(writer, request.query.group_by);
      PutShortString(writer, request.query.delimiter);
      writer.PutI64(request.query.t0);
      writer.PutI64(request.query.t1);
      PutShortString(writer, request.query.match);
      PutShortString(writer, request.query.pred_suffix);
      writer.PutI32(request.query.season_length);
      break;
    case RequestType::kPing:
    case RequestType::kStats:
    case RequestType::kShutdown:
    case RequestType::kListSeries:
      break;
  }
  return writer.Finish();
}

Result<Request> DecodeRequest(const std::vector<uint8_t>& payload) {
  compress::ByteReader reader(payload);
  Result<uint8_t> type = reader.GetU8();
  if (!type.ok()) return type.status();
  Request request;
  switch (*type) {
    case static_cast<uint8_t>(RequestType::kAppend): {
      request.type = RequestType::kAppend;
      Result<std::string> series = GetShortString(reader);
      if (!series.ok()) return series.status();
      request.series = std::move(*series);
      Result<int64_t> ts = reader.GetI64();
      if (!ts.ok()) return ts.status();
      request.first_timestamp = *ts;
      Result<int32_t> interval = reader.GetI32();
      if (!interval.ok()) return interval.status();
      request.interval_seconds = *interval;
      Result<std::vector<double>> values = GetValues(reader);
      if (!values.ok()) return values.status();
      request.values = std::move(*values);
      return request;
    }
    case static_cast<uint8_t>(RequestType::kReadRange): {
      request.type = RequestType::kReadRange;
      Result<std::string> series = GetShortString(reader);
      if (!series.ok()) return series.status();
      request.series = std::move(*series);
      Result<int64_t> t0 = reader.GetI64();
      if (!t0.ok()) return t0.status();
      request.t0 = *t0;
      Result<int64_t> t1 = reader.GetI64();
      if (!t1.ok()) return t1.status();
      request.t1 = *t1;
      return request;
    }
    case static_cast<uint8_t>(RequestType::kQuery): {
      request.type = RequestType::kQuery;
      Result<std::vector<std::string>> metrics = GetStringList(reader);
      if (!metrics.ok()) return metrics.status();
      request.query.metrics = std::move(*metrics);
      Result<std::string> group_by = GetShortString(reader);
      if (!group_by.ok()) return group_by.status();
      request.query.group_by = std::move(*group_by);
      Result<std::string> delimiter = GetShortString(reader);
      if (!delimiter.ok()) return delimiter.status();
      request.query.delimiter = std::move(*delimiter);
      Result<int64_t> t0 = reader.GetI64();
      if (!t0.ok()) return t0.status();
      request.query.t0 = *t0;
      Result<int64_t> t1 = reader.GetI64();
      if (!t1.ok()) return t1.status();
      request.query.t1 = *t1;
      Result<std::string> match = GetShortString(reader);
      if (!match.ok()) return match.status();
      request.query.match = std::move(*match);
      Result<std::string> pred_suffix = GetShortString(reader);
      if (!pred_suffix.ok()) return pred_suffix.status();
      request.query.pred_suffix = std::move(*pred_suffix);
      Result<int32_t> season_length = reader.GetI32();
      if (!season_length.ok()) return season_length.status();
      request.query.season_length = *season_length;
      if (reader.remaining() != 0) {
        return Status::Corruption("request carries unexpected trailing bytes");
      }
      return request;
    }
    case static_cast<uint8_t>(RequestType::kPing):
    case static_cast<uint8_t>(RequestType::kStats):
    case static_cast<uint8_t>(RequestType::kShutdown):
    case static_cast<uint8_t>(RequestType::kListSeries):
      request.type = static_cast<RequestType>(*type);
      if (reader.remaining() != 0) {
        return Status::Corruption("request carries unexpected trailing bytes");
      }
      return request;
    default:
      return Status::Corruption("unknown request type " +
                                std::to_string(*type));
  }
}

std::vector<uint8_t> EncodeReply(RequestType type, const Reply& reply) {
  compress::ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(reply.kind));
  if (reply.kind == ReplyKind::kError) {
    writer.PutU8(reply.code);
    PutLongString(writer, reply.message);
    return writer.Finish();
  }
  if (reply.kind == ReplyKind::kRetry) {
    writer.PutU32(reply.retry_after_ms);
    PutLongString(writer, reply.message);
    return writer.Finish();
  }
  switch (type) {
    case RequestType::kReadRange:
      writer.PutI64(reply.start_timestamp);
      writer.PutI32(reply.interval_seconds);
      PutValues(writer, reply.values);
      break;
    case RequestType::kStats:
      PutStats(writer, reply.stats);
      break;
    case RequestType::kListSeries:
      writer.PutU32(static_cast<uint32_t>(reply.names.size()));
      for (const std::string& name : reply.names) {
        PutShortString(writer, name);
      }
      break;
    case RequestType::kQuery:
      PutQueryResult(writer, reply.query);
      break;
    case RequestType::kPing:
    case RequestType::kAppend:
    case RequestType::kShutdown:
      break;
  }
  return writer.Finish();
}

Result<Reply> DecodeReply(RequestType type,
                          const std::vector<uint8_t>& payload) {
  compress::ByteReader reader(payload);
  Result<uint8_t> kind = reader.GetU8();
  if (!kind.ok()) return kind.status();
  Reply reply;
  if (*kind == static_cast<uint8_t>(ReplyKind::kError)) {
    reply.kind = ReplyKind::kError;
    Result<uint8_t> code = reader.GetU8();
    if (!code.ok()) return code.status();
    reply.code = *code;
    Result<std::string> message = GetLongString(reader);
    if (!message.ok()) return message.status();
    reply.message = std::move(*message);
    return reply;
  }
  if (*kind == static_cast<uint8_t>(ReplyKind::kRetry)) {
    reply.kind = ReplyKind::kRetry;
    Result<uint32_t> after = reader.GetU32();
    if (!after.ok()) return after.status();
    reply.retry_after_ms = *after;
    Result<std::string> message = GetLongString(reader);
    if (!message.ok()) return message.status();
    reply.message = std::move(*message);
    return reply;
  }
  if (*kind != static_cast<uint8_t>(ReplyKind::kOk)) {
    return Status::Corruption("unknown reply kind " + std::to_string(*kind));
  }
  reply.kind = ReplyKind::kOk;
  switch (type) {
    case RequestType::kReadRange: {
      Result<int64_t> start = reader.GetI64();
      if (!start.ok()) return start.status();
      reply.start_timestamp = *start;
      Result<int32_t> interval = reader.GetI32();
      if (!interval.ok()) return interval.status();
      reply.interval_seconds = *interval;
      Result<std::vector<double>> values = GetValues(reader);
      if (!values.ok()) return values.status();
      reply.values = std::move(*values);
      return reply;
    }
    case RequestType::kStats: {
      Result<ServeStats> stats = GetStats(reader);
      if (!stats.ok()) return stats.status();
      reply.stats = *stats;
      return reply;
    }
    case RequestType::kQuery: {
      Result<query::QueryResult> result = GetQueryResult(reader);
      if (!result.ok()) return result.status();
      reply.query = std::move(*result);
      if (reader.remaining() != 0) {
        return Status::Corruption("reply carries unexpected trailing bytes");
      }
      return reply;
    }
    case RequestType::kListSeries: {
      Result<uint32_t> count = reader.GetU32();
      if (!count.ok()) return count.status();
      reply.names.reserve(*count);
      for (uint32_t i = 0; i < *count; ++i) {
        Result<std::string> name = GetShortString(reader);
        if (!name.ok()) return name.status();
        reply.names.push_back(std::move(*name));
      }
      return reply;
    }
    case RequestType::kPing:
    case RequestType::kAppend:
    case RequestType::kShutdown:
      if (reader.remaining() != 0) {
        return Status::Corruption("reply carries unexpected trailing bytes");
      }
      return reply;
  }
  return Status::Corruption("reply for an unknown request type");
}

Reply ReplyFromStatus(const Status& status, uint32_t retry_after_ms) {
  Reply reply;
  if (status.ok()) return reply;
  if (status.code() == StatusCode::kUnavailable) {
    reply.kind = ReplyKind::kRetry;
    reply.retry_after_ms = retry_after_ms;
    reply.message = status.message();
    return reply;
  }
  reply.kind = ReplyKind::kError;
  reply.code = static_cast<uint8_t>(status.code());
  reply.message = status.message();
  return reply;
}

Status StatusFromReply(const Reply& reply) {
  switch (reply.kind) {
    case ReplyKind::kOk:
      return Status::OK();
    case ReplyKind::kRetry:
      return Status::Unavailable(reply.message.empty() ? "server overloaded"
                                                       : reply.message);
    case ReplyKind::kError:
      return MakeStatus(CodeFromWire(reply.code), reply.message);
  }
  return Status::Internal("malformed reply");
}

namespace {

/// Polls `fd` for `events` within the timeout. OK when ready; Unavailable on
/// timeout; IoError otherwise.
Status PollFor(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      return Status::Unavailable("peer did not become ready in " +
                                 std::to_string(timeout_ms) + "ms");
    }
    if (errno == EINTR) continue;
    return Status::IoError(std::string("poll failed: ") +
                           std::strerror(errno));
  }
}

Status SendAll(int fd, const uint8_t* data, size_t size, int timeout_ms) {
  size_t sent = 0;
  while (sent < size) {
    if (Status s = PollFor(fd, POLLOUT, timeout_ms); !s.ok()) return s;
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IoError(std::string("socket send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes. `clean_eof_ok`: a clean close before the
/// first byte is NotFound (peer hung up between frames); any later EOF is a
/// torn frame.
Status RecvAll(int fd, uint8_t* data, size_t size, int timeout_ms,
               bool clean_eof_ok) {
  size_t received = 0;
  while (received < size) {
    if (Status s = PollFor(fd, POLLIN, timeout_ms); !s.ok()) return s;
    const ssize_t n = ::recv(fd, data + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IoError(std::string("socket recv failed: ") +
                             std::strerror(errno));
    }
    if (n == 0) {
      if (clean_eof_ok && received == 0) {
        return Status::NotFound("peer closed the connection");
      }
      return Status::Corruption("connection closed mid-frame");
    }
    received += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, const std::vector<uint8_t>& payload,
                  int timeout_ms) {
  compress::ByteWriter writer;
  writer.PutU32(kFrameMagic);
  writer.PutU32(static_cast<uint32_t>(payload.size()));
  writer.PutBytes(payload);
  writer.PutU32(zip::ComputeCrc32(payload.data(), payload.size()));
  const std::vector<uint8_t> frame = writer.Finish();

  // Crash injection: half the frame leaves the socket and the write errors —
  // the peer must treat the torn frame as a dead connection, never as data.
  Status crash = FailPoints::Hit("socket_write");
  if (!crash.ok()) {
    SendAll(fd, frame.data(), frame.size() / 2, timeout_ms);
    return crash;
  }
  return SendAll(fd, frame.data(), frame.size(), timeout_ms);
}

Result<std::vector<uint8_t>> ReadFrame(int fd, int timeout_ms) {
  uint8_t header[8];
  if (Status s = RecvAll(fd, header, sizeof(header), timeout_ms, true);
      !s.ok()) {
    return s;
  }
  compress::ByteReader reader(header, sizeof(header));
  const uint32_t magic = *reader.GetU32();
  const uint32_t size = *reader.GetU32();
  if (magic != kFrameMagic) {
    return Status::Corruption("frame has a bad magic");
  }
  if (size > kMaxFramePayload) {
    return Status::Corruption("frame size field is implausible");
  }
  std::vector<uint8_t> rest(static_cast<size_t>(size) + 4);
  if (Status s = RecvAll(fd, rest.data(), rest.size(), timeout_ms, false);
      !s.ok()) {
    return s;
  }
  compress::ByteReader tail(rest.data() + size, 4);
  const uint32_t crc = *tail.GetU32();
  rest.resize(size);
  if (crc != zip::ComputeCrc32(rest.data(), rest.size())) {
    return Status::Corruption("frame checksum mismatch");
  }
  return rest;
}

Result<int> ListenUnix(const std::string& path) {
  struct sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("cannot create socket: ") +
                           std::strerror(errno));
  }
  ::unlink(path.c_str());  // Replace a stale socket from a killed daemon.
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status s = Status::IoError("cannot bind " + path + ": " +
                                     std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 128) != 0) {
    const Status s = Status::IoError("cannot listen on " + path + ": " +
                                     std::strerror(errno));
    ::close(fd);
    return s;
  }
  return fd;
}

Result<int> ConnectUnix(const std::string& path) {
  struct sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("cannot create socket: ") +
                           std::strerror(errno));
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const Status s = Status::IoError("cannot connect to " + path + ": " +
                                     std::strerror(errno));
    ::close(fd);
    return s;
  }
  return fd;
}

}  // namespace lossyts::serve
