#include "serve/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "compress/serde.h"
#include "core/failpoint.h"
#include "zip/crc32.h"

namespace lossyts::serve {

namespace {

Status WriteFully(int fd, const uint8_t* data, size_t size,
                  const std::string& path) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write to " + path + " failed: " +
                             std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

std::vector<uint8_t> EncodeWalHeader() {
  compress::ByteWriter writer;
  writer.PutU32(kWalMagic);
  writer.PutU8(kWalVersion);
  const uint8_t version = kWalVersion;
  writer.PutU32(zip::ComputeCrc32(&version, 1));
  return writer.Finish();
}

}  // namespace

std::vector<uint8_t> EncodeWalRecord(const WalRecord& record) {
  compress::ByteWriter payload;
  payload.PutU8(static_cast<uint8_t>(record.series.size()));
  for (const char c : record.series) {
    payload.PutU8(static_cast<uint8_t>(c));
  }
  payload.PutI64(record.first_timestamp);
  payload.PutI32(record.interval_seconds);
  payload.PutU64(record.first_index);
  payload.PutU32(static_cast<uint32_t>(record.values.size()));
  for (const double v : record.values) payload.PutDouble(v);
  std::vector<uint8_t> body = payload.Finish();

  compress::ByteWriter frame;
  frame.PutU32(kWalRecordMagic);
  frame.PutU32(static_cast<uint32_t>(body.size()));
  frame.PutBytes(body);
  frame.PutU32(zip::ComputeCrc32(body.data(), body.size()));
  return frame.Finish();
}

namespace {

/// Parses the record frame at `offset`; any defect (bad magic, bad CRC,
/// truncation, inconsistent counts) returns Corruption, which the caller
/// treats as "the valid prefix ends here".
Result<WalRecord> ParseRecordAt(const std::vector<uint8_t>& bytes,
                                size_t offset) {
  compress::ByteReader frame(bytes.data() + offset, bytes.size() - offset);
  Result<uint32_t> magic = frame.GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kWalRecordMagic) {
    return Status::Corruption("wal record has a bad magic");
  }
  Result<uint32_t> size = frame.GetU32();
  if (!size.ok()) return size.status();
  if (*size == 0 || *size > kWalMaxPayload) {
    return Status::Corruption("wal record size field is implausible");
  }
  if (static_cast<uint64_t>(*size) + 4 > frame.remaining()) {
    return Status::Corruption("wal record truncated");
  }
  const uint8_t* payload = frame.current();
  if (Status s = frame.Skip(*size); !s.ok()) return s;
  Result<uint32_t> crc = frame.GetU32();
  if (!crc.ok()) return crc.status();
  if (*crc != zip::ComputeCrc32(payload, *size)) {
    return Status::Corruption("wal record checksum mismatch");
  }

  compress::ByteReader body(payload, *size);
  WalRecord record;
  Result<uint8_t> id_len = body.GetU8();
  if (!id_len.ok()) return id_len.status();
  if (*id_len == 0) return Status::Corruption("wal record with an empty id");
  for (uint8_t i = 0; i < *id_len; ++i) {
    Result<uint8_t> c = body.GetU8();
    if (!c.ok()) return c.status();
    record.series.push_back(static_cast<char>(*c));
  }
  Result<int64_t> ts = body.GetI64();
  if (!ts.ok()) return ts.status();
  record.first_timestamp = *ts;
  Result<int32_t> interval = body.GetI32();
  if (!interval.ok()) return interval.status();
  if (*interval <= 0) {
    return Status::Corruption("wal record with a non-positive interval");
  }
  record.interval_seconds = *interval;
  Result<uint64_t> first_index = body.GetU64();
  if (!first_index.ok()) return first_index.status();
  record.first_index = *first_index;
  Result<uint32_t> count = body.GetU32();
  if (!count.ok()) return count.status();
  // The count must account for the remaining payload exactly; anything else
  // is a corrupt or spliced length field.
  if (*count == 0 ||
      body.remaining() != static_cast<uint64_t>(*count) * sizeof(double)) {
    return Status::Corruption("wal record count disagrees with its payload");
  }
  record.values.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    Result<double> v = body.GetDouble();
    if (!v.ok()) return v.status();
    record.values.push_back(*v);
  }
  return record;
}

}  // namespace

Result<WalReplay> ReplayWalBytes(const std::vector<uint8_t>& bytes) {
  compress::ByteReader reader(bytes);
  Result<uint32_t> magic = reader.GetU32();
  if (!magic.ok() || *magic != kWalMagic) {
    return Status::Corruption("wal header has a bad magic");
  }
  Result<uint8_t> version = reader.GetU8();
  if (!version.ok()) return version.status();
  if (*version != kWalVersion) {
    return Status::Corruption("wal version " + std::to_string(*version) +
                              " is not supported");
  }
  Result<uint32_t> crc = reader.GetU32();
  if (!crc.ok()) return crc.status();
  const uint8_t v = *version;
  if (*crc != zip::ComputeCrc32(&v, 1)) {
    return Status::Corruption("wal header checksum mismatch");
  }

  WalReplay replay;
  size_t pos = kWalHeaderSize;
  while (pos + kWalFrameOverhead <= bytes.size()) {
    Result<WalRecord> record = ParseRecordAt(bytes, pos);
    if (!record.ok()) break;
    pos += kWalFrameOverhead + record->values.size() * sizeof(double) +
           record->series.size() + 25;  // id_len + ts + interval + index + n.
    replay.records.push_back(std::move(*record));
  }
  replay.valid_bytes = pos;
  replay.clean = pos == bytes.size();
  return replay;
}

Result<WalReplay> ReplayWalFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return Status::NotFound("no wal file at " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(file)),
                             std::istreambuf_iterator<char>());
  if (file.bad()) return Status::IoError("reading " + path + " failed");
  return ReplayWalBytes(bytes);
}

Status ResetWalFile(const std::string& path) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create " + tmp + ": " +
                           std::strerror(errno));
  }
  const std::vector<uint8_t> header = EncodeWalHeader();
  Status s = WriteFully(fd, header.data(), header.size(), tmp);
  if (s.ok() && ::fsync(fd) != 0) {
    s = Status::IoError("fsync of " + tmp + " failed: " +
                        std::strerror(errno));
  }
  ::close(fd);
  if (!s.ok()) return s;
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path + " failed: " +
                           std::strerror(errno));
  }
  const size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) {
    return SyncDirectory(path.substr(0, slash == 0 ? 1 : slash));
  }
  return Status::OK();
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   uint64_t valid_bytes) {
  std::unique_ptr<WalWriter> writer(new WalWriter());
  writer->path_ = path;

  struct stat st;
  const bool exists = ::stat(path.c_str(), &st) == 0;
  if (!exists) {
    if (Status s = ResetWalFile(path); !s.ok()) return s;
    valid_bytes = kWalHeaderSize;
  }
  writer->fd_ = ::open(path.c_str(), O_WRONLY);
  if (writer->fd_ < 0) {
    return Status::IoError("cannot open " + path + " for appending: " +
                           std::strerror(errno));
  }
  if (valid_bytes < kWalHeaderSize) {
    return Status::Corruption("wal valid prefix shorter than its header");
  }
  // Drop the torn tail before appending: everything after the valid prefix
  // is garbage a previous kill left behind.
  if (::ftruncate(writer->fd_, static_cast<off_t>(valid_bytes)) != 0) {
    return Status::IoError("truncate of " + path + " failed: " +
                           std::strerror(errno));
  }
  if (::lseek(writer->fd_, 0, SEEK_END) < 0) {
    return Status::IoError("seek in " + path + " failed: " +
                           std::strerror(errno));
  }
  writer->bytes_ = valid_bytes;
  return writer;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalWriter::Append(const WalRecord& record) {
  if (failed_) {
    return Status::FailedPrecondition("wal writer failed earlier");
  }
  if (record.series.empty() || record.series.size() > 255) {
    return Status::InvalidArgument("wal series id must be 1..255 bytes");
  }
  if (record.values.empty()) {
    return Status::InvalidArgument("wal record must carry at least 1 point");
  }
  const std::vector<uint8_t> frame = EncodeWalRecord(record);

  // Crash injection: half the frame reaches the log and the writer is dead —
  // the torn tail replay must drop, with every prior record intact.
  Status crash = FailPoints::Hit("wal_write");
  if (!crash.ok()) {
    failed_ = true;
    WriteFully(fd_, frame.data(), frame.size() / 2, path_);
    return crash;
  }

  if (Status s = WriteFully(fd_, frame.data(), frame.size(), path_);
      !s.ok()) {
    failed_ = true;
    return s;
  }
  bytes_ += frame.size();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (failed_) {
    return Status::FailedPrecondition("wal writer failed earlier");
  }
  Status crash = FailPoints::Hit("wal_fsync");
  if (!crash.ok()) {
    failed_ = true;
    return crash;
  }
  if (::fsync(fd_) != 0) {
    failed_ = true;
    return Status::IoError("fsync of " + path_ + " failed: " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status EnsureDirectory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IoError("cannot create directory " + path + ": " +
                         std::strerror(errno));
}

Status SyncDirectory(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("cannot open directory " + path + " for fsync: " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync of directory " + path + " failed: " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace lossyts::serve
