#include "serve/daemon.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "core/seed.h"
#include "serve/wal.h"

namespace lossyts::serve {

namespace {

constexpr const char* kShardCountFile = "shards";
constexpr uint32_t kMaxShards = 1024;
/// Accept/idle polls use this tick so stopping_ is observed promptly.
constexpr int kPollTickMs = 200;

Result<uint32_t> ReadShardCount(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no shard count file");
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  char buffer[32] = {0};
  const ssize_t n = ::read(fd, buffer, sizeof(buffer) - 1);
  ::close(fd);
  if (n <= 0) return Status::Corruption("empty shard count file " + path);
  char* end = nullptr;
  const unsigned long count = std::strtoul(buffer, &end, 10);
  if (end == buffer || count == 0 || count > kMaxShards) {
    return Status::Corruption("implausible shard count in " + path);
  }
  return static_cast<uint32_t>(count);
}

Status WriteShardCount(const std::string& dir, const std::string& path,
                       uint32_t count) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create " + tmp + ": " +
                           std::strerror(errno));
  }
  const std::string text = std::to_string(count) + "\n";
  Status s = Status::OK();
  if (::write(fd, text.data(), text.size()) !=
      static_cast<ssize_t>(text.size())) {
    s = Status::IoError("write to " + tmp + " failed");
  }
  if (s.ok() && ::fsync(fd) != 0) {
    s = Status::IoError("fsync of " + tmp + " failed");
  }
  ::close(fd);
  if (!s.ok()) return s;
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename of " + tmp + " failed: " +
                           std::strerror(errno));
  }
  return SyncDirectory(dir);
}

/// Waits for readability; +1 ready, 0 timeout, -1 dead fd.
int PollIn(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) {
      return (pfd.revents & (POLLERR | POLLNVAL)) != 0 ? -1 : 1;
    }
    if (rc == 0) return 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

}  // namespace

size_t Daemon::ShardFor(const std::string& series) const {
  return static_cast<size_t>(HashTag(series) % shards_.size());
}

Result<std::unique_ptr<Daemon>> Daemon::Start(const DaemonOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("serve catalog directory is required");
  }
  if (options.shards == 0 || options.shards > kMaxShards) {
    return Status::InvalidArgument("shard count must be in [1, " +
                                   std::to_string(kMaxShards) + "]");
  }
  if (Status s = EnsureDirectory(options.dir); !s.ok()) return s;

  std::unique_ptr<Daemon> daemon(new Daemon());
  daemon->options_ = options;
  daemon->socket_path_ = options.socket_path.empty()
                             ? options.dir + "/serve.sock"
                             : options.socket_path;

  // The persisted shard count wins over --shards: series→shard placement is
  // part of the on-disk layout, so it must survive restarts unchanged.
  uint32_t shards = options.shards;
  const std::string count_path =
      options.dir + "/" + std::string(kShardCountFile);
  Result<uint32_t> persisted = ReadShardCount(count_path);
  if (persisted.ok()) {
    shards = *persisted;
  } else if (persisted.status().code() == StatusCode::kNotFound) {
    if (Status s = WriteShardCount(options.dir, count_path, shards);
        !s.ok()) {
      return s;
    }
  } else {
    return persisted.status();
  }

  for (uint32_t i = 0; i < shards; ++i) {
    Result<std::unique_ptr<Shard>> shard = Shard::Open(
        options.dir + "/shard-" + std::to_string(i), options.shard);
    if (!shard.ok()) return shard.status();
    daemon->shards_.push_back(std::move(*shard));
    daemon->queues_.push_back(std::make_unique<ShardQueue>());
  }

  daemon->pool_ = std::make_unique<ThreadPool>(
      options.jobs == 0 ? ThreadPool::DefaultJobs() : options.jobs);

  Result<int> listener = ListenUnix(daemon->socket_path_);
  if (!listener.ok()) return listener.status();
  daemon->listen_fd_ = *listener;
  daemon->accept_thread_ = std::thread([d = daemon.get()] { d->AcceptLoop(); });
  return daemon;
}

Daemon::~Daemon() { Stop(); }

void Daemon::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int ready = PollIn(listen_fd_, kPollTickMs);
    if (ready < 0) break;
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // Listener closed by Stop().
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void Daemon::ServeConnection(int fd) {
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Idle wait at the frame boundary is unbounded (a quiet client is not a
    // slow client); only once bytes start flowing does the eviction clock
    // run.
    const int ready = PollIn(fd, kPollTickMs);
    if (ready < 0) break;
    if (ready == 0) continue;

    Result<std::vector<uint8_t>> payload =
        ReadFrame(fd, options_.client_timeout_ms);
    if (!payload.ok()) {
      if (payload.status().code() == StatusCode::kUnavailable) {
        evicted_clients_.fetch_add(1, std::memory_order_relaxed);
      }
      break;  // Clean EOF, torn frame, or a stalled peer: drop it.
    }
    Result<Request> request = DecodeRequest(*payload);
    Reply reply;
    RequestType type = RequestType::kPing;
    if (!request.ok()) {
      reply = ReplyFromStatus(request.status(), options_.retry_after_ms);
    } else {
      type = request->type;
      reply = Handle(std::move(*request));
    }
    Status written =
        WriteFrame(fd, EncodeReply(type, reply), options_.client_timeout_ms);
    if (!written.ok()) {
      if (written.code() == StatusCode::kUnavailable) {
        evicted_clients_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    if (type == RequestType::kShutdown) {
      // Acked first, acted on second: the client's shutdown request never
      // races its own reply.
      stop_requested_.store(true, std::memory_order_relaxed);
      stop_cv_.notify_all();
      break;
    }
  }
  ::close(fd);
}

Reply Daemon::HandleAppend(Request request) {
  auto pending = std::make_shared<PendingAppend>();
  pending->op.series = std::move(request.series);
  pending->op.first_timestamp = request.first_timestamp;
  pending->op.interval_seconds = request.interval_seconds;
  pending->op.values = std::move(request.values);

  if (!Shard::ValidSeriesName(pending->op.series)) {
    return ReplyFromStatus(
        Status::InvalidArgument("invalid series id: '" + pending->op.series +
                                "'"),
        options_.retry_after_ms);
  }
  const size_t index = ShardFor(pending->op.series);
  ShardQueue& queue = *queues_[index];
  bool need_drain = false;
  {
    std::lock_guard<std::mutex> lock(queue.mu);
    if (stopping_.load(std::memory_order_relaxed)) {
      return ReplyFromStatus(Status::Unavailable("daemon is shutting down"),
                             options_.retry_after_ms);
    }
    if (queue.pending.size() >= options_.max_queue_ops) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return ReplyFromStatus(
          Status::Unavailable("shard ingest queue is full"),
          options_.retry_after_ms);
    }
    queue.pending.push_back(pending);
    if (!queue.scheduled) {
      queue.scheduled = true;
      need_drain = true;
    }
  }
  // Submitted outside the queue lock: in inline-pool mode (single-core
  // machines) Submit runs the drain on this very thread, which must be able
  // to re-take queue.mu.
  if (need_drain) {
    pool_->Submit([this, index] { DrainShard(index); });
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);

  std::unique_lock<std::mutex> lock(pending->mu);
  const bool done = pending->cv.wait_for(
      lock, std::chrono::milliseconds(options_.append_deadline_ms),
      [&] { return pending->done; });
  if (!done) {
    // The op is already queued (and possibly WAL-durable); only the ack is
    // abandoned. The client must treat this as commit-unknown.
    deadline_misses_.fetch_add(1, std::memory_order_relaxed);
    return ReplyFromStatus(
        Status::Unavailable(
            "append deadline exceeded; the write may still commit"),
        options_.retry_after_ms);
  }
  return ReplyFromStatus(pending->status, options_.retry_after_ms);
}

Reply Daemon::Handle(Request request) {
  switch (request.type) {
    case RequestType::kPing:
    case RequestType::kShutdown:
      return Reply{};
    case RequestType::kAppend:
      return HandleAppend(std::move(request));
    case RequestType::kReadRange: {
      if (!Shard::ValidSeriesName(request.series)) {
        return ReplyFromStatus(Status::NotFound("invalid series id: '" +
                                                request.series + "'"),
                               options_.retry_after_ms);
      }
      Result<TimeSeries> series =
          shards_[ShardFor(request.series)]->ReadRange(request.series,
                                                       request.t0,
                                                       request.t1);
      if (!series.ok()) {
        return ReplyFromStatus(series.status(), options_.retry_after_ms);
      }
      Reply reply;
      reply.start_timestamp = series->start_timestamp();
      reply.interval_seconds = series->interval_seconds();
      reply.values = std::move(series->mutable_values());
      return reply;
    }
    case RequestType::kStats: {
      Reply reply;
      reply.stats = Stats();
      return reply;
    }
    case RequestType::kListSeries: {
      Reply reply;
      for (const std::unique_ptr<Shard>& shard : shards_) {
        std::vector<std::string> names = shard->ListSeries();
        reply.names.insert(reply.names.end(),
                           std::make_move_iterator(names.begin()),
                           std::make_move_iterator(names.end()));
      }
      std::sort(reply.names.begin(), reply.names.end());
      return reply;
    }
    case RequestType::kQuery:
      return HandleQuery(request.query);
  }
  return ReplyFromStatus(Status::Internal("unhandled request type"),
                         options_.retry_after_ms);
}

Reply Daemon::HandleQuery(const QuerySpec& spec) {
  const auto fail = [&](const Status& status) {
    return ReplyFromStatus(status, options_.retry_after_ms);
  };
  if (spec.metrics.empty()) {
    return fail(Status::InvalidArgument("query requests no metrics"));
  }
  if (spec.pred_suffix.empty()) {
    return fail(Status::InvalidArgument(
        "metric queries need a non-empty pred suffix to pair series"));
  }
  query::QueryOptions qopts;
  qopts.metrics = spec.metrics;
  Result<query::GroupMode> mode = query::ParseGroupMode(spec.group_by);
  if (!mode.ok()) return fail(mode.status());
  qopts.group_by = *mode;
  qopts.delimiter = spec.delimiter;
  qopts.t0 = spec.t0;
  qopts.t1 = spec.t1;
  qopts.pred_suffix = spec.pred_suffix;
  qopts.season_length = spec.season_length;

  // Every catalog series `<name>` (minus the forecast pairs themselves)
  // joins the query; each series' snapshot is consistent under its shard
  // mutex, so a query never sees half of an append.
  std::vector<std::string> names;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::vector<std::string> shard_names = shard->ListSeries();
    names.insert(names.end(), std::make_move_iterator(shard_names.begin()),
                 std::make_move_iterator(shard_names.end()));
  }
  std::sort(names.begin(), names.end());

  const auto ends_with = [](const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
  };
  std::vector<std::pair<TimeSeries, TimeSeries>> snapshots;
  std::vector<std::string> selected;
  for (const std::string& name : names) {
    if (ends_with(name, spec.pred_suffix)) continue;
    if (!spec.match.empty() &&
        name.find(spec.match) == std::string::npos) {
      continue;
    }
    Result<TimeSeries> actual =
        shards_[ShardFor(name)]->ReadRange(name, spec.t0, spec.t1);
    if (!actual.ok()) return fail(actual.status());
    const std::string pred_name = name + spec.pred_suffix;
    Result<TimeSeries> predicted =
        shards_[ShardFor(pred_name)]->ReadRange(pred_name, spec.t0, spec.t1);
    if (!predicted.ok()) {
      return fail(Status::NotFound("series '" + name +
                                   "' has no forecast series '" + pred_name +
                                   "'"));
    }
    snapshots.emplace_back(std::move(*actual), std::move(*predicted));
    selected.push_back(name);
  }
  std::vector<query::SeriesInput> inputs;
  inputs.reserve(selected.size());
  for (size_t i = 0; i < selected.size(); ++i) {
    inputs.push_back(
        {selected[i], &snapshots[i].first, &snapshots[i].second});
  }
  Result<query::QueryResult> result =
      query::EvaluateGroupedSeries(inputs, qopts);
  if (!result.ok()) return fail(result.status());
  Reply reply;
  reply.query = std::move(*result);
  return reply;
}

void Daemon::DrainShard(size_t index) {
  ShardQueue& queue = *queues_[index];
  while (true) {
    std::vector<std::shared_ptr<PendingAppend>> batch;
    {
      std::lock_guard<std::mutex> lock(queue.mu);
      if (queue.pending.empty()) {
        queue.scheduled = false;
        return;
      }
      batch.swap(queue.pending);
    }
    std::vector<AppendOp> ops;
    ops.reserve(batch.size());
    for (const std::shared_ptr<PendingAppend>& pending : batch) {
      ops.push_back(pending->op);
    }
    const std::vector<Status> statuses = shards_[index]->AppendBatch(ops);
    for (size_t i = 0; i < batch.size(); ++i) {
      std::lock_guard<std::mutex> lock(batch[i]->mu);
      batch[i]->status = statuses[i];
      batch[i]->done = true;
      batch[i]->cv.notify_all();
    }
  }
}

ServeStats Daemon::Stats() const {
  ServeStats stats;
  stats.shards = shards_.size();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const ShardStats s = shard->Stats();
    stats.series += s.series;
    stats.points += s.points;
    stats.wal_bytes += s.wal_bytes;
    stats.appended_ops += s.appended_ops;
    stats.flushes += s.flushes;
    stats.flush_failures += s.flush_failures;
    stats.salvaged_stores += s.salvaged_stores;
    stats.replayed_records += s.replayed_records;
    if (s.failed) ++stats.failed_shards;
  }
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.deadline_misses = deadline_misses_.load(std::memory_order_relaxed);
  stats.evicted_clients = evicted_clients_.load(std::memory_order_relaxed);
  return stats;
}

void Daemon::Wait(std::function<bool()> interrupted) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (true) {
    if (stopped_ || stop_requested_.load(std::memory_order_relaxed)) return;
    if (interrupted && interrupted()) return;
    stop_cv_.wait_for(lock, std::chrono::milliseconds(kPollTickMs));
  }
}

Status Daemon::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return Status::OK();
  }
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
  }
  // Connection threads observe stopping_ within one poll tick and finish
  // their in-flight request first.
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  // Every admitted append was enqueued with a drain task armed; Wait()
  // drains them all, so admitted-but-unacked writes still commit.
  pool_->Wait();
  Status first_failure = Status::OK();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    if (Status s = shard->Flush();
        !s.ok() && s.code() != StatusCode::kFailedPrecondition &&
        first_failure.ok()) {
      first_failure = s;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopped_ = true;
  }
  stop_cv_.notify_all();
  return first_failure;
}

}  // namespace lossyts::serve
