#ifndef LOSSYTS_SERVE_SHARD_H_
#define LOSSYTS_SERVE_SHARD_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/time_series.h"
#include "serve/wal.h"
#include "store/format.h"

namespace lossyts::serve {

/// Per-shard configuration (the daemon fans one ShardOptions out to all its
/// shards).
struct ShardOptions {
  /// Error bound / chunk span / codec list of the checkpoint stores. The
  /// codec list defaults to the StoreOptions default (PMC, SWING, SZ,
  /// GORILLA); a purely lossless list ({"GORILLA"}) makes recovery
  /// bit-exact, which is what the chaos battery pins.
  double error_bound = 0.05;
  uint32_t chunk_span = 512;
  std::vector<std::string> codecs;
  /// Checkpoint threshold: after an append batch, if the WAL has grown past
  /// this many bytes the shard rewrites its dirty series as .lts stores and
  /// resets the log. 0 checkpoints after every batch.
  uint64_t flush_wal_bytes = 4u << 20;
  /// fsync-before-ack. Turning this off voids the durability contract (a
  /// kill can lose acked writes) and exists only for throughput benches.
  bool sync = true;
};

/// One logical append (the unit of atomicity: after any crash, each op is
/// fully visible or fully absent — never split).
struct AppendOp {
  std::string series;
  int64_t first_timestamp = 0;
  int32_t interval_seconds = 0;
  std::vector<double> values;
};

/// Aggregate shard counters, summed across shards by the daemon's stats op.
struct ShardStats {
  uint64_t series = 0;
  uint64_t points = 0;
  uint64_t wal_bytes = 0;
  uint64_t appended_ops = 0;
  uint64_t flushes = 0;        ///< Completed checkpoints.
  uint64_t flush_failures = 0; ///< Aborted checkpoints (WAL retained).
  uint64_t salvaged_stores = 0;   ///< Stores opened without a valid footer.
  uint64_t replayed_records = 0;  ///< WAL records applied on open.
  bool wal_clean = true;          ///< Open found no torn WAL tail.
  bool failed = false;            ///< The shard writer is dead.
};

/// One shard of the serve catalog: a directory holding one WAL plus one
/// `.lts` checkpoint store per series, mirrored by an in-memory series map.
///
/// Concurrency contract: AppendBatch and Flush are single-writer (the
/// daemon's per-shard drain task enforces this; tests calling them directly
/// must not race them). Read methods are thread-safe against the writer and
/// each other, and snapshot-consistent: each read pins the visible point
/// count under the shard mutex, so a reader never observes half of an
/// append. The writer applies an op to memory only after the WAL fsync that
/// makes it durable, so everything readable is everything recoverable.
///
/// Crash recovery (Open): salvage-open every `.lts` store (torn checkpoints
/// fall back to the longest valid chunk prefix), then replay the WAL on top.
/// Records fully covered by a store are skipped, partially covered records
/// apply only their uncovered suffix (first_index makes this exact), and a
/// gap — a record whose first_index is past the series' recovered length —
/// ends that series' replay, mirroring the torn-tail rule. The WAL is then
/// truncated to its valid prefix and reopened for appending.
class Shard {
 public:
  static Result<std::unique_ptr<Shard>> Open(const std::string& dir,
                                             const ShardOptions& options);

  /// Validates, logs, fsyncs, then applies a batch of appends; one Status
  /// per op, positionally. Group commit: the whole batch shares one fsync.
  /// Invalid ops (bad id, grid break) fail their slot without poisoning the
  /// batch; a WAL write/fsync failure kills the shard — every op not made
  /// durable by a successful Sync reports the failure, nothing of the batch
  /// becomes visible, and later calls refuse with FailedPrecondition.
  std::vector<Status> AppendBatch(const std::vector<AppendOp>& ops);

  /// Checkpoints every dirty series into its `.lts` store (written to a
  /// .tmp sibling with StoreOptions::sync, renamed, directory fsync'd) and
  /// resets the WAL. Failure (including the "shard_flush" failpoint) aborts
  /// the checkpoint but is NOT fatal: the WAL still covers everything, so
  /// ingest continues and the next threshold crossing retries.
  Status Flush();

  /// Snapshot-consistent range read (inclusive, clamped to the stored
  /// extent; empty intersection yields an empty series). NotFound for an
  /// unknown series.
  Result<TimeSeries> ReadRange(const std::string& series, int64_t t0,
                               int64_t t1) const;

  /// Series names currently visible, sorted.
  std::vector<std::string> ListSeries() const;

  ShardStats Stats() const;

  /// True when `name` is a valid series id: 1..128 bytes of [A-Za-z0-9_.-],
  /// not starting with '.', so ids map 1:1 onto checkpoint file names.
  static bool ValidSeriesName(const std::string& name);

 private:
  Shard() = default;

  struct SeriesState {
    int64_t start_timestamp = 0;
    int32_t interval_seconds = 0;
    std::vector<double> values;
    /// Points covered by the on-disk .lts checkpoint (vs the WAL).
    uint64_t store_points = 0;
  };

  /// Grid position of a series as seen by later ops in the same batch:
  /// committed state plus every earlier op of the batch (which may have
  /// created the series, so the origin travels with the count).
  struct BatchSeries {
    int64_t start_timestamp = 0;
    int32_t interval_seconds = 0;
    uint64_t points = 0;
  };

  /// Validates `op` against the series' current grid (creating the series
  /// on first append) and returns the record to log; does not mutate shard
  /// state, only the batch-local `pending` map.
  Result<WalRecord> PrepareOp(
      const AppendOp& op, std::map<std::string, BatchSeries>& pending) const;
  /// Applies one replayed record during Open (idempotent against the
  /// checkpoint stores). Returns false when the record opens a gap.
  bool ApplyReplayedRecord(const WalRecord& record);

  std::string dir_;
  ShardOptions options_;
  std::unique_ptr<WalWriter> wal_;
  /// Writer-death flag and a WAL size mirror; atomics so Stats() (any
  /// thread) never touches wal_, which only the writer may use.
  std::atomic<bool> failed_{false};
  std::atomic<uint64_t> wal_bytes_{kWalHeaderSize};

  mutable std::mutex mu_;  ///< Guards series_ and the stats counters below.
  std::map<std::string, SeriesState> series_;
  uint64_t appended_ops_ = 0;
  uint64_t flushes_ = 0;
  uint64_t flush_failures_ = 0;
  uint64_t salvaged_stores_ = 0;
  uint64_t replayed_records_ = 0;
  bool wal_clean_ = true;
};

}  // namespace lossyts::serve

#endif  // LOSSYTS_SERVE_SHARD_H_
