#ifndef LOSSYTS_SERVE_WAL_H_
#define LOSSYTS_SERVE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"

namespace lossyts::serve {

// Per-shard write-ahead log (all integers little-endian through
// compress::ByteWriter, CRC32-framed with the gzip polynomial — the same
// framing discipline as the store chunk frames and checkpoint rows):
//
//   WalFile   := WalHeader WalRecord*
//   WalHeader := u32 kWalMagic, u8 version, u32 crc32(version)
//   WalRecord := u32 kWalRecordMagic, u32 payload_size, payload,
//                u32 crc32(payload)
//   payload   := u8 id_len, id bytes, i64 first_timestamp,
//                i32 interval_seconds, u64 first_index, u32 count,
//                count x f64 values
//
// `first_index` is the series' point count before the append, which makes
// replay idempotent: a record whose points are already covered by a
// checkpointed store is skipped (or suffix-applied) instead of re-applied,
// so a crash between "stores checkpointed" and "WAL reset" double-applies
// nothing. The durability contract is fsync-before-ack: a record is only
// acknowledged after WalWriter::Sync returns, and a process killed at any
// instruction leaves the log as a valid prefix of complete records plus at
// most one torn tail that ReplayWal drops — exactly the store salvage
// semantics, applied to the log.

inline constexpr uint32_t kWalMagic = 0x5753544Cu;        // "LTSW"
inline constexpr uint32_t kWalRecordMagic = 0x5253544Cu;  // "LTSR"
inline constexpr uint8_t kWalVersion = 1;
inline constexpr size_t kWalHeaderSize = 9;
inline constexpr size_t kWalFrameOverhead = 12;  // magic + size + crc.
/// Upper bound on one record's payload; a corrupt length field past this is
/// rejected before any allocation.
inline constexpr uint32_t kWalMaxPayload = 64u << 20;

/// One logical append, as logged and replayed.
struct WalRecord {
  std::string series;
  int64_t first_timestamp = 0;
  int32_t interval_seconds = 0;
  uint64_t first_index = 0;  ///< Series point count before this append.
  std::vector<double> values;
};

/// Serializes one record frame (magic + size + payload + CRC).
std::vector<uint8_t> EncodeWalRecord(const WalRecord& record);

/// Outcome of scanning a log: the longest valid prefix of records, whether a
/// torn tail was dropped, and the byte length of the valid prefix (the
/// offset a reopening writer truncates to before appending).
struct WalReplay {
  std::vector<WalRecord> records;
  bool clean = true;
  uint64_t valid_bytes = 0;
};

/// Salvage-scans a log image. Corruption only when the header itself is
/// unreadable (an empty or alien file); torn or corrupt records merely end
/// the valid prefix.
Result<WalReplay> ReplayWalBytes(const std::vector<uint8_t>& bytes);

/// ReplayWalBytes over a file. NotFound when the file does not exist.
Result<WalReplay> ReplayWalFile(const std::string& path);

/// Creates `path` (atomically, via a .tmp sibling and rename) as an empty
/// log with a fresh header, fsync'd along with its directory — the WAL reset
/// step of a shard checkpoint.
Status ResetWalFile(const std::string& path);

/// Append side of the log; single writer per file (the shard's drain task).
///
/// Append buffers nothing: each record is written to the file immediately
/// (so a kill leaves at most one torn frame), but it is NOT durable — and
/// must not be acknowledged — until the next Sync returns OK. Either call
/// failing marks the writer dead: every later call refuses, mirroring
/// StoreWriter's crash semantics.
class WalWriter {
 public:
  /// Opens `path` for appending, truncating it to `valid_bytes` first (the
  /// prefix ReplayWalFile validated); creates the file with a fresh header
  /// when it does not exist.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 uint64_t valid_bytes);

  ~WalWriter();

  /// Writes one record frame. Carries the "wal_write" failpoint: on fire,
  /// half the frame reaches the file and the writer is dead.
  Status Append(const WalRecord& record);

  /// fsyncs everything appended so far. Carries the "wal_fsync" failpoint
  /// (fires before the fsync: nothing since the last Sync may be acked).
  Status Sync();

  /// Bytes in the log (header + all appended record frames).
  uint64_t bytes() const { return bytes_; }

 private:
  WalWriter() = default;

  std::string path_;
  int fd_ = -1;
  bool failed_ = false;
  uint64_t bytes_ = 0;
};

/// Creates `path` as a directory if missing (parents must exist).
Status EnsureDirectory(const std::string& path);

/// fsyncs the directory itself, making renames/creates within it durable.
Status SyncDirectory(const std::string& path);

}  // namespace lossyts::serve

#endif  // LOSSYTS_SERVE_WAL_H_
