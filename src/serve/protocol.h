#ifndef LOSSYTS_SERVE_PROTOCOL_H_
#define LOSSYTS_SERVE_PROTOCOL_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/status.h"
#include "query/query.h"

namespace lossyts::serve {

// Wire protocol of the serve daemon, over a Unix-domain stream socket.
//
// Every message travels in one CRC-framed envelope (little-endian via
// compress::ByteWriter, gzip-polynomial CRC32 — the same framing as the
// chunk store and the WAL):
//
//   Frame := u32 kFrameMagic, u32 payload_size, payload, u32 crc32(payload)
//
// A client sends one request frame and reads exactly one reply frame; the
// connection is otherwise stateless, so either side may drop it at any
// point without corrupting the other (a torn frame fails its CRC and the
// peer treats the connection as dead). Replies are one of three kinds:
// kOk (result payload follows), kError (terminal: status code + message),
// kRetry (transient overload: back off retry_after_ms and resend — the
// admission-control path, never an error bit on the data).

inline constexpr uint32_t kFrameMagic = 0x4D53544Cu;  // "LTSM"
/// Frames larger than this are rejected before allocation; bounds both a
/// corrupt length field and a hostile client.
inline constexpr uint32_t kMaxFramePayload = 16u << 20;
inline constexpr size_t kFrameOverhead = 12;  // magic + size + crc.

enum class RequestType : uint8_t {
  kPing = 1,
  kAppend = 2,
  kReadRange = 3,
  kStats = 4,
  kShutdown = 5,
  kListSeries = 6,
  kQuery = 7,
};

/// Parameters of a kQuery request: a grouped-metric evaluation over the
/// daemon's whole catalog, pairing each series `<name>` with its forecast
/// series `<name><pred_suffix>`. Group modes and semantics are
/// query::EvaluateGroupedSeries' (pooled pairs in canonical series order).
/// `group_by` travels as its CLI spelling ("series"/"prefix"/"all") and is
/// parsed server-side so unknown modes fail with a clear message.
struct QuerySpec {
  std::vector<std::string> metrics;
  std::string group_by = "series";
  std::string delimiter = "_";
  int64_t t0 = std::numeric_limits<int64_t>::min();
  int64_t t1 = std::numeric_limits<int64_t>::max();
  std::string match;
  std::string pred_suffix = ".pred";
  int32_t season_length = 1;
};

enum class ReplyKind : uint8_t {
  kOk = 0,
  kError = 1,
  kRetry = 2,
};

/// One client request; which fields matter depends on `type`.
struct Request {
  RequestType type = RequestType::kPing;
  std::string series;           ///< kAppend, kReadRange.
  int64_t first_timestamp = 0;  ///< kAppend.
  int32_t interval_seconds = 0; ///< kAppend.
  std::vector<double> values;   ///< kAppend.
  int64_t t0 = 0;               ///< kReadRange (inclusive).
  int64_t t1 = 0;               ///< kReadRange (inclusive).
  QuerySpec query;              ///< kQuery.
};

/// Daemon-wide counters: per-shard stats summed, plus the front-end's
/// admission/eviction book-keeping.
struct ServeStats {
  uint64_t shards = 0;
  uint64_t series = 0;
  uint64_t points = 0;
  uint64_t wal_bytes = 0;
  uint64_t appended_ops = 0;
  uint64_t flushes = 0;
  uint64_t flush_failures = 0;
  uint64_t salvaged_stores = 0;
  uint64_t replayed_records = 0;
  uint64_t failed_shards = 0;
  uint64_t accepted = 0;         ///< Requests admitted past the queue gate.
  uint64_t rejected = 0;         ///< kRetry replies sent (queue full).
  uint64_t deadline_misses = 0;  ///< Requests that blew their deadline.
  uint64_t evicted_clients = 0;  ///< Connections dropped for slow frame I/O.
};

/// One reply; which fields matter depends on `kind` and the request type.
struct Reply {
  ReplyKind kind = ReplyKind::kOk;
  uint8_t code = 0;             ///< kError: the StatusCode.
  std::string message;          ///< kError / kRetry.
  uint32_t retry_after_ms = 0;  ///< kRetry.
  int64_t start_timestamp = 0;  ///< kOk + kReadRange.
  int32_t interval_seconds = 0; ///< kOk + kReadRange.
  std::vector<double> values;   ///< kOk + kReadRange.
  ServeStats stats;             ///< kOk + kStats.
  std::vector<std::string> names;  ///< kOk + kListSeries.
  query::QueryResult query;        ///< kOk + kQuery.
};

std::vector<uint8_t> EncodeRequest(const Request& request);
Result<Request> DecodeRequest(const std::vector<uint8_t>& payload);

/// Reply encoding is positional on the request type (the payload layout of
/// kOk differs per request), so both sides pass the type they exchanged.
std::vector<uint8_t> EncodeReply(RequestType type, const Reply& reply);
Result<Reply> DecodeReply(RequestType type,
                          const std::vector<uint8_t>& payload);

/// Builds a kError (or kRetry for kUnavailable) reply from a Status.
Reply ReplyFromStatus(const Status& status, uint32_t retry_after_ms);
/// Inverse of ReplyFromStatus: OK for kOk, the carried Status otherwise
/// (kRetry maps back to Unavailable).
Status StatusFromReply(const Reply& reply);

/// Writes one frame, honouring `timeout_ms` per poll (the slow-client
/// eviction clock: a peer that cannot drain a frame in time gets the
/// connection dropped). Carries the "socket_write" failpoint — on fire, half
/// the frame is sent and the error returns, modelling a daemon killed
/// mid-reply. Unavailable on timeout.
Status WriteFrame(int fd, const std::vector<uint8_t>& payload,
                  int timeout_ms);

/// Reads one frame (same timeout discipline). NotFound on a clean EOF at a
/// frame boundary (the peer hung up between requests); Corruption on a torn
/// or CRC-invalid frame; Unavailable on timeout.
Result<std::vector<uint8_t>> ReadFrame(int fd, int timeout_ms);

/// Binds and listens on a Unix-domain socket at `path`, replacing a stale
/// socket file from a previous (killed) daemon.
Result<int> ListenUnix(const std::string& path);

/// Connects to the daemon's socket.
Result<int> ConnectUnix(const std::string& path);

}  // namespace lossyts::serve

#endif  // LOSSYTS_SERVE_PROTOCOL_H_
