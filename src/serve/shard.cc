#include "serve/shard.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "compress/compressor.h"
#include "core/failpoint.h"
#include "store/reader.h"
#include "store/writer.h"

namespace lossyts::serve {

namespace {

constexpr const char* kWalFileName = "wal.log";
constexpr const char* kStoreSuffix = ".lts";
constexpr const char* kTmpSuffix = ".tmp";
/// One append may not exceed this many points (the WAL frame and protocol
/// frame caps both comfortably cover it).
constexpr size_t kMaxAppendPoints = 1u << 20;

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool Shard::ValidSeriesName(const std::string& name) {
  if (name.empty() || name.size() > 128 || name[0] == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

Result<std::unique_ptr<Shard>> Shard::Open(const std::string& dir,
                                           const ShardOptions& options) {
  if (Status s = compress::CheckErrorBound(options.error_bound); !s.ok()) {
    return s;
  }
  if (options.chunk_span == 0 || options.chunk_span > 65535) {
    return Status::InvalidArgument("shard chunk span must be in [1, 65535]");
  }
  if (Status s = EnsureDirectory(dir); !s.ok()) return s;

  std::unique_ptr<Shard> shard(new Shard());
  shard->dir_ = dir;
  shard->options_ = options;

  // Pass 1: drop checkpoint temporaries a killed flush left behind, and
  // collect the series checkpoint stores.
  std::vector<std::string> store_files;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IoError("cannot list " + dir + ": " + std::strerror(errno));
  }
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (EndsWith(name, kTmpSuffix)) {
      ::unlink((dir + "/" + name).c_str());
      continue;
    }
    if (EndsWith(name, kStoreSuffix)) store_files.push_back(name);
  }
  ::closedir(d);
  std::sort(store_files.begin(), store_files.end());

  for (const std::string& file : store_files) {
    const std::string series =
        file.substr(0, file.size() - std::strlen(kStoreSuffix));
    if (!ValidSeriesName(series)) continue;  // Not one of ours.
    Result<std::unique_ptr<store::StoreReader>> reader =
        store::StoreReader::Open(dir + "/" + file);
    if (!reader.ok()) {
      // Unsalvageable checkpoint (bit rot): the series restarts from
      // whatever the WAL still covers; records past the gap are dropped.
      ++shard->salvaged_stores_;
      continue;
    }
    if (!(*reader)->clean()) ++shard->salvaged_stores_;
    Result<TimeSeries> all = (*reader)->ReadAll();
    if (!all.ok()) return all.status();
    SeriesState state;
    state.start_timestamp = all->start_timestamp();
    state.interval_seconds = all->interval_seconds();
    state.values = std::move(all->mutable_values());
    state.store_points = state.values.size();
    shard->series_.emplace(series, std::move(state));
  }

  // Pass 2: replay the WAL on top of the checkpoints.
  const std::string wal_path = dir + "/" + kWalFileName;
  uint64_t valid_bytes = kWalHeaderSize;
  Result<WalReplay> replay = ReplayWalFile(wal_path);
  if (replay.ok()) {
    shard->wal_clean_ = replay->clean;
    valid_bytes = replay->valid_bytes;
  } else if (replay.status().code() == StatusCode::kCorruption) {
    // A WAL whose header never made it to disk salvages as empty.
    shard->wal_clean_ = false;
    valid_bytes = 0;
  } else if (replay.status().code() != StatusCode::kNotFound) {
    return replay.status();
  }
  if (replay.ok()) {
    for (const WalRecord& record : replay->records) {
      shard->ApplyReplayedRecord(record);
    }
  }

  if (valid_bytes < kWalHeaderSize) {
    // Unreadable header: rebuild the log from scratch (atomically) before
    // opening it for appends.
    if (Status s = ResetWalFile(wal_path); !s.ok()) return s;
    valid_bytes = kWalHeaderSize;
  }
  Result<std::unique_ptr<WalWriter>> wal =
      WalWriter::Open(wal_path, valid_bytes);
  if (!wal.ok()) return wal.status();
  shard->wal_ = std::move(*wal);
  shard->wal_bytes_.store(shard->wal_->bytes(), std::memory_order_relaxed);
  return shard;
}

bool Shard::ApplyReplayedRecord(const WalRecord& record) {
  if (!ValidSeriesName(record.series) || record.interval_seconds <= 0 ||
      record.values.empty()) {
    return false;
  }
  auto it = series_.find(record.series);
  if (it == series_.end()) {
    if (record.first_index != 0) return false;  // Gap: the store is gone.
    SeriesState state;
    state.start_timestamp = record.first_timestamp;
    state.interval_seconds = record.interval_seconds;
    state.values = record.values;
    series_.emplace(record.series, std::move(state));
    ++replayed_records_;
    return true;
  }
  SeriesState& state = it->second;
  if (record.interval_seconds != state.interval_seconds) return false;
  const int64_t expected =
      state.start_timestamp +
      static_cast<int64_t>(record.first_index) * state.interval_seconds;
  if (record.first_timestamp != expected) return false;
  const uint64_t have = state.values.size();
  if (record.first_index > have) return false;  // Gap in the middle.
  const uint64_t covered = have - record.first_index;
  if (covered >= record.values.size()) return true;  // Fully checkpointed.
  state.values.insert(state.values.end(),
                      record.values.begin() + static_cast<long>(covered),
                      record.values.end());
  ++replayed_records_;
  return true;
}

Result<WalRecord> Shard::PrepareOp(
    const AppendOp& op, std::map<std::string, BatchSeries>& pending) const {
  if (!ValidSeriesName(op.series)) {
    return Status::InvalidArgument("invalid series id: '" + op.series + "'");
  }
  if (op.interval_seconds <= 0) {
    return Status::InvalidArgument("append requires a positive interval");
  }
  if (op.values.empty()) {
    return Status::InvalidArgument("append carries no points");
  }
  if (op.values.size() > kMaxAppendPoints) {
    return Status::InvalidArgument("append exceeds " +
                                   std::to_string(kMaxAppendPoints) +
                                   " points");
  }

  // The series' grid position, accounting for earlier ops in this batch.
  int64_t start = op.first_timestamp;
  int32_t interval = op.interval_seconds;
  uint64_t points = 0;
  bool exists = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = series_.find(op.series);
    if (it != series_.end()) {
      exists = true;
      start = it->second.start_timestamp;
      interval = it->second.interval_seconds;
      points = it->second.values.size();
    }
  }
  // Earlier ops of this batch supersede committed state — including the grid
  // origin, which committed state lacks when the batch created the series.
  auto p = pending.find(op.series);
  if (p != pending.end()) {
    exists = true;
    start = p->second.start_timestamp;
    interval = p->second.interval_seconds;
    points = p->second.points;
  }

  if (exists && points > 0) {
    if (op.interval_seconds != interval) {
      return Status::InvalidArgument(
          "append interval " + std::to_string(op.interval_seconds) +
          " does not match the series' " + std::to_string(interval));
    }
    const int64_t expected =
        start + static_cast<int64_t>(points) * interval;
    if (op.first_timestamp != expected) {
      return Status::InvalidArgument(
          "append breaks the regular grid: expected timestamp " +
          std::to_string(expected) + ", got " +
          std::to_string(op.first_timestamp));
    }
  }

  WalRecord record;
  record.series = op.series;
  record.first_timestamp = op.first_timestamp;
  record.interval_seconds = op.interval_seconds;
  record.first_index = points;
  record.values = op.values;
  BatchSeries& entry = pending[op.series];
  entry.start_timestamp = start;
  entry.interval_seconds = interval;
  entry.points = points + op.values.size();
  return record;
}

std::vector<Status> Shard::AppendBatch(const std::vector<AppendOp>& ops) {
  std::vector<Status> statuses(ops.size(), Status::OK());
  if (failed_.load(std::memory_order_relaxed)) {
    for (Status& s : statuses) {
      s = Status::FailedPrecondition("shard writer failed earlier");
    }
    return statuses;
  }

  // Validate and log. `logged[i]` marks ops whose record reached the WAL;
  // none of them may be acked (or applied) unless the batch fsync succeeds.
  std::vector<WalRecord> records(ops.size());
  std::vector<bool> logged(ops.size(), false);
  std::map<std::string, BatchSeries> pending;
  bool any_logged = false;
  Status wal_failure = Status::OK();
  for (size_t i = 0; i < ops.size(); ++i) {
    Result<WalRecord> record = PrepareOp(ops[i], pending);
    if (!record.ok()) {
      statuses[i] = record.status();
      continue;
    }
    Status s = wal_->Append(*record);
    if (!s.ok()) {
      wal_failure = s;
      statuses[i] = s;
      break;
    }
    records[i] = std::move(*record);
    logged[i] = true;
    any_logged = true;
  }

  if (wal_failure.ok() && any_logged) {
    Status s = wal_->Sync();
    if (!s.ok()) wal_failure = s;
  }

  if (!wal_failure.ok()) {
    // The shard writer is dead; nothing from this batch was made durable,
    // so nothing becomes visible — readers and the recovery scan agree.
    failed_.store(true, std::memory_order_relaxed);
    for (size_t i = 0; i < ops.size(); ++i) {
      if (statuses[i].ok()) statuses[i] = wal_failure;
    }
    return statuses;
  }

  if (any_logged) {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < ops.size(); ++i) {
      if (!logged[i]) continue;
      const WalRecord& record = records[i];
      auto [it, created] = series_.try_emplace(record.series);
      SeriesState& state = it->second;
      if (created) {
        state.start_timestamp = record.first_timestamp;
        state.interval_seconds = record.interval_seconds;
      }
      state.values.insert(state.values.end(), record.values.begin(),
                          record.values.end());
      ++appended_ops_;
    }
    wal_bytes_.store(wal_->bytes(), std::memory_order_relaxed);
  }

  if (any_logged &&
      wal_->bytes() > kWalHeaderSize + options_.flush_wal_bytes) {
    Flush();  // Failure is counted, not fatal: the WAL covers everything.
  }
  return statuses;
}

Status Shard::Flush() {
  if (failed_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("shard writer failed earlier");
  }

  // Snapshot the dirty series. AppendBatch/Flush are single-writer, so the
  // copies cannot go stale before the checkpoint finishes.
  struct DirtySeries {
    std::string name;
    int64_t start = 0;
    int32_t interval = 0;
    std::vector<double> values;
  };
  std::vector<DirtySeries> dirty;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, state] : series_) {
      if (state.values.size() > state.store_points) {
        dirty.push_back({name, state.start_timestamp, state.interval_seconds,
                         state.values});
      }
    }
  }

  if (dirty.empty() && wal_->bytes() <= kWalHeaderSize) {
    return Status::OK();  // Nothing to checkpoint, nothing to reset.
  }

  auto abort_flush = [this](Status s) {
    std::lock_guard<std::mutex> lock(mu_);
    ++flush_failures_;
    return s;
  };

  for (const DirtySeries& series : dirty) {
    if (Status s = FailPoints::Hit("shard_flush"); !s.ok()) {
      return abort_flush(s);
    }
    store::StoreOptions store_options;
    store_options.error_bound = options_.error_bound;
    store_options.chunk_span = options_.chunk_span;
    store_options.codecs = options_.codecs;
    store_options.sync = options_.sync;
    const std::string final_path = dir_ + "/" + series.name + kStoreSuffix;
    const std::string tmp_path = final_path + kTmpSuffix;
    Result<std::unique_ptr<store::StoreWriter>> writer =
        store::StoreWriter::Create(tmp_path, store_options);
    if (!writer.ok()) return abort_flush(writer.status());
    TimeSeries snapshot(series.start, series.interval, series.values);
    if (Status s = (*writer)->Append(snapshot); !s.ok()) {
      return abort_flush(s);
    }
    if (Status s = (*writer)->Finish(); !s.ok()) return abort_flush(s);
    if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
      return abort_flush(Status::IoError("rename of " + tmp_path +
                                         " failed: " + std::strerror(errno)));
    }
  }
  if (!dirty.empty() && options_.sync) {
    if (Status s = SyncDirectory(dir_); !s.ok()) return abort_flush(s);
  }

  // The stores are durable; the log may now be reset. A crash anywhere up
  // to here replays the old WAL over the new stores — idempotent by
  // first_index — so there is no ordering hazard.
  if (Status s = FailPoints::Hit("shard_flush"); !s.ok()) {
    return abort_flush(s);
  }
  const std::string wal_path = dir_ + "/" + kWalFileName;
  const uint64_t old_bytes = wal_->bytes();
  wal_.reset();
  Status reset = ResetWalFile(wal_path);
  Result<std::unique_ptr<WalWriter>> wal = WalWriter::Open(
      wal_path, reset.ok() ? kWalHeaderSize : old_bytes);
  if (!wal.ok()) {
    // Cannot even reopen the old log: the shard can no longer make
    // anything durable.
    failed_.store(true, std::memory_order_relaxed);
    return abort_flush(wal.status());
  }
  wal_ = std::move(*wal);
  wal_bytes_.store(wal_->bytes(), std::memory_order_relaxed);
  if (!reset.ok()) return abort_flush(reset);

  std::lock_guard<std::mutex> lock(mu_);
  for (const DirtySeries& series : dirty) {
    series_[series.name].store_points = series.values.size();
  }
  ++flushes_;
  return Status::OK();
}

Result<TimeSeries> Shard::ReadRange(const std::string& series, int64_t t0,
                                    int64_t t1) const {
  if (t0 > t1) return Status::InvalidArgument("inverted time range");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end()) {
    return Status::NotFound("no series named '" + series + "'");
  }
  const SeriesState& state = it->second;
  const int64_t start = state.start_timestamp;
  const int64_t interval = state.interval_seconds;
  const uint64_t n = state.values.size();
  if (n == 0) return TimeSeries(start, state.interval_seconds, {});
  const int64_t last = start + static_cast<int64_t>(n - 1) * interval;
  if (t1 < start || t0 > last) {
    return TimeSeries(start, state.interval_seconds, {});
  }
  uint64_t g0 = 0;
  if (t0 > start) {
    g0 = static_cast<uint64_t>((t0 - start + interval - 1) / interval);
  }
  uint64_t g1 = n - 1;
  if (t1 < last) g1 = static_cast<uint64_t>((t1 - start) / interval);
  if (g0 > g1) return TimeSeries(start, state.interval_seconds, {});
  std::vector<double> values(state.values.begin() + static_cast<long>(g0),
                             state.values.begin() + static_cast<long>(g1 + 1));
  return TimeSeries(start + static_cast<int64_t>(g0) * interval,
                    state.interval_seconds, std::move(values));
}

std::vector<std::string> Shard::ListSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, state] : series_) names.push_back(name);
  return names;  // std::map iterates sorted.
}

ShardStats Shard::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ShardStats stats;
  stats.series = series_.size();
  for (const auto& [name, state] : series_) {
    stats.points += state.values.size();
  }
  stats.wal_bytes = wal_bytes_.load(std::memory_order_relaxed);
  stats.appended_ops = appended_ops_;
  stats.flushes = flushes_;
  stats.flush_failures = flush_failures_;
  stats.salvaged_stores = salvaged_stores_;
  stats.replayed_records = replayed_records_;
  stats.wal_clean = wal_clean_;
  stats.failed = failed_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace lossyts::serve
