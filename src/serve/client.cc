#include "serve/client.h"

#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>

namespace lossyts::serve {

Result<std::unique_ptr<Client>> Client::Connect(
    const std::string& socket_path, const ClientOptions& options) {
  std::unique_ptr<Client> client(new Client());
  client->path_ = socket_path;
  client->options_ = options;
  Result<int> fd = ConnectUnix(socket_path);
  if (!fd.ok()) return fd.status();
  client->fd_ = *fd;
  return client;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Reply> Client::RoundTrip(const Request& request) {
  const std::vector<uint8_t> payload = EncodeRequest(request);
  for (int attempt = 0;; ++attempt) {
    if (Status s = WriteFrame(fd_, payload, options_.timeout_ms); !s.ok()) {
      return s;
    }
    Result<std::vector<uint8_t>> frame = ReadFrame(fd_, options_.timeout_ms);
    if (!frame.ok()) return frame.status();
    Result<Reply> reply = DecodeReply(request.type, *frame);
    if (!reply.ok()) return reply.status();
    if (reply->kind != ReplyKind::kRetry || attempt >= options_.max_retries) {
      return reply;
    }
    // Honour the server's backoff hint, with a floor so a zero hint cannot
    // spin the socket.
    const uint32_t backoff_ms =
        reply->retry_after_ms == 0 ? 1 : reply->retry_after_ms;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
  }
}

Status Client::Ping() {
  Request request;
  request.type = RequestType::kPing;
  Result<Reply> reply = RoundTrip(request);
  if (!reply.ok()) return reply.status();
  return StatusFromReply(*reply);
}

Status Client::Append(const std::string& series, int64_t first_timestamp,
                      int32_t interval_seconds,
                      const std::vector<double>& values) {
  Request request;
  request.type = RequestType::kAppend;
  request.series = series;
  request.first_timestamp = first_timestamp;
  request.interval_seconds = interval_seconds;
  request.values = values;
  Result<Reply> reply = RoundTrip(request);
  if (!reply.ok()) return reply.status();
  return StatusFromReply(*reply);
}

Result<TimeSeries> Client::ReadRange(const std::string& series, int64_t t0,
                                     int64_t t1) {
  Request request;
  request.type = RequestType::kReadRange;
  request.series = series;
  request.t0 = t0;
  request.t1 = t1;
  Result<Reply> reply = RoundTrip(request);
  if (!reply.ok()) return reply.status();
  if (Status s = StatusFromReply(*reply); !s.ok()) return s;
  return TimeSeries(reply->start_timestamp, reply->interval_seconds,
                    std::move(reply->values));
}

Result<ServeStats> Client::Stats() {
  Request request;
  request.type = RequestType::kStats;
  Result<Reply> reply = RoundTrip(request);
  if (!reply.ok()) return reply.status();
  if (Status s = StatusFromReply(*reply); !s.ok()) return s;
  return reply->stats;
}

Result<std::vector<std::string>> Client::ListSeries() {
  Request request;
  request.type = RequestType::kListSeries;
  Result<Reply> reply = RoundTrip(request);
  if (!reply.ok()) return reply.status();
  if (Status s = StatusFromReply(*reply); !s.ok()) return s;
  return std::move(reply->names);
}

Result<query::QueryResult> Client::Query(const QuerySpec& spec) {
  Request request;
  request.type = RequestType::kQuery;
  request.query = spec;
  Result<Reply> reply = RoundTrip(request);
  if (!reply.ok()) return reply.status();
  if (Status s = StatusFromReply(*reply); !s.ok()) return s;
  return std::move(reply->query);
}

Status Client::Shutdown() {
  Request request;
  request.type = RequestType::kShutdown;
  Result<Reply> reply = RoundTrip(request);
  if (!reply.ok()) return reply.status();
  return StatusFromReply(*reply);
}

}  // namespace lossyts::serve
