#ifndef LOSSYTS_SERVE_CLIENT_H_
#define LOSSYTS_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/time_series.h"
#include "serve/protocol.h"

namespace lossyts::serve {

struct ClientOptions {
  /// Per-frame I/O timeout (the daemon's reply must start within this).
  int timeout_ms = 5000;
  /// How many kRetry replies to absorb (sleeping the server's
  /// retry_after_ms hint each time) before surfacing Unavailable.
  int max_retries = 20;
};

/// Synchronous client for the serve daemon: one connection, one in-flight
/// request. Backpressure (kRetry replies) is retried internally with the
/// server's backoff hint; everything else surfaces as the carried Status.
/// Not thread-safe — use one Client per thread.
///
/// Caveat an appender must know: a kRetry that follows a missed append
/// deadline means commit-UNKNOWN (the daemon never rolls back a queued
/// write), so a blind resend can collide with its own committed twin and
/// report InvalidArgument (grid break). Callers that need exactly-once
/// should read the series tail back before resending.
class Client {
 public:
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& socket_path, const ClientOptions& options = {});

  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Ping();
  /// Appends `values` on the series' regular grid. OK only after the daemon
  /// has fsync'd the write (the durability contract).
  Status Append(const std::string& series, int64_t first_timestamp,
                int32_t interval_seconds, const std::vector<double>& values);
  Result<TimeSeries> ReadRange(const std::string& series, int64_t t0,
                               int64_t t1);
  Result<ServeStats> Stats();
  Result<std::vector<std::string>> ListSeries();
  /// Grouped-metric query over the daemon's whole catalog; semantics are
  /// query::EvaluateGroupedSeries' (pooled pairs in canonical order).
  Result<query::QueryResult> Query(const QuerySpec& spec);
  /// Asks the daemon to drain and exit; acked before the drain starts.
  Status Shutdown();

 private:
  Client() = default;

  Result<Reply> RoundTrip(const Request& request);

  std::string path_;
  ClientOptions options_;
  int fd_ = -1;
};

}  // namespace lossyts::serve

#endif  // LOSSYTS_SERVE_CLIENT_H_
