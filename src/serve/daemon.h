#ifndef LOSSYTS_SERVE_DAEMON_H_
#define LOSSYTS_SERVE_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.h"
#include "serve/protocol.h"
#include "serve/shard.h"

namespace lossyts::serve {

struct DaemonOptions {
  /// Catalog root: one `shard-<i>` subdirectory per shard plus a `shards`
  /// file persisting the shard count (a catalog reopened with a different
  /// --shards keeps its original layout — series→shard placement must never
  /// move, or recovery would look for WALs in the wrong place).
  std::string dir;
  /// Unix-domain socket path; defaults to `<dir>/serve.sock`. Socket paths
  /// have a ~100-byte OS limit, so deep catalog paths may need an explicit
  /// short one.
  std::string socket_path;
  /// Shard count used when the catalog is first created.
  uint32_t shards = 4;
  /// Worker threads of the ingest pool (0 = hardware concurrency).
  int jobs = 0;
  ShardOptions shard;
  /// Admission control: appends queued (not yet applied) per shard beyond
  /// this are refused with a kRetry reply instead of queuing unboundedly.
  size_t max_queue_ops = 1024;
  /// Backoff hint carried by kRetry replies.
  uint32_t retry_after_ms = 50;
  /// Per-request deadline for appends: a client waiting longer than this on
  /// its ack gets kRetry with a commit-unknown note (the op stays queued —
  /// durability is never rolled back, only the ack is abandoned).
  int append_deadline_ms = 5000;
  /// Slow-client eviction: a peer that cannot produce or drain one frame
  /// within this window has its connection dropped.
  int client_timeout_ms = 2000;
};

/// The `lossyts serve` daemon: a sharded catalog of WAL-backed series
/// stores behind a Unix-socket front end.
///
/// Threading: one accept thread, one thread per client connection, and the
/// shared ThreadPool for per-shard ingest drains. Each shard has a bounded
/// append queue drained by at most one pool task at a time (a `scheduled`
/// flag re-arms the drain when new work lands), which serializes all WAL and
/// checkpoint I/O per shard without dedicating a thread to it. Reads bypass
/// the queue entirely — they only take the shard's snapshot mutex.
///
/// Shutdown: Stop() closes the listener, lets in-flight connections finish
/// their current request, drains every shard queue (queued appends still
/// commit — they were WAL-bound already), checkpoints all shards, and joins
/// every thread. A client kShutdown request is acked first and then behaves
/// like Stop() — see Wait().
class Daemon {
 public:
  static Result<std::unique_ptr<Daemon>> Start(const DaemonOptions& options);

  /// Calls Stop() if it has not run yet.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Blocks until a client requests shutdown or `interrupted` (polled a few
  /// times a second, may be empty) returns true. Does not stop the daemon —
  /// the owner calls Stop() after Wait() returns, keeping the stop path on
  /// one thread.
  void Wait(std::function<bool()> interrupted = {});

  /// Graceful drain as described above. Idempotent.
  Status Stop();

  const std::string& socket_path() const { return socket_path_; }

  /// Daemon-wide counters (shard stats summed + front-end admission book).
  ServeStats Stats() const;

 private:
  Daemon() = default;

  /// One queued append waiting for its durable ack.
  struct PendingAppend {
    AppendOp op;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
  };

  struct ShardQueue {
    std::mutex mu;
    std::vector<std::shared_ptr<PendingAppend>> pending;
    bool scheduled = false;  ///< A drain task is live on the pool.
  };

  void AcceptLoop();
  void ServeConnection(int fd);
  void DrainShard(size_t index);
  /// Admission gate + enqueue + deadline wait; the reply for one append.
  Reply HandleAppend(Request request);
  /// Grouped-metric query over the whole catalog (kQuery).
  Reply HandleQuery(const QuerySpec& spec);
  Reply Handle(Request request);
  size_t ShardFor(const std::string& series) const;

  DaemonOptions options_;
  std::string socket_path_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<ShardQueue>> queues_;
  std::unique_ptr<ThreadPool> pool_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> stop_requested_{false};  ///< Client kShutdown arrived.
  bool stopped_ = false;  ///< Stop() completed (guarded by stop_mu_).
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> deadline_misses_{0};
  std::atomic<uint64_t> evicted_clients_{0};
};

}  // namespace lossyts::serve

#endif  // LOSSYTS_SERVE_DAEMON_H_
