#include "conform/harness.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>

#include "compress/pipeline.h"
#include "conform/corpus.h"
#include "conform/mutate.h"
#include "conform/oracles.h"
#include "core/seed.h"
#include "core/thread_pool.h"

namespace lossyts::conform {

namespace {

const std::vector<std::string>& AllCodecNames() {
  static const std::vector<std::string> kNames = {"PMC",     "SWING", "SZ",
                                                  "GORILLA", "CHIMP", "PPA"};
  return kNames;
}

std::string FormatBound(double eb) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", eb);
  return buffer;
}

bool FailureLess(const ConformFailure& a, const ConformFailure& b) {
  return std::tie(a.codec, a.error_bound, a.family, a.case_index, a.oracle,
                  a.detail) < std::tie(b.codec, b.error_bound, b.family,
                                       b.case_index, b.oracle, b.detail);
}

}  // namespace

std::string FormatFailure(const ConformFailure& failure) {
  // Everything needed to reproduce: seed is the derived per-case Rng seed
  // (informational); codec + eb + family + index + the run's base seed
  // regenerate the exact cell via MakeCorpusCase.
  return "[" + failure.codec + " eb=" + FormatBound(failure.error_bound) +
         " " + failure.family + "#" + std::to_string(failure.case_index) +
         " seed=" + std::to_string(failure.seed) + "] " + failure.oracle +
         ": " + failure.detail;
}

Result<ConformSummary> RunConform(const ConformOptions& options) {
  if (options.cases_per_family <= 0) {
    return Status::InvalidArgument("cases_per_family must be positive");
  }
  const std::vector<std::string>& codec_names =
      options.codecs.empty() ? AllCodecNames() : options.codecs;
  std::vector<double> bounds = options.error_bounds;
  if (bounds.empty()) bounds = {0.01, 0.05, 0.2, 0.8};
  for (const double eb : bounds) {
    if (Status s = compress::CheckErrorBound(eb); !s.ok()) return s;
  }

  // Resolve every codec up front so an unknown name fails the run instead of
  // silently shrinking the grid.
  std::vector<std::unique_ptr<compress::Compressor>> codecs;
  codecs.reserve(codec_names.size());
  for (const std::string& name : codec_names) {
    Result<std::unique_ptr<compress::Compressor>> codec =
        compress::MakeCompressor(name);
    if (!codec.ok()) return codec.status();
    codecs.push_back(std::move(*codec));
  }

  const std::vector<CorpusCase> corpus =
      GenerateCorpus(options.base_seed, options.cases_per_family);

  ConformSummary summary;
  std::mutex mu;
  ThreadPool pool(options.jobs);

  for (const std::unique_ptr<compress::Compressor>& codec_ptr : codecs) {
    const compress::Compressor& codec = *codec_ptr;
    const bool lossless = IsLosslessCodec(codec.name());
    // Lossless codecs ignore ε, so a single pass covers them.
    const size_t bound_count = lossless ? 1 : bounds.size();
    for (size_t b = 0; b < bound_count; ++b) {
      const double eb = bounds[b];
      for (const CorpusCase& c : corpus) {
        pool.Submit([&codec, &c, eb, b, &options, &summary, &mu] {
          std::vector<OracleFailure> failures = RunOracles(codec, c.series, eb);

          std::vector<OracleFailure> mutant_failures;
          size_t mutants = 0;
          // The mutation pass fuzzes the decoder, which never sees ε, so run
          // it once per (codec, case) — at the first bound only.
          if (options.mutate && b == 0) {
            Result<std::vector<uint8_t>> blob = codec.Compress(c.series, eb);
            if (blob.ok()) {
              const uint64_t mseed = TagSeed(c.seed, "mutate");
              const std::vector<Mutant> batch =
                  GenerateMutants(*blob, mseed, options.random_bit_flips);
              mutants = batch.size();
              for (const Mutant& m : batch) {
                if (auto f = CheckMutantDecode(codec, m); f.has_value()) {
                  mutant_failures.push_back(std::move(*f));
                }
              }
            }
          }

          std::lock_guard<std::mutex> lock(mu);
          ++summary.cases;
          summary.mutants += mutants;
          for (std::vector<OracleFailure>* source :
               {&failures, &mutant_failures}) {
            for (OracleFailure& f : *source) {
              summary.failures.push_back(ConformFailure{
                  std::string(codec.name()), eb, c.family, c.index, c.seed,
                  std::move(f.oracle), std::move(f.detail)});
            }
          }
        });
      }
    }
  }
  pool.Wait();

  // Execution order is pool-dependent; the report is not.
  std::sort(summary.failures.begin(), summary.failures.end(), FailureLess);
  return summary;
}

}  // namespace lossyts::conform
