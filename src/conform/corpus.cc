#include "conform/corpus.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

#include "core/rng.h"
#include "core/seed.h"

namespace lossyts::conform {

namespace {

// Kept modest so a full corpus builds in milliseconds; the "lengths" family
// overrides this to cross the 65535/65536 segment-cap boundary.
constexpr size_t kDefaultLength = 512;

int64_t RandomTimestamp(Rng& rng) {
  // Stay inside i32 so the shared header can represent it; vary it so the
  // header round-trip oracle sees different values per case.
  return static_cast<int64_t>(rng.UniformInt(4000000000ull)) - 2000000000ll;
}

int32_t RandomInterval(Rng& rng) {
  return static_cast<int32_t>(1 + rng.UniformInt(65535));
}

std::vector<double> MakeConstant(Rng& rng, size_t n) {
  std::vector<double> v(n, rng.Uniform(-1000.0, 1000.0));
  return v;
}

std::vector<double> MakeZeroBlocks(Rng& rng, size_t n) {
  // Day/night alternation: positive "daytime" signal separated by exact-zero
  // "night" stretches, the Solar failure mode the paper calls out.
  std::vector<double> v;
  v.reserve(n);
  bool day = rng.UniformInt(2) == 0;
  while (v.size() < n) {
    const size_t run = 1 + rng.UniformInt(32);
    for (size_t i = 0; i < run && v.size() < n; ++i) {
      v.push_back(day ? rng.Uniform(0.5, 50.0) : 0.0);
    }
    day = !day;
  }
  return v;
}

std::vector<double> MakeTiny(Rng& rng, size_t n) {
  // Magnitudes from deep-subnormal up to 1e-30: ε·|v| underflows SZ's f32
  // per-block bound to zero and stresses allowance arithmetic everywhere.
  std::vector<double> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double exponent = rng.Uniform(-320.0, -30.0);
    const double sign = rng.UniformInt(2) == 0 ? 1.0 : -1.0;
    v.push_back(sign * std::pow(10.0, exponent));
  }
  return v;
}

std::vector<double> MakeSignFlips(Rng& rng, size_t n) {
  // Small values alternating sign, with exact zeros interleaved: every zero
  // crossing forces a zero-width or sign-straddling allowance.
  std::vector<double> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.UniformInt(5) == 0) {
      v.push_back(0.0);
    } else {
      const double sign = (i % 2 == 0) ? 1.0 : -1.0;
      v.push_back(sign * rng.Uniform(1e-6, 2.0));
    }
  }
  return v;
}

std::vector<double> MakeWideRange(Rng& rng, size_t n) {
  // Exponents -12..12 inside a single SZ block: the conservative per-block
  // δ = ε·min|v| is ~24 decades below the large values' allowance.
  std::vector<double> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double exponent = rng.Uniform(-12.0, 12.0);
    const double sign = rng.UniformInt(2) == 0 ? 1.0 : -1.0;
    v.push_back(sign * std::pow(10.0, exponent));
  }
  return v;
}

std::vector<double> MakeSteep(Rng& rng, size_t n) {
  // Alternation between ±c·DBL_MAX: consecutive deltas overflow to ±inf in
  // both Swing's slope intervals and SZ's f32 block bound.
  std::vector<double> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double c = rng.Uniform(0.1, 0.9);
    const double sign = (i % 2 == 0) ? 1.0 : -1.0;
    v.push_back(sign * c * std::numeric_limits<double>::max());
  }
  return v;
}

std::vector<double> MakeRandomWalk(Rng& rng, size_t n) {
  std::vector<double> v;
  v.reserve(n);
  double level = rng.Uniform(-10.0, 10.0);
  for (size_t i = 0; i < n; ++i) {
    level += rng.Normal(0.0, 1.0);
    // Occasional exact zeros keep the exact-zero oracle live on this family.
    v.push_back(rng.UniformInt(64) == 0 ? 0.0 : level);
  }
  return v;
}

// Lengths that straddle the u16 segment cap and the degenerate minimum.
constexpr size_t kLengths[] = {1, 65535, 2, 65536, 5, 65537};

std::vector<double> MakeLengthsCase(Rng& rng, int index) {
  const size_t n = kLengths[static_cast<size_t>(index) %
                            (sizeof(kLengths) / sizeof(kLengths[0]))];
  std::vector<double> v;
  v.reserve(n);
  double level = rng.Uniform(0.0, 100.0);
  for (size_t i = 0; i < n; ++i) {
    level += rng.Uniform(-0.5, 0.5);
    v.push_back(level);
  }
  return v;
}

}  // namespace

const std::vector<std::string>& CorpusFamilies() {
  static const std::vector<std::string> kFamilies = {
      "constant", "zero-blocks", "tiny",    "sign-flips",
      "wide-range", "steep",     "lengths", "random-walk"};
  return kFamilies;
}

Result<CorpusCase> MakeCorpusCase(std::string_view family, int index,
                                  uint64_t base_seed) {
  const uint64_t seed =
      MixSeed(TagSeed(base_seed, family), static_cast<uint64_t>(index));
  Rng rng(seed);
  const int64_t start = RandomTimestamp(rng);
  const int32_t interval = RandomInterval(rng);

  std::vector<double> values;
  if (family == "constant") {
    values = MakeConstant(rng, kDefaultLength);
  } else if (family == "zero-blocks") {
    values = MakeZeroBlocks(rng, kDefaultLength);
  } else if (family == "tiny") {
    values = MakeTiny(rng, kDefaultLength);
  } else if (family == "sign-flips") {
    values = MakeSignFlips(rng, kDefaultLength);
  } else if (family == "wide-range") {
    values = MakeWideRange(rng, kDefaultLength);
  } else if (family == "steep") {
    values = MakeSteep(rng, kDefaultLength);
  } else if (family == "lengths") {
    values = MakeLengthsCase(rng, index);
  } else if (family == "random-walk") {
    values = MakeRandomWalk(rng, kDefaultLength);
  } else {
    return Status::NotFound("unknown corpus family: " + std::string(family));
  }

  CorpusCase out;
  out.family = std::string(family);
  out.index = index;
  out.seed = seed;
  out.series = TimeSeries(start, interval, std::move(values));
  return out;
}

std::vector<CorpusCase> GenerateCorpus(uint64_t base_seed,
                                       int cases_per_family) {
  std::vector<CorpusCase> corpus;
  corpus.reserve(CorpusFamilies().size() *
                 static_cast<size_t>(cases_per_family > 0 ? cases_per_family
                                                          : 0));
  for (const std::string& family : CorpusFamilies()) {
    for (int i = 0; i < cases_per_family; ++i) {
      Result<CorpusCase> c = MakeCorpusCase(family, i, base_seed);
      // Families are enumerated from CorpusFamilies(), so NotFound cannot
      // happen here; skip defensively rather than abort.
      if (c.ok()) corpus.push_back(std::move(*c));
    }
  }
  return corpus;
}

}  // namespace lossyts::conform
