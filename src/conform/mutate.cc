#include "conform/mutate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "core/rng.h"
#include "serve/wal.h"
#include "store/format.h"
#include "store/query.h"
#include "store/reader.h"

namespace lossyts::conform {

namespace {

// Shared header layout offsets (compress/header.h).
constexpr size_t kPointCountOffset = 7;
constexpr size_t kHeaderSize = 11;
constexpr size_t kFirstPayloadCountOffset = 11;

uint32_t ReadU32LE(const std::vector<uint8_t>& blob, size_t offset) {
  uint32_t v = 0;
  std::memcpy(&v, blob.data() + offset, sizeof(v));
  return v;
}

void WriteU32LE(std::vector<uint8_t>& blob, size_t offset, uint32_t v) {
  std::memcpy(blob.data() + offset, &v, sizeof(v));
}

void WriteU16LE(std::vector<uint8_t>& blob, size_t offset, uint16_t v) {
  std::memcpy(blob.data() + offset, &v, sizeof(v));
}

std::string Hex(uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%llx",
                static_cast<unsigned long long>(v));
  return buffer;
}

void AddTruncations(const std::vector<uint8_t>& blob,
                    std::vector<Mutant>& out) {
  const size_t candidates[] = {0,  1,  5,          10,
                               11, 15, blob.size() / 2,
                               blob.size() > 0 ? blob.size() - 1 : 0};
  size_t last = blob.size();  // Skip the identity "truncation".
  for (const size_t at : candidates) {
    if (at >= blob.size() || at == last) continue;
    last = at;
    out.push_back({"truncate@" + std::to_string(at),
                   std::vector<uint8_t>(blob.begin(),
                                        blob.begin() + static_cast<long>(at))});
  }
}

void AddHeaderBitFlips(const std::vector<uint8_t>& blob,
                       std::vector<Mutant>& out) {
  const size_t limit = std::min(blob.size(), kHeaderSize);
  for (size_t byte = 0; byte < limit; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Mutant m{"bit-flip@" + std::to_string(byte) + "." + std::to_string(bit),
               blob};
      m.blob[byte] ^= static_cast<uint8_t>(1u << bit);
      out.push_back(std::move(m));
    }
  }
}

void AddCountSplices(const std::vector<uint8_t>& blob, size_t offset,
                     const char* what, std::vector<Mutant>& out) {
  if (blob.size() < offset + 4) return;
  const uint32_t old = ReadU32LE(blob, offset);
  const uint32_t values[] = {0u,       1u,          old - 1u, old + 1u,
                             old * 2u, 0x7FFFFFFFu, 0xFFFFFFFFu};
  for (const uint32_t v : values) {
    if (v == old) continue;
    Mutant m{std::string(what) + "=" + Hex(v), blob};
    WriteU32LE(m.blob, offset, v);
    out.push_back(std::move(m));
  }
}

void AddSegmentLengthSplices(const std::vector<uint8_t>& blob,
                             std::vector<Mutant>& out) {
  // First u16 inside the first payload record: the segment length for the
  // length-prefixed codecs (PMC/Swing), arbitrary payload bytes for the rest
  // — either way the decoder must cope.
  const size_t offset = kFirstPayloadCountOffset + 4;
  if (blob.size() < offset + 2) return;
  for (const uint16_t v : {uint16_t{0}, uint16_t{0xFFFF}}) {
    Mutant m{"seg-len=" + Hex(v), blob};
    WriteU16LE(m.blob, offset, v);
    out.push_back(std::move(m));
  }
}

void AddRandomMutations(const std::vector<uint8_t>& blob, uint64_t seed,
                        int count, std::vector<Mutant>& out) {
  if (blob.empty()) return;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    const size_t byte = rng.UniformInt(blob.size());
    if (rng.UniformInt(2) == 0) {
      const int bit = static_cast<int>(rng.UniformInt(8));
      Mutant m{"rand-flip#" + std::to_string(i) + "@" + std::to_string(byte) +
                   "." + std::to_string(bit),
               blob};
      m.blob[byte] ^= static_cast<uint8_t>(1u << bit);
      out.push_back(std::move(m));
    } else {
      const uint8_t v = static_cast<uint8_t>(rng.UniformInt(256));
      Mutant m{"rand-byte#" + std::to_string(i) + "@" + std::to_string(byte) +
                   "=" + Hex(v),
               blob};
      m.blob[byte] = v;
      out.push_back(std::move(m));
    }
  }
}

}  // namespace

std::vector<Mutant> GenerateMutants(const std::vector<uint8_t>& blob,
                                    uint64_t seed, int random_bit_flips) {
  std::vector<Mutant> out;
  AddTruncations(blob, out);
  AddHeaderBitFlips(blob, out);
  AddCountSplices(blob, kPointCountOffset, "num-points", out);
  AddCountSplices(blob, kFirstPayloadCountOffset, "payload-count", out);
  AddSegmentLengthSplices(blob, out);
  AddRandomMutations(blob, seed, random_bit_flips, out);
  return out;
}

std::optional<OracleFailure> CheckMutantDecode(
    const compress::Compressor& codec, const Mutant& mutant) {
  Result<TimeSeries> rec = codec.Decompress(mutant.blob);
  // Any clean rejection satisfies the contract; only an OK result carries an
  // obligation. A flip may of course leave the blob valid (payload bits of a
  // lossless codec), in which case the decode must still be self-consistent:
  // the point count the header claims is the point count returned.
  if (!rec.ok()) return std::nullopt;
  if (mutant.blob.size() >= kPointCountOffset + 4) {
    const uint32_t claimed = ReadU32LE(mutant.blob, kPointCountOffset);
    if (rec->size() != claimed) {
      return OracleFailure{
          "mutant-accept",
          "mutant '" + mutant.kind + "' decoded OK with " +
              std::to_string(rec->size()) + " points but the header claims " +
              std::to_string(claimed),
          0};
    }
  }
  return std::nullopt;
}

namespace {

void WriteU64LE(std::vector<uint8_t>& blob, size_t offset, uint64_t v) {
  std::memcpy(blob.data() + offset, &v, sizeof(v));
}

void AddBitFlipRange(const std::vector<uint8_t>& image, size_t begin,
                     size_t count, const char* what,
                     std::vector<Mutant>& out) {
  const size_t end = std::min(image.size(), begin + count);
  for (size_t byte = begin; byte < end; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Mutant m{std::string(what) + "-flip@" + std::to_string(byte) + "." +
                   std::to_string(bit),
               image};
      m.blob[byte] ^= static_cast<uint8_t>(1u << bit);
      out.push_back(std::move(m));
    }
  }
}

void AddStoreTruncation(const std::vector<uint8_t>& image, size_t at,
                        std::vector<Mutant>& out) {
  if (at >= image.size()) return;
  for (const Mutant& existing : out) {
    if (existing.blob.size() == at &&
        existing.kind.rfind("truncate@", 0) == 0) {
      return;  // Deduplicate identical cut points.
    }
  }
  out.push_back({"truncate@" + std::to_string(at),
                 std::vector<uint8_t>(image.begin(),
                                      image.begin() + static_cast<long>(at))});
}

void AddU32Splices(const std::vector<uint8_t>& image, size_t offset,
                   const char* what, std::vector<Mutant>& out) {
  if (image.size() < offset + 4) return;
  const uint32_t old = ReadU32LE(image, offset);
  const uint32_t values[] = {0u,       1u,          old - 1u, old + 1u,
                             old * 2u, 0x7FFFFFFFu, 0xFFFFFFFFu};
  for (const uint32_t v : values) {
    if (v == old) continue;
    Mutant m{std::string(what) + "=" + Hex(v), image};
    WriteU32LE(m.blob, offset, v);
    out.push_back(std::move(m));
  }
}

// Maximum |a - b| the fp-rounding gap between a closed-form pushdown
// aggregate and the decode-then-aggregate reference can explain. Anything
// larger is a genuinely different answer.
bool AggregatesAgree(double pushdown, double decode) {
  const double scale = std::max({1.0, std::fabs(pushdown), std::fabs(decode)});
  return std::fabs(pushdown - decode) <= 1e-6 * scale;
}

}  // namespace

std::vector<Mutant> GenerateStoreMutants(const std::vector<uint8_t>& image,
                                         uint64_t seed,
                                         int random_bit_flips) {
  std::vector<Mutant> out;

  // Structural offsets, recovered by opening the (valid) input image. If it
  // does not open, only the structure-blind mutations apply.
  Result<std::unique_ptr<store::StoreReader>> opened =
      store::StoreReader::OpenBytes(image);
  if (opened.ok()) {
    const store::StoreReader& reader = **opened;
    uint64_t index_offset = image.size();
    if (image.size() >= store::kFooterSize) {
      uint64_t off = 0;
      std::memcpy(&off, image.data() + image.size() - 16, sizeof(off));
      index_offset = off;
    }
    const size_t data_begin =
        reader.chunks().empty() ? static_cast<size_t>(index_offset)
                                : static_cast<size_t>(reader.chunks()[0].offset);

    // Torn-write truncations: inside the file header, at every structural
    // boundary of the first frame, mid-payload, at the index and the footer.
    AddStoreTruncation(image, 0, out);
    AddStoreTruncation(image, 1, out);
    AddStoreTruncation(image, data_begin / 2, out);
    AddStoreTruncation(image, data_begin, out);
    if (!reader.chunks().empty()) {
      const store::ChunkInfo& first = reader.chunks()[0];
      const size_t frame = static_cast<size_t>(first.offset);
      AddStoreTruncation(image, frame + 4, out);
      AddStoreTruncation(image, frame + 8, out);
      AddStoreTruncation(image, frame + 8 + first.payload_size / 2, out);
      AddStoreTruncation(image, frame + 8 + first.payload_size, out);
      AddStoreTruncation(
          image, frame + store::kChunkFrameOverhead + first.payload_size, out);

      // Frame framing fields: magic + payload size, payload edges.
      AddBitFlipRange(image, frame, 8, "frame", out);
      AddBitFlipRange(image, frame + 8, 1, "payload-head", out);
      AddBitFlipRange(image, frame + 8 + first.payload_size - 1, 1,
                      "payload-tail", out);
      AddU32Splices(image, frame + 4, "frame-size", out);
    }
    if (index_offset < image.size()) {
      const size_t index = static_cast<size_t>(index_offset);
      AddStoreTruncation(image, index, out);
      AddStoreTruncation(image, index + 6, out);
      AddBitFlipRange(image, index, 8, "index-head", out);
      AddU32Splices(image, index + 4, "index-count", out);
      if (!reader.chunks().empty()) {
        // First index entry: offset u64, first_timestamp i64, num_points u32.
        AddU32Splices(image, index + 8 + 16, "index-points", out);
      }
    }
    if (image.size() >= store::kFooterSize) {
      const size_t footer = image.size() - store::kFooterSize;
      AddStoreTruncation(image, footer, out);
      AddStoreTruncation(image, footer + 10, out);
      AddStoreTruncation(image, image.size() - 1, out);
      AddBitFlipRange(image, footer, store::kFooterSize, "footer", out);
      for (const uint64_t v :
           {uint64_t{0}, uint64_t{1}, static_cast<uint64_t>(image.size()),
            static_cast<uint64_t>(image.size()) * 2, ~uint64_t{0}}) {
        Mutant m{"footer-offset=" + Hex(v), image};
        WriteU64LE(m.blob, footer + 4, v);
        out.push_back(std::move(m));
      }
    }

    // File header: every bit, as for codec blobs.
    AddBitFlipRange(image, 0, data_begin, "header", out);
  }

  AddRandomMutations(image, seed, random_bit_flips, out);
  return out;
}

std::vector<Mutant> GenerateWalMutants(const std::vector<uint8_t>& image,
                                       uint64_t seed, int random_bit_flips) {
  std::vector<Mutant> out;

  // Torn-write truncations inside the header.
  AddStoreTruncation(image, 0, out);
  AddStoreTruncation(image, 1, out);
  AddStoreTruncation(image, serve::kWalHeaderSize - 1, out);
  AddStoreTruncation(image, serve::kWalHeaderSize, out);
  AddBitFlipRange(image, 0, serve::kWalHeaderSize, "wal-header", out);

  // Structure of the first record, recovered by replaying the (valid) input.
  Result<serve::WalReplay> replay = serve::ReplayWalBytes(image);
  if (replay.ok() && !replay->records.empty()) {
    const size_t frame = serve::kWalHeaderSize;
    const size_t frame_size =
        serve::EncodeWalRecord(replay->records[0]).size();
    const size_t payload_size = frame_size - serve::kWalFrameOverhead;
    AddStoreTruncation(image, frame + 4, out);      // After the magic.
    AddStoreTruncation(image, frame + 8, out);      // After the size field.
    AddStoreTruncation(image, frame + 8 + payload_size / 2, out);
    AddStoreTruncation(image, frame + 8 + payload_size, out);  // Before CRC.
    AddStoreTruncation(image, frame + frame_size - 1, out);
    AddStoreTruncation(image, frame + frame_size, out);
    AddBitFlipRange(image, frame, 8, "wal-frame", out);
    AddBitFlipRange(image, frame + 8, 1, "wal-payload-head", out);
    AddBitFlipRange(image, frame + 8 + payload_size - 1, 1,
                    "wal-payload-tail", out);
    AddBitFlipRange(image, frame + 8 + payload_size, 4, "wal-crc", out);
    AddU32Splices(image, frame + 4, "wal-record-size", out);
  }

  AddRandomMutations(image, seed, random_bit_flips, out);
  return out;
}

std::optional<OracleFailure> CheckWalMutant(const Mutant& mutant) {
  Result<serve::WalReplay> replay = serve::ReplayWalBytes(mutant.blob);
  // Corruption (unreadable header) is a clean rejection; an OK replay must
  // be exactly the longest valid prefix of the image.
  if (!replay.ok()) return std::nullopt;

  auto fail = [&mutant](const std::string& detail) {
    return OracleFailure{"wal-mutant-accept",
                         "mutant '" + mutant.kind + "': " + detail, 0};
  };

  if (replay->valid_bytes < serve::kWalHeaderSize ||
      replay->valid_bytes > mutant.blob.size()) {
    return fail("replay claims a valid prefix of " +
                std::to_string(replay->valid_bytes) + " bytes in a " +
                std::to_string(mutant.blob.size()) + " byte image");
  }
  if (replay->clean != (replay->valid_bytes == mutant.blob.size())) {
    return fail("clean flag disagrees with the valid prefix length");
  }

  // Bit-exact round trip: the header plus the re-encoded records must
  // reproduce the valid prefix, byte for byte — anything else means the
  // parser accepted a record it could not have been handed.
  std::vector<uint8_t> rebuilt(mutant.blob.begin(),
                               mutant.blob.begin() + serve::kWalHeaderSize);
  for (const serve::WalRecord& record : replay->records) {
    const std::vector<uint8_t> frame = serve::EncodeWalRecord(record);
    rebuilt.insert(rebuilt.end(), frame.begin(), frame.end());
  }
  if (rebuilt.size() != replay->valid_bytes ||
      std::memcmp(rebuilt.data(), mutant.blob.data(), rebuilt.size()) != 0) {
    return fail("re-encoding the replayed records does not reproduce the "
                "valid prefix");
  }
  return std::nullopt;
}

std::optional<OracleFailure> CheckStoreMutant(const Mutant& mutant) {
  // Any Status at any depth is a clean rejection: the contract obliges only
  // OK answers, which must then be self-consistent.
  Result<std::unique_ptr<store::StoreReader>> opened =
      store::StoreReader::OpenBytes(mutant.blob);
  if (!opened.ok()) return std::nullopt;
  const store::StoreReader& reader = **opened;

  auto fail = [&mutant](const std::string& detail) {
    return OracleFailure{"store-mutant-accept",
                         "mutant '" + mutant.kind + "': " + detail, 0};
  };

  Result<TimeSeries> all = reader.ReadAll();
  if (!all.ok()) return std::nullopt;
  if (all->size() != reader.total_points()) {
    return fail("full decode returned " + std::to_string(all->size()) +
                " points but the store declares " +
                std::to_string(reader.total_points()));
  }
  if (reader.total_points() == 0) return std::nullopt;
  if (all->start_timestamp() != reader.start_timestamp() ||
      all->interval_seconds() != reader.interval_seconds()) {
    return fail("full decode disagrees with the store's time grid");
  }

  // Point reads at the edges must match the materialized series.
  Result<double> first = reader.ReadPoint(reader.start_timestamp());
  Result<double> last = reader.ReadPoint(reader.last_timestamp());
  if (first.ok() && *first != all->values().front()) {
    return fail("point read of the first timestamp disagrees with decode");
  }
  if (last.ok() && *last != all->values().back()) {
    return fail("point read of the last timestamp disagrees with decode");
  }

  // Pushdown vs decode-then-aggregate over the whole extent.
  for (const store::AggregateKind kind :
       {store::AggregateKind::kCount, store::AggregateKind::kSum,
        store::AggregateKind::kMin, store::AggregateKind::kMax,
        store::AggregateKind::kMean}) {
    store::AggregateOptions pushdown;
    store::AggregateOptions decode;
    decode.allow_pushdown = false;
    Result<store::AggregateResult> a = store::AggregateRange(
        reader, kind, reader.start_timestamp(), reader.last_timestamp(),
        pushdown);
    Result<store::AggregateResult> b = store::AggregateRange(
        reader, kind, reader.start_timestamp(), reader.last_timestamp(),
        decode);
    if (!a.ok() || !b.ok()) return std::nullopt;
    if (a->count != reader.total_points() || b->count != a->count) {
      return fail(std::string(store::AggregateKindName(kind)) +
                  " count disagrees with the declared point count");
    }
    if (!AggregatesAgree(a->value, b->value)) {
      return fail(std::string(store::AggregateKindName(kind)) +
                  " pushdown answer " + std::to_string(a->value) +
                  " disagrees with decode answer " + std::to_string(b->value));
    }
  }
  return std::nullopt;
}

}  // namespace lossyts::conform
