#include "conform/mutate.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "core/rng.h"

namespace lossyts::conform {

namespace {

// Shared header layout offsets (compress/header.h).
constexpr size_t kPointCountOffset = 7;
constexpr size_t kHeaderSize = 11;
constexpr size_t kFirstPayloadCountOffset = 11;

uint32_t ReadU32LE(const std::vector<uint8_t>& blob, size_t offset) {
  uint32_t v = 0;
  std::memcpy(&v, blob.data() + offset, sizeof(v));
  return v;
}

void WriteU32LE(std::vector<uint8_t>& blob, size_t offset, uint32_t v) {
  std::memcpy(blob.data() + offset, &v, sizeof(v));
}

void WriteU16LE(std::vector<uint8_t>& blob, size_t offset, uint16_t v) {
  std::memcpy(blob.data() + offset, &v, sizeof(v));
}

std::string Hex(uint64_t v) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%llx",
                static_cast<unsigned long long>(v));
  return buffer;
}

void AddTruncations(const std::vector<uint8_t>& blob,
                    std::vector<Mutant>& out) {
  const size_t candidates[] = {0,  1,  5,          10,
                               11, 15, blob.size() / 2,
                               blob.size() > 0 ? blob.size() - 1 : 0};
  size_t last = blob.size();  // Skip the identity "truncation".
  for (const size_t at : candidates) {
    if (at >= blob.size() || at == last) continue;
    last = at;
    out.push_back({"truncate@" + std::to_string(at),
                   std::vector<uint8_t>(blob.begin(),
                                        blob.begin() + static_cast<long>(at))});
  }
}

void AddHeaderBitFlips(const std::vector<uint8_t>& blob,
                       std::vector<Mutant>& out) {
  const size_t limit = std::min(blob.size(), kHeaderSize);
  for (size_t byte = 0; byte < limit; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Mutant m{"bit-flip@" + std::to_string(byte) + "." + std::to_string(bit),
               blob};
      m.blob[byte] ^= static_cast<uint8_t>(1u << bit);
      out.push_back(std::move(m));
    }
  }
}

void AddCountSplices(const std::vector<uint8_t>& blob, size_t offset,
                     const char* what, std::vector<Mutant>& out) {
  if (blob.size() < offset + 4) return;
  const uint32_t old = ReadU32LE(blob, offset);
  const uint32_t values[] = {0u,       1u,          old - 1u, old + 1u,
                             old * 2u, 0x7FFFFFFFu, 0xFFFFFFFFu};
  for (const uint32_t v : values) {
    if (v == old) continue;
    Mutant m{std::string(what) + "=" + Hex(v), blob};
    WriteU32LE(m.blob, offset, v);
    out.push_back(std::move(m));
  }
}

void AddSegmentLengthSplices(const std::vector<uint8_t>& blob,
                             std::vector<Mutant>& out) {
  // First u16 inside the first payload record: the segment length for the
  // length-prefixed codecs (PMC/Swing), arbitrary payload bytes for the rest
  // — either way the decoder must cope.
  const size_t offset = kFirstPayloadCountOffset + 4;
  if (blob.size() < offset + 2) return;
  for (const uint16_t v : {uint16_t{0}, uint16_t{0xFFFF}}) {
    Mutant m{"seg-len=" + Hex(v), blob};
    WriteU16LE(m.blob, offset, v);
    out.push_back(std::move(m));
  }
}

void AddRandomMutations(const std::vector<uint8_t>& blob, uint64_t seed,
                        int count, std::vector<Mutant>& out) {
  if (blob.empty()) return;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    const size_t byte = rng.UniformInt(blob.size());
    if (rng.UniformInt(2) == 0) {
      const int bit = static_cast<int>(rng.UniformInt(8));
      Mutant m{"rand-flip#" + std::to_string(i) + "@" + std::to_string(byte) +
                   "." + std::to_string(bit),
               blob};
      m.blob[byte] ^= static_cast<uint8_t>(1u << bit);
      out.push_back(std::move(m));
    } else {
      const uint8_t v = static_cast<uint8_t>(rng.UniformInt(256));
      Mutant m{"rand-byte#" + std::to_string(i) + "@" + std::to_string(byte) +
                   "=" + Hex(v),
               blob};
      m.blob[byte] = v;
      out.push_back(std::move(m));
    }
  }
}

}  // namespace

std::vector<Mutant> GenerateMutants(const std::vector<uint8_t>& blob,
                                    uint64_t seed, int random_bit_flips) {
  std::vector<Mutant> out;
  AddTruncations(blob, out);
  AddHeaderBitFlips(blob, out);
  AddCountSplices(blob, kPointCountOffset, "num-points", out);
  AddCountSplices(blob, kFirstPayloadCountOffset, "payload-count", out);
  AddSegmentLengthSplices(blob, out);
  AddRandomMutations(blob, seed, random_bit_flips, out);
  return out;
}

std::optional<OracleFailure> CheckMutantDecode(
    const compress::Compressor& codec, const Mutant& mutant) {
  Result<TimeSeries> rec = codec.Decompress(mutant.blob);
  // Any clean rejection satisfies the contract; only an OK result carries an
  // obligation. A flip may of course leave the blob valid (payload bits of a
  // lossless codec), in which case the decode must still be self-consistent:
  // the point count the header claims is the point count returned.
  if (!rec.ok()) return std::nullopt;
  if (mutant.blob.size() >= kPointCountOffset + 4) {
    const uint32_t claimed = ReadU32LE(mutant.blob, kPointCountOffset);
    if (rec->size() != claimed) {
      return OracleFailure{
          "mutant-accept",
          "mutant '" + mutant.kind + "' decoded OK with " +
              std::to_string(rec->size()) + " points but the header claims " +
              std::to_string(claimed),
          0};
    }
  }
  return std::nullopt;
}

}  // namespace lossyts::conform
