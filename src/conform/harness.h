#ifndef LOSSYTS_CONFORM_HARNESS_H_
#define LOSSYTS_CONFORM_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace lossyts::conform {

/// Configuration for one conformance run.
struct ConformOptions {
  /// Codec names (compress::MakeCompressor spelling). Empty selects all six.
  std::vector<std::string> codecs;
  /// Relative error bounds for the lossy codecs. Empty selects a spread of
  /// the paper's sweep: {0.01, 0.05, 0.2, 0.8}. Lossless codecs run once.
  std::vector<double> error_bounds;
  /// Corpus cases per family (see conform/corpus.h). >= 6 cycles the whole
  /// "lengths" family across the 65535/65536/65537 boundary.
  int cases_per_family = 4;
  /// Base seed: the only input needed (with family + index, both printed on
  /// failure) to regenerate any failing case.
  uint64_t base_seed = 1;
  /// Seeded random bit flips/byte splices per mutated blob, on top of the
  /// deterministic structure-aware battery. 0 disables only the random part.
  int random_bit_flips = 32;
  /// Worker threads; 0 resolves to ThreadPool::DefaultJobs().
  int jobs = 0;
  /// Run the decoder-fuzzing (mutation) pass in addition to the oracles.
  bool mutate = true;
};

/// One oracle or mutation-contract violation, with every coordinate needed
/// to reproduce it deterministically.
struct ConformFailure {
  std::string codec;
  double error_bound = 0.0;
  std::string family;
  int case_index = 0;
  uint64_t seed = 0;
  std::string oracle;
  std::string detail;
};

/// Aggregate outcome of a run. `failures` is empty iff every cell conformed.
struct ConformSummary {
  size_t cases = 0;    ///< (codec, ε, corpus case) oracle cells executed.
  size_t mutants = 0;  ///< Mutated blobs fed to decoders.
  std::vector<ConformFailure> failures;
};

/// Stable one-line rendering: codec, ε, family/index, seed, oracle, detail.
std::string FormatFailure(const ConformFailure& failure);

/// Runs the full conformance grid — corpus × codecs × error bounds through
/// the oracle battery, plus one mutation pass per (codec, case) — on a
/// thread pool. Deterministic in the options: cell identities, not execution
/// order, derive all randomness, and failures are sorted before returning.
/// Errors (unknown codec name, invalid option) come back as a Status; oracle
/// violations come back inside the summary.
Result<ConformSummary> RunConform(const ConformOptions& options);

}  // namespace lossyts::conform

#endif  // LOSSYTS_CONFORM_HARNESS_H_
