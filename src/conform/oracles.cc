#include "conform/oracles.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

namespace lossyts::conform {

namespace {

std::string FormatValue(double v) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

bool IsLosslessCodec(std::string_view name) {
  return name == "GORILLA" || name == "CHIMP";
}

std::optional<OracleFailure> CheckShape(const TimeSeries& original,
                                        const TimeSeries& decompressed) {
  if (decompressed.size() != original.size()) {
    return OracleFailure{
        "shape",
        "decompressed " + std::to_string(decompressed.size()) +
            " points, expected " + std::to_string(original.size()),
        0};
  }
  return std::nullopt;
}

std::optional<OracleFailure> CheckHeaderRoundTrip(
    const TimeSeries& original, const TimeSeries& decompressed) {
  if (decompressed.start_timestamp() != original.start_timestamp()) {
    return OracleFailure{
        "header",
        "first timestamp " + std::to_string(decompressed.start_timestamp()) +
            " != " + std::to_string(original.start_timestamp()),
        0};
  }
  if (decompressed.interval_seconds() != original.interval_seconds()) {
    return OracleFailure{
        "header",
        "sampling interval " +
            std::to_string(decompressed.interval_seconds()) +
            " != " + std::to_string(original.interval_seconds()),
        0};
  }
  return std::nullopt;
}

std::optional<OracleFailure> CheckPointwiseBound(
    const TimeSeries& original, const TimeSeries& decompressed,
    double error_bound) {
  if (decompressed.size() != original.size()) return std::nullopt;
  size_t worst = 0;
  double worst_excess = 0.0;
  bool violated = false;
  for (size_t i = 0; i < original.size(); ++i) {
    const compress::Allowance a =
        compress::RelativeAllowance(original[i], error_bound);
    const double rec = decompressed[i];
    // The negated comparison also trips on NaN reconstructions.
    if (!(rec >= a.lo && rec <= a.hi)) {
      const double excess =
          std::isnan(rec) ? std::numeric_limits<double>::infinity()
                          : std::max(a.lo - rec, rec - a.hi);
      if (!violated || excess > worst_excess) {
        worst = i;
        worst_excess = excess;
      }
      violated = true;
    }
  }
  if (!violated) return std::nullopt;
  const compress::Allowance a =
      compress::RelativeAllowance(original[worst], error_bound);
  return OracleFailure{
      "pointwise-bound",
      "worst violator at index " + std::to_string(worst) + ": value " +
          FormatValue(original[worst]) + " reconstructed as " +
          FormatValue(decompressed[worst]) + ", allowance [" +
          FormatValue(a.lo) + ", " + FormatValue(a.hi) + "], excess " +
          FormatValue(worst_excess),
      worst};
}

std::optional<OracleFailure> CheckExactZeros(const TimeSeries& original,
                                             const TimeSeries& decompressed) {
  if (decompressed.size() != original.size()) return std::nullopt;
  for (size_t i = 0; i < original.size(); ++i) {
    if (original[i] == 0.0 && decompressed[i] != 0.0) {
      return OracleFailure{
          "exact-zero",
          "zero at index " + std::to_string(i) + " reconstructed as " +
              FormatValue(decompressed[i]),
          i};
    }
  }
  return std::nullopt;
}

std::optional<OracleFailure> CheckLossless(const TimeSeries& original,
                                           const TimeSeries& decompressed) {
  if (decompressed.size() != original.size()) return std::nullopt;
  for (size_t i = 0; i < original.size(); ++i) {
    if (Bits(decompressed[i]) != Bits(original[i])) {
      return OracleFailure{
          "lossless",
          "bit mismatch at index " + std::to_string(i) + ": " +
              FormatValue(original[i]) + " reconstructed as " +
              FormatValue(decompressed[i]),
          i};
    }
  }
  return std::nullopt;
}

std::vector<OracleFailure> RunOracles(const compress::Compressor& codec,
                                      const TimeSeries& series,
                                      double error_bound) {
  std::vector<OracleFailure> failures;
  auto push = [&failures](std::optional<OracleFailure> f) {
    if (f.has_value()) failures.push_back(std::move(*f));
  };
  const bool lossless = IsLosslessCodec(codec.name());

  Result<std::vector<uint8_t>> blob = codec.Compress(series, error_bound);
  if (!blob.ok()) {
    failures.push_back(
        {"compress", blob.status().ToString(), 0});
    return failures;
  }
  Result<TimeSeries> rec = codec.Decompress(*blob);
  if (!rec.ok()) {
    failures.push_back({"decompress", rec.status().ToString(), 0});
    return failures;
  }

  push(CheckShape(series, *rec));
  push(CheckHeaderRoundTrip(series, *rec));
  if (lossless) {
    push(CheckLossless(series, *rec));
  } else {
    push(CheckPointwiseBound(series, *rec, error_bound));
    push(CheckExactZeros(series, *rec));
  }

  // Re-compression round: decompressed output is a representable series, so
  // compressing it again must succeed, and the second reconstruction must
  // conform against the first (idempotence up to the bound; bit-exact for
  // the lossless codecs).
  Result<std::vector<uint8_t>> blob2 = codec.Compress(*rec, error_bound);
  if (!blob2.ok()) {
    failures.push_back({"recompress", blob2.status().ToString(), 0});
    return failures;
  }
  Result<TimeSeries> rec2 = codec.Decompress(*blob2);
  if (!rec2.ok()) {
    failures.push_back(
        {"recompress-decompress", rec2.status().ToString(), 0});
    return failures;
  }
  if (auto f = CheckShape(*rec, *rec2); f.has_value()) {
    f->oracle = "recompress-" + f->oracle;
    failures.push_back(std::move(*f));
  }
  if (lossless) {
    if (auto f = CheckLossless(*rec, *rec2); f.has_value()) {
      f->oracle = "recompress-" + f->oracle;
      failures.push_back(std::move(*f));
    }
  } else {
    if (auto f = CheckPointwiseBound(*rec, *rec2, error_bound);
        f.has_value()) {
      f->oracle = "recompress-" + f->oracle;
      failures.push_back(std::move(*f));
    }
    if (auto f = CheckExactZeros(*rec, *rec2); f.has_value()) {
      f->oracle = "recompress-" + f->oracle;
      failures.push_back(std::move(*f));
    }
  }
  return failures;
}

}  // namespace lossyts::conform
