#ifndef LOSSYTS_CONFORM_MUTATE_H_
#define LOSSYTS_CONFORM_MUTATE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "conform/oracles.h"

namespace lossyts::conform {

/// One mutated blob plus a stable description of how it was derived, so a
/// decoder crash or mis-accept can be reproduced from the printed report.
struct Mutant {
  std::string kind;
  std::vector<uint8_t> blob;
};

/// Derives the mutation battery for one valid blob, structure-aware against
/// the shared header layout (byte 0 algorithm id, i32 timestamp at 1, u16
/// interval at 5, u32 point count at 7, first payload count at 11):
///  - truncations at structural boundaries and mid-payload,
///  - single-bit flips across every header byte,
///  - u32 splices of the point count and first payload count with boundary
///    values (0, 1, old±1, old*2, 0x7FFFFFFF, 0xFFFFFFFF),
///  - u16 splice of the first segment-length field,
///  - `random_bit_flips` seeded random bit flips and byte splices anywhere.
/// Deterministic in (blob, seed, random_bit_flips).
std::vector<Mutant> GenerateMutants(const std::vector<uint8_t>& blob,
                                    uint64_t seed, int random_bit_flips);

/// Feeds one mutant to `codec.Decompress`. The decoder contract: it may
/// return any non-OK Status (pass), but it must never crash, over-allocate,
/// or return OK with a point count different from the header's claim.
std::optional<OracleFailure> CheckMutantDecode(
    const compress::Compressor& codec, const Mutant& mutant);

}  // namespace lossyts::conform

#endif  // LOSSYTS_CONFORM_MUTATE_H_
