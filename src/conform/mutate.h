#ifndef LOSSYTS_CONFORM_MUTATE_H_
#define LOSSYTS_CONFORM_MUTATE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "conform/oracles.h"

namespace lossyts::conform {

/// One mutated blob plus a stable description of how it was derived, so a
/// decoder crash or mis-accept can be reproduced from the printed report.
struct Mutant {
  std::string kind;
  std::vector<uint8_t> blob;
};

/// Derives the mutation battery for one valid blob, structure-aware against
/// the shared header layout (byte 0 algorithm id, i32 timestamp at 1, u16
/// interval at 5, u32 point count at 7, first payload count at 11):
///  - truncations at structural boundaries and mid-payload,
///  - single-bit flips across every header byte,
///  - u32 splices of the point count and first payload count with boundary
///    values (0, 1, old±1, old*2, 0x7FFFFFFF, 0xFFFFFFFF),
///  - u16 splice of the first segment-length field,
///  - `random_bit_flips` seeded random bit flips and byte splices anywhere.
/// Deterministic in (blob, seed, random_bit_flips).
std::vector<Mutant> GenerateMutants(const std::vector<uint8_t>& blob,
                                    uint64_t seed, int random_bit_flips);

/// Feeds one mutant to `codec.Decompress`. The decoder contract: it may
/// return any non-OK Status (pass), but it must never crash, over-allocate,
/// or return OK with a point count different from the header's claim.
std::optional<OracleFailure> CheckMutantDecode(
    const compress::Compressor& codec, const Mutant& mutant);

/// Derives the mutation battery for one chunk store file image (the on-disk
/// format of store/format.h), structure-aware against its framing:
///  - truncations at the header / chunk-frame / index / footer boundaries
///    and mid-frame (torn-write shapes),
///  - single-bit flips across the file header, the first chunk frame's
///    framing fields, the index block head and the footer,
///  - u32/u64 splices of the frame payload size, the index entry count, an
///    index entry's point count, and the footer's index offset,
///  - `random_bit_flips` seeded random bit flips and byte splices anywhere.
/// The image should be a valid store file; deterministic in
/// (image, seed, random_bit_flips).
std::vector<Mutant> GenerateStoreMutants(const std::vector<uint8_t>& image,
                                         uint64_t seed, int random_bit_flips);

/// Opens one mutated store image and, when the open succeeds, drills its
/// answers for self-consistency: the full range decode must match the
/// declared point count and grid, COUNT must equal the decoded length, and
/// pushdown aggregates must agree with decode-then-aggregate. The store
/// contract mirrors the decoder contract: any non-OK Status passes (a
/// truncated file legitimately opens as a salvaged prefix), but a crash or
/// a silently inconsistent answer is a failure.
std::optional<OracleFailure> CheckStoreMutant(const Mutant& mutant);

/// Derives the mutation battery for one serve WAL image (the on-disk format
/// of serve/wal.h), structure-aware against its framing:
///  - truncations inside the header, at the first record's structural
///    boundaries and mid-payload (torn-write shapes),
///  - single-bit flips across the header and the first record's framing,
///    payload edges and CRC,
///  - u32 splices of the first record's payload-size field,
///  - `random_bit_flips` seeded random bit flips and byte splices anywhere.
/// The image should be a valid WAL; deterministic in
/// (image, seed, random_bit_flips).
std::vector<Mutant> GenerateWalMutants(const std::vector<uint8_t>& image,
                                       uint64_t seed, int random_bit_flips);

/// Replays one mutated WAL image. The replay contract: Corruption passes
/// (an unreadable header), but an OK replay must be exactly the longest
/// valid prefix — valid_bytes within the image, `clean` iff nothing was
/// dropped, and the header plus the re-encoded records byte-identical to
/// that prefix. A crash or any deviation is a failure.
std::optional<OracleFailure> CheckWalMutant(const Mutant& mutant);

}  // namespace lossyts::conform

#endif  // LOSSYTS_CONFORM_MUTATE_H_
