#ifndef LOSSYTS_CONFORM_ORACLES_H_
#define LOSSYTS_CONFORM_ORACLES_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "compress/compressor.h"
#include "core/status.h"
#include "core/time_series.h"

namespace lossyts::conform {

/// One oracle violation. `oracle` is a stable machine-readable label
/// ("pointwise-bound", "exact-zero", ...); `detail` is the human-readable
/// explanation including the worst violator's index and magnitude.
struct OracleFailure {
  std::string oracle;
  std::string detail;
  size_t index = 0;  ///< Worst violating point, when the oracle has one.
};

/// True for the codecs held to bit-exact reconstruction (Gorilla, Chimp)
/// instead of the relative pointwise bound.
bool IsLosslessCodec(std::string_view name);

/// decompress(compress(x)) must preserve the point count exactly.
std::optional<OracleFailure> CheckShape(const TimeSeries& original,
                                        const TimeSeries& decompressed);

/// First timestamp and sampling interval must round-trip through the shared
/// blob header (paper §3.2) unchanged.
std::optional<OracleFailure> CheckHeaderRoundTrip(
    const TimeSeries& original, const TimeSeries& decompressed);

/// Definition 4, checked exactly: every reconstructed value must lie inside
/// [v − ε·|v|, v + ε·|v|] as computed by compress::RelativeAllowance — the
/// same arithmetic the codecs target. Reports the worst violator.
std::optional<OracleFailure> CheckPointwiseBound(
    const TimeSeries& original, const TimeSeries& decompressed,
    double error_bound);

/// Exact zeros have a zero-width allowance and must reconstruct as zero.
/// Subsumed by CheckPointwiseBound but reported separately because it is the
/// failure mode the paper calls out (Solar's night-time zeros).
std::optional<OracleFailure> CheckExactZeros(const TimeSeries& original,
                                             const TimeSeries& decompressed);

/// Bit-exact reconstruction for the lossless codecs (distinguishes NaN
/// payloads and signed zeros).
std::optional<OracleFailure> CheckLossless(const TimeSeries& original,
                                           const TimeSeries& decompressed);

/// Runs the full oracle battery for one (codec, series, ε) cell:
/// compress, decompress, shape/header/bound (or bit-exactness) checks, then
/// a re-compression round — the decompressed series is itself a valid input
/// and must compress cleanly with the bound holding against it. Returns
/// every violation found (empty means the cell conforms).
std::vector<OracleFailure> RunOracles(const compress::Compressor& codec,
                                      const TimeSeries& series,
                                      double error_bound);

}  // namespace lossyts::conform

#endif  // LOSSYTS_CONFORM_ORACLES_H_
