#ifndef LOSSYTS_CONFORM_CORPUS_H_
#define LOSSYTS_CONFORM_CORPUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "core/time_series.h"

namespace lossyts::conform {

/// One adversarial series. `seed` is the exact Rng seed the generator used,
/// derived as MixSeed(TagSeed(base_seed, family), index) — reproducing a
/// printed failure needs only (base_seed, family, index).
struct CorpusCase {
  std::string family;
  int index = 0;
  uint64_t seed = 0;
  TimeSeries series;
};

/// The corpus families, each aimed at a specific codec weak spot:
///  - "constant":    constant runs (PMC/Swing merge behaviour, Gorilla XOR=0)
///  - "zero-blocks": night-time zero stretches between positive signal
///                   (zero-width allowances inside segments)
///  - "tiny":        subnormal and near-subnormal magnitudes (SZ's f32
///                   per-block bound underflows to 0)
///  - "sign-flips":  small values alternating sign around exact zeros
///  - "wide-range":  magnitudes spanning ~24 decades inside one SZ block
///                   (conservative δ = ε·min|v| collapses)
///  - "steep":       ±DBL_MAX-adjacent alternation (Swing slope intervals
///                   and SZ's f32 bound overflow to ±inf)
///  - "lengths":     lengths 1, 2, 5, 65535, 65536, 65537 crossing the u16
///                   segment-length cap
///  - "random-walk": generic walk with occasional exact zeros
const std::vector<std::string>& CorpusFamilies();

/// Deterministically builds case `index` of `family`. NotFound for an
/// unknown family name.
Result<CorpusCase> MakeCorpusCase(std::string_view family, int index,
                                  uint64_t base_seed);

/// The full corpus: `cases_per_family` cases of every family. Iterating the
/// "lengths" family needs index >= 5 to cross the 65536/65537 boundary, so
/// soak runs should use cases_per_family >= 6.
std::vector<CorpusCase> GenerateCorpus(uint64_t base_seed,
                                       int cases_per_family);

}  // namespace lossyts::conform

#endif  // LOSSYTS_CONFORM_CORPUS_H_
