#ifndef LOSSYTS_ZIP_LZ77_H_
#define LOSSYTS_ZIP_LZ77_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lossyts::zip {

/// One LZ77 token: either a literal byte or a back-reference.
struct Lz77Token {
  bool is_match = false;
  uint8_t literal = 0;   // Valid when !is_match.
  uint16_t length = 0;   // 3..258, valid when is_match.
  uint16_t distance = 0; // 1..32768, valid when is_match.
};

/// Options controlling match effort (the usual speed/ratio dial).
struct Lz77Options {
  int max_chain_length = 128;  ///< Hash-chain positions probed per match.
  int good_enough_length = 64; ///< Stop probing once a match this long found.
};

/// Greedy LZ77 tokenizer over a 32 KiB sliding window with 3-byte hashing,
/// producing DEFLATE-compatible (length, distance) pairs.
std::vector<Lz77Token> Lz77Tokenize(const uint8_t* data, size_t size,
                                    const Lz77Options& options = {});

}  // namespace lossyts::zip

#endif  // LOSSYTS_ZIP_LZ77_H_
