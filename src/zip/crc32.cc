#include "zip/crc32.h"

#include <array>

namespace lossyts::zip {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

void Crc32::Update(const uint8_t* data, size_t size) {
  const auto& table = Table();
  for (size_t i = 0; i < size; ++i) {
    state_ = table[(state_ ^ data[i]) & 0xFFu] ^ (state_ >> 8);
  }
}

uint32_t ComputeCrc32(const uint8_t* data, size_t size) {
  Crc32 crc;
  crc.Update(data, size);
  return crc.value();
}

}  // namespace lossyts::zip
