#ifndef LOSSYTS_ZIP_DEFLATE_H_
#define LOSSYTS_ZIP_DEFLATE_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "zip/lz77.h"

namespace lossyts::zip {

/// Compresses `input` into a raw DEFLATE stream (RFC 1951). The encoder emits
/// a single dynamic-Huffman block (or a stored block for empty input).
std::vector<uint8_t> DeflateCompress(const std::vector<uint8_t>& input,
                                     const Lz77Options& options = {});

/// Decompresses a raw DEFLATE stream. Supports stored, fixed-Huffman and
/// dynamic-Huffman blocks. Fails with Corruption on malformed input.
Result<std::vector<uint8_t>> DeflateDecompress(
    const std::vector<uint8_t>& input);

}  // namespace lossyts::zip

#endif  // LOSSYTS_ZIP_DEFLATE_H_
