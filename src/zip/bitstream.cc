#include "zip/bitstream.h"

namespace lossyts::zip {

void BitWriter::WriteBits(uint32_t value, int count) {
  for (int i = 0; i < count; ++i) {
    bit_buffer_ |= ((value >> i) & 1u) << bits_in_buffer_;
    ++bits_in_buffer_;
    if (bits_in_buffer_ == 8) {
      bytes_.push_back(static_cast<uint8_t>(bit_buffer_));
      bit_buffer_ = 0;
      bits_in_buffer_ = 0;
    }
  }
  bit_count_ += static_cast<size_t>(count);
}

void BitWriter::WriteHuffmanCode(uint32_t code, int length) {
  // Reverse the code's bits so the MSB of the canonical code goes out first
  // in the LSB-first stream (per RFC 1951 §3.1.1).
  uint32_t reversed = 0;
  for (int i = 0; i < length; ++i) {
    reversed = (reversed << 1) | ((code >> i) & 1u);
  }
  WriteBits(reversed, length);
}

void BitWriter::AlignToByte() {
  if (bits_in_buffer_ > 0) {
    bit_count_ += static_cast<size_t>(8 - bits_in_buffer_);
    bytes_.push_back(static_cast<uint8_t>(bit_buffer_));
    bit_buffer_ = 0;
    bits_in_buffer_ = 0;
  }
}

void BitWriter::WriteByte(uint8_t byte) {
  AlignToByte();
  bytes_.push_back(byte);
  bit_count_ += 8;
}

std::vector<uint8_t> BitWriter::Finish() {
  AlignToByte();
  return std::move(bytes_);
}

Result<uint32_t> BitReader::ReadBits(int count) {
  uint32_t value = 0;
  for (int i = 0; i < count; ++i) {
    if (byte_pos_ >= size_) {
      return Status::OutOfRange("bit stream exhausted");
    }
    const uint32_t bit = (data_[byte_pos_] >> bit_pos_) & 1u;
    value |= bit << i;
    ++bit_pos_;
    if (bit_pos_ == 8) {
      bit_pos_ = 0;
      ++byte_pos_;
    }
  }
  return value;
}

void BitReader::AlignToByte() {
  if (bit_pos_ > 0) {
    bit_pos_ = 0;
    ++byte_pos_;
  }
}

Result<uint8_t> BitReader::ReadByte() {
  AlignToByte();
  if (byte_pos_ >= size_) return Status::OutOfRange("bit stream exhausted");
  return data_[byte_pos_++];
}

}  // namespace lossyts::zip
