#ifndef LOSSYTS_ZIP_HUFFMAN_H_
#define LOSSYTS_ZIP_HUFFMAN_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "zip/bitstream.h"

namespace lossyts::zip {

/// Computes length-limited Huffman code lengths from symbol frequencies.
///
/// Builds an ordinary Huffman tree and, when any code would exceed
/// `max_length`, redistributes lengths with the standard Kraft-sum repair
/// (the approach used by miniz/zlib). Symbols with zero frequency get length
/// 0. If exactly one symbol has non-zero frequency it is assigned length 1,
/// as DEFLATE requires at least one bit per coded symbol.
///
/// Returns one length per symbol, or an error if max_length cannot
/// accommodate the alphabet (needs 2^max_length >= #used symbols).
Result<std::vector<int>> BuildCodeLengths(const std::vector<uint64_t>& freqs,
                                          int max_length);

/// Assigns canonical code values to the given code lengths per RFC 1951
/// §3.2.2: shorter codes first, ties broken by symbol order.
std::vector<uint32_t> CanonicalCodes(const std::vector<int>& lengths);

/// Canonical Huffman decoder driven by code lengths alone (the form DEFLATE
/// transmits). Decoding walks length by length using the first-code/offset
/// method, which is simple and adequate for this library's block sizes.
class HuffmanDecoder {
 public:
  /// Initializes from per-symbol code lengths. Fails if the lengths are not a
  /// valid (complete or single-symbol) prefix code.
  Status Init(const std::vector<int>& lengths);

  /// Decodes one symbol from the reader.
  Result<int> Decode(BitReader& reader) const;

 private:
  static constexpr int kMaxLength = 15;
  // first_code_[l]: canonical code value of the first code of length l.
  // offset_[l]: index into sorted_symbols_ of the first symbol of length l.
  uint32_t first_code_[kMaxLength + 2] = {};
  int offset_[kMaxLength + 2] = {};
  int count_[kMaxLength + 2] = {};
  std::vector<int> sorted_symbols_;
  int max_used_length_ = 0;
};

}  // namespace lossyts::zip

#endif  // LOSSYTS_ZIP_HUFFMAN_H_
