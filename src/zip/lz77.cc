#include "zip/lz77.h"

#include <algorithm>

namespace lossyts::zip {

namespace {

constexpr size_t kWindowSize = 32768;
constexpr size_t kMinMatch = 3;
constexpr size_t kMaxMatch = 258;
constexpr int kHashBits = 15;
constexpr size_t kHashSize = 1u << kHashBits;

inline uint32_t Hash3(const uint8_t* p) {
  const uint32_t v = static_cast<uint32_t>(p[0]) |
                     (static_cast<uint32_t>(p[1]) << 8) |
                     (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::vector<Lz77Token> Lz77Tokenize(const uint8_t* data, size_t size,
                                    const Lz77Options& options) {
  std::vector<Lz77Token> tokens;
  tokens.reserve(size / 2 + 16);

  std::vector<int64_t> head(kHashSize, -1);
  std::vector<int64_t> prev(size, -1);

  size_t pos = 0;
  while (pos < size) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (pos + kMinMatch <= size) {
      const uint32_t h = Hash3(data + pos);
      int64_t candidate = head[h];
      int chain = options.max_chain_length;
      const size_t limit = std::min(kMaxMatch, size - pos);
      while (candidate >= 0 && chain-- > 0 &&
             pos - static_cast<size_t>(candidate) <= kWindowSize) {
        const uint8_t* a = data + pos;
        const uint8_t* b = data + candidate;
        size_t len = 0;
        while (len < limit && a[len] == b[len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = pos - static_cast<size_t>(candidate);
          if (len >= static_cast<size_t>(options.good_enough_length)) break;
        }
        candidate = prev[candidate];
      }
      // Insert current position into the chain.
      prev[pos] = head[h];
      head[h] = static_cast<int64_t>(pos);
    }

    if (best_len >= kMinMatch) {
      Lz77Token t;
      t.is_match = true;
      t.length = static_cast<uint16_t>(best_len);
      t.distance = static_cast<uint16_t>(best_dist);
      tokens.push_back(t);
      // Index the skipped positions so later matches can reference them.
      for (size_t k = 1; k < best_len && pos + k + kMinMatch <= size; ++k) {
        const uint32_t h = Hash3(data + pos + k);
        prev[pos + k] = head[h];
        head[h] = static_cast<int64_t>(pos + k);
      }
      pos += best_len;
    } else {
      Lz77Token t;
      t.literal = data[pos];
      tokens.push_back(t);
      ++pos;
    }
  }
  return tokens;
}

}  // namespace lossyts::zip
