#include "zip/gzip.h"

#include "zip/crc32.h"
#include "zip/deflate.h"

namespace lossyts::zip {

namespace {

constexpr uint8_t kMagic1 = 0x1F;
constexpr uint8_t kMagic2 = 0x8B;
constexpr uint8_t kMethodDeflate = 8;
constexpr size_t kHeaderSize = 10;
constexpr size_t kTrailerSize = 8;

void AppendLe32(std::vector<uint8_t>& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>((value >> (8 * i)) & 0xFF));
  }
}

uint32_t ReadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

std::vector<uint8_t> GzipCompress(const std::vector<uint8_t>& input,
                                  const Lz77Options& options) {
  std::vector<uint8_t> out;
  out.reserve(input.size() / 2 + kHeaderSize + kTrailerSize);
  out.push_back(kMagic1);
  out.push_back(kMagic2);
  out.push_back(kMethodDeflate);
  out.push_back(0);  // FLG: no extra fields.
  AppendLe32(out, 0);  // MTIME: unset.
  out.push_back(0);    // XFL.
  out.push_back(255);  // OS: unknown.

  const std::vector<uint8_t> body = DeflateCompress(input, options);
  out.insert(out.end(), body.begin(), body.end());

  AppendLe32(out, ComputeCrc32(input.data(), input.size()));
  AppendLe32(out, static_cast<uint32_t>(input.size()));
  return out;
}

Result<std::vector<uint8_t>> GzipDecompress(
    const std::vector<uint8_t>& input) {
  if (input.size() < kHeaderSize + kTrailerSize) {
    return Status::Corruption("gzip stream too short");
  }
  if (input[0] != kMagic1 || input[1] != kMagic2) {
    return Status::Corruption("bad gzip magic");
  }
  if (input[2] != kMethodDeflate) {
    return Status::Corruption("unsupported gzip compression method");
  }
  // Skip the optional header fields other encoders may emit (RFC 1952):
  // FEXTRA, FNAME, FCOMMENT, FHCRC.
  const uint8_t flags = input[3];
  size_t pos = kHeaderSize;
  auto out_of_bounds = [&] { return pos + kTrailerSize > input.size(); };
  if (flags & 0x04) {  // FEXTRA: u16 length + payload.
    if (pos + 2 + kTrailerSize > input.size()) {
      return Status::Corruption("gzip FEXTRA field truncated");
    }
    const size_t xlen = static_cast<size_t>(input[pos]) |
                        (static_cast<size_t>(input[pos + 1]) << 8);
    pos += 2 + xlen;
  }
  for (const uint8_t field : {uint8_t{0x08}, uint8_t{0x10}}) {  // FNAME, FCOMMENT.
    if (flags & field) {
      while (!out_of_bounds() && input[pos] != 0) ++pos;
      if (out_of_bounds()) {
        return Status::Corruption("gzip string field unterminated");
      }
      ++pos;  // The terminating NUL.
    }
  }
  if (flags & 0x02) pos += 2;  // FHCRC.
  if (out_of_bounds()) {
    return Status::Corruption("gzip header overruns the stream");
  }
  const std::vector<uint8_t> body(input.begin() + pos,
                                  input.end() - kTrailerSize);
  Result<std::vector<uint8_t>> data = DeflateDecompress(body);
  if (!data.ok()) return data.status();

  const uint8_t* trailer = input.data() + input.size() - kTrailerSize;
  const uint32_t expected_crc = ReadLe32(trailer);
  const uint32_t expected_size = ReadLe32(trailer + 4);
  if (static_cast<uint32_t>(data->size()) != expected_size) {
    return Status::Corruption("gzip ISIZE mismatch");
  }
  if (ComputeCrc32(data->data(), data->size()) != expected_crc) {
    return Status::Corruption("gzip CRC-32 mismatch");
  }
  return data;
}

}  // namespace lossyts::zip
