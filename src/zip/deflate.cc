#include "zip/deflate.h"

#include <algorithm>
#include <array>

#include "zip/bitstream.h"
#include "zip/huffman.h"

namespace lossyts::zip {

namespace {

// RFC 1951 §3.2.5: length code table (codes 257..285).
constexpr int kNumLengthCodes = 29;
constexpr std::array<uint16_t, kNumLengthCodes> kLengthBase = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<uint8_t, kNumLengthCodes> kLengthExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
    2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

// Distance code table (codes 0..29).
constexpr int kNumDistCodes = 30;
constexpr std::array<uint16_t, kNumDistCodes> kDistBase = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,   25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,  769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::array<uint8_t, kNumDistCodes> kDistExtra = {
    0, 0, 0,  0,  1,  1,  2,  2,  3,  3,  4,  4,  5,  5,  6,
    6, 7, 7,  8,  8,  9,  9,  10, 10, 11, 11, 12, 12, 13, 13};

// Order in which code-length-code lengths are transmitted (§3.2.7).
constexpr std::array<uint8_t, 19> kClcOrder = {16, 17, 18, 0, 8,  7, 9,
                                               6,  10, 5,  11, 4, 12, 3,
                                               13, 2,  14, 1,  15};

constexpr int kEndOfBlock = 256;
constexpr int kNumLitLenSymbols = 288;

int LengthToCode(int length) {
  // Linear scan is fine: called per token on a 29-entry table.
  for (int c = kNumLengthCodes - 1; c >= 0; --c) {
    if (length >= kLengthBase[c]) return c;
  }
  return 0;
}

int DistanceToCode(int distance) {
  for (int c = kNumDistCodes - 1; c >= 0; --c) {
    if (distance >= kDistBase[c]) return c;
  }
  return 0;
}

// Run-length encodes the concatenated literal/length + distance code lengths
// into the code-length alphabet (symbols 0..18 with repeat codes 16/17/18).
struct ClcSymbol {
  int symbol;
  int extra_value;
  int extra_bits;
};

std::vector<ClcSymbol> RunLengthEncodeLengths(const std::vector<int>& lengths) {
  std::vector<ClcSymbol> out;
  size_t i = 0;
  while (i < lengths.size()) {
    const int len = lengths[i];
    size_t run = 1;
    while (i + run < lengths.size() && lengths[i + run] == len) ++run;
    if (len == 0) {
      size_t remaining = run;
      while (remaining >= 11) {
        const int rep = static_cast<int>(std::min<size_t>(remaining, 138));
        out.push_back({18, rep - 11, 7});
        remaining -= static_cast<size_t>(rep);
      }
      if (remaining >= 3) {
        out.push_back({17, static_cast<int>(remaining) - 3, 3});
        remaining = 0;
      }
      while (remaining-- > 0) out.push_back({0, 0, 0});
    } else {
      out.push_back({len, 0, 0});
      size_t remaining = run - 1;
      while (remaining >= 3) {
        const int rep = static_cast<int>(std::min<size_t>(remaining, 6));
        out.push_back({16, rep - 3, 2});
        remaining -= static_cast<size_t>(rep);
      }
      while (remaining-- > 0) out.push_back({len, 0, 0});
    }
    i += run;
  }
  return out;
}

void WriteStoredBlock(const std::vector<uint8_t>& input, BitWriter& writer) {
  writer.WriteBits(1, 1);  // BFINAL
  writer.WriteBits(0, 2);  // BTYPE = stored
  writer.AlignToByte();
  const uint16_t len = static_cast<uint16_t>(input.size());
  writer.WriteByte(static_cast<uint8_t>(len & 0xFF));
  writer.WriteByte(static_cast<uint8_t>(len >> 8));
  writer.WriteByte(static_cast<uint8_t>(~len & 0xFF));
  writer.WriteByte(static_cast<uint8_t>((~len >> 8) & 0xFF));
  for (uint8_t b : input) writer.WriteByte(b);
}

// Builds the fixed literal/length code lengths of §3.2.6.
std::vector<int> FixedLitLenLengths() {
  std::vector<int> lengths(kNumLitLenSymbols);
  for (int s = 0; s <= 143; ++s) lengths[s] = 8;
  for (int s = 144; s <= 255; ++s) lengths[s] = 9;
  for (int s = 256; s <= 279; ++s) lengths[s] = 7;
  for (int s = 280; s <= 287; ++s) lengths[s] = 8;
  return lengths;
}

}  // namespace

std::vector<uint8_t> DeflateCompress(const std::vector<uint8_t>& input,
                                     const Lz77Options& options) {
  BitWriter writer;
  if (input.size() < 8) {
    // Tiny inputs: a stored block is smaller than any Huffman header.
    WriteStoredBlock(input, writer);
    return writer.Finish();
  }

  const std::vector<Lz77Token> tokens =
      Lz77Tokenize(input.data(), input.size(), options);

  // Count symbol frequencies.
  std::vector<uint64_t> lit_freq(kNumLitLenSymbols, 0);
  std::vector<uint64_t> dist_freq(kNumDistCodes, 0);
  for (const Lz77Token& t : tokens) {
    if (t.is_match) {
      lit_freq[257 + LengthToCode(t.length)]++;
      dist_freq[DistanceToCode(t.distance)]++;
    } else {
      lit_freq[t.literal]++;
    }
  }
  lit_freq[kEndOfBlock]++;

  Result<std::vector<int>> lit_lengths = BuildCodeLengths(lit_freq, 15);
  Result<std::vector<int>> dist_lengths = BuildCodeLengths(dist_freq, 15);
  // The alphabets always fit in 15 bits, so failure here is impossible;
  // fall back to a stored block defensively anyway.
  if (!lit_lengths.ok() || !dist_lengths.ok()) {
    WriteStoredBlock(input, writer);
    return writer.Finish();
  }

  // DEFLATE requires HDIST >= 1; give symbol 0 a 1-bit code if no distances.
  bool any_dist = false;
  for (uint64_t f : dist_freq) any_dist |= (f > 0);
  if (!any_dist) (*dist_lengths)[0] = 1;

  const std::vector<uint32_t> lit_codes = CanonicalCodes(*lit_lengths);
  const std::vector<uint32_t> dist_codes = CanonicalCodes(*dist_lengths);

  // Trim trailing zero lengths (but keep the spec minimums).
  int hlit = kNumLitLenSymbols;
  while (hlit > 257 && (*lit_lengths)[hlit - 1] == 0) --hlit;
  int hdist = kNumDistCodes;
  while (hdist > 1 && (*dist_lengths)[hdist - 1] == 0) --hdist;

  std::vector<int> all_lengths;
  all_lengths.reserve(hlit + hdist);
  all_lengths.insert(all_lengths.end(), lit_lengths->begin(),
                     lit_lengths->begin() + hlit);
  all_lengths.insert(all_lengths.end(), dist_lengths->begin(),
                     dist_lengths->begin() + hdist);

  const std::vector<ClcSymbol> clc_stream =
      RunLengthEncodeLengths(all_lengths);
  std::vector<uint64_t> clc_freq(19, 0);
  for (const ClcSymbol& c : clc_stream) clc_freq[c.symbol]++;
  Result<std::vector<int>> clc_lengths = BuildCodeLengths(clc_freq, 7);
  if (!clc_lengths.ok()) {
    WriteStoredBlock(input, writer);
    return writer.Finish();
  }
  const std::vector<uint32_t> clc_codes = CanonicalCodes(*clc_lengths);

  int hclen = 19;
  while (hclen > 4 && (*clc_lengths)[kClcOrder[hclen - 1]] == 0) --hclen;

  // Block header.
  writer.WriteBits(1, 1);  // BFINAL
  writer.WriteBits(2, 2);  // BTYPE = dynamic
  writer.WriteBits(static_cast<uint32_t>(hlit - 257), 5);
  writer.WriteBits(static_cast<uint32_t>(hdist - 1), 5);
  writer.WriteBits(static_cast<uint32_t>(hclen - 4), 4);
  for (int i = 0; i < hclen; ++i) {
    writer.WriteBits(static_cast<uint32_t>((*clc_lengths)[kClcOrder[i]]), 3);
  }
  for (const ClcSymbol& c : clc_stream) {
    writer.WriteHuffmanCode(clc_codes[c.symbol], (*clc_lengths)[c.symbol]);
    if (c.extra_bits > 0) {
      writer.WriteBits(static_cast<uint32_t>(c.extra_value), c.extra_bits);
    }
  }

  // Token stream.
  for (const Lz77Token& t : tokens) {
    if (t.is_match) {
      const int lcode = LengthToCode(t.length);
      const int lsym = 257 + lcode;
      writer.WriteHuffmanCode(lit_codes[lsym], (*lit_lengths)[lsym]);
      if (kLengthExtra[lcode] > 0) {
        writer.WriteBits(
            static_cast<uint32_t>(t.length - kLengthBase[lcode]),
            kLengthExtra[lcode]);
      }
      const int dcode = DistanceToCode(t.distance);
      writer.WriteHuffmanCode(dist_codes[dcode], (*dist_lengths)[dcode]);
      if (kDistExtra[dcode] > 0) {
        writer.WriteBits(
            static_cast<uint32_t>(t.distance - kDistBase[dcode]),
            kDistExtra[dcode]);
      }
    } else {
      writer.WriteHuffmanCode(lit_codes[t.literal],
                              (*lit_lengths)[t.literal]);
    }
  }
  writer.WriteHuffmanCode(lit_codes[kEndOfBlock],
                          (*lit_lengths)[kEndOfBlock]);
  return writer.Finish();
}

namespace {

Status InflateBlockBody(const HuffmanDecoder& lit_decoder,
                        const HuffmanDecoder& dist_decoder, BitReader& reader,
                        std::vector<uint8_t>& out) {
  while (true) {
    Result<int> sym = lit_decoder.Decode(reader);
    if (!sym.ok()) return sym.status();
    if (*sym == kEndOfBlock) return Status::OK();
    if (*sym < 256) {
      out.push_back(static_cast<uint8_t>(*sym));
      continue;
    }
    const int lcode = *sym - 257;
    if (lcode >= kNumLengthCodes) {
      return Status::Corruption("invalid length code");
    }
    Result<uint32_t> lextra = reader.ReadBits(kLengthExtra[lcode]);
    if (!lextra.ok()) return lextra.status();
    const int length = kLengthBase[lcode] + static_cast<int>(*lextra);

    Result<int> dsym = dist_decoder.Decode(reader);
    if (!dsym.ok()) return dsym.status();
    if (*dsym >= kNumDistCodes) {
      return Status::Corruption("invalid distance code");
    }
    Result<uint32_t> dextra = reader.ReadBits(kDistExtra[*dsym]);
    if (!dextra.ok()) return dextra.status();
    const size_t distance = kDistBase[*dsym] + static_cast<size_t>(*dextra);
    if (distance > out.size()) {
      return Status::Corruption("back-reference beyond output start");
    }
    const size_t start = out.size() - distance;
    for (int k = 0; k < length; ++k) out.push_back(out[start + k]);
  }
}

}  // namespace

Result<std::vector<uint8_t>> DeflateDecompress(
    const std::vector<uint8_t>& input) {
  BitReader reader(input);
  std::vector<uint8_t> out;
  while (true) {
    Result<uint32_t> bfinal = reader.ReadBit();
    if (!bfinal.ok()) return bfinal.status();
    Result<uint32_t> btype = reader.ReadBits(2);
    if (!btype.ok()) return btype.status();

    if (*btype == 0) {  // Stored.
      reader.AlignToByte();
      uint32_t len = 0;
      uint32_t nlen = 0;
      for (int i = 0; i < 2; ++i) {
        Result<uint8_t> b = reader.ReadByte();
        if (!b.ok()) return b.status();
        len |= static_cast<uint32_t>(*b) << (8 * i);
      }
      for (int i = 0; i < 2; ++i) {
        Result<uint8_t> b = reader.ReadByte();
        if (!b.ok()) return b.status();
        nlen |= static_cast<uint32_t>(*b) << (8 * i);
      }
      if ((len ^ 0xFFFFu) != nlen) {
        return Status::Corruption("stored block LEN/NLEN mismatch");
      }
      for (uint32_t i = 0; i < len; ++i) {
        Result<uint8_t> b = reader.ReadByte();
        if (!b.ok()) return b.status();
        out.push_back(*b);
      }
    } else if (*btype == 1) {  // Fixed Huffman.
      HuffmanDecoder lit_decoder;
      if (Status s = lit_decoder.Init(FixedLitLenLengths()); !s.ok()) return s;
      HuffmanDecoder dist_decoder;
      // RFC 1951 §3.2.6: 32 five-bit distance codes (30-31 never occur in
      // data but participate in the code space).
      if (Status s = dist_decoder.Init(std::vector<int>(32, 5)); !s.ok()) {
        return s;
      }
      if (Status s = InflateBlockBody(lit_decoder, dist_decoder, reader, out);
          !s.ok()) {
        return s;
      }
    } else if (*btype == 2) {  // Dynamic Huffman.
      Result<uint32_t> hlit = reader.ReadBits(5);
      if (!hlit.ok()) return hlit.status();
      Result<uint32_t> hdist = reader.ReadBits(5);
      if (!hdist.ok()) return hdist.status();
      Result<uint32_t> hclen = reader.ReadBits(4);
      if (!hclen.ok()) return hclen.status();
      const int n_lit = static_cast<int>(*hlit) + 257;
      const int n_dist = static_cast<int>(*hdist) + 1;
      const int n_clc = static_cast<int>(*hclen) + 4;
      if (n_lit > kNumLitLenSymbols) {
        return Status::Corruption("HLIT out of range");
      }

      std::vector<int> clc_lengths(19, 0);
      for (int i = 0; i < n_clc; ++i) {
        Result<uint32_t> l = reader.ReadBits(3);
        if (!l.ok()) return l.status();
        clc_lengths[kClcOrder[i]] = static_cast<int>(*l);
      }
      HuffmanDecoder clc_decoder;
      if (Status s = clc_decoder.Init(clc_lengths); !s.ok()) return s;

      std::vector<int> all_lengths;
      all_lengths.reserve(n_lit + n_dist);
      while (static_cast<int>(all_lengths.size()) < n_lit + n_dist) {
        Result<int> sym = clc_decoder.Decode(reader);
        if (!sym.ok()) return sym.status();
        if (*sym < 16) {
          all_lengths.push_back(*sym);
        } else if (*sym == 16) {
          if (all_lengths.empty()) {
            return Status::Corruption("repeat code with no previous length");
          }
          Result<uint32_t> rep = reader.ReadBits(2);
          if (!rep.ok()) return rep.status();
          const int prev = all_lengths.back();
          for (uint32_t k = 0; k < *rep + 3; ++k) all_lengths.push_back(prev);
        } else if (*sym == 17) {
          Result<uint32_t> rep = reader.ReadBits(3);
          if (!rep.ok()) return rep.status();
          for (uint32_t k = 0; k < *rep + 3; ++k) all_lengths.push_back(0);
        } else {
          Result<uint32_t> rep = reader.ReadBits(7);
          if (!rep.ok()) return rep.status();
          for (uint32_t k = 0; k < *rep + 11; ++k) all_lengths.push_back(0);
        }
      }
      if (static_cast<int>(all_lengths.size()) != n_lit + n_dist) {
        return Status::Corruption("code length stream overran header counts");
      }

      std::vector<int> lit_lengths(all_lengths.begin(),
                                   all_lengths.begin() + n_lit);
      std::vector<int> dist_lengths(all_lengths.begin() + n_lit,
                                    all_lengths.end());
      HuffmanDecoder lit_decoder;
      if (Status s = lit_decoder.Init(lit_lengths); !s.ok()) return s;
      HuffmanDecoder dist_decoder;
      if (Status s = dist_decoder.Init(dist_lengths); !s.ok()) return s;
      if (Status s = InflateBlockBody(lit_decoder, dist_decoder, reader, out);
          !s.ok()) {
        return s;
      }
    } else {
      return Status::Corruption("reserved block type 3");
    }

    if (*bfinal == 1) break;
  }
  return out;
}

}  // namespace lossyts::zip
