#ifndef LOSSYTS_ZIP_CRC32_H_
#define LOSSYTS_ZIP_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lossyts::zip {

/// Incremental CRC-32 (IEEE 802.3 polynomial, reflected), the checksum used
/// by the gzip container trailer.
class Crc32 {
 public:
  /// Feeds `size` bytes into the checksum.
  void Update(const uint8_t* data, size_t size);
  void Update(const std::vector<uint8_t>& data) {
    Update(data.data(), data.size());
  }

  /// Final checksum value.
  uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a buffer.
uint32_t ComputeCrc32(const uint8_t* data, size_t size);

}  // namespace lossyts::zip

#endif  // LOSSYTS_ZIP_CRC32_H_
