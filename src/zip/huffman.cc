#include "zip/huffman.h"

#include <algorithm>
#include <queue>
#include <string>

namespace lossyts::zip {

namespace {

struct Node {
  uint64_t weight;
  int index;   // Node index in the pool.
  int symbol;  // >= 0 for leaves, -1 for internal.
};

struct NodeCompare {
  bool operator()(const Node& a, const Node& b) const {
    // Min-heap on weight; break ties on index for determinism.
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.index > b.index;
  }
};

}  // namespace

Result<std::vector<int>> BuildCodeLengths(const std::vector<uint64_t>& freqs,
                                          int max_length) {
  const int n = static_cast<int>(freqs.size());
  std::vector<int> lengths(n, 0);

  std::vector<int> used;
  for (int i = 0; i < n; ++i) {
    if (freqs[i] > 0) used.push_back(i);
  }
  if (used.empty()) return lengths;
  if (used.size() == 1) {
    lengths[used[0]] = 1;
    return lengths;
  }
  if ((1u << max_length) < used.size()) {
    return Status::InvalidArgument(
        "alphabet of " + std::to_string(used.size()) +
        " symbols cannot fit in codes of max length " +
        std::to_string(max_length));
  }

  // Standard Huffman construction; track parents to recover leaf depths.
  std::vector<int> parent;
  std::vector<int> leaf_node_of_symbol(n, -1);
  std::priority_queue<Node, std::vector<Node>, NodeCompare> heap;
  int next_index = 0;
  for (int s : used) {
    leaf_node_of_symbol[s] = next_index;
    parent.push_back(-1);
    heap.push(Node{freqs[s], next_index, s});
    ++next_index;
  }
  while (heap.size() > 1) {
    Node a = heap.top();
    heap.pop();
    Node b = heap.top();
    heap.pop();
    parent.push_back(-1);
    parent[a.index] = next_index;
    parent[b.index] = next_index;
    heap.push(Node{a.weight + b.weight, next_index, -1});
    ++next_index;
  }

  std::vector<int> depth(parent.size(), 0);
  // Nodes are created children-before-parents, so a reverse sweep fills
  // depths top-down.
  for (int i = static_cast<int>(parent.size()) - 2; i >= 0; --i) {
    depth[i] = depth[parent[i]] + 1;
  }
  for (int s : used) lengths[s] = depth[leaf_node_of_symbol[s]];

  // Enforce the maximum code length, then repair the Kraft sum (miniz-style).
  int max_used = 0;
  for (int s : used) max_used = std::max(max_used, lengths[s]);
  if (max_used > max_length) {
    std::vector<int> count(max_length + 1, 0);
    for (int s : used) count[std::min(lengths[s], max_length)]++;
    uint64_t total = 0;
    for (int l = max_length; l >= 1; --l) {
      total += static_cast<uint64_t>(count[l]) << (max_length - l);
    }
    while (total > (1ull << max_length)) {
      // Shorten one max-length code by promoting a shorter code deeper.
      count[max_length]--;
      for (int l = max_length - 1; l >= 1; --l) {
        if (count[l] > 0) {
          count[l]--;
          count[l + 1] += 2;
          break;
        }
      }
      total--;
    }
    // Reassign lengths: least frequent symbols get the longest codes.
    std::vector<int> order = used;
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      if (freqs[a] != freqs[b]) return freqs[a] < freqs[b];
      return a < b;
    });
    size_t pos = 0;
    for (int l = max_length; l >= 1; --l) {
      for (int k = 0; k < count[l]; ++k) lengths[order[pos++]] = l;
    }
  }
  return lengths;
}

std::vector<uint32_t> CanonicalCodes(const std::vector<int>& lengths) {
  int max_len = 0;
  for (int l : lengths) max_len = std::max(max_len, l);
  std::vector<int> count(max_len + 1, 0);
  for (int l : lengths) {
    if (l > 0) count[l]++;
  }
  std::vector<uint32_t> next_code(max_len + 2, 0);
  uint32_t code = 0;
  for (int l = 1; l <= max_len; ++l) {
    code = (code + static_cast<uint32_t>(count[l - 1])) << 1;
    next_code[l] = code;
  }
  std::vector<uint32_t> codes(lengths.size(), 0);
  for (size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] > 0) codes[s] = next_code[lengths[s]]++;
  }
  return codes;
}

Status HuffmanDecoder::Init(const std::vector<int>& lengths) {
  sorted_symbols_.clear();
  max_used_length_ = 0;
  std::fill(std::begin(count_), std::end(count_), 0);
  int used = 0;
  for (size_t s = 0; s < lengths.size(); ++s) {
    const int l = lengths[s];
    if (l < 0 || l > kMaxLength) {
      return Status::Corruption("invalid Huffman code length");
    }
    if (l > 0) {
      count_[l]++;
      max_used_length_ = std::max(max_used_length_, l);
      ++used;
    }
  }
  if (used == 0) return Status::Corruption("empty Huffman alphabet");

  // Validate Kraft inequality; allow the single-symbol degenerate code.
  uint64_t kraft = 0;
  for (int l = 1; l <= max_used_length_; ++l) {
    kraft += static_cast<uint64_t>(count_[l]) << (max_used_length_ - l);
  }
  const uint64_t full = 1ull << max_used_length_;
  if (kraft > full) return Status::Corruption("oversubscribed Huffman code");
  if (kraft < full && used > 1) {
    return Status::Corruption("incomplete Huffman code");
  }

  uint32_t code = 0;
  int offset = 0;
  for (int l = 1; l <= max_used_length_; ++l) {
    code = (code + static_cast<uint32_t>(count_[l - 1])) << 1;
    first_code_[l] = code;
    offset_[l] = offset;
    offset += count_[l];
  }
  sorted_symbols_.resize(offset);
  std::vector<int> next(max_used_length_ + 1, 0);
  for (size_t s = 0; s < lengths.size(); ++s) {
    const int l = lengths[s];
    if (l > 0) {
      sorted_symbols_[offset_[l] + next[l]] = static_cast<int>(s);
      next[l]++;
    }
  }
  return Status::OK();
}

Result<int> HuffmanDecoder::Decode(BitReader& reader) const {
  uint32_t code = 0;
  for (int l = 1; l <= max_used_length_; ++l) {
    Result<uint32_t> bit = reader.ReadBit();
    if (!bit.ok()) return bit.status();
    code = (code << 1) | *bit;
    if (count_[l] > 0 &&
        code < first_code_[l] + static_cast<uint32_t>(count_[l])) {
      if (code >= first_code_[l]) {
        return sorted_symbols_[offset_[l] + static_cast<int>(code -
                                                             first_code_[l])];
      }
    }
  }
  return Status::Corruption("invalid Huffman code in stream");
}

}  // namespace lossyts::zip
