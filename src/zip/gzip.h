#ifndef LOSSYTS_ZIP_GZIP_H_
#define LOSSYTS_ZIP_GZIP_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "zip/lz77.h"

namespace lossyts::zip {

/// Compresses `input` into a gzip member (RFC 1952): 10-byte header, DEFLATE
/// body, CRC-32 + ISIZE trailer. This is the "final lossless pass" the paper
/// applies to every compressor output and to the raw datasets, and the .gz
/// byte count it produces is what compression ratios are computed from.
std::vector<uint8_t> GzipCompress(const std::vector<uint8_t>& input,
                                  const Lz77Options& options = {});

/// Decompresses a gzip member produced by GzipCompress (or any encoder using
/// no optional header fields). Verifies the CRC-32 and ISIZE trailer.
Result<std::vector<uint8_t>> GzipDecompress(const std::vector<uint8_t>& input);

}  // namespace lossyts::zip

#endif  // LOSSYTS_ZIP_GZIP_H_
