#ifndef LOSSYTS_ZIP_BITSTREAM_H_
#define LOSSYTS_ZIP_BITSTREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/status.h"

namespace lossyts::zip {

/// LSB-first bit writer matching the DEFLATE bit packing convention: bits are
/// written into each byte starting from the least-significant bit.
class BitWriter {
 public:
  /// Writes the low `count` bits of `value`, LSB first. count must be <= 32.
  void WriteBits(uint32_t value, int count);

  /// Writes a Huffman code of `length` bits. DEFLATE stores Huffman codes
  /// with their most-significant bit first, so the code is bit-reversed
  /// before packing.
  void WriteHuffmanCode(uint32_t code, int length);

  /// Pads with zero bits to the next byte boundary.
  void AlignToByte();

  /// Appends a raw byte (requires byte alignment for sane output; call
  /// AlignToByte() first when mid-bit).
  void WriteByte(uint8_t byte);

  /// Number of bits written so far.
  size_t bit_count() const { return bit_count_; }

  /// Finishes the stream (pads to a byte) and returns the bytes.
  std::vector<uint8_t> Finish();

 private:
  std::vector<uint8_t> bytes_;
  uint32_t bit_buffer_ = 0;
  int bits_in_buffer_ = 0;
  size_t bit_count_ = 0;
};

/// LSB-first bit reader, the mirror of BitWriter.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BitReader(const std::vector<uint8_t>& data)
      : BitReader(data.data(), data.size()) {}

  /// Reads `count` bits (<= 32), LSB first. Fails past end of input.
  Result<uint32_t> ReadBits(int count);

  /// Reads a single bit.
  Result<uint32_t> ReadBit() { return ReadBits(1); }

  /// Discards bits up to the next byte boundary.
  void AlignToByte();

  /// Reads a raw byte; requires prior byte alignment.
  Result<uint8_t> ReadByte();

  /// Number of whole bytes consumed (rounded up when mid-byte).
  size_t BytesConsumed() const { return byte_pos_ + (bit_pos_ > 0 ? 1 : 0); }

  bool AtEnd() const { return byte_pos_ >= size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t byte_pos_ = 0;
  int bit_pos_ = 0;  // Bit offset within the current byte, 0..7.
};

}  // namespace lossyts::zip

#endif  // LOSSYTS_ZIP_BITSTREAM_H_
