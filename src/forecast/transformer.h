#ifndef LOSSYTS_FORECAST_TRANSFORMER_H_
#define LOSSYTS_FORECAST_TRANSFORMER_H_

#include <memory>

#include "forecast/nn_forecaster.h"

namespace lossyts::forecast {

/// Encoder-decoder Transformer for forecasting (§3.4's Transformer model,
/// following the Darts configuration the paper used). The input window is
/// embedded value-by-value to d_model with a sinusoidal positional encoding;
/// the decoder receives the last `label_length` embedded inputs plus zero
/// placeholders for the horizon and attends causally to itself and fully to
/// the encoder memory.
class TransformerForecaster : public NnForecaster {
 public:
  struct Architecture {
    size_t d_model = 16;
    size_t num_heads = 2;
    size_t d_ff = 32;
    size_t encoder_layers = 2;
    size_t decoder_layers = 1;
    size_t label_length = 48;  ///< Decoder warm-start tokens.
  };

  explicit TransformerForecaster(const ForecastConfig& config)
      : TransformerForecaster(config, Architecture()) {}
  TransformerForecaster(const ForecastConfig& config, const Architecture& arch)
      : NnForecaster("Transformer", config), arch_(arch) {}

 protected:
  TransformerForecaster(std::string name, const ForecastConfig& config,
                        const Architecture& arch, bool prob_sparse,
                        bool distill)
      : NnForecaster(std::move(name), config),
        arch_(arch),
        prob_sparse_(prob_sparse),
        distill_(distill) {}

  std::unique_ptr<WindowNetwork> BuildNetwork(Rng& rng) override;

 private:
  Architecture arch_;
  bool prob_sparse_ = false;  ///< Informer's ProbSparse self-attention.
  bool distill_ = false;      ///< Informer's stride-2 distilling pool.
};

/// Informer (Zhou et al., AAAI'21): the Transformer above with ProbSparse
/// self-attention in the encoder and self-attention distilling between
/// encoder layers.
class InformerForecaster : public TransformerForecaster {
 public:
  explicit InformerForecaster(const ForecastConfig& config)
      : InformerForecaster(config, Architecture()) {}
  InformerForecaster(const ForecastConfig& config, const Architecture& arch)
      : TransformerForecaster("Informer", config, arch,
                              /*prob_sparse=*/true, /*distill=*/true) {}
};

}  // namespace lossyts::forecast

#endif  // LOSSYTS_FORECAST_TRANSFORMER_H_
