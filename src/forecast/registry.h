#ifndef LOSSYTS_FORECAST_REGISTRY_H_
#define LOSSYTS_FORECAST_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "forecast/forecaster.h"

namespace lossyts::forecast {

/// Names of the seven forecasting models, in the paper's Table 2 order:
/// Arima, GBoost, DLinear, GRU, Informer, NBeats, Transformer.
const std::vector<std::string>& ModelNames();

/// Creates a forecaster by name. Fails with NotFound for unknown names.
Result<std::unique_ptr<Forecaster>> MakeForecaster(
    const std::string& name, const ForecastConfig& config);

/// True for the deep-learning models the paper replicates with 10 seeds
/// (vs. 5 for the classical ones, §3.6).
bool IsDeepModel(const std::string& name);

}  // namespace lossyts::forecast

#endif  // LOSSYTS_FORECAST_REGISTRY_H_
