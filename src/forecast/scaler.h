#ifndef LOSSYTS_FORECAST_SCALER_H_
#define LOSSYTS_FORECAST_SCALER_H_

#include <vector>

#include "core/status.h"

namespace lossyts::forecast {

/// Standard (z-score) scaler fit on the training split and applied to every
/// model input, per §3.4. The inverse transform maps predictions back to the
/// data scale.
class StandardScaler {
 public:
  /// Computes mean and standard deviation. Fails on empty input and on any
  /// non-finite value (InvalidArgument naming the first offending index —
  /// NaN here would otherwise silently poison every scaled window); a
  /// constant series gets unit scale so Transform stays well-defined.
  Status Fit(const std::vector<double>& values);

  double Transform(double v) const { return (v - mean_) / stddev_; }
  double Inverse(double v) const { return v * stddev_ + mean_; }

  std::vector<double> Transform(const std::vector<double>& values) const;
  std::vector<double> Inverse(const std::vector<double>& values) const;

  bool fitted() const { return fitted_; }
  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

 private:
  double mean_ = 0.0;
  double stddev_ = 1.0;
  bool fitted_ = false;
};

}  // namespace lossyts::forecast

#endif  // LOSSYTS_FORECAST_SCALER_H_
