#include "forecast/scaler.h"

#include <cmath>
#include <string>

namespace lossyts::forecast {

Status StandardScaler::Fit(const std::vector<double>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot fit scaler on empty data");
  }
  // A single NaN/inf would silently poison mean and stddev — and through
  // them every scaled window the model ever sees — so reject it here, where
  // the offending index is still known.
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      return Status::InvalidArgument(
          "non-finite value at index " + std::to_string(i) +
          " in scaler input");
    }
  }
  double sum = 0.0;
  for (double v : values) sum += v;
  mean_ = sum / static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) ss += (v - mean_) * (v - mean_);
  stddev_ = std::sqrt(ss / static_cast<double>(values.size()));
  if (stddev_ < 1e-12) stddev_ = 1.0;  // Constant input: identity scale.
  fitted_ = true;
  return Status::OK();
}

std::vector<double> StandardScaler::Transform(
    const std::vector<double>& values) const {
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) out[i] = Transform(values[i]);
  return out;
}

std::vector<double> StandardScaler::Inverse(
    const std::vector<double>& values) const {
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) out[i] = Inverse(values[i]);
  return out;
}

}  // namespace lossyts::forecast
