#include "forecast/scaler.h"

#include <cmath>

namespace lossyts::forecast {

Status StandardScaler::Fit(const std::vector<double>& values) {
  if (values.empty()) {
    return Status::InvalidArgument("cannot fit scaler on empty data");
  }
  double sum = 0.0;
  for (double v : values) sum += v;
  mean_ = sum / static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) ss += (v - mean_) * (v - mean_);
  stddev_ = std::sqrt(ss / static_cast<double>(values.size()));
  if (stddev_ < 1e-12) stddev_ = 1.0;  // Constant input: identity scale.
  fitted_ = true;
  return Status::OK();
}

std::vector<double> StandardScaler::Transform(
    const std::vector<double>& values) const {
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) out[i] = Transform(values[i]);
  return out;
}

std::vector<double> StandardScaler::Inverse(
    const std::vector<double>& values) const {
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) out[i] = Inverse(values[i]);
  return out;
}

}  // namespace lossyts::forecast
