#include "forecast/transformer.h"

#include <algorithm>

#include "nn/attention.h"
#include "nn/module.h"

namespace lossyts::forecast {

namespace {

class TransformerNetwork : public WindowNetwork {
 public:
  TransformerNetwork(size_t input_length, size_t horizon,
                     const TransformerForecaster::Architecture& arch,
                     bool prob_sparse, bool distill, double dropout, Rng& rng)
      : input_length_(input_length),
        horizon_(horizon),
        arch_(arch),
        prob_sparse_(prob_sparse),
        distill_(distill),
        dropout_(dropout),
        embed_(1, arch.d_model, rng),
        head_(arch.d_model, 1, rng),
        enc_pe_(nn::PositionalEncoding(input_length, arch.d_model)),
        dec_pe_(nn::PositionalEncoding(
            std::min(arch.label_length, input_length) + horizon,
            arch.d_model)) {
    for (size_t l = 0; l < arch.encoder_layers; ++l) {
      encoder_.push_back(std::make_unique<nn::TransformerEncoderLayer>(
          arch.d_model, arch.num_heads, arch.d_ff, dropout, rng));
    }
    for (size_t l = 0; l < arch.decoder_layers; ++l) {
      decoder_.push_back(std::make_unique<nn::TransformerDecoderLayer>(
          arch.d_model, arch.num_heads, arch.d_ff, dropout, rng));
    }
  }

  nn::Var Forward(const nn::Var& batch, bool train, Rng& rng) override {
    // Attention runs per sequence; loop over batch rows and restack.
    nn::Var outputs;
    for (size_t r = 0; r < batch->value.rows(); ++r) {
      const nn::Var row = nn::SliceRows(batch, r, r + 1);
      const nn::Var pred = ForwardOne(row, train, rng);
      outputs = r == 0 ? pred : nn::ConcatRows(outputs, pred);
    }
    return outputs;
  }

  std::vector<nn::Var> Parameters() const override {
    std::vector<nn::Var> params = embed_.Parameters();
    for (const nn::Var& p : head_.Parameters()) params.push_back(p);
    for (const auto& layer : encoder_) {
      for (const nn::Var& p : layer->Parameters()) params.push_back(p);
    }
    for (const auto& layer : decoder_) {
      for (const nn::Var& p : layer->Parameters()) params.push_back(p);
    }
    return params;
  }

 private:
  // One window: (1 × input_length) -> (1 × horizon).
  nn::Var ForwardOne(const nn::Var& row, bool train, Rng& rng) {
    // Embed each scalar observation to d_model and add positions.
    const nn::Var seq = nn::Transpose(row);  // (L × 1).
    nn::Var x = nn::Add(embed_.Forward(seq), nn::MakeVar(enc_pe_));

    for (size_t l = 0; l < encoder_.size(); ++l) {
      x = encoder_[l]->Forward(x, train, rng, prob_sparse_);
      // Informer distilling: halve the sequence between encoder layers.
      if (distill_ && l + 1 < encoder_.size()) {
        x = nn::StridedRowPool(x, 2);
      }
    }
    const nn::Var memory = x;

    // Decoder input: last label_length embedded observations + zero
    // placeholders for the horizon (the Informer-style generative decoder
    // emitting the whole horizon in one forward pass).
    const size_t label = std::min(arch_.label_length, input_length_);
    const nn::Var label_seq =
        nn::SliceRows(seq, input_length_ - label, input_length_);
    const nn::Var label_embedded = embed_.Forward(label_seq);
    const nn::Var placeholders =
        nn::MakeVar(nn::Tensor(horizon_, arch_.d_model, 0.0));
    nn::Var dec = nn::Add(nn::ConcatRows(label_embedded, placeholders),
                          nn::MakeVar(dec_pe_));
    for (const auto& layer : decoder_) {
      dec = layer->Forward(dec, memory, train, rng);
    }
    const nn::Var horizon_part =
        nn::SliceRows(dec, label, label + horizon_);
    return nn::Transpose(head_.Forward(horizon_part));  // (1 × horizon).
  }

  size_t input_length_;
  size_t horizon_;
  TransformerForecaster::Architecture arch_;
  bool prob_sparse_;
  bool distill_;
  double dropout_;
  nn::Linear embed_;
  nn::Linear head_;
  nn::Tensor enc_pe_;
  nn::Tensor dec_pe_;
  std::vector<std::unique_ptr<nn::TransformerEncoderLayer>> encoder_;
  std::vector<std::unique_ptr<nn::TransformerDecoderLayer>> decoder_;
};

}  // namespace

std::unique_ptr<WindowNetwork> TransformerForecaster::BuildNetwork(Rng& rng) {
  return std::make_unique<TransformerNetwork>(
      config().input_length, config().horizon, arch_, prob_sparse_, distill_,
      config().dropout, rng);
}

}  // namespace lossyts::forecast
