#ifndef LOSSYTS_FORECAST_GRU_H_
#define LOSSYTS_FORECAST_GRU_H_

#include <memory>

#include "forecast/nn_forecaster.h"

namespace lossyts::forecast {

/// Encoder-decoder gated recurrent network (§3.4's GRU model). The encoder
/// consumes the input window step by step; the decoder is unrolled for the
/// forecast horizon, feeding each prediction back as the next input.
class GruForecaster : public NnForecaster {
 public:
  struct Architecture {
    size_t hidden = 24;
  };

  explicit GruForecaster(const ForecastConfig& config)
      : GruForecaster(config, Architecture()) {}
  GruForecaster(const ForecastConfig& config, const Architecture& arch)
      : NnForecaster("GRU", config), arch_(arch) {}

 protected:
  std::unique_ptr<WindowNetwork> BuildNetwork(Rng& rng) override;

 private:
  Architecture arch_;
};

}  // namespace lossyts::forecast

#endif  // LOSSYTS_FORECAST_GRU_H_
