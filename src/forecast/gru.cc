#include "forecast/gru.h"

#include "nn/module.h"

namespace lossyts::forecast {

namespace {

class GruNetwork : public WindowNetwork {
 public:
  GruNetwork(size_t input_length, size_t horizon, size_t hidden, Rng& rng)
      : input_length_(input_length),
        horizon_(horizon),
        hidden_(hidden),
        encoder_(1, hidden, rng),
        decoder_(1, hidden, rng),
        head_(hidden, 1, rng) {}

  nn::Var Forward(const nn::Var& batch, bool /*train*/, Rng& /*rng*/) override {
    const size_t b = batch->value.rows();
    // Encode: feed one value column per step across the whole batch.
    nn::Var h = nn::MakeVar(nn::Tensor(b, hidden_, 0.0));
    for (size_t t = 0; t < input_length_; ++t) {
      h = encoder_.Forward(nn::SliceCols(batch, t, t + 1), h);
    }
    // Decode: autoregressive rollout of `horizon` steps.
    nn::Var input = nn::SliceCols(batch, input_length_ - 1, input_length_);
    nn::Var outputs;
    for (size_t t = 0; t < horizon_; ++t) {
      h = decoder_.Forward(input, h);
      const nn::Var y = head_.Forward(h);
      outputs = t == 0 ? y : nn::ConcatCols(outputs, y);
      input = y;
    }
    return outputs;
  }

  std::vector<nn::Var> Parameters() const override {
    std::vector<nn::Var> params = encoder_.Parameters();
    for (const nn::Var& p : decoder_.Parameters()) params.push_back(p);
    for (const nn::Var& p : head_.Parameters()) params.push_back(p);
    return params;
  }

 private:
  size_t input_length_;
  size_t horizon_;
  size_t hidden_;
  nn::GruCell encoder_;
  nn::GruCell decoder_;
  nn::Linear head_;
};

}  // namespace

std::unique_ptr<WindowNetwork> GruForecaster::BuildNetwork(Rng& rng) {
  return std::make_unique<GruNetwork>(config().input_length, config().horizon,
                                      arch_.hidden, rng);
}

}  // namespace lossyts::forecast
