#ifndef LOSSYTS_FORECAST_NBEATS_H_
#define LOSSYTS_FORECAST_NBEATS_H_

#include <memory>

#include "forecast/nn_forecaster.h"

namespace lossyts::forecast {

/// N-BEATS (Oreshkin et al., ICLR'20), generic architecture: a stack of
/// fully connected blocks with backward (backcast) and forward (forecast)
/// residual links. Each block subtracts its backcast from the running input
/// and contributes its forecast to the running sum.
class NBeatsForecaster : public NnForecaster {
 public:
  struct Architecture {
    size_t num_blocks = 3;
    size_t hidden = 64;
    size_t fc_layers = 3;  ///< ReLU layers per block before the heads.
  };

  explicit NBeatsForecaster(const ForecastConfig& config)
      : NBeatsForecaster(config, Architecture()) {}
  NBeatsForecaster(const ForecastConfig& config, const Architecture& arch)
      : NnForecaster("NBeats", config), arch_(arch) {}

 protected:
  std::unique_ptr<WindowNetwork> BuildNetwork(Rng& rng) override;

 private:
  Architecture arch_;
};

}  // namespace lossyts::forecast

#endif  // LOSSYTS_FORECAST_NBEATS_H_
