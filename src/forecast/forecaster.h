#ifndef LOSSYTS_FORECAST_FORECASTER_H_
#define LOSSYTS_FORECAST_FORECASTER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "core/time_series.h"

namespace lossyts::forecast {

/// Shared configuration, following the paper's §3.4 protocol: the input
/// window is fixed to 96 past values, the horizon to 24 future values, and a
/// standard scaler (fit on the training split) is applied to model inputs.
struct ForecastConfig {
  size_t input_length = 96;
  size_t horizon = 24;
  /// Dominant seasonal period in samples; used by Arima's Fourier terms and
  /// GBoost's seasonal lags. 0 disables seasonal terms.
  size_t season_length = 0;
  /// Seed for weight initialization, dropout and shuffling. Different seeds
  /// reproduce the paper's multi-seed replication protocol (§3.6).
  uint64_t seed = 1;
  /// Budget knobs for the deep models (tiny-width reproduction scale).
  int max_epochs = 8;
  int early_stop_patience = 3;  ///< Paper: patience 3.
  size_t max_train_windows = 256;
  size_t batch_size = 32;
  double dropout = 0.05;
};

/// Common interface of the seven forecasting models (Definition 7): train
/// once on the raw training/validation split, then map any input window of
/// `input_length` values to `horizon` predictions.
class Forecaster {
 public:
  virtual ~Forecaster() = default;

  virtual std::string_view name() const = 0;

  /// Trains the model. `val` is used for early stopping / model selection
  /// and may be empty for models that do not need it.
  virtual Status Fit(const TimeSeries& train, const TimeSeries& val) = 0;

  /// Predicts the next `horizon` values from the most recent
  /// `input_length` observations. Requires a successful Fit.
  virtual Result<std::vector<double>> Predict(
      const std::vector<double>& window) const = 0;
};

}  // namespace lossyts::forecast

#endif  // LOSSYTS_FORECAST_FORECASTER_H_
