#include "forecast/nn_forecaster.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/failpoint.h"

namespace lossyts::forecast {

namespace {

// Packs window examples [begin, end) into (batch × len) input/target tensors.
void PackBatch(const std::vector<WindowExample>& windows,
               const std::vector<size_t>& order, size_t begin, size_t end,
               nn::Tensor* inputs, nn::Tensor* targets) {
  const size_t b = end - begin;
  *inputs = nn::Tensor(b, windows[order[begin]].input.size());
  *targets = nn::Tensor(b, windows[order[begin]].target.size());
  for (size_t r = 0; r < b; ++r) {
    const WindowExample& w = windows[order[begin + r]];
    for (size_t c = 0; c < w.input.size(); ++c) (*inputs)(r, c) = w.input[c];
    for (size_t c = 0; c < w.target.size(); ++c) {
      (*targets)(r, c) = w.target[c];
    }
  }
}

}  // namespace

double NnForecaster::EvaluateLoss(const std::vector<WindowExample>& windows,
                                  Rng& rng) {
  if (windows.empty()) return 0.0;
  std::vector<size_t> order(windows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  double total = 0.0;
  size_t count = 0;
  for (size_t begin = 0; begin < windows.size();
       begin += config_.batch_size) {
    const size_t end =
        std::min(begin + config_.batch_size, windows.size());
    nn::Tensor inputs;
    nn::Tensor targets;
    PackBatch(windows, order, begin, end, &inputs, &targets);
    nn::Var pred =
        network_->Forward(nn::MakeVar(std::move(inputs)), false, rng);
    nn::Var loss = nn::MseLoss(pred, nn::MakeVar(std::move(targets)));
    total += loss->value(0, 0) * static_cast<double>(end - begin);
    count += end - begin;
  }
  return total / static_cast<double>(count);
}

Status NnForecaster::Fit(const TimeSeries& train, const TimeSeries& val) {
  if (Status s = scaler_.Fit(train.values()); !s.ok()) return s;

  Result<std::vector<WindowExample>> train_windows =
      MakeWindows(scaler_.Transform(train.values()), config_.input_length,
                  config_.horizon, 1, config_.max_train_windows);
  if (!train_windows.ok()) return train_windows.status();

  // Validation windows: the paper's patience-3 early stopping. Fall back to
  // a slice of training windows when the validation split is too short.
  std::vector<WindowExample> val_windows;
  Result<std::vector<WindowExample>> val_result =
      MakeWindows(scaler_.Transform(val.values()), config_.input_length,
                  config_.horizon, config_.horizon,
                  config_.max_train_windows / 4);
  if (val_result.ok()) {
    val_windows = std::move(*val_result);
  } else {
    const size_t held_out = std::max<size_t>(1, train_windows->size() / 10);
    val_windows.assign(train_windows->end() - held_out,
                       train_windows->end());
    train_windows->resize(train_windows->size() - held_out);
  }

  Rng rng(config_.seed);
  network_ = BuildNetwork(rng);
  std::vector<nn::Var> params = network_->Parameters();
  nn::Adam optimizer(params);

  double best_val = std::numeric_limits<double>::infinity();
  std::vector<nn::Tensor> best_weights;
  int bad_epochs = 0;

  std::vector<size_t> order(train_windows->size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    // Fisher-Yates shuffle with the model's own stream.
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.UniformInt(i)]);
    }
    for (size_t begin = 0; begin < order.size();
         begin += config_.batch_size) {
      const size_t end = std::min(begin + config_.batch_size, order.size());
      nn::Tensor inputs;
      nn::Tensor targets;
      PackBatch(*train_windows, order, begin, end, &inputs, &targets);
      LOSSYTS_FAILPOINT("train_step");
      nn::Var pred =
          network_->Forward(nn::MakeVar(std::move(inputs)), true, rng);
      nn::Var loss = nn::MseLoss(pred, nn::MakeVar(std::move(targets)));
      if (!std::isfinite(loss->value(0, 0))) {
        return Status::Internal("non-finite training loss in " + name_ +
                                " at epoch " + std::to_string(epoch));
      }
      nn::Backward(loss);
      if (Status s = optimizer.Step(); !s.ok()) return s;
    }

    const double val_loss = EvaluateLoss(val_windows, rng);
    if (!std::isfinite(val_loss)) {
      return Status::Internal("non-finite validation loss in " + name_ +
                              " at epoch " + std::to_string(epoch));
    }
    if (val_loss < best_val - 1e-9) {
      best_val = val_loss;
      bad_epochs = 0;
      best_weights.clear();
      for (const nn::Var& p : params) best_weights.push_back(p->value);
    } else if (++bad_epochs >= config_.early_stop_patience) {
      break;
    }
  }
  if (!best_weights.empty()) {
    for (size_t i = 0; i < params.size(); ++i) {
      params[i]->value = best_weights[i];
    }
  }
  return Status::OK();
}

Result<std::vector<double>> NnForecaster::Predict(
    const std::vector<double>& window) const {
  if (network_ == nullptr) {
    return Status::FailedPrecondition("Predict called before Fit");
  }
  if (window.size() != config_.input_length) {
    return Status::InvalidArgument(
        "window must have input_length = " +
        std::to_string(config_.input_length) + " values, got " +
        std::to_string(window.size()));
  }
  nn::Tensor input(1, window.size());
  for (size_t c = 0; c < window.size(); ++c) {
    input(0, c) = scaler_.Transform(window[c]);
  }
  Rng rng(config_.seed);  // Inference path never uses randomness.
  nn::Var pred = const_cast<NnForecaster*>(this)->network_->Forward(
      nn::MakeVar(std::move(input)), false, rng);
  std::vector<double> out(config_.horizon);
  for (size_t c = 0; c < config_.horizon; ++c) {
    out[c] = scaler_.Inverse(pred->value(0, c));
  }
  return out;
}

}  // namespace lossyts::forecast
