#ifndef LOSSYTS_FORECAST_ARIMA_H_
#define LOSSYTS_FORECAST_ARIMA_H_

#include <vector>

#include "forecast/forecaster.h"
#include "forecast/scaler.h"

namespace lossyts::forecast {

/// ARIMA(p,d,q) with Fourier seasonal terms (§3.4), fitted by conditional
/// sum of squares and selected by AIC over a small (p,d,q) grid — the
/// Box-Jenkins workflow the paper follows.
///
/// Seasonality is handled with harmonic (Fourier) regression: during
/// training the harmonics are fit globally; at prediction time the same
/// basis is re-fit locally on the 96-value input window (the sin/cos pair
/// absorbs the window's unknown phase), the trained ARMA coefficients are
/// applied to the residuals, and the harmonic continuation plus the ARMA
/// forecast are recombined.
class ArimaForecaster : public Forecaster {
 public:
  struct Options {
    int max_p = 2;
    int max_q = 2;
    int max_d = 1;
    int fourier_harmonics = 2;  ///< K harmonics when season_length >= 8.
    size_t max_fit_points = 2000;  ///< CSS fit uses the training tail.
  };

  explicit ArimaForecaster(const ForecastConfig& config)
      : ArimaForecaster(config, Options()) {}
  ArimaForecaster(const ForecastConfig& config, const Options& options)
      : config_(config), options_(options) {}

  std::string_view name() const override { return "Arima"; }

  Status Fit(const TimeSeries& train, const TimeSeries& val) override;
  Result<std::vector<double>> Predict(
      const std::vector<double>& window) const override;

  // Selected orders, exposed for tests and reports.
  int p() const { return p_; }
  int d() const { return d_; }
  int q() const { return q_; }
  double aic() const { return aic_; }

 private:
  ForecastConfig config_;
  Options options_;
  StandardScaler scaler_;

  int p_ = 0;
  int d_ = 0;
  int q_ = 0;
  double aic_ = 0.0;
  double constant_ = 0.0;
  std::vector<double> ar_;  // phi_1..phi_p.
  std::vector<double> ma_;  // theta_1..theta_q.
  bool fitted_ = false;
};

}  // namespace lossyts::forecast

#endif  // LOSSYTS_FORECAST_ARIMA_H_
