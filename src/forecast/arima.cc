#include "forecast/arima.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "analysis/linreg.h"
#include "features/acf.h"

namespace lossyts::forecast {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Conditional sum of squares of an ARMA(p,q) with constant on `w`.
double CssSse(const std::vector<double>& w, double c,
              const std::vector<double>& ar, const std::vector<double>& ma) {
  const size_t p = ar.size();
  const size_t q = ma.size();
  const size_t start = std::max(p, q);
  std::vector<double> e(w.size(), 0.0);
  double sse = 0.0;
  for (size_t t = start; t < w.size(); ++t) {
    double pred = c;
    for (size_t i = 0; i < p; ++i) pred += ar[i] * w[t - 1 - i];
    for (size_t j = 0; j < q; ++j) pred += ma[j] * e[t - 1 - j];
    e[t] = w[t] - pred;
    sse += e[t] * e[t];
  }
  return sse;
}

// Minimal Nelder-Mead simplex minimizer for the low-dimensional CSS fits.
std::vector<double> NelderMead(
    const std::vector<double>& start,
    const std::function<double(const std::vector<double>&)>& f,
    int max_iterations = 400) {
  const size_t n = start.size();
  if (n == 0) return start;
  std::vector<std::vector<double>> simplex(n + 1, start);
  for (size_t i = 0; i < n; ++i) simplex[i + 1][i] += 0.25;
  std::vector<double> values(n + 1);
  for (size_t i = 0; i <= n; ++i) values[i] = f(simplex[i]);

  for (int iter = 0; iter < max_iterations; ++iter) {
    // Order: best first.
    std::vector<size_t> order(n + 1);
    for (size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return values[a] < values[b]; });
    const size_t best = order[0];
    const size_t worst = order[n];
    const size_t second_worst = order[n - 1];
    if (std::abs(values[worst] - values[best]) <
        1e-10 * (std::abs(values[best]) + 1e-10)) {
      break;
    }

    std::vector<double> centroid(n, 0.0);
    for (size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (size_t k = 0; k < n; ++k) centroid[k] += simplex[i][k];
    }
    for (double& v : centroid) v /= static_cast<double>(n);

    auto blend = [&](double alpha) {
      std::vector<double> out(n);
      for (size_t k = 0; k < n; ++k) {
        out[k] = centroid[k] + alpha * (centroid[k] - simplex[worst][k]);
      }
      return out;
    };

    const std::vector<double> reflected = blend(1.0);
    const double fr = f(reflected);
    if (fr < values[best]) {
      const std::vector<double> expanded = blend(2.0);
      const double fe = f(expanded);
      if (fe < fr) {
        simplex[worst] = expanded;
        values[worst] = fe;
      } else {
        simplex[worst] = reflected;
        values[worst] = fr;
      }
    } else if (fr < values[second_worst]) {
      simplex[worst] = reflected;
      values[worst] = fr;
    } else {
      const std::vector<double> contracted = blend(-0.5);
      const double fc = f(contracted);
      if (fc < values[worst]) {
        simplex[worst] = contracted;
        values[worst] = fc;
      } else {
        // Shrink toward the best vertex.
        for (size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (size_t k = 0; k < n; ++k) {
            simplex[i][k] =
                simplex[best][k] + 0.5 * (simplex[i][k] - simplex[best][k]);
          }
          values[i] = f(simplex[i]);
        }
      }
    }
  }
  size_t best = 0;
  for (size_t i = 1; i <= n; ++i) {
    if (values[i] < values[best]) best = i;
  }
  return simplex[best];
}

// Fourier design columns for positions `t0..t0+n-1` with period `season`.
std::vector<std::vector<double>> FourierColumns(size_t n, size_t t0,
                                                size_t season, int harmonics) {
  std::vector<std::vector<double>> cols;
  for (int k = 1; k <= harmonics; ++k) {
    std::vector<double> s(n);
    std::vector<double> c(n);
    for (size_t i = 0; i < n; ++i) {
      const double angle = 2.0 * kPi * static_cast<double>(k) *
                           static_cast<double>(t0 + i) /
                           static_cast<double>(season);
      s[i] = std::sin(angle);
      c[i] = std::cos(angle);
    }
    cols.push_back(std::move(s));
    cols.push_back(std::move(c));
  }
  return cols;
}

}  // namespace

Status ArimaForecaster::Fit(const TimeSeries& train,
                            const TimeSeries& /*val*/) {
  if (train.size() < config_.input_length + config_.horizon) {
    return Status::FailedPrecondition("training series too short for Arima");
  }
  if (Status s = scaler_.Fit(train.values()); !s.ok()) return s;
  std::vector<double> y = scaler_.Transform(train.values());
  if (y.size() > options_.max_fit_points) {
    y.erase(y.begin(), y.end() - static_cast<long>(options_.max_fit_points));
  }

  // Deseasonalize globally with the Fourier exogenous terms. Seasonality
  // longer than twice the input window cannot be phased from a prediction
  // window (the sin/cos pair degenerates toward a line), so such periods
  // fall back to plain ARIMA — the Wind dataset's case.
  const bool seasonal = config_.season_length >= 8 &&
                        config_.season_length <= 2 * config_.input_length &&
                        options_.fourier_harmonics > 0;
  std::vector<double> residual = y;
  if (seasonal) {
    const std::vector<std::vector<double>> cols = FourierColumns(
        y.size(), 0, config_.season_length, options_.fourier_harmonics);
    Result<analysis::OlsResult> ols = analysis::FitOls(cols, y);
    if (ols.ok()) {
      for (size_t i = 0; i < y.size(); ++i) {
        double fit = ols->coefficients[0];
        for (size_t j = 0; j < cols.size(); ++j) {
          fit += ols->coefficients[j + 1] * cols[j][i];
        }
        residual[i] = y[i] - fit;
      }
    }
  }

  // Grid-search (p, d, q), selecting by AIC (§3.4).
  double best_aic = std::numeric_limits<double>::infinity();
  for (int d = 0; d <= options_.max_d; ++d) {
    const std::vector<double> w =
        d == 0 ? residual : features::Diff(residual, d);
    if (w.size() < 32) continue;
    for (int p = 0; p <= options_.max_p; ++p) {
      for (int q = 0; q <= options_.max_q; ++q) {
        const int k = p + q + 1;
        std::vector<double> start(static_cast<size_t>(k), 0.0);
        // Seed the first AR coefficient with the lag-1 autocorrelation.
        if (p > 0) {
          const std::vector<double> acf = features::Acf(w, 1);
          if (!acf.empty()) start[1] = acf[0] * 0.8;
        }
        auto objective = [&](const std::vector<double>& params) {
          const double c = params[0];
          std::vector<double> ar(params.begin() + 1, params.begin() + 1 + p);
          std::vector<double> ma(params.begin() + 1 + p, params.end());
          // Penalize explosive coefficients to keep CSS well-behaved.
          double penalty = 0.0;
          for (double v : ar) penalty += std::max(0.0, std::abs(v) - 0.99);
          for (double v : ma) penalty += std::max(0.0, std::abs(v) - 0.99);
          return CssSse(w, c, ar, ma) * (1.0 + 10.0 * penalty);
        };
        const std::vector<double> solution = NelderMead(start, objective);
        const double sse = objective(solution);
        const double n = static_cast<double>(w.size());
        const double aic =
            n * std::log(std::max(sse / n, 1e-12)) + 2.0 * (k + 1);
        if (aic < best_aic) {
          best_aic = aic;
          p_ = p;
          d_ = d;
          q_ = q;
          constant_ = solution[0];
          ar_.assign(solution.begin() + 1, solution.begin() + 1 + p);
          ma_.assign(solution.begin() + 1 + p, solution.end());
        }
      }
    }
  }
  if (!std::isfinite(best_aic)) {
    return Status::Internal("Arima model selection failed");
  }
  aic_ = best_aic;
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> ArimaForecaster::Predict(
    const std::vector<double>& window) const {
  if (!fitted_) return Status::FailedPrecondition("Predict before Fit");
  if (window.size() != config_.input_length) {
    return Status::InvalidArgument("window length mismatch");
  }
  const std::vector<double> y = scaler_.Transform(window);
  const size_t L = y.size();
  const size_t h = config_.horizon;

  // Local harmonic fit: the sin/cos pair absorbs the window's phase.
  const bool seasonal = config_.season_length >= 8 &&
                        config_.season_length <= 2 * config_.input_length &&
                        options_.fourier_harmonics > 0;
  std::vector<double> residual = y;
  std::vector<double> seasonal_forecast(h, 0.0);
  if (seasonal) {
    const std::vector<std::vector<double>> cols = FourierColumns(
        L, 0, config_.season_length, options_.fourier_harmonics);
    Result<analysis::OlsResult> ols = analysis::FitOls(cols, y);
    if (ols.ok()) {
      for (size_t i = 0; i < L; ++i) {
        double fit = ols->coefficients[0];
        for (size_t j = 0; j < cols.size(); ++j) {
          fit += ols->coefficients[j + 1] * cols[j][i];
        }
        residual[i] = y[i] - fit;
      }
      const std::vector<std::vector<double>> future = FourierColumns(
          h, L, config_.season_length, options_.fourier_harmonics);
      for (size_t i = 0; i < h; ++i) {
        double fit = ols->coefficients[0];
        for (size_t j = 0; j < future.size(); ++j) {
          fit += ols->coefficients[j + 1] * future[j][i];
        }
        seasonal_forecast[i] = fit;
      }
    }
  }

  // Difference, run the ARMA recursion over the window to obtain the latest
  // innovations, then iterate the forecast.
  std::vector<double> w = d_ == 0 ? residual : features::Diff(residual, d_);
  const size_t p = ar_.size();
  const size_t q = ma_.size();
  std::vector<double> e(w.size(), 0.0);
  const size_t start = std::max(p, q);
  for (size_t t = start; t < w.size(); ++t) {
    double pred = constant_;
    for (size_t i = 0; i < p; ++i) pred += ar_[i] * w[t - 1 - i];
    for (size_t j = 0; j < q; ++j) pred += ma_[j] * e[t - 1 - j];
    e[t] = w[t] - pred;
  }
  std::vector<double> w_ext = w;
  std::vector<double> e_ext = e;
  std::vector<double> w_forecast(h);
  for (size_t s = 0; s < h; ++s) {
    double pred = constant_;
    for (size_t i = 0; i < p; ++i) {
      pred += ar_[i] * w_ext[w_ext.size() - 1 - i];
    }
    for (size_t j = 0; j < q; ++j) {
      pred += ma_[j] * e_ext[e_ext.size() - 1 - j];
    }
    w_forecast[s] = pred;
    w_ext.push_back(pred);
    e_ext.push_back(0.0);  // Future innovations have zero expectation.
  }

  // Integrate the differences back to levels.
  std::vector<double> residual_forecast(h);
  if (d_ == 0) {
    residual_forecast = w_forecast;
  } else {
    double level = residual.back();
    for (size_t s = 0; s < h; ++s) {
      level += w_forecast[s];
      residual_forecast[s] = level;
    }
  }

  std::vector<double> out(h);
  for (size_t s = 0; s < h; ++s) {
    out[s] = scaler_.Inverse(residual_forecast[s] + seasonal_forecast[s]);
  }
  return out;
}

}  // namespace lossyts::forecast
