#ifndef LOSSYTS_FORECAST_ENSEMBLE_H_
#define LOSSYTS_FORECAST_ENSEMBLE_H_

#include <memory>
#include <string>
#include <vector>

#include "forecast/forecaster.h"

namespace lossyts::forecast {

/// Weighted-average ensemble of forecasters — the paper's §5 research
/// direction: "create an ensemble model using Transformer which has good
/// overall forecasting accuracy and Arima which is more resilient [to lossy
/// compression]; this should improve the resilience and overall accuracy."
///
/// Fit trains every member on the same splits; Predict averages the member
/// forecasts with the given weights (normalized internally).
class EnsembleForecaster : public Forecaster {
 public:
  /// Takes ownership of the members. Weights default to uniform; a supplied
  /// weight vector must match the member count and be positive.
  explicit EnsembleForecaster(
      std::vector<std::unique_ptr<Forecaster>> members,
      std::vector<double> weights = {});

  std::string_view name() const override { return name_; }

  Status Fit(const TimeSeries& train, const TimeSeries& val) override;
  Result<std::vector<double>> Predict(
      const std::vector<double>& window) const override;

  size_t size() const { return members_.size(); }

 private:
  std::vector<std::unique_ptr<Forecaster>> members_;
  std::vector<double> weights_;
  std::string name_;
  bool fitted_ = false;
};

}  // namespace lossyts::forecast

#endif  // LOSSYTS_FORECAST_ENSEMBLE_H_
