#include "forecast/window.h"

#include <algorithm>

namespace lossyts::forecast {

Result<std::vector<WindowExample>> MakeWindows(
    const std::vector<double>& values, size_t input_length, size_t horizon,
    size_t stride, size_t max_windows) {
  if (input_length == 0 || horizon == 0 || stride == 0) {
    return Status::InvalidArgument("window parameters must be positive");
  }
  if (values.size() < input_length + horizon) {
    return Status::FailedPrecondition(
        "series too short for one window: need " +
        std::to_string(input_length + horizon) + ", have " +
        std::to_string(values.size()));
  }
  const size_t span = input_length + horizon;
  const size_t positions = (values.size() - span) / stride + 1;
  size_t effective_stride = stride;
  if (max_windows > 0 && positions > max_windows) {
    // Widen the stride so the windows still span the whole series.
    effective_stride = (values.size() - span) / (max_windows - 1);
    effective_stride = std::max(effective_stride, stride);
  }

  std::vector<WindowExample> windows;
  for (size_t start = 0; start + span <= values.size();
       start += effective_stride) {
    WindowExample w;
    w.input.assign(values.begin() + start,
                   values.begin() + start + input_length);
    w.target.assign(values.begin() + start + input_length,
                    values.begin() + start + span);
    windows.push_back(std::move(w));
    if (max_windows > 0 && windows.size() >= max_windows) break;
  }
  return windows;
}

}  // namespace lossyts::forecast
