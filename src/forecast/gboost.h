#ifndef LOSSYTS_FORECAST_GBOOST_H_
#define LOSSYTS_FORECAST_GBOOST_H_

#include <vector>

#include "analysis/gbm.h"
#include "forecast/forecaster.h"
#include "forecast/scaler.h"

namespace lossyts::forecast {

/// Gradient-boosting forecaster (§3.4's GBoost): gradient-boosted regression
/// trees over lag features, rolled out recursively for multi-step forecasts.
/// The basic learners are shallow decision trees, as in the paper.
class GBoostForecaster : public Forecaster {
 public:
  struct Options {
    analysis::GradientBoostedTrees::Options gbm;
    size_t max_training_samples = 3000;

    Options() {
      gbm.num_trees = 80;
      gbm.learning_rate = 0.1;
      gbm.subsample = 0.8;
      gbm.tree.max_depth = 3;
    }
  };

  explicit GBoostForecaster(const ForecastConfig& config)
      : GBoostForecaster(config, Options()) {}
  GBoostForecaster(const ForecastConfig& config, const Options& options)
      : config_(config), options_(options) {}

  std::string_view name() const override { return "GBoost"; }

  Status Fit(const TimeSeries& train, const TimeSeries& val) override;
  Result<std::vector<double>> Predict(
      const std::vector<double>& window) const override;

  /// Lags (1-based distances into the past) used as features; derived from
  /// input_length and season_length.
  const std::vector<size_t>& lags() const { return lags_; }

 private:
  std::vector<double> FeaturesAt(const std::vector<double>& history) const;

  ForecastConfig config_;
  Options options_;
  StandardScaler scaler_;
  std::vector<size_t> lags_;
  analysis::GradientBoostedTrees model_;
  bool fitted_ = false;
};

}  // namespace lossyts::forecast

#endif  // LOSSYTS_FORECAST_GBOOST_H_
