#include "forecast/dlinear.h"

#include <algorithm>

#include "nn/module.h"

namespace lossyts::forecast {

namespace {

// Constant L×L matrix M with (x · M^T)_i = centered moving average of x
// around position i (edges clamped), so trend = MatMul(x, M_t) with
// M_t = M^T precomputed.
nn::Tensor MovingAverageMatrix(size_t length, size_t kernel) {
  nn::Tensor m(length, length, 0.0);
  const size_t half = kernel / 2;
  for (size_t i = 0; i < length; ++i) {
    const size_t lo = i >= half ? i - half : 0;
    const size_t hi = std::min(length - 1, i + half);
    const double w = 1.0 / static_cast<double>(hi - lo + 1);
    for (size_t j = lo; j <= hi; ++j) m(j, i) = w;  // Transposed layout.
  }
  return m;
}

class DLinearNetwork : public WindowNetwork {
 public:
  DLinearNetwork(size_t input_length, size_t horizon, Rng& rng)
      : trend_matrix_(nn::MakeVar(
            MovingAverageMatrix(input_length, DLinearForecaster::kKernelSize))),
        trend_head_(input_length, horizon, rng),
        seasonal_head_(input_length, horizon, rng) {}

  nn::Var Forward(const nn::Var& batch, bool /*train*/, Rng& /*rng*/) override {
    const nn::Var trend = nn::MatMul(batch, trend_matrix_);
    const nn::Var remainder = nn::Sub(batch, trend);
    return nn::Add(trend_head_.Forward(trend),
                   seasonal_head_.Forward(remainder));
  }

  std::vector<nn::Var> Parameters() const override {
    std::vector<nn::Var> params = trend_head_.Parameters();
    for (const nn::Var& p : seasonal_head_.Parameters()) params.push_back(p);
    return params;
  }

 private:
  nn::Var trend_matrix_;
  nn::Linear trend_head_;
  nn::Linear seasonal_head_;
};

}  // namespace

std::unique_ptr<WindowNetwork> DLinearForecaster::BuildNetwork(Rng& rng) {
  return std::make_unique<DLinearNetwork>(config().input_length,
                                          config().horizon, rng);
}

}  // namespace lossyts::forecast
