#include "forecast/nbeats.h"

#include "nn/module.h"

namespace lossyts::forecast {

namespace {

struct Block {
  std::vector<nn::Linear> fc;
  std::unique_ptr<nn::Linear> backcast;
  std::unique_ptr<nn::Linear> forecast;
};

class NBeatsNetwork : public WindowNetwork {
 public:
  NBeatsNetwork(size_t input_length, size_t horizon,
                const NBeatsForecaster::Architecture& arch, Rng& rng) {
    for (size_t b = 0; b < arch.num_blocks; ++b) {
      Block block;
      size_t in = input_length;
      for (size_t l = 0; l < arch.fc_layers; ++l) {
        block.fc.emplace_back(in, arch.hidden, rng);
        in = arch.hidden;
      }
      // The doubly-residual stacking discards the last block's backcast, so
      // its projection could never receive gradient (the numcheck oracle
      // flags such parameters as unreachable) — don't build it at all.
      if (b + 1 < arch.num_blocks) {
        block.backcast = std::make_unique<nn::Linear>(in, input_length, rng);
      }
      block.forecast = std::make_unique<nn::Linear>(in, horizon, rng);
      blocks_.push_back(std::move(block));
    }
  }

  nn::Var Forward(const nn::Var& batch, bool /*train*/, Rng& /*rng*/) override {
    nn::Var residual = batch;
    nn::Var total_forecast;
    for (const Block& block : blocks_) {
      nn::Var h = residual;
      for (const nn::Linear& fc : block.fc) h = nn::Relu(fc.Forward(h));
      if (block.backcast != nullptr) {
        residual = nn::Sub(residual, block.backcast->Forward(h));
      }
      const nn::Var f = block.forecast->Forward(h);
      total_forecast = total_forecast == nullptr ? f
                                                 : nn::Add(total_forecast, f);
    }
    return total_forecast;
  }

  std::vector<nn::Var> Parameters() const override {
    std::vector<nn::Var> params;
    for (const Block& block : blocks_) {
      for (const nn::Linear& fc : block.fc) {
        for (const nn::Var& p : fc.Parameters()) params.push_back(p);
      }
      if (block.backcast != nullptr) {
        for (const nn::Var& p : block.backcast->Parameters()) {
          params.push_back(p);
        }
      }
      for (const nn::Var& p : block.forecast->Parameters()) {
        params.push_back(p);
      }
    }
    return params;
  }

 private:
  std::vector<Block> blocks_;
};

}  // namespace

std::unique_ptr<WindowNetwork> NBeatsForecaster::BuildNetwork(Rng& rng) {
  return std::make_unique<NBeatsNetwork>(config().input_length,
                                         config().horizon, arch_, rng);
}

}  // namespace lossyts::forecast
