#include "forecast/ensemble.h"

namespace lossyts::forecast {

EnsembleForecaster::EnsembleForecaster(
    std::vector<std::unique_ptr<Forecaster>> members,
    std::vector<double> weights)
    : members_(std::move(members)), weights_(std::move(weights)) {
  if (weights_.empty()) {
    weights_.assign(members_.size(), 1.0);
  }
  name_ = "Ensemble(";
  for (size_t i = 0; i < members_.size(); ++i) {
    if (i > 0) name_ += "+";
    name_ += std::string(members_[i]->name());
  }
  name_ += ")";
}

Status EnsembleForecaster::Fit(const TimeSeries& train, const TimeSeries& val) {
  if (members_.empty()) {
    return Status::FailedPrecondition("ensemble has no members");
  }
  if (weights_.size() != members_.size()) {
    return Status::InvalidArgument("weight count does not match member count");
  }
  double total = 0.0;
  for (double w : weights_) {
    if (w <= 0.0) return Status::InvalidArgument("weights must be positive");
    total += w;
  }
  for (double& w : weights_) w /= total;

  for (auto& member : members_) {
    if (Status s = member->Fit(train, val); !s.ok()) return s;
  }
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> EnsembleForecaster::Predict(
    const std::vector<double>& window) const {
  if (!fitted_) return Status::FailedPrecondition("Predict before Fit");
  std::vector<double> combined;
  for (size_t m = 0; m < members_.size(); ++m) {
    Result<std::vector<double>> pred = members_[m]->Predict(window);
    if (!pred.ok()) return pred.status();
    if (combined.empty()) combined.assign(pred->size(), 0.0);
    if (pred->size() != combined.size()) {
      return Status::Internal("ensemble members disagree on horizon");
    }
    for (size_t i = 0; i < combined.size(); ++i) {
      combined[i] += weights_[m] * (*pred)[i];
    }
  }
  return combined;
}

}  // namespace lossyts::forecast
