#include "forecast/gboost.h"

#include <algorithm>

namespace lossyts::forecast {

namespace {

std::vector<size_t> BuildLags(size_t input_length, size_t season_length) {
  std::vector<size_t> lags;
  for (size_t l = 1; l <= 12; ++l) lags.push_back(l);
  for (size_t l : {16u, 20u, 24u, 32u, 48u, 64u, 96u}) {
    if (l <= input_length) lags.push_back(l);
  }
  if (season_length >= 2 && season_length <= input_length) {
    lags.push_back(season_length);
    if (season_length / 2 >= 1) lags.push_back(season_length / 2);
  }
  std::sort(lags.begin(), lags.end());
  lags.erase(std::unique(lags.begin(), lags.end()), lags.end());
  // Every lag must fit inside the prediction window.
  while (!lags.empty() && lags.back() > input_length) lags.pop_back();
  return lags;
}

}  // namespace

std::vector<double> GBoostForecaster::FeaturesAt(
    const std::vector<double>& history) const {
  std::vector<double> features;
  features.reserve(lags_.size());
  for (size_t lag : lags_) {
    features.push_back(history[history.size() - lag]);
  }
  return features;
}

Status GBoostForecaster::Fit(const TimeSeries& train,
                             const TimeSeries& /*val*/) {
  if (train.size() < config_.input_length + config_.horizon) {
    return Status::FailedPrecondition("training series too short for GBoost");
  }
  if (Status s = scaler_.Fit(train.values()); !s.ok()) return s;
  const std::vector<double> y = scaler_.Transform(train.values());
  lags_ = BuildLags(config_.input_length, config_.season_length);
  const size_t max_lag = lags_.back();

  // One-step-ahead supervised samples, uniformly subsampled to the budget.
  const size_t total = y.size() - max_lag;
  const size_t step =
      std::max<size_t>(1, total / options_.max_training_samples);
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (size_t t = max_lag; t < y.size(); t += step) {
    std::vector<double> history(y.begin(), y.begin() + t);
    rows.push_back(FeaturesAt(history));
    targets.push_back(y[t]);
  }

  model_ = analysis::GradientBoostedTrees(options_.gbm);
  if (Status s = model_.Fit(rows, targets); !s.ok()) return s;
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> GBoostForecaster::Predict(
    const std::vector<double>& window) const {
  if (!fitted_) return Status::FailedPrecondition("Predict before Fit");
  if (window.size() != config_.input_length) {
    return Status::InvalidArgument("window length mismatch");
  }
  std::vector<double> history = scaler_.Transform(window);
  std::vector<double> out;
  out.reserve(config_.horizon);
  for (size_t s = 0; s < config_.horizon; ++s) {
    const double pred = model_.Predict(FeaturesAt(history));
    history.push_back(pred);  // Recursive multi-step rollout.
    out.push_back(scaler_.Inverse(pred));
  }
  return out;
}

}  // namespace lossyts::forecast
