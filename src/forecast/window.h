#ifndef LOSSYTS_FORECAST_WINDOW_H_
#define LOSSYTS_FORECAST_WINDOW_H_

#include <cstddef>
#include <vector>

#include "core/status.h"
#include "core/time_series.h"

namespace lossyts::forecast {

/// One supervised training/evaluation example: `input` holds input_length
/// past values, `target` the next horizon values.
struct WindowExample {
  std::vector<double> input;
  std::vector<double> target;
};

/// Extracts sliding windows from `values`. `stride` controls the step
/// between consecutive windows; `max_windows` (0 = unlimited) subsamples by
/// widening the stride uniformly, preserving chronological coverage.
Result<std::vector<WindowExample>> MakeWindows(
    const std::vector<double>& values, size_t input_length, size_t horizon,
    size_t stride = 1, size_t max_windows = 0);

}  // namespace lossyts::forecast

#endif  // LOSSYTS_FORECAST_WINDOW_H_
