#include "forecast/registry.h"

#include "forecast/arima.h"
#include "forecast/dlinear.h"
#include "forecast/gboost.h"
#include "forecast/gru.h"
#include "forecast/nbeats.h"
#include "forecast/transformer.h"

namespace lossyts::forecast {

const std::vector<std::string>& ModelNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "Arima", "GBoost", "DLinear", "GRU", "Informer", "NBeats",
      "Transformer"};
  return names;
}

Result<std::unique_ptr<Forecaster>> MakeForecaster(
    const std::string& name, const ForecastConfig& config) {
  if (name == "Arima") {
    return std::unique_ptr<Forecaster>(new ArimaForecaster(config));
  }
  if (name == "GBoost") {
    return std::unique_ptr<Forecaster>(new GBoostForecaster(config));
  }
  if (name == "DLinear") {
    return std::unique_ptr<Forecaster>(new DLinearForecaster(config));
  }
  if (name == "GRU") {
    return std::unique_ptr<Forecaster>(new GruForecaster(config));
  }
  if (name == "Informer") {
    return std::unique_ptr<Forecaster>(new InformerForecaster(config));
  }
  if (name == "NBeats") {
    return std::unique_ptr<Forecaster>(new NBeatsForecaster(config));
  }
  if (name == "Transformer") {
    return std::unique_ptr<Forecaster>(new TransformerForecaster(config));
  }
  return Status::NotFound("unknown forecasting model: " + name);
}

bool IsDeepModel(const std::string& name) {
  return name != "Arima" && name != "GBoost";
}

}  // namespace lossyts::forecast
