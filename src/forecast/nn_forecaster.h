#ifndef LOSSYTS_FORECAST_NN_FORECASTER_H_
#define LOSSYTS_FORECAST_NN_FORECASTER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "forecast/forecaster.h"
#include "forecast/scaler.h"
#include "forecast/window.h"
#include "nn/autodiff.h"
#include "nn/optimizer.h"

namespace lossyts::forecast {

/// A neural window-to-horizon network: maps a (batch × input_length) tensor
/// of scaled values to (batch × horizon) predictions. Sequence models that
/// cannot batch across rows simply loop over rows internally.
class WindowNetwork {
 public:
  virtual ~WindowNetwork() = default;

  virtual nn::Var Forward(const nn::Var& batch, bool train, Rng& rng) = 0;
  virtual std::vector<nn::Var> Parameters() const = 0;
};

/// Shared Fit/Predict implementation for all five deep models: standard
/// scaling, window extraction, Adam with lr 1e-3 / weight decay 1e-4, and
/// patience-3 early stopping on the validation split with best-weights
/// restore (§3.4). Subclasses provide the network.
class NnForecaster : public Forecaster {
 public:
  NnForecaster(std::string name, const ForecastConfig& config)
      : name_(std::move(name)), config_(config) {}

  std::string_view name() const override { return name_; }

  Status Fit(const TimeSeries& train, const TimeSeries& val) override;
  Result<std::vector<double>> Predict(
      const std::vector<double>& window) const override;

 protected:
  /// Builds the freshly initialized network (called once per Fit).
  virtual std::unique_ptr<WindowNetwork> BuildNetwork(Rng& rng) = 0;

  const ForecastConfig& config() const { return config_; }

 private:
  double EvaluateLoss(const std::vector<WindowExample>& windows, Rng& rng);

  std::string name_;
  ForecastConfig config_;
  StandardScaler scaler_;
  std::unique_ptr<WindowNetwork> network_;
};

}  // namespace lossyts::forecast

#endif  // LOSSYTS_FORECAST_NN_FORECASTER_H_
