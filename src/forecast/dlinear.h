#ifndef LOSSYTS_FORECAST_DLINEAR_H_
#define LOSSYTS_FORECAST_DLINEAR_H_

#include <memory>

#include "forecast/nn_forecaster.h"

namespace lossyts::forecast {

/// DLinear (Zeng et al., AAAI'23): decompose the input window into a
/// moving-average trend and a remainder, apply one linear layer to each and
/// sum the two forecasts. The paper highlights this shallow model as
/// competitive with Transformers — and §4.4.1 shows its sensitivity to
/// compression-induced distortion of the remainder component.
class DLinearForecaster : public NnForecaster {
 public:
  explicit DLinearForecaster(const ForecastConfig& config)
      : NnForecaster("DLinear", config) {}

  /// Moving-average kernel of the trend decomposition (paper default 25).
  static constexpr size_t kKernelSize = 25;

 protected:
  std::unique_ptr<WindowNetwork> BuildNetwork(Rng& rng) override;
};

}  // namespace lossyts::forecast

#endif  // LOSSYTS_FORECAST_DLINEAR_H_
