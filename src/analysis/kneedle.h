#ifndef LOSSYTS_ANALYSIS_KNEEDLE_H_
#define LOSSYTS_ANALYSIS_KNEEDLE_H_

#include <vector>

#include "core/status.h"

namespace lossyts::analysis {

/// Kneedle knee/elbow detection (Satopää et al., ICDCSW'11) for discrete
/// curves, used by the paper's §4.3.2 inflection-point analysis of TFE vs TE.
///
/// The input points must have strictly increasing x. `curve` selects which
/// bend is sought:
///  - kConcaveIncreasing: classic knee (diminishing returns).
///  - kConvexIncreasing: elbow where growth starts accelerating — the shape
///    of the TFE-versus-TE curves.
enum class KneedleCurve {
  kConcaveIncreasing,
  kConvexIncreasing,
};

struct KneedleOptions {
  KneedleCurve curve = KneedleCurve::kConvexIncreasing;
  /// Satopää's sensitivity parameter S; larger is more conservative.
  double sensitivity = 1.0;
  /// Width of the moving-average smoother applied to y (1 = none).
  size_t smoothing = 1;
};

struct KneePoint {
  size_t index = 0;  ///< Index into the input arrays.
  double x = 0.0;
  double y = 0.0;
};

/// Finds the first knee/elbow of the curve. Fails when fewer than 5 points,
/// x is not strictly increasing, or no knee is detected.
Result<KneePoint> FindKnee(const std::vector<double>& x,
                           const std::vector<double>& y,
                           const KneedleOptions& options = {});

}  // namespace lossyts::analysis

#endif  // LOSSYTS_ANALYSIS_KNEEDLE_H_
