#include "analysis/kneedle.h"

#include <algorithm>
#include <cmath>

namespace lossyts::analysis {

Result<KneePoint> FindKnee(const std::vector<double>& x,
                           const std::vector<double>& y,
                           const KneedleOptions& options) {
  const size_t n = x.size();
  if (n != y.size()) {
    return Status::InvalidArgument("x and y lengths differ");
  }
  if (n < 5) {
    return Status::InvalidArgument("Kneedle needs at least 5 points");
  }
  for (size_t i = 1; i < n; ++i) {
    if (x[i] <= x[i - 1]) {
      return Status::InvalidArgument("x must be strictly increasing");
    }
  }

  // Step 1: optional smoothing of y.
  std::vector<double> ys(y);
  if (options.smoothing > 1) {
    const size_t w = options.smoothing;
    for (size_t i = 0; i < n; ++i) {
      const size_t lo = i >= w / 2 ? i - w / 2 : 0;
      const size_t hi = std::min(n - 1, i + w / 2);
      double sum = 0.0;
      for (size_t k = lo; k <= hi; ++k) sum += y[k];
      ys[i] = sum / static_cast<double>(hi - lo + 1);
    }
  }

  // Step 2: normalize to the unit square.
  const double x_min = x.front();
  const double x_range = x.back() - x.front();
  const auto [y_min_it, y_max_it] = std::minmax_element(ys.begin(), ys.end());
  const double y_min = *y_min_it;
  const double y_range = *y_max_it - y_min;
  if (x_range <= 0.0 || y_range <= 0.0) {
    return Status::FailedPrecondition("degenerate curve");
  }

  // Step 3: difference curve. For a concave increasing curve the knee
  // maximizes y_n - x_n; a convex increasing curve is flipped about the
  // diagonal so the elbow maximizes x_n - y_n.
  std::vector<double> diff(n);
  for (size_t i = 0; i < n; ++i) {
    const double xn = (x[i] - x_min) / x_range;
    const double yn = (ys[i] - y_min) / y_range;
    diff[i] = options.curve == KneedleCurve::kConcaveIncreasing ? yn - xn
                                                                : xn - yn;
  }

  // Step 4: scan local maxima of the difference curve; accept one when the
  // curve then drops below the Satopää threshold before rising again.
  double mean_spacing = 0.0;
  for (size_t i = 1; i < n; ++i) {
    mean_spacing += (x[i] - x[i - 1]) / x_range;
  }
  mean_spacing /= static_cast<double>(n - 1);

  int candidate = -1;
  double threshold = 0.0;
  for (size_t i = 1; i + 1 < n; ++i) {
    const bool local_max = diff[i] >= diff[i - 1] && diff[i] >= diff[i + 1];
    if (local_max) {
      candidate = static_cast<int>(i);
      threshold = diff[i] - options.sensitivity * mean_spacing;
    } else if (candidate >= 0 && diff[i] < threshold) {
      return KneePoint{static_cast<size_t>(candidate),
                       x[static_cast<size_t>(candidate)],
                       y[static_cast<size_t>(candidate)]};
    }
  }
  // A standing candidate whose confirmation drop never arrived (the curve
  // plateaus or rises again through the tail) is still the detected knee;
  // discarding it here used to hand the decision to the global-max fallback,
  // which could pick a different point or fail outright when the maximum
  // sits on the boundary.
  if (candidate >= 0) {
    return KneePoint{static_cast<size_t>(candidate),
                     x[static_cast<size_t>(candidate)],
                     y[static_cast<size_t>(candidate)]};
  }
  // Fall back to the global maximum of the difference curve if it is
  // decisive (common for short empirical curves like the 13-point EB sweep).
  size_t best = 0;
  for (size_t i = 1; i < n; ++i) {
    if (diff[i] > diff[best]) best = i;
  }
  if (best > 0 && best + 1 < n && diff[best] > 0.0) {
    return KneePoint{best, x[best], y[best]};
  }
  return Status::NotFound("no knee detected");
}

}  // namespace lossyts::analysis
