#include "analysis/treeshap.h"

#include <algorithm>
#include <cmath>

namespace lossyts::analysis {

namespace {

// Collects the distinct feature indices used by the tree's internal nodes.
std::vector<int> DistinctFeatures(const RegressionTree& tree) {
  std::vector<int> features;
  for (const TreeNode& node : tree.nodes()) {
    if (node.feature >= 0) features.push_back(node.feature);
  }
  std::sort(features.begin(), features.end());
  features.erase(std::unique(features.begin(), features.end()),
                 features.end());
  return features;
}

// Path-dependent conditional expectation E[f(x) | x_S]: at splits on
// features inside S follow x; otherwise average both children by cover.
double ExpValue(const std::vector<TreeNode>& nodes, int node_id,
                const std::vector<double>& row, uint32_t subset_mask,
                const std::vector<int>& features) {
  const TreeNode& node = nodes[static_cast<size_t>(node_id)];
  if (node.feature < 0) return node.value;
  // Position of this node's feature in the distinct-feature list.
  const auto it =
      std::lower_bound(features.begin(), features.end(), node.feature);
  const size_t pos = static_cast<size_t>(it - features.begin());
  if (subset_mask & (1u << pos)) {
    const int child = row[static_cast<size_t>(node.feature)] <= node.threshold
                          ? node.left
                          : node.right;
    return ExpValue(nodes, child, row, subset_mask, features);
  }
  const TreeNode& l = nodes[static_cast<size_t>(node.left)];
  const TreeNode& r = nodes[static_cast<size_t>(node.right)];
  const double total = l.cover + r.cover;
  return (l.cover * ExpValue(nodes, node.left, row, subset_mask, features) +
          r.cover * ExpValue(nodes, node.right, row, subset_mask, features)) /
         total;
}

}  // namespace

Result<std::vector<double>> TreeShapValues(const RegressionTree& tree,
                                           const std::vector<double>& row,
                                           size_t num_features) {
  std::vector<double> phi(num_features, 0.0);
  if (!tree.fitted()) {
    return Status::FailedPrecondition("tree is not fitted");
  }
  const std::vector<int> features = DistinctFeatures(tree);
  const size_t d = features.size();
  if (d == 0) return phi;  // Single-leaf tree: all contributions are zero.
  if (d > 24) {
    return Status::FailedPrecondition(
        "tree uses too many distinct features for exact SHAP");
  }
  for (int f : features) {
    if (static_cast<size_t>(f) >= num_features) {
      return Status::InvalidArgument("row has fewer features than the tree");
    }
  }

  // Memoize v(S) for every subset of the tree's feature set.
  const uint32_t full = (1u << d) - 1u;
  std::vector<double> v(full + 1u);
  for (uint32_t mask = 0; mask <= full; ++mask) {
    v[mask] = ExpValue(tree.nodes(), 0, row, mask, features);
  }

  // Shapley weights: |S|! (d-|S|-1)! / d!.
  std::vector<double> factorial(d + 1, 1.0);
  for (size_t k = 1; k <= d; ++k) {
    factorial[k] = factorial[k - 1] * static_cast<double>(k);
  }

  for (size_t i = 0; i < d; ++i) {
    const uint32_t bit = 1u << i;
    double contribution = 0.0;
    for (uint32_t mask = 0; mask <= full; ++mask) {
      if (mask & bit) continue;
      const int s = __builtin_popcount(mask);
      const double weight = factorial[static_cast<size_t>(s)] *
                            factorial[d - static_cast<size_t>(s) - 1] /
                            factorial[d];
      contribution += weight * (v[mask | bit] - v[mask]);
    }
    phi[static_cast<size_t>(features[i])] = contribution;
  }
  return phi;
}

Result<std::vector<double>> GbmShapValues(const GradientBoostedTrees& model,
                                          const std::vector<double>& row,
                                          size_t num_features) {
  std::vector<double> phi(num_features, 0.0);
  for (const RegressionTree& tree : model.trees()) {
    Result<std::vector<double>> tree_phi =
        TreeShapValues(tree, row, num_features);
    if (!tree_phi.ok()) return tree_phi.status();
    for (size_t f = 0; f < num_features; ++f) {
      phi[f] += model.learning_rate() * (*tree_phi)[f];
    }
  }
  return phi;
}

Result<std::vector<double>> MeanAbsoluteShap(
    const GradientBoostedTrees& model,
    const std::vector<std::vector<double>>& rows, size_t num_features) {
  if (rows.empty()) {
    return Status::InvalidArgument("no rows to explain");
  }
  std::vector<double> importance(num_features, 0.0);
  for (const std::vector<double>& row : rows) {
    Result<std::vector<double>> phi = GbmShapValues(model, row, num_features);
    if (!phi.ok()) return phi.status();
    for (size_t f = 0; f < num_features; ++f) {
      importance[f] += std::abs((*phi)[f]);
    }
  }
  for (double& v : importance) v /= static_cast<double>(rows.size());
  return importance;
}

}  // namespace lossyts::analysis
