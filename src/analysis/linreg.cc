#include "analysis/linreg.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace lossyts::analysis {

namespace {

// Inverts a small symmetric positive-definite matrix via Gauss-Jordan with
// partial pivoting. Returns false when singular.
bool InvertMatrix(std::vector<std::vector<double>> a,
                  std::vector<std::vector<double>>* inverse) {
  const size_t n = a.size();
  std::vector<std::vector<double>> inv(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) inv[i][i] = 1.0;
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(inv[col], inv[pivot]);
    const double d = a[col][col];
    for (size_t c = 0; c < n; ++c) {
      a[col][c] /= d;
      inv[col][c] /= d;
    }
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a[r][col];
      for (size_t c = 0; c < n; ++c) {
        a[r][c] -= f * a[col][c];
        inv[r][c] -= f * inv[col][c];
      }
    }
  }
  *inverse = std::move(inv);
  return true;
}

}  // namespace

Result<OlsResult> FitOls(const std::vector<std::vector<double>>& columns,
                         const std::vector<double>& y) {
  const size_t n = y.size();
  const size_t k = columns.size() + 1;  // Regressors plus intercept.
  if (n <= k) {
    return Status::InvalidArgument("not enough observations for OLS");
  }
  for (const auto& col : columns) {
    if (col.size() != n) {
      return Status::InvalidArgument("regressor length mismatch");
    }
  }
  // NaN in any cell would flow through the normal equations and the pivoted
  // inversion into quietly-NaN coefficients (NaN comparisons are all false,
  // so the pivot checks cannot catch it) — reject with the coordinate.
  for (size_t t = 0; t < n; ++t) {
    if (!std::isfinite(y[t])) {
      return Status::InvalidArgument("non-finite y at index " +
                                     std::to_string(t));
    }
  }
  for (size_t j = 0; j < columns.size(); ++j) {
    for (size_t t = 0; t < n; ++t) {
      if (!std::isfinite(columns[j][t])) {
        return Status::InvalidArgument(
            "non-finite regressor " + std::to_string(j) + " at index " +
            std::to_string(t));
      }
    }
  }

  // Normal equations X'X beta = X'y with X = [1 | columns].
  std::vector<std::vector<double>> xtx(k, std::vector<double>(k, 0.0));
  std::vector<double> xty(k, 0.0);
  std::vector<double> row(k);
  for (size_t t = 0; t < n; ++t) {
    row[0] = 1.0;
    for (size_t j = 0; j + 1 < k; ++j) row[j + 1] = columns[j][t];
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) xtx[i][j] += row[i] * row[j];
      xty[i] += row[i] * y[t];
    }
  }

  std::vector<std::vector<double>> xtx_inv;
  if (!InvertMatrix(xtx, &xtx_inv)) {
    return Status::FailedPrecondition("design matrix is singular");
  }

  OlsResult result;
  result.coefficients.assign(k, 0.0);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      result.coefficients[i] += xtx_inv[i][j] * xty[j];
    }
  }

  double mean_y = 0.0;
  for (double v : y) mean_y += v;
  mean_y /= static_cast<double>(n);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t t = 0; t < n; ++t) {
    double pred = result.coefficients[0];
    for (size_t j = 0; j + 1 < k; ++j) {
      pred += result.coefficients[j + 1] * columns[j][t];
    }
    ss_res += (y[t] - pred) * (y[t] - pred);
    ss_tot += (y[t] - mean_y) * (y[t] - mean_y);
  }
  result.residual_variance = ss_res / static_cast<double>(n - k);
  result.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;

  result.standard_errors.assign(k, 0.0);
  for (size_t i = 0; i < k; ++i) {
    result.standard_errors[i] =
        std::sqrt(std::max(0.0, result.residual_variance * xtx_inv[i][i]));
  }
  return result;
}

Result<OlsResult> FitSimpleRegression(const std::vector<double>& x,
                                      const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("x and y lengths differ");
  }
  return FitOls({x}, y);
}

}  // namespace lossyts::analysis
