#ifndef LOSSYTS_ANALYSIS_CHANGE_DETECTION_H_
#define LOSSYTS_ANALYSIS_CHANGE_DETECTION_H_

#include <cstddef>
#include <vector>

#include "core/status.h"

namespace lossyts::analysis {

/// Two-sided CUSUM change-point detector for mean shifts — the analytics
/// task of Hollmig et al. (Inf. Syst. 2017), which the paper cites as the
/// change-detection counterpart of its forecasting study (§6.3) and lists
/// as a future analytics target (§5).
///
/// The series is standardized with a rolling baseline; the detector raises a
/// change when either cumulative sum exceeds `threshold` (in baseline
/// standard deviations), then resets.
struct CusumOptions {
  double threshold = 8.0;   ///< Alarm level, in sigma units.
  double drift = 0.5;       ///< Slack subtracted per step (k parameter).
  size_t warmup = 50;       ///< Points used for the initial baseline.
  size_t min_spacing = 25;  ///< Minimum points between reported changes.
  /// Lower bound on the baseline sigma, as an absolute value. Decompressed
  /// data can have a near-zero noise floor (PMC's constant segments collapse
  /// the local variance — the same effect that inflates max_kl_shift in the
  /// paper's §4.3.3), which makes a purely data-driven sigma explode the
  /// false-alarm rate. 0 disables the floor (the naive detector).
  double min_sigma = 0.0;
};

/// Detected change positions (indices into the series). Fails if the series
/// is shorter than the warm-up.
Result<std::vector<size_t>> DetectChanges(const std::vector<double>& values,
                                          const CusumOptions& options = {});

/// Precision/recall/F1 of detected change points against ground truth, with
/// a +-tolerance window per true change.
struct DetectionQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
};

DetectionQuality ScoreDetections(const std::vector<size_t>& detected,
                                 const std::vector<size_t>& truth,
                                 size_t tolerance);

}  // namespace lossyts::analysis

#endif  // LOSSYTS_ANALYSIS_CHANGE_DETECTION_H_
