#include "analysis/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "core/metrics.h"

namespace lossyts::analysis {

std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

Result<double> SpearmanCorrelation(const std::vector<double>& x,
                                   const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("Spearman inputs have different lengths");
  }
  if (x.size() < 3) {
    return Status::InvalidArgument("Spearman needs at least 3 observations");
  }
  // NaN breaks the strict weak ordering of the rank sort, which makes the
  // resulting ranks (and through them rho) indeterminate — reject instead.
  for (size_t i = 0; i < x.size(); ++i) {
    if (!std::isfinite(x[i]) || !std::isfinite(y[i])) {
      return Status::InvalidArgument("non-finite value at index " +
                                     std::to_string(i) +
                                     " in Spearman input");
    }
  }
  return PearsonR(AverageRanks(x), AverageRanks(y));
}

}  // namespace lossyts::analysis
