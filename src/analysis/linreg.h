#ifndef LOSSYTS_ANALYSIS_LINREG_H_
#define LOSSYTS_ANALYSIS_LINREG_H_

#include <vector>

#include "core/status.h"

namespace lossyts::analysis {

/// Ordinary least squares fit with coefficient standard errors — the tool
/// behind Table 3's "CR = θ1·TE + θ0" analysis.
struct OlsResult {
  /// Coefficients: [intercept, beta_1, ..., beta_k].
  std::vector<double> coefficients;
  /// Standard error of each coefficient, same indexing.
  std::vector<double> standard_errors;
  double r_squared = 0.0;
  double residual_variance = 0.0;
};

/// Fits y = b0 + b1*x1 + ... with an automatic intercept. `columns[j]` is the
/// j-th regressor. Fails when inputs are inconsistent or contain non-finite
/// values (which would yield quietly-NaN coefficients), the system is
/// singular, or there are not enough degrees of freedom.
Result<OlsResult> FitOls(const std::vector<std::vector<double>>& columns,
                         const std::vector<double>& y);

/// Convenience wrapper for the single-regressor case of Table 3.
Result<OlsResult> FitSimpleRegression(const std::vector<double>& x,
                                      const std::vector<double>& y);

}  // namespace lossyts::analysis

#endif  // LOSSYTS_ANALYSIS_LINREG_H_
