#ifndef LOSSYTS_ANALYSIS_TREE_H_
#define LOSSYTS_ANALYSIS_TREE_H_

#include <cstddef>
#include <vector>

#include "core/status.h"

namespace lossyts::analysis {

/// One node of a binary regression tree, stored in a flat array.
struct TreeNode {
  int feature = -1;        ///< Split feature index; -1 marks a leaf.
  double threshold = 0.0;  ///< Go left when x[feature] <= threshold.
  int left = -1;
  int right = -1;
  double value = 0.0;      ///< Leaf prediction (mean of training targets).
  double cover = 0.0;      ///< Number of training rows that reached the node.
};

/// CART-style regression tree with variance-reduction splits. The flat node
/// array (with per-node cover counts) is exactly what the TreeSHAP
/// conditional expectations need, so it is part of the public surface.
class RegressionTree {
 public:
  struct Options {
    int max_depth = 3;
    size_t min_samples_leaf = 5;
    size_t min_samples_split = 10;
  };

  RegressionTree() = default;
  explicit RegressionTree(const Options& options) : options_(options) {}

  /// Fits on row-major features (rows[i] is one observation). `row_indices`
  /// selects the training subset (used for gradient-boosting subsampling).
  Status Fit(const std::vector<std::vector<double>>& rows,
             const std::vector<double>& targets,
             const std::vector<size_t>& row_indices);

  /// Convenience Fit over all rows.
  Status Fit(const std::vector<std::vector<double>>& rows,
             const std::vector<double>& targets);

  double Predict(const std::vector<double>& row) const;

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  bool fitted() const { return !nodes_.empty(); }

 private:
  int BuildNode(const std::vector<std::vector<double>>& rows,
                const std::vector<double>& targets,
                std::vector<size_t>& indices, size_t begin, size_t end,
                int depth);

  Options options_;
  std::vector<TreeNode> nodes_;
};

}  // namespace lossyts::analysis

#endif  // LOSSYTS_ANALYSIS_TREE_H_
