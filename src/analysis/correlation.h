#ifndef LOSSYTS_ANALYSIS_CORRELATION_H_
#define LOSSYTS_ANALYSIS_CORRELATION_H_

#include <vector>

#include "core/status.h"

namespace lossyts::analysis {

/// Spearman rank correlation (Pearson correlation of average ranks, so ties
/// are handled). This is the correlation behind Table 4's characteristic
/// ranking. Fails on non-finite input: NaN breaks the rank sort's strict
/// weak ordering and would make the result indeterminate.
Result<double> SpearmanCorrelation(const std::vector<double>& x,
                                   const std::vector<double>& y);

/// Average ranks of the values (1-based; ties share the mean rank).
std::vector<double> AverageRanks(const std::vector<double>& values);

}  // namespace lossyts::analysis

#endif  // LOSSYTS_ANALYSIS_CORRELATION_H_
