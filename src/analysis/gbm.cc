#include "analysis/gbm.h"

#include <algorithm>
#include <numeric>

namespace lossyts::analysis {

Status GradientBoostedTrees::Fit(const std::vector<std::vector<double>>& rows,
                                 const std::vector<double>& targets) {
  if (rows.empty() || rows.size() != targets.size()) {
    return Status::InvalidArgument("rows/targets mismatch or empty");
  }
  if (options_.num_trees <= 0 || options_.learning_rate <= 0.0 ||
      options_.subsample <= 0.0 || options_.subsample > 1.0) {
    return Status::InvalidArgument("invalid boosting options");
  }

  trees_.clear();
  base_score_ = 0.0;
  for (double t : targets) base_score_ += t;
  base_score_ /= static_cast<double>(targets.size());

  std::vector<double> predictions(rows.size(), base_score_);
  std::vector<double> residuals(rows.size());
  Rng rng(options_.seed);

  const size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(options_.subsample *
                             static_cast<double>(rows.size())));
  std::vector<size_t> all_indices(rows.size());
  std::iota(all_indices.begin(), all_indices.end(), 0);

  for (int stage = 0; stage < options_.num_trees; ++stage) {
    for (size_t i = 0; i < rows.size(); ++i) {
      residuals[i] = targets[i] - predictions[i];
    }
    std::vector<size_t> indices;
    if (sample_size >= rows.size()) {
      indices = all_indices;
    } else {
      // Partial Fisher-Yates for an unbiased subsample.
      std::vector<size_t> pool = all_indices;
      indices.reserve(sample_size);
      for (size_t k = 0; k < sample_size; ++k) {
        const size_t j = k + rng.UniformInt(pool.size() - k);
        std::swap(pool[k], pool[j]);
        indices.push_back(pool[k]);
      }
    }
    RegressionTree tree(options_.tree);
    if (Status s = tree.Fit(rows, residuals, indices); !s.ok()) return s;
    for (size_t i = 0; i < rows.size(); ++i) {
      predictions[i] += options_.learning_rate * tree.Predict(rows[i]);
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double GradientBoostedTrees::Predict(const std::vector<double>& row) const {
  double pred = base_score_;
  for (const RegressionTree& tree : trees_) {
    pred += options_.learning_rate * tree.Predict(row);
  }
  return pred;
}

}  // namespace lossyts::analysis
