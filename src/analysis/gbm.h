#ifndef LOSSYTS_ANALYSIS_GBM_H_
#define LOSSYTS_ANALYSIS_GBM_H_

#include <vector>

#include "analysis/tree.h"
#include "core/rng.h"
#include "core/status.h"

namespace lossyts::analysis {

/// Gradient-boosted regression trees with squared-error loss (Friedman 2001).
/// Each stage fits a shallow RegressionTree to the current residuals; row
/// subsampling (stochastic gradient boosting) is supported.
///
/// This is both (a) the tabular learner that the paper trains on the 42
/// characteristics to predict TFE and explain with SHAP (§4.3.1) and (b) the
/// core of the GBoost forecasting model (§3.4) via lag features.
class GradientBoostedTrees {
 public:
  struct Options {
    int num_trees = 100;
    double learning_rate = 0.1;
    double subsample = 1.0;  ///< Fraction of rows per stage, (0, 1].
    RegressionTree::Options tree;
    uint64_t seed = 7;
  };

  GradientBoostedTrees() = default;
  explicit GradientBoostedTrees(const Options& options) : options_(options) {}

  /// Fits on row-major features. Fails on inconsistent input.
  Status Fit(const std::vector<std::vector<double>>& rows,
             const std::vector<double>& targets);

  double Predict(const std::vector<double>& row) const;

  /// Mean training target; stage-0 prediction.
  double base_score() const { return base_score_; }
  const std::vector<RegressionTree>& trees() const { return trees_; }
  double learning_rate() const { return options_.learning_rate; }

 private:
  Options options_;
  double base_score_ = 0.0;
  std::vector<RegressionTree> trees_;
};

}  // namespace lossyts::analysis

#endif  // LOSSYTS_ANALYSIS_GBM_H_
