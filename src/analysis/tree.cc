#include "analysis/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace lossyts::analysis {

namespace {

double MeanOf(const std::vector<double>& targets,
              const std::vector<size_t>& indices, size_t begin, size_t end) {
  double sum = 0.0;
  for (size_t k = begin; k < end; ++k) sum += targets[indices[k]];
  return sum / static_cast<double>(end - begin);
}

}  // namespace

Status RegressionTree::Fit(const std::vector<std::vector<double>>& rows,
                           const std::vector<double>& targets,
                           const std::vector<size_t>& row_indices) {
  if (rows.size() != targets.size()) {
    return Status::InvalidArgument("rows and targets size mismatch");
  }
  if (row_indices.empty()) {
    return Status::InvalidArgument("no training rows selected");
  }
  for (size_t idx : row_indices) {
    if (idx >= rows.size()) {
      return Status::OutOfRange("row index out of range");
    }
  }
  nodes_.clear();
  std::vector<size_t> indices = row_indices;
  BuildNode(rows, targets, indices, 0, indices.size(), 0);
  return Status::OK();
}

Status RegressionTree::Fit(const std::vector<std::vector<double>>& rows,
                           const std::vector<double>& targets) {
  std::vector<size_t> all(rows.size());
  std::iota(all.begin(), all.end(), 0);
  return Fit(rows, targets, all);
}

int RegressionTree::BuildNode(const std::vector<std::vector<double>>& rows,
                              const std::vector<double>& targets,
                              std::vector<size_t>& indices, size_t begin,
                              size_t end, int depth) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(TreeNode{});
  nodes_[node_id].value = MeanOf(targets, indices, begin, end);
  nodes_[node_id].cover = static_cast<double>(end - begin);

  const size_t n = end - begin;
  if (depth >= options_.max_depth || n < options_.min_samples_split) {
    return node_id;
  }

  // Current sum of squares (for the variance-reduction criterion the
  // constant term cancels; we maximize sum_L^2/n_L + sum_R^2/n_R).
  const size_t num_features = rows[indices[begin]].size();
  double best_gain = -std::numeric_limits<double>::infinity();
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, double>> scratch(n);  // (feature value, y).
  for (size_t f = 0; f < num_features; ++f) {
    for (size_t k = 0; k < n; ++k) {
      const size_t idx = indices[begin + k];
      scratch[k] = {rows[idx][f], targets[idx]};
    }
    std::sort(scratch.begin(), scratch.end());
    if (scratch.front().first == scratch.back().first) continue;

    double total = 0.0;
    for (const auto& [xv, yv] : scratch) total += yv;
    double left_sum = 0.0;
    for (size_t k = 0; k + 1 < n; ++k) {
      left_sum += scratch[k].second;
      // Only split between distinct feature values.
      if (scratch[k].first == scratch[k + 1].first) continue;
      const size_t n_left = k + 1;
      const size_t n_right = n - n_left;
      if (n_left < options_.min_samples_leaf ||
          n_right < options_.min_samples_leaf) {
        continue;
      }
      const double right_sum = total - left_sum;
      const double gain =
          left_sum * left_sum / static_cast<double>(n_left) +
          right_sum * right_sum / static_cast<double>(n_right);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (scratch[k].first + scratch[k + 1].first);
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition indices in place.
  const auto mid_it = std::partition(
      indices.begin() + begin, indices.begin() + end, [&](size_t idx) {
        return rows[idx][static_cast<size_t>(best_feature)] <= best_threshold;
      });
  const size_t mid = static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return node_id;  // Degenerate split.

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  const int left = BuildNode(rows, targets, indices, begin, mid, depth + 1);
  const int right = BuildNode(rows, targets, indices, mid, end, depth + 1);
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double RegressionTree::Predict(const std::vector<double>& row) const {
  if (nodes_.empty()) return 0.0;
  int node = 0;
  while (nodes_[static_cast<size_t>(node)].feature >= 0) {
    const TreeNode& cur = nodes_[static_cast<size_t>(node)];
    node = row[static_cast<size_t>(cur.feature)] <= cur.threshold ? cur.left
                                                                  : cur.right;
  }
  return nodes_[static_cast<size_t>(node)].value;
}

}  // namespace lossyts::analysis
