#include "analysis/change_detection.h"

#include <algorithm>
#include <cmath>

namespace lossyts::analysis {

Result<std::vector<size_t>> DetectChanges(const std::vector<double>& values,
                                          const CusumOptions& options) {
  if (values.size() <= options.warmup + 1) {
    return Status::FailedPrecondition("series shorter than CUSUM warm-up");
  }
  // Baseline mean/sd from the warm-up window; re-anchored after each alarm.
  auto baseline = [&](size_t begin, size_t end, double* mean, double* sd) {
    double m = 0.0;
    for (size_t i = begin; i < end; ++i) m += values[i];
    m /= static_cast<double>(end - begin);
    double ss = 0.0;
    for (size_t i = begin; i < end; ++i) {
      ss += (values[i] - m) * (values[i] - m);
    }
    *mean = m;
    *sd = std::max({std::sqrt(ss / static_cast<double>(end - begin)),
                    options.min_sigma, 1e-9});
  };

  std::vector<size_t> changes;
  double mean = 0.0;
  double sd = 1.0;
  baseline(0, options.warmup, &mean, &sd);
  double pos = 0.0;
  double neg = 0.0;
  size_t last_change = 0;
  for (size_t i = options.warmup; i < values.size(); ++i) {
    const double z = (values[i] - mean) / sd;
    pos = std::max(0.0, pos + z - options.drift);
    neg = std::max(0.0, neg - z - options.drift);
    const bool alarm = pos > options.threshold || neg > options.threshold;
    if (alarm && (changes.empty() ||
                  i - last_change >= options.min_spacing)) {
      changes.push_back(i);
      last_change = i;
      // Re-anchor the baseline on the points after the change.
      const size_t end = std::min(values.size(), i + options.warmup);
      if (end - i >= 8) baseline(i, end, &mean, &sd);
      pos = 0.0;
      neg = 0.0;
    } else if (alarm) {
      pos = 0.0;
      neg = 0.0;
    }
  }
  return changes;
}

DetectionQuality ScoreDetections(const std::vector<size_t>& detected,
                                 const std::vector<size_t>& truth,
                                 size_t tolerance) {
  DetectionQuality q;
  std::vector<bool> truth_matched(truth.size(), false);
  for (size_t d : detected) {
    bool matched = false;
    for (size_t t = 0; t < truth.size(); ++t) {
      if (truth_matched[t]) continue;
      const size_t lo = truth[t] > tolerance ? truth[t] - tolerance : 0;
      if (d >= lo && d <= truth[t] + tolerance) {
        truth_matched[t] = true;
        matched = true;
        break;
      }
    }
    if (matched) {
      ++q.true_positives;
    } else {
      ++q.false_positives;
    }
  }
  for (bool m : truth_matched) {
    if (!m) ++q.false_negatives;
  }
  const double tp = static_cast<double>(q.true_positives);
  if (q.true_positives + q.false_positives > 0) {
    q.precision = tp / static_cast<double>(q.true_positives +
                                           q.false_positives);
  }
  if (q.true_positives + q.false_negatives > 0) {
    q.recall = tp / static_cast<double>(q.true_positives +
                                        q.false_negatives);
  }
  if (q.precision + q.recall > 0.0) {
    q.f1 = 2.0 * q.precision * q.recall / (q.precision + q.recall);
  }
  return q;
}

}  // namespace lossyts::analysis
