#ifndef LOSSYTS_ANALYSIS_TREESHAP_H_
#define LOSSYTS_ANALYSIS_TREESHAP_H_

#include <vector>

#include "analysis/gbm.h"
#include "analysis/tree.h"
#include "core/status.h"

namespace lossyts::analysis {

/// Exact SHAP values for tree ensembles (Lundberg et al. 2020), computed with
/// the path-dependent conditional expectation E[f(x) | x_S]:
/// features absent from S are marginalized by descending both children
/// weighted by their training cover.
///
/// Implementation note: Shapley values are exact — each tree only "plays"
/// the features it actually splits on, so the subset enumeration runs over
/// the D distinct features in that tree (cost O(2^D · nodes)). With the
/// shallow trees used here D is at most 2^max_depth − 1, which is tiny.
///
/// Properties guaranteed (and unit-tested): local accuracy
/// (sum(phi) + E[f] = f(x)) and missingness (unused features get 0).

/// Per-feature SHAP contributions of one tree for one row. `num_features`
/// sizes the output vector.
Result<std::vector<double>> TreeShapValues(const RegressionTree& tree,
                                           const std::vector<double>& row,
                                           size_t num_features);

/// SHAP values for a boosted ensemble: the (learning-rate-scaled) sum of the
/// per-tree values. sum(phi) + base_score = Predict(row).
Result<std::vector<double>> GbmShapValues(const GradientBoostedTrees& model,
                                          const std::vector<double>& row,
                                          size_t num_features);

/// Mean absolute SHAP value per feature over a set of rows — the global
/// importance ranking shown in the paper's Figure 5.
Result<std::vector<double>> MeanAbsoluteShap(
    const GradientBoostedTrees& model,
    const std::vector<std::vector<double>>& rows, size_t num_features);

}  // namespace lossyts::analysis

#endif  // LOSSYTS_ANALYSIS_TREESHAP_H_
