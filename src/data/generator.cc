#include "data/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace lossyts::data {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

std::vector<double> Sinusoid(size_t n, double period, double amplitude,
                             double phase) {
  std::vector<double> out(n);
  const double omega = 2.0 * kPi / period;
  for (size_t i = 0; i < n; ++i) {
    out[i] = amplitude * std::sin(omega * static_cast<double>(i) + phase);
  }
  return out;
}

std::vector<double> Ar1Noise(size_t n, double phi, double sigma, Rng& rng) {
  std::vector<double> out(n);
  double x = 0.0;
  for (size_t i = 0; i < n; ++i) {
    x = phi * x + rng.Normal(0.0, sigma);
    out[i] = x;
  }
  return out;
}

std::vector<double> BoundedWalk(size_t n, double start, double step_sigma,
                                double lo, double hi, Rng& rng) {
  std::vector<double> out(n);
  double x = start;
  for (size_t i = 0; i < n; ++i) {
    x += rng.Normal(0.0, step_sigma);
    // Reflect off the boundaries to keep the level inside [lo, hi].
    if (x > hi) x = 2.0 * hi - x;
    if (x < lo) x = 2.0 * lo - x;
    x = std::clamp(x, lo, hi);
    out[i] = x;
  }
  return out;
}

std::vector<double> MeanRevertingWalk(size_t n, double start, double mu,
                                      double theta, double sigma, Rng& rng) {
  std::vector<double> out(n);
  double x = start;
  for (size_t i = 0; i < n; ++i) {
    x += theta * (mu - x) + rng.Normal(0.0, sigma);
    out[i] = x;
  }
  return out;
}

void ClampInPlace(std::vector<double>& values, double lo, double hi) {
  for (double& v : values) v = std::clamp(v, lo, hi);
}

void AddInPlace(std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void QuantizeInPlace(std::vector<double>& values, double step) {
  assert(step > 0.0);
  for (double& v : values) v = std::round(v / step) * step;
}

}  // namespace lossyts::data
