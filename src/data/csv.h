#ifndef LOSSYTS_DATA_CSV_H_
#define LOSSYTS_DATA_CSV_H_

#include <string>

#include "core/status.h"
#include "core/time_series.h"

namespace lossyts::data {

/// Options for LoadCsv. The expected file shape is the one used by the
/// paper's datasets: one row per point with a timestamp column and one or
/// more value columns, with a header row.
struct CsvOptions {
  char delimiter = ',';
  bool has_header = true;
  int timestamp_column = 0;  ///< -1: no timestamp column, synthesize one.
  int value_column = 1;      ///< Target variable column.
  /// Sampling interval used when timestamp_column is -1 or timestamps are
  /// not plain epoch-second integers.
  int32_t fallback_interval_seconds = 60;
};

/// Loads a regular univariate time series from a CSV file. Timestamps are
/// parsed as epoch seconds when numeric; otherwise row index spacing with the
/// fallback interval is used. Fails on unreadable files, short rows or
/// non-numeric values.
Result<TimeSeries> LoadCsv(const std::string& path,
                           const CsvOptions& options = {});

/// Writes a series as "timestamp,value" rows with a header.
Status SaveCsv(const TimeSeries& series, const std::string& path);

}  // namespace lossyts::data

#endif  // LOSSYTS_DATA_CSV_H_
