#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "core/rng.h"
#include "data/generator.h"

namespace lossyts::data {

namespace {

constexpr int64_t kStartTimestamp = 1640995200;  // 2022-01-01T00:00:00Z.
constexpr double kPi = 3.14159265358979323846;

size_t ScaledLength(size_t paper_length, double fraction) {
  const size_t n =
      static_cast<size_t>(static_cast<double>(paper_length) * fraction);
  return std::max<size_t>(n, 512);
}

/// ETT oil-temperature recipe shared by ETTm1/ETTm2: a multi-day drifting
/// level, a daily cycle and autocorrelated sensor noise.
TimeSeries MakeEtt(size_t n, Rng& rng, double level_start, double level_lo,
                   double level_hi, double level_sigma, double daily_amp,
                   double noise_sigma, double clamp_lo, double clamp_hi) {
  const double period = 96.0;  // 15-minute sampling: 96 points per day.
  std::vector<double> v =
      BoundedWalk(n, level_start, level_sigma, level_lo, level_hi, rng);
  AddInPlace(v, Sinusoid(n, period, daily_amp, -kPi / 2.0));
  AddInPlace(v, Ar1Noise(n, 0.9, noise_sigma, rng));
  ClampInPlace(v, clamp_lo, clamp_hi);
  QuantizeInPlace(v, 0.01);  // The ETT sensors record at 0.01 precision.
  return TimeSeries(kStartTimestamp, 900, std::move(v));
}

TimeSeries MakeEttm1(size_t n, Rng& rng) {
  return MakeEtt(n, rng, 13.3, 3.5, 22.5, 0.35, 6.5, 0.5, -4.0, 46.0);
}

TimeSeries MakeEttm2(size_t n, Rng& rng) {
  return MakeEtt(n, rng, 26.6, 15.0, 41.0, 0.50, 9.0, 0.6, -3.0, 58.0);
}

/// Solar PV power: zero at night, a bell-shaped daytime profile whose peak
/// varies day by day (cloud cover), with multiplicative intra-day noise.
TimeSeries MakeSolar(size_t n, Rng& rng) {
  const size_t day = 144;  // 10-minute sampling.
  std::vector<double> v(n, 0.0);
  std::vector<double> cloud = Ar1Noise(n, 0.95, 0.08, rng);
  double peak = 22.0;
  for (size_t i = 0; i < n; ++i) {
    const size_t tod = i % day;
    if (tod == 0) peak = rng.Uniform(11.0, 35.0);  // New day's irradiance.
    const double frac =
        (static_cast<double>(tod) / static_cast<double>(day) - 0.25) / 0.5;
    if (frac <= 0.0 || frac >= 1.0) continue;  // Night.
    const double bell = std::sin(kPi * frac);
    const double noise = std::clamp(1.0 + cloud[i], 0.05, 1.25);
    v[i] = peak * bell * bell * noise;
  }
  ClampInPlace(v, 0.0, 34.0);
  QuantizeInPlace(v, 0.01);  // PV inverters report hundredths of a unit.
  return TimeSeries(kStartTimestamp, 600, std::move(v));
}

/// CO2 concentration: a high, slowly drifting base level with a small daily
/// cycle — the tiny-rIQD dataset that makes compression look spectacular.
TimeSeries MakeWeather(size_t n, Rng& rng) {
  const double period = 144.0;  // 10-minute sampling.
  std::vector<double> v = BoundedWalk(n, 427.0, 1.0, 400.0, 454.0, rng);
  AddInPlace(v, Sinusoid(n, period, 6.0, 0.0));
  AddInPlace(v, Ar1Noise(n, 0.8, 1.3, rng));
  ClampInPlace(v, 305.0, 524.0);
  QuantizeInPlace(v, 0.1);  // CO2 analyzers report tenths of ppm.
  return TimeSeries(kStartTimestamp, 600, std::move(v));
}

/// Half-hourly electricity demand: strong daily double-peak, a weekend dip,
/// a drifting base load and autocorrelated noise.
TimeSeries MakeElecDem(size_t n, Rng& rng) {
  const size_t day = 48;  // 30-minute sampling.
  std::vector<double> v = BoundedWalk(n, 6740.0, 9.0, 6100.0, 7400.0, rng);
  AddInPlace(v, Sinusoid(n, static_cast<double>(day), 1300.0, -kPi / 2.0));
  AddInPlace(v, Sinusoid(n, static_cast<double>(day) / 2.0, 420.0, kPi / 3.0));
  AddInPlace(v, Ar1Noise(n, 0.85, 130.0, rng));
  double heat_wave = 1.0;
  for (size_t i = 0; i < n; ++i) {
    const size_t weekday = (i / day) % 7;
    if (i % day == 0) {
      // Rare extreme-demand days produce the long upper tail of Table 1.
      heat_wave = 1.0 + 0.5 * std::max(0.0, rng.Normal() - 1.6);
    }
    v[i] *= heat_wave;
    if (weekday >= 5) v[i] -= 420.0;  // Weekend dip.
  }
  ClampInPlace(v, 3498.0, 12865.0);
  QuantizeInPlace(v, 1.0);  // Demand telemetry is metered in whole units.
  return TimeSeries(kStartTimestamp, 1800, std::move(v));
}

/// Wind-turbine active power at 2-second sampling: a slowly wandering wind
/// speed pushed through a cubic power curve, idle consumption below cut-in,
/// and fast measurement noise.
TimeSeries MakeWind(size_t n, Rng& rng) {
  constexpr double kCutIn = 3.0;    // m/s.
  constexpr double kRatedV = 12.0;  // m/s.
  constexpr double kRatedP = 2000.0;
  std::vector<double> speed =
      MeanRevertingWalk(n, 5.6, 5.6, 0.002, 0.139, rng);
  std::vector<double> gust = Ar1Noise(n, 0.99, 0.02, rng);
  std::vector<double> meas = Ar1Noise(n, 0.7, 14.0, rng);
  std::vector<double> v(n);
  const double cut_in3 = kCutIn * kCutIn * kCutIn;
  const double rated3 = kRatedV * kRatedV * kRatedV;
  for (size_t i = 0; i < n; ++i) {
    const double w = std::max(speed[i] + gust[i], 0.0);
    double power;
    if (w < kCutIn) {
      power = -30.0;  // Idle consumption of the turbine's own systems.
    } else if (w < kRatedV) {
      power = kRatedP * (w * w * w - cut_in3) / (rated3 - cut_in3);
    } else {
      power = kRatedP;
    }
    v[i] = power + meas[i];
  }
  ClampInPlace(v, -68.0, 2030.0);
  QuantizeInPlace(v, 0.1);  // SCADA active power is logged in 0.1 kW steps.
  return TimeSeries(kStartTimestamp, 2, std::move(v));
}

PaperStats EttM1Paper() {
  return {69680, "15min", 13.32, -4, 46, 7, 18, 82};
}
PaperStats EttM2Paper() {
  return {69680, "15min", 26.60, -3, 58, 16, 36, 75};
}
PaperStats SolarPaper() { return {52560, "10min", 6.35, 0, 34, 0, 12, 200}; }
PaperStats WeatherPaper() {
  return {52704, "10min", 427.66, 305, 524, 415, 437, 5};
}
PaperStats ElecDemPaper() {
  return {230736, "30min", 6740, 3498, 12865, 5751, 7658, 28};
}
PaperStats WindPaper() {
  return {432000, "2sec", 363.69, -68, 2030, 108, 550, 121};
}

}  // namespace

const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "ETTm1", "ETTm2", "Solar", "Weather", "ElecDem", "Wind"};
  return names;
}

Result<Dataset> MakeDataset(const std::string& name,
                            const DatasetOptions& options) {
  if (options.length_fraction <= 0.0 || options.length_fraction > 1.0) {
    return Status::InvalidArgument("length_fraction must be in (0, 1]");
  }
  Rng rng(options.seed);
  Dataset d;
  d.name = name;
  if (name == "ETTm1") {
    d.paper = EttM1Paper();
    d.season_length = 96;
    d.series = MakeEttm1(ScaledLength(d.paper.length, options.length_fraction),
                         rng);
  } else if (name == "ETTm2") {
    Rng rng2(options.seed + 1);  // Decorrelate from ETTm1.
    d.paper = EttM2Paper();
    d.season_length = 96;
    d.series = MakeEttm2(ScaledLength(d.paper.length, options.length_fraction),
                         rng2);
  } else if (name == "Solar") {
    d.paper = SolarPaper();
    d.season_length = 144;
    d.series = MakeSolar(ScaledLength(d.paper.length, options.length_fraction),
                         rng);
  } else if (name == "Weather") {
    d.paper = WeatherPaper();
    d.season_length = 144;
    d.series = MakeWeather(
        ScaledLength(d.paper.length, options.length_fraction), rng);
  } else if (name == "ElecDem") {
    d.paper = ElecDemPaper();
    d.season_length = 48;
    d.series = MakeElecDem(
        ScaledLength(d.paper.length, options.length_fraction), rng);
  } else if (name == "Wind") {
    d.paper = WindPaper();
    // The 2-second series has no sub-hour seasonality; use 30 min of samples
    // as the "season" for feature extraction windows.
    d.season_length = 900;
    // Wind is scaled more aggressively: 432k points would dominate runtime.
    d.series = MakeWind(
        ScaledLength(d.paper.length, options.length_fraction / 4.0), rng);
  } else {
    return Status::NotFound("unknown dataset: " + name);
  }
  return d;
}

Result<std::vector<Dataset>> MakeAllDatasets(const DatasetOptions& options) {
  std::vector<Dataset> out;
  out.reserve(DatasetNames().size());
  for (const std::string& name : DatasetNames()) {
    Result<Dataset> d = MakeDataset(name, options);
    if (!d.ok()) return d.status();
    out.push_back(std::move(*d));
  }
  return out;
}

}  // namespace lossyts::data
