#ifndef LOSSYTS_DATA_GENERATOR_H_
#define LOSSYTS_DATA_GENERATOR_H_

#include <cstddef>
#include <vector>

#include "core/rng.h"

namespace lossyts::data {

/// Composable building blocks for the synthetic dataset generators. Each
/// helper produces an n-point component; dataset recipes add/multiply them.
/// Everything is driven by an explicit Rng, so a (name, seed) pair fully
/// determines a dataset.

/// Sinusoid with the given period (in samples), amplitude and phase.
std::vector<double> Sinusoid(size_t n, double period, double amplitude,
                             double phase = 0.0);

/// First-order autoregressive noise: x_t = phi·x_{t-1} + N(0, sigma).
std::vector<double> Ar1Noise(size_t n, double phi, double sigma, Rng& rng);

/// Slow random-walk level that reflects off [lo, hi], modelling multi-day
/// drift (weather fronts, load growth, oil temperature regimes).
std::vector<double> BoundedWalk(size_t n, double start, double step_sigma,
                                double lo, double hi, Rng& rng);

/// Mean-reverting Ornstein-Uhlenbeck-style process discretized per sample:
/// x_{t+1} = x_t + theta·(mu − x_t) + N(0, sigma).
std::vector<double> MeanRevertingWalk(size_t n, double start, double mu,
                                      double theta, double sigma, Rng& rng);

/// Clamps every value into [lo, hi] in place.
void ClampInPlace(std::vector<double>& values, double lo, double hi);

/// Element-wise sum of `b` into `a` (sizes must match).
void AddInPlace(std::vector<double>& a, const std::vector<double>& b);

/// Rounds every value to a multiple of `step`, emulating the fixed decimal
/// precision of real sensor recordings (e.g. 0.01 °C for the ETT oil
/// temperature). This matters for the lossless baselines: Gorilla and gzip
/// both rely on exact value repeats and shared mantissa bits, which
/// full-entropy synthetic doubles would never produce.
void QuantizeInPlace(std::vector<double>& values, double step);

}  // namespace lossyts::data

#endif  // LOSSYTS_DATA_GENERATOR_H_
