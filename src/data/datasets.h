#ifndef LOSSYTS_DATA_DATASETS_H_
#define LOSSYTS_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "core/status.h"
#include "core/time_series.h"

namespace lossyts::data {

/// Reference statistics reported in the paper's Table 1 for one dataset.
struct PaperStats {
  size_t length = 0;
  std::string freq;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double q1 = 0.0;
  double q3 = 0.0;
  double riqd_percent = 0.0;
};

/// One evaluation dataset: the (synthetic) target-variable series, the
/// dominant seasonal period in samples, and the paper's reference statistics
/// for side-by-side reporting.
struct Dataset {
  std::string name;
  TimeSeries series;
  size_t season_length = 0;  ///< Samples per dominant season (0 = none).
  PaperStats paper;
};

/// Controls how much of the paper-scale dataset to generate. The default
/// fraction keeps every benchmark laptop-fast while preserving dozens of
/// seasonal cycles; pass 1.0 to generate at the paper's full lengths.
struct DatasetOptions {
  double length_fraction = 0.125;
  uint64_t seed = 42;
};

/// Names of the six datasets, in the paper's Table 1 order:
/// ETTm1, ETTm2, Solar, Weather, ElecDem, Wind.
const std::vector<std::string>& DatasetNames();

/// Generates the named dataset. Fails with NotFound for unknown names.
Result<Dataset> MakeDataset(const std::string& name,
                            const DatasetOptions& options = {});

/// Generates all six datasets in Table 1 order.
Result<std::vector<Dataset>> MakeAllDatasets(const DatasetOptions& options = {});

}  // namespace lossyts::data

#endif  // LOSSYTS_DATA_DATASETS_H_
