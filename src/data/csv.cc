#include "data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace lossyts::data {

namespace {

std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream stream(line);
  while (std::getline(stream, field, delimiter)) fields.push_back(field);
  return fields;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

Result<TimeSeries> LoadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path);
  }

  std::vector<double> values;
  std::vector<int64_t> timestamps;
  std::string line;
  size_t row = 0;
  const int needed = std::max(options.timestamp_column, options.value_column);
  while (std::getline(file, line)) {
    ++row;
    if (row == 1 && options.has_header) continue;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitLine(line, options.delimiter);
    if (static_cast<int>(fields.size()) <= needed) {
      return Status::Corruption(path + ": row " + std::to_string(row) +
                                " has too few columns");
    }
    double value = 0.0;
    if (!ParseDouble(fields[options.value_column], &value)) {
      return Status::Corruption(path + ": row " + std::to_string(row) +
                                " has a non-numeric value");
    }
    values.push_back(value);
    if (options.timestamp_column >= 0) {
      double ts = 0.0;
      if (ParseDouble(fields[options.timestamp_column], &ts)) {
        timestamps.push_back(static_cast<int64_t>(ts));
      }
    }
  }
  if (values.empty()) {
    return Status::Corruption(path + ": no data rows");
  }

  int64_t start = 0;
  int32_t interval = options.fallback_interval_seconds;
  if (timestamps.size() == values.size() && timestamps.size() >= 2) {
    start = timestamps[0];
    interval = static_cast<int32_t>(timestamps[1] - timestamps[0]);
    if (interval <= 0) interval = options.fallback_interval_seconds;
  }
  return TimeSeries(start, interval, std::move(values));
}

Status SaveCsv(const TimeSeries& series, const std::string& path) {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  file << "timestamp,value\n";
  for (size_t i = 0; i < series.size(); ++i) {
    file << series.TimestampAt(i) << ',' << series[i] << '\n';
  }
  if (!file.good()) {
    return Status::IoError("write to " + path + " failed");
  }
  return Status::OK();
}

}  // namespace lossyts::data
