#include "numcheck/harness.h"

#include <algorithm>
#include <functional>
#include <mutex>
#include <tuple>
#include <utility>

#include "core/seed.h"
#include "core/thread_pool.h"
#include "numcheck/gradcheck.h"
#include "numcheck/models.h"
#include "numcheck/oracles.h"

namespace lossyts::numcheck {

namespace {

/// A resolved component: display name plus the leg that runs one seeded case.
struct Component {
  std::string name;
  std::function<Result<CheckReport>(uint64_t)> run;
};

/// Resolves one selector category against its registry. Empty selects every
/// registered name, the single entry "none" selects nothing, and an unknown
/// name fails the whole run instead of silently shrinking the grid.
Status ResolveSelection(const std::vector<std::string>& selection,
                        const std::vector<std::string>& registry,
                        const std::string& prefix,
                        Result<CheckReport> (*run)(const std::string&,
                                                   uint64_t),
                        std::vector<Component>& components) {
  if (selection.size() == 1 && selection[0] == "none") return Status::OK();
  const std::vector<std::string>& names =
      selection.empty() ? registry : selection;
  for (const std::string& name : names) {
    if (std::find(registry.begin(), registry.end(), name) == registry.end()) {
      return Status::NotFound("unknown numcheck component: " + prefix + name);
    }
    components.push_back(
        {prefix + name, [run, name](uint64_t seed) { return run(name, seed); }});
  }
  return Status::OK();
}

bool FailureLess(const NumCheckFailure& a, const NumCheckFailure& b) {
  return std::tie(a.component, a.case_index, a.check, a.detail) <
         std::tie(b.component, b.case_index, b.check, b.detail);
}

}  // namespace

std::string FormatFailure(const NumCheckFailure& failure) {
  return "[" + failure.component + "#" + std::to_string(failure.case_index) +
         " seed=" + std::to_string(failure.seed) + "] " + failure.check +
         ": " + failure.detail;
}

Result<NumCheckSummary> RunNumCheck(const NumCheckOptions& options) {
  if (options.iters <= 0) {
    return Status::InvalidArgument("iters must be positive");
  }

  std::vector<Component> components;
  if (Status s = ResolveSelection(options.ops, GradCheckOpNames(), "op:",
                                  &RunOpGradChecks, components);
      !s.ok()) {
    return s;
  }
  if (Status s = ResolveSelection(options.models, GradCheckModelNames(),
                                  "model:", &RunModelGradChecks, components);
      !s.ok()) {
    return s;
  }
  if (Status s = ResolveSelection(options.oracles, AnalysisOracleNames(),
                                  "oracle:", &RunAnalysisOracle, components);
      !s.ok()) {
    return s;
  }

  NumCheckSummary summary;
  std::mutex mu;
  Status first_error = Status::OK();
  ThreadPool pool(options.jobs);

  for (const Component& component : components) {
    for (int index = 0; index < options.iters; ++index) {
      // Seeds derive from the case identity, never from execution order, so
      // the grid is bit-identical for every jobs value.
      const uint64_t seed =
          MixSeed(TagSeed(options.base_seed, component.name), index);
      pool.Submit([&component, index, seed, &summary, &mu, &first_error] {
        Result<CheckReport> report = component.run(seed);
        std::lock_guard<std::mutex> lock(mu);
        ++summary.cases;
        if (!report.ok()) {
          if (first_error.ok()) first_error = report.status();
          return;
        }
        summary.checks += report->checks;
        for (CheckFailure& f : report->failures) {
          summary.failures.push_back(NumCheckFailure{
              component.name, index, seed, std::move(f.check),
              std::move(f.detail)});
        }
      });
    }
  }
  pool.Wait();

  if (!first_error.ok()) return first_error;
  // Execution order is pool-dependent; the report is not.
  std::sort(summary.failures.begin(), summary.failures.end(), FailureLess);
  return summary;
}

}  // namespace lossyts::numcheck
