#ifndef LOSSYTS_NUMCHECK_MODELS_H_
#define LOSSYTS_NUMCHECK_MODELS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "numcheck/check.h"

namespace lossyts::numcheck {

/// The five deep forecasters whose end-to-end forward-backward pass the
/// gradient oracle covers: DLinear, GRU, NBeats, Transformer, Informer.
const std::vector<std::string>& GradCheckModelNames();

/// Builds the named model's window network at a tiny seeded configuration
/// and checks the full forward-backward against central differences: every
/// input-batch entry, plus a seeded sample of entries in every parameter
/// tensor. Fails with NotFound for unknown names; oracle violations come
/// back inside the report.
Result<CheckReport> RunModelGradChecks(const std::string& model,
                                       uint64_t seed);

}  // namespace lossyts::numcheck

#endif  // LOSSYTS_NUMCHECK_MODELS_H_
