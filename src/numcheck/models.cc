#include "numcheck/models.h"

#include <memory>
#include <utility>

#include "core/rng.h"
#include "core/seed.h"
#include "forecast/dlinear.h"
#include "forecast/gru.h"
#include "forecast/nbeats.h"
#include "forecast/transformer.h"
#include "numcheck/gradcheck.h"

namespace lossyts::numcheck {

namespace {

using forecast::ForecastConfig;
using forecast::WindowNetwork;

/// BuildNetwork is protected (only NnForecaster::Fit calls it in production);
/// the oracle needs the bare network without a training loop around it, so a
/// thin subclass re-exports the factory per forecaster type.
template <typename Forecaster>
class NetworkFactory : public Forecaster {
 public:
  using Forecaster::Forecaster;
  std::unique_ptr<WindowNetwork> Build(Rng& rng) {
    return this->BuildNetwork(rng);
  }
};

/// Tiny seeded configuration: 8-step windows keep the full-sweep finite
/// differences cheap and keep Informer's top-u ProbSparse cutoff above the
/// sequence length, so its query selection stays total (a partial selection
/// is discrete and not finite-differentiable).
ForecastConfig TinyConfig(uint64_t seed) {
  ForecastConfig config;
  config.input_length = 8;
  config.horizon = 4;
  config.seed = seed;
  config.dropout = 0.0;
  return config;
}

std::unique_ptr<WindowNetwork> BuildModelNetwork(const std::string& model,
                                                 const ForecastConfig& config,
                                                 Rng& rng) {
  if (model == "DLinear") {
    return NetworkFactory<forecast::DLinearForecaster>(config).Build(rng);
  }
  if (model == "GRU") {
    forecast::GruForecaster::Architecture arch;
    arch.hidden = 5;
    return NetworkFactory<forecast::GruForecaster>(config, arch).Build(rng);
  }
  if (model == "NBeats") {
    forecast::NBeatsForecaster::Architecture arch;
    arch.num_blocks = 2;
    arch.hidden = 8;
    arch.fc_layers = 2;
    return NetworkFactory<forecast::NBeatsForecaster>(config, arch).Build(rng);
  }
  if (model == "Transformer" || model == "Informer") {
    forecast::TransformerForecaster::Architecture arch;
    arch.d_model = 8;
    arch.num_heads = 2;
    arch.d_ff = 12;
    arch.encoder_layers = model == "Informer" ? 2 : 1;  // 2 hits distilling.
    arch.decoder_layers = 1;
    arch.label_length = 4;
    if (model == "Informer") {
      return NetworkFactory<forecast::InformerForecaster>(config, arch)
          .Build(rng);
    }
    return NetworkFactory<forecast::TransformerForecaster>(config, arch)
        .Build(rng);
  }
  return nullptr;
}

}  // namespace

const std::vector<std::string>& GradCheckModelNames() {
  static const std::vector<std::string> kNames = {
      "DLinear", "GRU", "NBeats", "Transformer", "Informer"};
  return kNames;
}

Result<CheckReport> RunModelGradChecks(const std::string& model,
                                       uint64_t seed) {
  const ForecastConfig config = TinyConfig(seed);
  Rng init_rng(MixSeed(seed, 1));
  std::shared_ptr<WindowNetwork> network =
      BuildModelNetwork(model, config, init_rng);
  if (network == nullptr) {
    return Status::NotFound("unknown numcheck model: " + model);
  }

  Rng data_rng(MixSeed(seed, 2));
  nn::Tensor batch(2, config.input_length);
  for (double& v : batch.storage()) v = data_rng.Uniform(-1.0, 1.0);
  nn::Tensor target(2, config.horizon);
  for (double& v : target.storage()) v = data_rng.Uniform(-1.0, 1.0);

  nn::Var input = nn::MakeVar(std::move(batch), /*requires_grad=*/true);
  nn::Var target_var = nn::MakeVar(std::move(target));

  std::vector<NamedLeaf> leaves = {{"input", input}};
  const std::vector<nn::Var> parameters = network->Parameters();
  for (size_t i = 0; i < parameters.size(); ++i) {
    leaves.push_back({"param" + std::to_string(i), parameters[i]});
  }

  // Deep graphs: a smaller step keeps perturbations from crossing ReLU kinks
  // inside the blocks, and the looser rtol absorbs the longer cancellation
  // chains of the attention/normalization stacks.
  GradTolerance tolerance;
  tolerance.step = 1e-6;
  tolerance.rtol = 5e-4;
  tolerance.atol = 1e-6;
  return CheckGradients(
      leaves,
      [network, input, target_var] {
        Rng unused(0);  // train=false: dropout inactive, rng unconsumed.
        return nn::MseLoss(network->Forward(input, /*train=*/false, unused),
                           target_var);
      },
      tolerance);
}

}  // namespace lossyts::numcheck
