#ifndef LOSSYTS_NUMCHECK_ORACLES_H_
#define LOSSYTS_NUMCHECK_ORACLES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "numcheck/check.h"

namespace lossyts::numcheck {

/// Analytic oracles over the analysis substrate plus the training-
/// determinism oracle: "ols" (closed-form normal equations in long double,
/// residual orthogonality, textbook simple-regression formulas),
/// "correlation" (long-double Pearson reference; Spearman vs the no-tie
/// closed form and vs independently computed average ranks on tie-heavy
/// input), "treeshap" (brute-force subset-enumeration Shapley on fitted
/// trees; efficiency, symmetry and null-player axioms), "determinism"
/// (same seed => bit-identical fits across jobs values and repeated runs,
/// see numcheck/determinism.h), and "metrics" (every registry metric vs an
/// independent long-double reference — the bare-crps/MAE grid identity
/// included — plus the constant-in-sample MASE and non-finite-input
/// contract drills).
const std::vector<std::string>& AnalysisOracleNames();

/// Runs one oracle's seeded case. Fails with NotFound for names outside
/// AnalysisOracleNames(); violations come back inside the report.
Result<CheckReport> RunAnalysisOracle(const std::string& oracle,
                                      uint64_t seed);

}  // namespace lossyts::numcheck

#endif  // LOSSYTS_NUMCHECK_ORACLES_H_
