#include "numcheck/determinism.h"

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/seed.h"
#include "core/thread_pool.h"
#include "core/time_series.h"
#include "forecast/registry.h"

namespace lossyts::numcheck {

namespace {

struct FitOutcome {
  Status status = Status::OK();
  std::vector<double> prediction;
};

FitOutcome FitAndPredict(const std::string& model,
                         const forecast::ForecastConfig& config,
                         const TimeSeries& train, const TimeSeries& val,
                         const std::vector<double>& window) {
  Result<std::unique_ptr<forecast::Forecaster>> forecaster =
      forecast::MakeForecaster(model, config);
  if (!forecaster.ok()) return {forecaster.status(), {}};
  if (Status s = (*forecaster)->Fit(train, val); !s.ok()) return {s, {}};
  Result<std::vector<double>> prediction = (*forecaster)->Predict(window);
  if (!prediction.ok()) return {prediction.status(), {}};
  return {Status::OK(), std::move(*prediction)};
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

}  // namespace

Result<CheckReport> RunTrainingDeterminismChecks(uint64_t seed) {
  CheckReport report;

  // Seeded series: seasonal + trend + noise, long enough for a handful of
  // training windows at the tiny configuration below.
  Rng rng(MixSeed(seed, 1));
  std::vector<double> values(170);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(2.0 * 3.14159265358979323846 *
                         static_cast<double>(i) / 24.0) +
                0.002 * static_cast<double>(i) + 0.2 * rng.Normal();
  }
  const std::vector<double> train_values(values.begin(), values.begin() + 130);
  const std::vector<double> val_values(values.begin() + 130, values.end());
  const TimeSeries train(0, 3600, train_values);
  const TimeSeries val(130 * 3600, 3600, val_values);

  forecast::ForecastConfig config;
  config.input_length = 16;
  config.horizon = 4;
  config.max_epochs = 2;
  config.max_train_windows = 32;
  config.batch_size = 8;
  const std::vector<double> window(train_values.end() - 16,
                                   train_values.end());

  for (const std::string& model : {std::string("DLinear"), std::string("GRU")}) {
    config.seed = TagSeed(seed, model);

    const FitOutcome baseline =
        FitAndPredict(model, config, train, val, window);
    ++report.checks;
    if (!baseline.status.ok()) {
      report.failures.push_back(
          {"determinism/fit", model + ": " + baseline.status.ToString()});
      continue;
    }

    // Same seed, same thread: the whole trajectory must replay bit for bit.
    const FitOutcome repeat = FitAndPredict(model, config, train, val, window);
    ++report.checks;
    if (!repeat.status.ok() ||
        !BitIdentical(baseline.prediction, repeat.prediction)) {
      report.failures.push_back(
          {"determinism/repeat",
           model + ": repeated fit with the same seed diverged"});
    }

    // Same seed on a 4-worker pool, three replicas racing: scheduling must
    // not leak into training (identity-derived seeds, no shared state).
    std::vector<FitOutcome> replicas(3);
    {
      ThreadPool pool(4);
      for (size_t i = 0; i < replicas.size(); ++i) {
        FitOutcome* slot = &replicas[i];
        pool.Submit([&, slot] {
          *slot = FitAndPredict(model, config, train, val, window);
        });
      }
      pool.Wait();
    }
    for (size_t i = 0; i < replicas.size(); ++i) {
      ++report.checks;
      if (!replicas[i].status.ok() ||
          !BitIdentical(baseline.prediction, replicas[i].prediction)) {
        report.failures.push_back(
            {"determinism/jobs",
             model + ": pooled replica " + std::to_string(i) +
                 " diverged from the single-thread fit"});
      }
    }
  }
  return report;
}

}  // namespace lossyts::numcheck
