#ifndef LOSSYTS_NUMCHECK_HARNESS_H_
#define LOSSYTS_NUMCHECK_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace lossyts::numcheck {

/// Configuration for one numerics-conformance run. Each selector lists the
/// components of its category to run; empty selects all of them, and the
/// single entry "none" selects none (so one category can be isolated from
/// the command line).
struct NumCheckOptions {
  /// Autodiff ops / nn composites (see GradCheckOpNames()).
  std::vector<std::string> ops;
  /// Deep forecaster networks (see GradCheckModelNames()).
  std::vector<std::string> models;
  /// Analysis + determinism oracles (see AnalysisOracleNames()).
  std::vector<std::string> oracles;
  /// Seeded cases per component.
  int iters = 2;
  /// Base seed: with the component name and case index (both printed on
  /// failure) it regenerates any failing case.
  uint64_t base_seed = 1;
  /// Worker threads; 0 resolves to ThreadPool::DefaultJobs().
  int jobs = 0;
};

/// One oracle violation, with every coordinate needed to reproduce it:
/// rerun with the same base seed and the component/case pair.
struct NumCheckFailure {
  std::string component;  ///< "op:Softmax", "model:GRU", "oracle:ols".
  int case_index = 0;
  uint64_t seed = 0;      ///< Derived per-case seed (informational).
  std::string check;      ///< Which oracle fired, e.g. "grad/input".
  std::string detail;
};

/// Aggregate outcome. `failures` is empty iff every check passed.
struct NumCheckSummary {
  size_t cases = 0;   ///< (component, case) cells executed.
  size_t checks = 0;  ///< Individual oracle comparisons across all cells.
  std::vector<NumCheckFailure> failures;
};

/// Stable one-line rendering: component, case index, seed, check, detail.
std::string FormatFailure(const NumCheckFailure& failure);

/// Runs the selected components × iters seeded cases on a thread pool.
/// Deterministic in the options: case identity (component name + index)
/// derives every seed, and failures are sorted before returning. Errors
/// (unknown component name, invalid option) come back as a Status; oracle
/// violations come back inside the summary.
Result<NumCheckSummary> RunNumCheck(const NumCheckOptions& options);

}  // namespace lossyts::numcheck

#endif  // LOSSYTS_NUMCHECK_HARNESS_H_
