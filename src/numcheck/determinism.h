#ifndef LOSSYTS_NUMCHECK_DETERMINISM_H_
#define LOSSYTS_NUMCHECK_DETERMINISM_H_

#include <cstdint>

#include "core/status.h"
#include "numcheck/check.h"

namespace lossyts::numcheck {

/// Training-determinism oracle: trains tiny seeded forecasters (DLinear and
/// GRU) several times — repeated runs on the calling thread and replicas
/// spread across a 4-worker thread pool — and requires every run with the
/// same seed to produce bit-identical predictions. Any dependence on thread
/// scheduling, shared hidden state, or uninitialized reads shows up as a
/// byte difference. Ordinary training failures (a fit returning an error)
/// are reported as violations, not as a Status.
Result<CheckReport> RunTrainingDeterminismChecks(uint64_t seed);

}  // namespace lossyts::numcheck

#endif  // LOSSYTS_NUMCHECK_DETERMINISM_H_
