#ifndef LOSSYTS_NUMCHECK_GRADCHECK_H_
#define LOSSYTS_NUMCHECK_GRADCHECK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/status.h"
#include "nn/autodiff.h"
#include "numcheck/check.h"

namespace lossyts::numcheck {

/// Tolerances of the finite-difference gradient oracle. The step is scaled
/// by max(1, |x|) per entry (central differences have O(h^2) truncation and
/// O(eps/h) rounding error, so h near eps^(1/3) balances both — Baydin et
/// al., JMLR 2018); the acceptance test is relative in the larger of the two
/// gradients: |analytic - numeric| <= atol + rtol * max(|analytic|, |numeric|).
struct GradTolerance {
  double step = 1e-5;
  double rtol = 1e-4;
  double atol = 1e-6;
};

/// A leaf tensor participating in a gradient check, with the name used in
/// failure reports ("input", "weight", "bias", ...).
struct NamedLeaf {
  std::string name;
  nn::Var var;
};

/// Checks d(loss)/d(leaf) for every entry of every leaf against central
/// differences. `forward` must be a pure deterministic function of the leaf
/// values (re-seed any Rng it consumes on every call) returning a 1x1 loss.
/// Reports at most one failure per leaf — the worst violating entry, with
/// its coordinates and both gradient values — plus non-finite loss/gradient
/// violations. One entry in CheckReport::checks per leaf.
CheckReport CheckGradients(const std::vector<NamedLeaf>& leaves,
                           const std::function<nn::Var()>& forward,
                           const GradTolerance& tolerance = GradTolerance());

/// Names of the autodiff ops and nn-module composites covered by the
/// gradient oracle, in the order they are documented in nn/autodiff.h.
const std::vector<std::string>& GradCheckOpNames();

/// Runs the gradient oracle over one op's seeded case. Fails with NotFound
/// for names outside GradCheckOpNames(); oracle violations come back inside
/// the report.
Result<CheckReport> RunOpGradChecks(const std::string& op, uint64_t seed);

}  // namespace lossyts::numcheck

#endif  // LOSSYTS_NUMCHECK_GRADCHECK_H_
