#include "numcheck/gradcheck.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <utility>

#include "core/rng.h"
#include "core/seed.h"
#include "nn/attention.h"
#include "nn/module.h"

namespace lossyts::numcheck {

namespace {

using nn::MakeVar;
using nn::Tensor;
using nn::Var;

std::string FormatEntry(const char* label, size_t r, size_t c, double analytic,
                        double numeric) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "%s (%zu,%zu): analytic=%.9g numeric=%.9g", label, r, c,
                analytic, numeric);
  return buffer;
}

Tensor RandomTensor(Rng& rng, size_t rows, size_t cols, double lo = -1.0,
                    double hi = 1.0) {
  Tensor t(rows, cols);
  for (double& v : t.storage()) v = rng.Uniform(lo, hi);
  return t;
}

/// Pushes entries away from 0 so a central-difference step cannot cross a
/// kink (Relu's subgradient at 0 is not what finite differences measure).
void NudgeOffKink(Tensor& t, double margin = 0.05) {
  for (double& v : t.storage()) {
    if (std::abs(v) < margin) v = (v >= 0.0 ? margin : -margin);
  }
}

/// Scalarizes a tensor output with a fixed random weighting so every output
/// entry influences the loss with a distinct coefficient (a plain mean would
/// let transposition/permutation bugs cancel out).
Var WeightedMean(const Var& y, const Tensor& weights) {
  return nn::Mean(nn::Mul(y, MakeVar(weights)));
}

void AppendParameters(std::vector<NamedLeaf>& leaves,
                      const std::vector<Var>& parameters) {
  for (size_t i = 0; i < parameters.size(); ++i) {
    leaves.push_back({"param" + std::to_string(i), parameters[i]});
  }
}

CheckReport CheckUnary(uint64_t seed, Var (*op)(const Var&), bool kink) {
  Rng rng(seed);
  Tensor a = RandomTensor(rng, 3, 4);
  if (kink) NudgeOffKink(a);
  const Tensor w = RandomTensor(rng, 3, 4);
  Var leaf = MakeVar(a, true);
  return CheckGradients({{"input", leaf}}, [leaf, w, op] {
    return WeightedMean((*op)(leaf), w);
  });
}

CheckReport CheckBinary(uint64_t seed, Var (*op)(const Var&, const Var&)) {
  Rng rng(seed);
  Var a = MakeVar(RandomTensor(rng, 3, 4), true);
  Var b = MakeVar(RandomTensor(rng, 3, 4), true);
  const Tensor w = RandomTensor(rng, 3, 4);
  return CheckGradients({{"a", a}, {"b", b}},
                        [a, b, w, op] { return WeightedMean((*op)(a, b), w); });
}

CheckReport CheckMatMul(uint64_t seed) {
  Rng rng(seed);
  Var a = MakeVar(RandomTensor(rng, 3, 4), true);
  Var b = MakeVar(RandomTensor(rng, 4, 2), true);
  const Tensor w = RandomTensor(rng, 3, 2);
  return CheckGradients({{"a", a}, {"b", b}}, [a, b, w] {
    return WeightedMean(nn::MatMul(a, b), w);
  });
}

CheckReport CheckAddRowBroadcast(uint64_t seed) {
  Rng rng(seed);
  Var a = MakeVar(RandomTensor(rng, 3, 4), true);
  Var bias = MakeVar(RandomTensor(rng, 1, 4), true);
  const Tensor w = RandomTensor(rng, 3, 4);
  return CheckGradients({{"a", a}, {"bias", bias}}, [a, bias, w] {
    return WeightedMean(nn::AddRowBroadcast(a, bias), w);
  });
}

CheckReport CheckScale(uint64_t seed) {
  Rng rng(seed);
  Var a = MakeVar(RandomTensor(rng, 3, 4), true);
  const double s = rng.Uniform(-2.0, 2.0);
  const Tensor w = RandomTensor(rng, 3, 4);
  return CheckGradients(
      {{"input", a}}, [a, s, w] { return WeightedMean(nn::Scale(a, s), w); });
}

CheckReport CheckSoftmax(uint64_t seed) {
  Rng rng(seed);
  Var a = MakeVar(RandomTensor(rng, 3, 5, -2.0, 2.0), true);
  const Tensor w = RandomTensor(rng, 3, 5);
  return CheckGradients(
      {{"input", a}}, [a, w] { return WeightedMean(nn::Softmax(a), w); });
}

CheckReport CheckSoftmaxMasked(uint64_t seed) {
  Rng rng(seed);
  Var a = MakeVar(RandomTensor(rng, 3, 5, -2.0, 2.0), true);
  // Row 0 open, row 1 partially masked (at least one open slot), row 2 fully
  // masked to -inf — the fully-masked contract is uniform output with zero
  // gradient, and the oracle pins both the value's finiteness and the grad.
  auto mask = std::make_shared<Tensor>(3, 5, 0.0);
  const double inf = std::numeric_limits<double>::infinity();
  const size_t open = rng.UniformInt(5);
  for (size_t c = 0; c < 5; ++c) {
    if (c != open && rng.Uniform() < 0.6) (*mask)(1, c) = -inf;
    (*mask)(2, c) = -inf;
  }
  const Tensor w = RandomTensor(rng, 3, 5);
  return CheckGradients({{"input", a}}, [a, mask, w] {
    return WeightedMean(nn::Softmax(a, mask.get()), w);
  });
}

CheckReport CheckLayerNorm(uint64_t seed) {
  Rng rng(seed);
  Var a = MakeVar(RandomTensor(rng, 3, 4), true);
  Var gain = MakeVar(RandomTensor(rng, 1, 4), true);
  Var bias = MakeVar(RandomTensor(rng, 1, 4), true);
  const Tensor w = RandomTensor(rng, 3, 4);
  return CheckGradients({{"input", a}, {"gain", gain}, {"bias", bias}},
                        [a, gain, bias, w] {
                          return WeightedMean(nn::LayerNorm(a, gain, bias), w);
                        });
}

CheckReport CheckDropout(uint64_t seed) {
  Rng rng(seed);
  Var a = MakeVar(RandomTensor(rng, 4, 4), true);
  const Tensor w = RandomTensor(rng, 4, 4);
  const uint64_t mask_seed = MixSeed(seed, 7);
  // The mask must be identical on every forward evaluation, so the Rng is
  // re-seeded inside the closure instead of being advanced across calls.
  return CheckGradients({{"input", a}}, [a, w, mask_seed] {
    Rng mask_rng(mask_seed);
    return WeightedMean(nn::Dropout(a, 0.35, /*train=*/true, mask_rng), w);
  });
}

CheckReport CheckTranspose(uint64_t seed) {
  Rng rng(seed);
  Var a = MakeVar(RandomTensor(rng, 3, 4), true);
  const Tensor w = RandomTensor(rng, 4, 3);
  return CheckGradients(
      {{"input", a}}, [a, w] { return WeightedMean(nn::Transpose(a), w); });
}

CheckReport CheckSliceRows(uint64_t seed) {
  Rng rng(seed);
  Var a = MakeVar(RandomTensor(rng, 5, 3), true);
  const Tensor w = RandomTensor(rng, 3, 3);
  return CheckGradients({{"input", a}}, [a, w] {
    return WeightedMean(nn::SliceRows(a, 1, 4), w);
  });
}

CheckReport CheckSliceCols(uint64_t seed) {
  Rng rng(seed);
  Var a = MakeVar(RandomTensor(rng, 3, 5), true);
  const Tensor w = RandomTensor(rng, 3, 3);
  return CheckGradients({{"input", a}}, [a, w] {
    return WeightedMean(nn::SliceCols(a, 1, 4), w);
  });
}

CheckReport CheckConcatRows(uint64_t seed) {
  Rng rng(seed);
  Var a = MakeVar(RandomTensor(rng, 2, 3), true);
  Var b = MakeVar(RandomTensor(rng, 3, 3), true);
  const Tensor w = RandomTensor(rng, 5, 3);
  return CheckGradients({{"a", a}, {"b", b}}, [a, b, w] {
    return WeightedMean(nn::ConcatRows(a, b), w);
  });
}

CheckReport CheckConcatCols(uint64_t seed) {
  Rng rng(seed);
  Var a = MakeVar(RandomTensor(rng, 3, 2), true);
  Var b = MakeVar(RandomTensor(rng, 3, 3), true);
  const Tensor w = RandomTensor(rng, 3, 5);
  return CheckGradients({{"a", a}, {"b", b}}, [a, b, w] {
    return WeightedMean(nn::ConcatCols(a, b), w);
  });
}

CheckReport CheckMean(uint64_t seed) {
  Rng rng(seed);
  Var a = MakeVar(RandomTensor(rng, 3, 4), true);
  return CheckGradients({{"input", a}}, [a] { return nn::Mean(a); });
}

CheckReport CheckMseLoss(uint64_t seed) {
  Rng rng(seed);
  Var prediction = MakeVar(RandomTensor(rng, 3, 4), true);
  Var target = MakeVar(RandomTensor(rng, 3, 4), true);
  return CheckGradients({{"prediction", prediction}, {"target", target}},
                        [prediction, target] {
                          return nn::MseLoss(prediction, target);
                        });
}

CheckReport CheckStridedRowPool(uint64_t seed) {
  Rng rng(seed);
  // 7 rows with stride 3: two full groups plus a ragged tail group.
  Var a = MakeVar(RandomTensor(rng, 7, 3), true);
  const Tensor w = RandomTensor(rng, 3, 3);
  return CheckGradients({{"input", a}}, [a, w] {
    return WeightedMean(nn::StridedRowPool(a, 3), w);
  });
}

CheckReport CheckGruCell(uint64_t seed) {
  Rng rng(seed);
  auto cell = std::make_shared<nn::GruCell>(3, 5, rng);
  Var x = MakeVar(RandomTensor(rng, 1, 3), true);
  Var h = MakeVar(RandomTensor(rng, 1, 5), true);
  const Tensor w = RandomTensor(rng, 1, 5);
  std::vector<NamedLeaf> leaves = {{"x", x}, {"h_prev", h}};
  AppendParameters(leaves, cell->Parameters());
  return CheckGradients(leaves, [cell, x, h, w] {
    return WeightedMean(cell->Forward(x, h), w);
  });
}

CheckReport CheckAttention(uint64_t seed, bool causal) {
  Rng rng(seed);
  auto mha = std::make_shared<nn::MultiHeadAttention>(4, 2, rng);
  Var q = MakeVar(RandomTensor(rng, 5, 4), true);
  Var k = MakeVar(RandomTensor(rng, 5, 4), true);
  Var v = MakeVar(RandomTensor(rng, 5, 4), true);
  const Tensor w = RandomTensor(rng, 5, 4);
  std::vector<NamedLeaf> leaves = {{"query", q}, {"key", k}, {"value", v}};
  AppendParameters(leaves, mha->Parameters());
  return CheckGradients(leaves, [mha, q, k, v, w, causal] {
    return WeightedMean(mha->Forward(q, k, v, causal), w);
  });
}

CheckReport CheckAttentionProbSparse(uint64_t seed) {
  Rng rng(seed);
  auto mha = std::make_shared<nn::MultiHeadAttention>(4, 2, rng);
  // At Lq = 6 the top-u cutoff ceil(5*ln 6) covers every query, so the
  // selection is total and the mapping stays differentiable; larger
  // sequences make the discrete top-u choice flip under perturbation.
  Var x = MakeVar(RandomTensor(rng, 6, 4), true);
  const Tensor w = RandomTensor(rng, 6, 4);
  std::vector<NamedLeaf> leaves = {{"input", x}};
  AppendParameters(leaves, mha->Parameters());
  return CheckGradients(leaves, [mha, x, w] {
    return WeightedMean(mha->ForwardProbSparse(x), w);
  });
}

CheckReport CheckEncoderLayer(uint64_t seed) {
  Rng rng(seed);
  auto layer =
      std::make_shared<nn::TransformerEncoderLayer>(4, 2, 8, 0.0, rng);
  Var x = MakeVar(RandomTensor(rng, 6, 4), true);
  const Tensor w = RandomTensor(rng, 6, 4);
  std::vector<NamedLeaf> leaves = {{"input", x}};
  AppendParameters(leaves, layer->Parameters());
  return CheckGradients(leaves, [layer, x, w] {
    Rng unused(0);
    return WeightedMean(layer->Forward(x, /*train=*/false, unused), w);
  });
}

CheckReport CheckDecoderLayer(uint64_t seed) {
  Rng rng(seed);
  auto layer =
      std::make_shared<nn::TransformerDecoderLayer>(4, 2, 8, 0.0, rng);
  Var x = MakeVar(RandomTensor(rng, 5, 4), true);
  Var memory = MakeVar(RandomTensor(rng, 6, 4), true);
  const Tensor w = RandomTensor(rng, 5, 4);
  std::vector<NamedLeaf> leaves = {{"input", x}, {"memory", memory}};
  AppendParameters(leaves, layer->Parameters());
  return CheckGradients(leaves, [layer, x, memory, w] {
    Rng unused(0);
    return WeightedMean(layer->Forward(x, memory, /*train=*/false, unused), w);
  });
}

using OpCheck = CheckReport (*)(uint64_t);

struct OpEntry {
  const char* name;
  OpCheck check;
};

const std::vector<OpEntry>& OpRegistry() {
  static const std::vector<OpEntry> kOps = {
      {"MatMul", &CheckMatMul},
      {"Add", [](uint64_t s) { return CheckBinary(s, &nn::Add); }},
      {"AddRowBroadcast", &CheckAddRowBroadcast},
      {"Sub", [](uint64_t s) { return CheckBinary(s, &nn::Sub); }},
      {"Mul", [](uint64_t s) { return CheckBinary(s, &nn::Mul); }},
      {"Scale", &CheckScale},
      {"Sigmoid", [](uint64_t s) { return CheckUnary(s, &nn::Sigmoid, false); }},
      {"Tanh", [](uint64_t s) { return CheckUnary(s, &nn::Tanh, false); }},
      {"Relu", [](uint64_t s) { return CheckUnary(s, &nn::Relu, true); }},
      {"Gelu", [](uint64_t s) { return CheckUnary(s, &nn::Gelu, false); }},
      {"Softmax", &CheckSoftmax},
      {"SoftmaxMasked", &CheckSoftmaxMasked},
      {"LayerNorm", &CheckLayerNorm},
      {"Dropout", &CheckDropout},
      {"Transpose", &CheckTranspose},
      {"SliceRows", &CheckSliceRows},
      {"SliceCols", &CheckSliceCols},
      {"ConcatRows", &CheckConcatRows},
      {"ConcatCols", &CheckConcatCols},
      {"Mean", &CheckMean},
      {"MseLoss", &CheckMseLoss},
      {"StridedRowPool", &CheckStridedRowPool},
      {"GruCell", &CheckGruCell},
      {"Attention", [](uint64_t s) { return CheckAttention(s, false); }},
      {"AttentionCausal", [](uint64_t s) { return CheckAttention(s, true); }},
      {"AttentionProbSparse", &CheckAttentionProbSparse},
      {"EncoderLayer", &CheckEncoderLayer},
      {"DecoderLayer", &CheckDecoderLayer},
  };
  return kOps;
}

}  // namespace

CheckReport CheckGradients(const std::vector<NamedLeaf>& leaves,
                           const std::function<nn::Var()>& forward,
                           const GradTolerance& tolerance) {
  CheckReport report;
  Var loss = forward();
  ++report.checks;
  if (loss->value.rows() != 1 || loss->value.cols() != 1) {
    report.failures.push_back({"grad/shape", "loss is not 1x1"});
    return report;
  }
  if (!std::isfinite(loss->value(0, 0))) {
    char buffer[96];
    std::snprintf(buffer, sizeof(buffer), "non-finite loss %.9g",
                  loss->value(0, 0));
    report.failures.push_back({"grad/finite", buffer});
    return report;
  }
  nn::Backward(loss);

  // Snapshot the analytic gradients: the finite-difference evaluations below
  // rebuild the graph, and a later Backward would re-zero the leaves.
  std::vector<Tensor> analytic;
  analytic.reserve(leaves.size());
  for (const NamedLeaf& leaf : leaves) analytic.push_back(leaf.var->grad);

  auto eval = [&forward]() { return forward()->value(0, 0); };

  for (size_t li = 0; li < leaves.size(); ++li) {
    const NamedLeaf& leaf = leaves[li];
    ++report.checks;
    if (analytic[li].size() != leaf.var->value.size()) {
      report.failures.push_back(
          {"grad/" + leaf.name, "leaf not reached by backward pass"});
      continue;
    }
    // One failure per leaf: the entry with the largest tolerance excess.
    double worst_excess = 0.0;
    std::string worst_detail;
    bool non_finite = false;
    for (size_t r = 0; r < leaf.var->value.rows() && !non_finite; ++r) {
      for (size_t c = 0; c < leaf.var->value.cols(); ++c) {
        const double a = analytic[li](r, c);
        if (!std::isfinite(a)) {
          report.failures.push_back(
              {"grad/" + leaf.name,
               FormatEntry("non-finite analytic gradient", r, c, a, 0.0)});
          non_finite = true;
          break;
        }
        double& x = leaf.var->value(r, c);
        const double orig = x;
        const double h = tolerance.step * std::max(1.0, std::abs(orig));
        x = orig + h;
        const double fp = eval();
        x = orig - h;
        const double fm = eval();
        x = orig;
        if (!std::isfinite(fp) || !std::isfinite(fm)) {
          report.failures.push_back(
              {"grad/" + leaf.name,
               FormatEntry("non-finite perturbed loss", r, c, fp, fm)});
          non_finite = true;
          break;
        }
        const double numeric = (fp - fm) / (2.0 * h);
        const double err = std::abs(a - numeric);
        const double allow =
            tolerance.atol +
            tolerance.rtol * std::max(std::abs(a), std::abs(numeric));
        if (err > allow && err - allow > worst_excess) {
          worst_excess = err - allow;
          worst_detail = FormatEntry("mismatch", r, c, a, numeric);
        }
      }
    }
    if (!non_finite && worst_excess > 0.0) {
      report.failures.push_back({"grad/" + leaf.name, worst_detail});
    }
  }
  return report;
}

const std::vector<std::string>& GradCheckOpNames() {
  static const std::vector<std::string> kNames = [] {
    std::vector<std::string> names;
    for (const OpEntry& e : OpRegistry()) names.emplace_back(e.name);
    return names;
  }();
  return kNames;
}

Result<CheckReport> RunOpGradChecks(const std::string& op, uint64_t seed) {
  for (const OpEntry& e : OpRegistry()) {
    if (op == e.name) return e.check(seed);
  }
  return Status::NotFound("unknown numcheck op: " + op);
}

}  // namespace lossyts::numcheck
