#include "numcheck/oracles.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>

#include "analysis/correlation.h"
#include "core/metric_registry.h"
#include "analysis/gbm.h"
#include "analysis/linreg.h"
#include "analysis/tree.h"
#include "analysis/treeshap.h"
#include "core/metrics.h"
#include "core/rng.h"
#include "core/seed.h"
#include "numcheck/determinism.h"

namespace lossyts::numcheck {

namespace {

/// Compares a library value against an independently computed reference.
/// Tolerance is relative in max(1, magnitude), so tiny values fall back to
/// an absolute comparison at the same scale.
void Compare(CheckReport& report, const std::string& check, const char* what,
             double got, double want, double rtol) {
  ++report.checks;
  const double scale = std::max({1.0, std::abs(got), std::abs(want)});
  if (!(std::abs(got - want) <= rtol * scale)) {
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer), "%s: got %.12g want %.12g", what,
                  got, want);
    report.failures.push_back({check, buffer});
  }
}

void ReportStatus(CheckReport& report, const std::string& check,
                  const Status& status) {
  ++report.checks;
  if (!status.ok()) {
    report.failures.push_back({check, status.ToString()});
  }
}

// ---- OLS ----

/// Solves the k-dimensional normal equations in long double via Gauss-Jordan
/// with partial pivoting, returning both the solution and the inverse of A —
/// an implementation with no code shared with analysis/linreg.cc.
bool SolveAndInvert(std::vector<std::vector<long double>> a,
                    std::vector<long double> b,
                    std::vector<long double>* solution,
                    std::vector<std::vector<long double>>* inverse) {
  const size_t k = a.size();
  std::vector<std::vector<long double>> inv(k,
                                            std::vector<long double>(k, 0.0L));
  for (size_t i = 0; i < k; ++i) inv[i][i] = 1.0L;
  for (size_t col = 0; col < k; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < k; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-15L) return false;
    std::swap(a[col], a[pivot]);
    std::swap(inv[col], inv[pivot]);
    std::swap(b[col], b[pivot]);
    const long double d = a[col][col];
    for (size_t c = 0; c < k; ++c) {
      a[col][c] /= d;
      inv[col][c] /= d;
    }
    b[col] /= d;
    for (size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const long double f = a[r][col];
      for (size_t c = 0; c < k; ++c) {
        a[r][c] -= f * a[col][c];
        inv[r][c] -= f * inv[col][c];
      }
      b[r] -= f * b[col];
    }
  }
  *solution = std::move(b);
  *inverse = std::move(inv);
  return true;
}

CheckReport RunOlsOracle(uint64_t seed) {
  CheckReport report;
  Rng rng(seed);

  // Multi-regressor case against the long-double normal equations.
  const size_t n = 40;
  std::vector<double> x1(n), x2(n), y(n);
  for (size_t t = 0; t < n; ++t) {
    x1[t] = rng.Uniform(-2.0, 2.0);
    x2[t] = rng.Uniform(-2.0, 2.0);
    y[t] = 1.5 - 0.7 * x1[t] + 0.3 * x2[t] + 0.2 * rng.Normal();
  }
  Result<analysis::OlsResult> fit = analysis::FitOls({x1, x2}, y);
  ReportStatus(report, "ols/fit", fit.status());
  if (fit.ok()) {
    const size_t k = 3;
    std::vector<std::vector<long double>> xtx(
        k, std::vector<long double>(k, 0.0L));
    std::vector<long double> xty(k, 0.0L);
    for (size_t t = 0; t < n; ++t) {
      const long double row[3] = {1.0L, x1[t], x2[t]};
      for (size_t i = 0; i < k; ++i) {
        for (size_t j = 0; j < k; ++j) xtx[i][j] += row[i] * row[j];
        xty[i] += row[i] * y[t];
      }
    }
    std::vector<long double> beta;
    std::vector<std::vector<long double>> inv;
    if (!SolveAndInvert(xtx, xty, &beta, &inv)) {
      report.failures.push_back({"ols/reference", "reference solve singular"});
    } else {
      long double ssr = 0.0L;
      for (size_t t = 0; t < n; ++t) {
        const long double e = y[t] - (beta[0] + beta[1] * x1[t] +
                                      beta[2] * x2[t]);
        ssr += e * e;
      }
      const long double sigma2 = ssr / static_cast<long double>(n - k);
      for (size_t i = 0; i < k; ++i) {
        Compare(report, "ols/coefficient",
                ("beta" + std::to_string(i)).c_str(), fit->coefficients[i],
                static_cast<double>(beta[i]), 1e-8);
        Compare(report, "ols/standard-error",
                ("se" + std::to_string(i)).c_str(), fit->standard_errors[i],
                static_cast<double>(std::sqrt(sigma2 * inv[i][i])), 1e-8);
      }
    }
    // Normal-equation residual orthogonality of the library's own fit:
    // X'e = 0 is what "least squares" means, independent of any solver.
    double se_sum = 0.0, se_x1 = 0.0, se_x2 = 0.0;
    for (size_t t = 0; t < n; ++t) {
      const double e = y[t] - (fit->coefficients[0] +
                               fit->coefficients[1] * x1[t] +
                               fit->coefficients[2] * x2[t]);
      se_sum += e;
      se_x1 += e * x1[t];
      se_x2 += e * x2[t];
    }
    Compare(report, "ols/orthogonality", "sum(e)", se_sum, 0.0, 1e-9);
    Compare(report, "ols/orthogonality", "sum(e*x1)", se_x1, 0.0, 1e-9);
    Compare(report, "ols/orthogonality", "sum(e*x2)", se_x2, 0.0, 1e-9);
  }

  // Simple regression against the textbook closed forms.
  const size_t m = 30;
  std::vector<double> xs(m), ys(m);
  for (size_t t = 0; t < m; ++t) {
    xs[t] = rng.Uniform(0.0, 4.0);
    ys[t] = 0.8 + 1.2 * xs[t] + 0.3 * rng.Normal();
  }
  Result<analysis::OlsResult> simple = analysis::FitSimpleRegression(xs, ys);
  ReportStatus(report, "ols/simple-fit", simple.status());
  if (simple.ok()) {
    long double mx = 0.0L, my = 0.0L;
    for (size_t t = 0; t < m; ++t) {
      mx += xs[t];
      my += ys[t];
    }
    mx /= m;
    my /= m;
    long double sxx = 0.0L, sxy = 0.0L, syy = 0.0L;
    for (size_t t = 0; t < m; ++t) {
      sxx += (xs[t] - mx) * (xs[t] - mx);
      sxy += (xs[t] - mx) * (ys[t] - my);
      syy += (ys[t] - my) * (ys[t] - my);
    }
    const long double slope = sxy / sxx;
    const long double intercept = my - slope * mx;
    long double ssr = 0.0L;
    for (size_t t = 0; t < m; ++t) {
      const long double e = ys[t] - (intercept + slope * xs[t]);
      ssr += e * e;
    }
    const long double sigma2 = ssr / static_cast<long double>(m - 2);
    Compare(report, "ols/simple", "slope", simple->coefficients[1],
            static_cast<double>(slope), 1e-8);
    Compare(report, "ols/simple", "intercept", simple->coefficients[0],
            static_cast<double>(intercept), 1e-8);
    Compare(report, "ols/simple", "se(slope)", simple->standard_errors[1],
            static_cast<double>(std::sqrt(sigma2 / sxx)), 1e-8);
    Compare(report, "ols/simple", "se(intercept)",
            simple->standard_errors[0],
            static_cast<double>(
                std::sqrt(sigma2 * (1.0L / m + mx * mx / sxx))),
            1e-8);
    Compare(report, "ols/simple", "r_squared", simple->r_squared,
            static_cast<double>(sxy * sxy / (sxx * syy)), 1e-8);
  }
  return report;
}

// ---- Correlation ----

long double ReferencePearson(const std::vector<double>& x,
                             const std::vector<double>& y) {
  const size_t n = x.size();
  long double mx = 0.0L, my = 0.0L;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= n;
  my /= n;
  long double sxy = 0.0L, sxx = 0.0L, syy = 0.0L;
  for (size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  return sxy / std::sqrt(sxx * syy);
}

/// Average ranks by counting (O(n^2)), sharing no code with the sort-based
/// analysis::AverageRanks.
std::vector<double> ReferenceRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<double> ranks(n);
  for (size_t i = 0; i < n; ++i) {
    size_t less = 0, equal = 0;
    for (size_t j = 0; j < n; ++j) {
      if (values[j] < values[i]) ++less;
      if (values[j] == values[i]) ++equal;
    }
    ranks[i] = static_cast<double>(less) +
               (static_cast<double>(equal) + 1.0) / 2.0;
  }
  return ranks;
}

CheckReport RunCorrelationOracle(uint64_t seed) {
  CheckReport report;
  Rng rng(seed);

  // Pearson against the long-double two-pass reference.
  const size_t n = 50;
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Normal();
    y[i] = 0.6 * x[i] + 0.8 * rng.Normal();
  }
  Result<double> r = PearsonR(x, y);
  ReportStatus(report, "correlation/pearson", r.status());
  if (r.ok()) {
    Compare(report, "correlation/pearson", "r", *r,
            static_cast<double>(ReferencePearson(x, y)), 1e-12);
  }

  // Tie-free Spearman against the closed form 1 - 6*sum(d^2)/(n(n^2-1)).
  // Integer bases keep the jittered values distinct by construction.
  std::vector<double> sx(n), sy(n);
  for (size_t i = 0; i < n; ++i) {
    sx[i] = static_cast<double>(i) + rng.Uniform(-0.3, 0.3);
    sy[i] = static_cast<double>((i * 17) % n) + rng.Uniform(-0.3, 0.3);
  }
  Result<double> rho = analysis::SpearmanCorrelation(sx, sy);
  ReportStatus(report, "correlation/spearman", rho.status());
  if (rho.ok()) {
    const std::vector<double> rx = ReferenceRanks(sx);
    const std::vector<double> ry = ReferenceRanks(sy);
    long double sum_d2 = 0.0L;
    for (size_t i = 0; i < n; ++i) {
      sum_d2 += (rx[i] - ry[i]) * (rx[i] - ry[i]);
    }
    const long double dn = static_cast<long double>(n);
    const long double closed = 1.0L - 6.0L * sum_d2 / (dn * (dn * dn - 1.0L));
    Compare(report, "correlation/spearman", "rho (no ties)", *rho,
            static_cast<double>(closed), 1e-12);
  }

  // Tie-heavy Spearman: small integer alphabets force long tie runs, which
  // the closed form above cannot handle — the reference is the definition,
  // Pearson over independently computed average ranks.
  std::vector<double> tx(n), ty(n);
  for (size_t i = 0; i < n; ++i) {
    tx[i] = static_cast<double>(rng.UniformInt(5));
    ty[i] = static_cast<double>(rng.UniformInt(4));
  }
  Result<double> tied = analysis::SpearmanCorrelation(tx, ty);
  ReportStatus(report, "correlation/spearman-ties", tied.status());
  if (tied.ok()) {
    Compare(report, "correlation/spearman-ties", "rho (ties)", *tied,
            static_cast<double>(
                ReferencePearson(ReferenceRanks(tx), ReferenceRanks(ty))),
            1e-12);
  }
  return report;
}

// ---- TreeSHAP ----

/// Brute-force Shapley values by subset enumeration over the tree's distinct
/// split features, with the same path-dependent conditional expectation
/// (unlisted features descend both children weighted by cover). Independent
/// of analysis/treeshap.cc: recursive, unmemoized, permutation-weighted.
std::vector<double> BruteForceShap(const analysis::RegressionTree& tree,
                                   const std::vector<double>& row,
                                   size_t num_features) {
  std::vector<int> features;
  for (const analysis::TreeNode& node : tree.nodes()) {
    if (node.feature >= 0 &&
        std::find(features.begin(), features.end(), node.feature) ==
            features.end()) {
      features.push_back(node.feature);
    }
  }
  const size_t d = features.size();

  std::function<double(int, uint32_t)> exp_value =
      [&](int node_id, uint32_t mask) -> double {
    const analysis::TreeNode& node = tree.nodes()[node_id];
    if (node.feature < 0) return node.value;
    const size_t pos = static_cast<size_t>(
        std::find(features.begin(), features.end(), node.feature) -
        features.begin());
    if ((mask >> pos) & 1u) {
      return row[node.feature] <= node.threshold
                 ? exp_value(node.left, mask)
                 : exp_value(node.right, mask);
    }
    const analysis::TreeNode& l = tree.nodes()[node.left];
    const analysis::TreeNode& r = tree.nodes()[node.right];
    return (l.cover * exp_value(node.left, mask) +
            r.cover * exp_value(node.right, mask)) /
           (l.cover + r.cover);
  };

  std::vector<double> factorial(d + 1, 1.0);
  for (size_t i = 1; i <= d; ++i) {
    factorial[i] = factorial[i - 1] * static_cast<double>(i);
  }
  std::vector<double> phi(num_features, 0.0);
  for (size_t p = 0; p < d; ++p) {
    for (uint32_t mask = 0; mask < (1u << d); ++mask) {
      if ((mask >> p) & 1u) continue;
      size_t s = 0;
      for (size_t b = 0; b < d; ++b) s += (mask >> b) & 1u;
      const double weight =
          factorial[s] * factorial[d - s - 1] / factorial[d];
      phi[features[p]] +=
          weight * (exp_value(0, mask | (1u << p)) - exp_value(0, mask));
    }
  }
  return phi;
}

CheckReport RunTreeShapOracle(uint64_t seed) {
  CheckReport report;
  Rng rng(seed);

  // Seeded ensemble: the target mixes two of four features so fitted trees
  // leave genuine null players for the missingness axiom.
  const size_t n = 80;
  std::vector<std::vector<double>> rows(n, std::vector<double>(4));
  std::vector<double> targets(n);
  for (size_t t = 0; t < n; ++t) {
    for (double& v : rows[t]) v = rng.Uniform(0.0, 1.0);
    targets[t] = 2.0 * (rows[t][0] > 0.5 ? 1.0 : 0.0) +
                 (rows[t][2] > 0.3 ? 1.0 : 0.0) + 0.1 * rng.Normal();
  }
  analysis::GradientBoostedTrees::Options options;
  options.num_trees = 4;
  options.learning_rate = 0.3;
  options.subsample = 1.0;
  options.tree.max_depth = 2;
  options.seed = MixSeed(seed, 1);
  analysis::GradientBoostedTrees model(options);
  ReportStatus(report, "treeshap/fit", model.Fit(rows, targets));
  if (report.failures.empty()) {
    for (int q = 0; q < 3; ++q) {
      std::vector<double> query(4);
      for (double& v : query) v = rng.Uniform(0.0, 1.0);

      // Efficiency / local accuracy for the whole ensemble.
      Result<std::vector<double>> phi =
          analysis::GbmShapValues(model, query, 4);
      ReportStatus(report, "treeshap/gbm", phi.status());
      if (phi.ok()) {
        double total = model.base_score();
        for (double p : *phi) total += p;
        Compare(report, "treeshap/efficiency", "sum(phi)+base vs predict",
                total, model.Predict(query), 1e-9);
      }

      // Exact per-tree agreement with brute-force Shapley, plus the
      // null-player axiom for features the tree never splits on.
      for (size_t ti = 0; ti < model.trees().size(); ++ti) {
        const analysis::RegressionTree& tree = model.trees()[ti];
        Result<std::vector<double>> tree_phi =
            analysis::TreeShapValues(tree, query, 4);
        ReportStatus(report, "treeshap/tree", tree_phi.status());
        if (!tree_phi.ok()) continue;
        const std::vector<double> brute = BruteForceShap(tree, query, 4);
        std::vector<bool> used(4, false);
        for (const analysis::TreeNode& node : tree.nodes()) {
          if (node.feature >= 0) used[node.feature] = true;
        }
        for (size_t f = 0; f < 4; ++f) {
          Compare(report, "treeshap/brute-force",
                  ("tree" + std::to_string(ti) + " phi" + std::to_string(f))
                      .c_str(),
                  (*tree_phi)[f], brute[f], 1e-9);
          if (!used[f]) {
            Compare(report, "treeshap/null-player",
                    ("tree" + std::to_string(ti) + " phi" +
                     std::to_string(f))
                        .c_str(),
                    (*tree_phi)[f], 0.0, 1e-12);
          }
        }
      }
    }
  }

  // Deterministic symmetric tree: a balanced 2x2 grid with
  // y = [x0>0.5] + [x1>0.5] fits to a tree whose value function treats the
  // two features interchangeably, so their Shapley values must be equal.
  std::vector<std::vector<double>> grid;
  std::vector<double> grid_y;
  for (double a : {0.25, 0.75}) {
    for (double b : {0.25, 0.75}) {
      for (int rep = 0; rep < 10; ++rep) {
        grid.push_back({a, b});
        grid_y.push_back((a > 0.5 ? 1.0 : 0.0) + (b > 0.5 ? 1.0 : 0.0));
      }
    }
  }
  analysis::RegressionTree sym_tree;
  ReportStatus(report, "treeshap/symmetric-fit", sym_tree.Fit(grid, grid_y));
  if (sym_tree.fitted()) {
    for (const std::vector<double>& query :
         {std::vector<double>{0.75, 0.75}, std::vector<double>{0.25, 0.25}}) {
      Result<std::vector<double>> phi =
          analysis::TreeShapValues(sym_tree, query, 2);
      ReportStatus(report, "treeshap/symmetry", phi.status());
      if (phi.ok()) {
        Compare(report, "treeshap/symmetry", "phi0 vs phi1", (*phi)[0],
                (*phi)[1], 1e-12);
        const std::vector<double> brute = BruteForceShap(sym_tree, query, 2);
        Compare(report, "treeshap/symmetry-brute", "phi0", (*phi)[0],
                brute[0], 1e-12);
        Compare(report, "treeshap/symmetry-brute", "phi1", (*phi)[1],
                brute[1], 1e-12);
      }
    }
  }
  return report;
}

// ---- Metric registry ----

/// Long-double pinball sum — the one shared building block of the pinball
/// and CRPS references, re-derived here with no code shared with
/// core/metric_registry.cc.
long double RefPinballSum(const std::vector<double>& x,
                          const std::vector<double>& y, long double q) {
  long double sum = 0.0L;
  for (size_t i = 0; i < x.size(); ++i) {
    const long double d =
        static_cast<long double>(x[i]) - static_cast<long double>(y[i]);
    sum += d >= 0.0L ? q * d : (q - 1.0L) * d;
  }
  return sum;
}

/// Expects an error whose text contains `needle`; a success or a different
/// message both count as oracle failures.
void ExpectMetricError(CheckReport& report, const std::string& check,
                       const Result<std::vector<double>>& r,
                       const char* needle) {
  ++report.checks;
  if (r.ok()) {
    report.failures.push_back({check, "unexpectedly succeeded"});
    return;
  }
  if (r.status().ToString().find(needle) == std::string::npos) {
    report.failures.push_back(
        {check, "error lacks '" + std::string(needle) +
                    "': " + r.status().ToString()});
  }
}

/// Pins every registry metric against an independent long-double reference,
/// plus the two metric edge contracts (constant in-sample MASE and
/// non-finite rejection with the offending index).
CheckReport RunMetricsOracle(uint64_t seed) {
  CheckReport report;
  Rng rng(seed);

  // Values are kept away from zero so the 1e-12 denominator floors of
  // MAPE/sMAPE never fire here (the floor behaviour gets its own check).
  const size_t n = 64;
  std::vector<double> actual(n), predicted(n), insample(48);
  for (size_t i = 0; i < n; ++i) {
    actual[i] = rng.Uniform(0.5, 3.0);
    predicted[i] = actual[i] + rng.Uniform(-0.4, 0.4);
  }
  for (double& v : insample) v = rng.Uniform(0.5, 3.0);
  std::vector<double> lower(n), upper(n);
  for (size_t i = 0; i < n; ++i) {
    lower[i] = actual[i] - rng.Uniform(0.0, 0.5);
    upper[i] = actual[i] + rng.Uniform(-0.2, 0.5);
  }

  MetricContext ctx;
  ctx.actual = &actual;
  ctx.predicted = &predicted;
  ctx.insample = &insample;
  ctx.season_length = 4;
  ctx.lower = &lower;
  ctx.upper = &upper;
  ctx.series = "oracle";

  const std::vector<std::string> names = {
      "mae",  "mse",         "mape",        "smape",
      "bias", "mase",        "pinball@0.1", "pinball@0.5",
      "pinball@0.9", "crps", "crps@0.5",    "coverage"};
  Result<std::vector<double>> got = EvaluateMetrics(names, ctx);
  ReportStatus(report, "metrics/evaluate", got.status());
  if (got.ok()) {
    const long double ld_n = static_cast<long double>(n);
    long double mae = 0.0L, mse = 0.0L, mape = 0.0L, smape = 0.0L,
                bias = 0.0L;
    for (size_t i = 0; i < n; ++i) {
      const long double x = actual[i];
      const long double y = predicted[i];
      mae += std::abs(x - y);
      mse += (x - y) * (x - y);
      mape += std::abs(x - y) / std::abs(x);
      smape += std::abs(x - y) / ((std::abs(x) + std::abs(y)) / 2.0L);
      bias += y - x;
    }
    const size_t lag = 4;
    long double scale = 0.0L;
    for (size_t t = lag; t < insample.size(); ++t) {
      scale += std::abs(static_cast<long double>(insample[t]) -
                        static_cast<long double>(insample[t - lag]));
    }
    scale /= static_cast<long double>(insample.size() - lag);
    size_t inside = 0;
    for (size_t i = 0; i < n; ++i) {
      if (lower[i] <= actual[i] && actual[i] <= upper[i]) ++inside;
    }
    const auto pin = [&](long double q) {
      return static_cast<double>(RefPinballSum(actual, predicted, q) / ld_n);
    };
    const double want[] = {
        static_cast<double>(mae / ld_n),
        static_cast<double>(mse / ld_n),
        static_cast<double>(mape / ld_n),
        static_cast<double>(smape / ld_n),
        static_cast<double>(bias / ld_n),
        static_cast<double>(mae / ld_n / scale),
        pin(0.1L),
        pin(0.5L),
        pin(0.9L),
        // Bare crps uses the symmetric k/20 quantile grid, on which the
        // 2x-scaled pinball average collapses exactly to MAE for a point
        // forecast — the closed-form identity this oracle pins.
        static_cast<double>(mae / ld_n),
        2.0 * pin(0.5L),
        static_cast<double>(inside) / static_cast<double>(n),
    };
    for (size_t i = 0; i < names.size(); ++i) {
      Compare(report, "metrics/" + names[i], names[i].c_str(), (*got)[i],
              want[i], 1e-12);
    }
  }

  // Denominator floor: a zero actual must leave MAPE finite (floored), not
  // infinite.
  std::vector<double> with_zero = actual;
  with_zero[0] = 0.0;
  MetricContext zero_ctx = ctx;
  zero_ctx.actual = &with_zero;
  Result<std::vector<double>> floored = EvaluateMetrics({"mape"}, zero_ctx);
  ReportStatus(report, "metrics/mape-floor", floored.status());
  if (floored.ok()) {
    ++report.checks;
    if (!std::isfinite((*floored)[0])) {
      report.failures.push_back(
          {"metrics/mape-floor", "MAPE with a zero actual is not finite"});
    }
  }

  // Contract drills: the edge cases must fail loudly with their pinned
  // wording, never return a number.
  std::vector<double> constant(32, 1.25);
  MetricContext const_ctx = ctx;
  const_ctx.insample = &constant;
  ExpectMetricError(report, "metrics/mase-constant",
                    EvaluateMetrics({"mase"}, const_ctx),
                    "constant in-sample");
  std::vector<double> short_insample(3, 1.0);
  MetricContext short_ctx = ctx;
  short_ctx.insample = &short_insample;
  ExpectMetricError(report, "metrics/mase-short",
                    EvaluateMetrics({"mase"}, short_ctx), "need more than");
  std::vector<double> poisoned = predicted;
  poisoned[3] = std::nan("");
  MetricContext nan_ctx = ctx;
  nan_ctx.predicted = &poisoned;
  ExpectMetricError(report, "metrics/non-finite",
                    EvaluateMetrics({"mae"}, nan_ctx),
                    "non-finite value at index 3");
  ExpectMetricError(report, "metrics/unknown-name",
                    EvaluateMetrics({"madeup"}, ctx), "madeup");
  return report;
}

}  // namespace

const std::vector<std::string>& AnalysisOracleNames() {
  static const std::vector<std::string> kNames = {
      "ols", "correlation", "treeshap", "determinism", "metrics"};
  return kNames;
}

Result<CheckReport> RunAnalysisOracle(const std::string& oracle,
                                      uint64_t seed) {
  if (oracle == "ols") return RunOlsOracle(seed);
  if (oracle == "correlation") return RunCorrelationOracle(seed);
  if (oracle == "treeshap") return RunTreeShapOracle(seed);
  if (oracle == "determinism") return RunTrainingDeterminismChecks(seed);
  if (oracle == "metrics") return RunMetricsOracle(seed);
  return Status::NotFound("unknown numcheck oracle: " + oracle);
}

}  // namespace lossyts::numcheck
