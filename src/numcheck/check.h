#ifndef LOSSYTS_NUMCHECK_CHECK_H_
#define LOSSYTS_NUMCHECK_CHECK_H_

#include <cstddef>
#include <string>
#include <vector>

namespace lossyts::numcheck {

/// One numerics-oracle violation. The harness wraps it with the component
/// name, case index and seed that reproduce it (see numcheck/harness.h).
struct CheckFailure {
  std::string check;   ///< Which oracle fired, e.g. "grad/input" or "ols/se".
  std::string detail;  ///< Worst violating coordinate and the two values.
};

/// Outcome of one component case: how many individual oracle comparisons ran
/// and which of them fired. `checks` counts comparisons, not entries — one
/// gradient check of a whole tensor is one check.
struct CheckReport {
  size_t checks = 0;
  std::vector<CheckFailure> failures;

  void Merge(CheckReport other) {
    checks += other.checks;
    for (CheckFailure& f : other.failures) failures.push_back(std::move(f));
  }
};

}  // namespace lossyts::numcheck

#endif  // LOSSYTS_NUMCHECK_CHECK_H_
