#ifndef LOSSYTS_COMPRESS_CHIMP_H_
#define LOSSYTS_COMPRESS_CHIMP_H_

#include "compress/compressor.h"

namespace lossyts::compress {

/// Chimp lossless floating-point compression (Liakos, Papakonstantinopoulou &
/// Kotidis, VLDB'22) — the modern successor to Gorilla discussed in the
/// paper's related work (§6.2). Implemented here as the base Chimp variant
/// (not Chimp128).
///
/// Like Gorilla, each value is XORed with its predecessor; unlike Gorilla,
/// Chimp spends a 2-bit control on four cases tuned to real time-series
/// traces, rounds leading-zero counts to a 3-bit code, and has a dedicated
/// case for XORs with many trailing zeros:
///   00  xor == 0 (identical value)
///   01  trailing zeros > 6: 3-bit leading code + 6-bit center length + bits
///   10  reuse previous leading-zero count: (64 − leading) bits
///   11  new leading-zero count: 3-bit code + (64 − leading) bits
///
/// Lossless: Compress ignores the error bound and Decompress is bit-exact.
class ChimpCompressor : public Compressor {
 public:
  std::string_view name() const override { return "CHIMP"; }

  Result<std::vector<uint8_t>> Compress(const TimeSeries& series,
                                        double error_bound) const override;
  Result<TimeSeries> Decompress(
      const std::vector<uint8_t>& blob) const override;

  /// Decodes only the first min(max_points, total) values; see
  /// GorillaCompressor::DecompressPrefix for the contract.
  Result<TimeSeries> DecompressPrefix(const std::vector<uint8_t>& blob,
                                      size_t max_points) const;
};

}  // namespace lossyts::compress

#endif  // LOSSYTS_COMPRESS_CHIMP_H_
