#ifndef LOSSYTS_COMPRESS_PMC_H_
#define LOSSYTS_COMPRESS_PMC_H_

#include "compress/compressor.h"

namespace lossyts::compress {

/// Poor Man's Compression, PMC-Mean variant (Lazaridis & Mehrotra, ICDE'03;
/// paper §3.2).
///
/// Streams points into an adaptive window while maintaining the running mean.
/// The window stays open as long as the mean lies inside every member's
/// relative allowance interval; when a new point would break that invariant
/// the window *without* the latest point becomes one segment represented by
/// its mean, and the latest point starts the next window.
///
/// Blob layout after the shared header: u32 segment count, then per segment a
/// u16 length and the f64 mean.
class PmcCompressor : public Compressor {
 public:
  struct Options {
    /// Store segment means as f32 when the rounded value still satisfies the
    /// bound (ModelarDB behaviour, the default). Setting this to false forces
    /// f64 coefficients — used by the storage-width ablation bench.
    bool f32_coefficients = true;
  };

  PmcCompressor() = default;
  explicit PmcCompressor(const Options& options) : options_(options) {}

  std::string_view name() const override { return "PMC"; }

  Result<std::vector<uint8_t>> Compress(const TimeSeries& series,
                                        double error_bound) const override;
  Result<TimeSeries> Decompress(
      const std::vector<uint8_t>& blob) const override;

 private:
  Options options_;
};

}  // namespace lossyts::compress

#endif  // LOSSYTS_COMPRESS_PMC_H_
