#ifndef LOSSYTS_COMPRESS_PIPELINE_H_
#define LOSSYTS_COMPRESS_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "core/status.h"
#include "core/time_series.h"

namespace lossyts::compress {

/// Outcome of running one compressor at one error bound through the paper's
/// full measurement pipeline (§3.2, §3.5): compress, gzip the result, size it
/// against the gzipped raw representation, and decompress for error metrics.
struct PipelineResult {
  std::string compressor_name;
  double error_bound = 0.0;

  size_t raw_bytes = 0;         ///< Raw binary representation, pre-gzip.
  size_t raw_gz_bytes = 0;      ///< gzip(raw), the CR denominator's source.
  size_t compressed_bytes = 0;  ///< Algorithm output, pre-gzip.
  size_t gz_bytes = 0;          ///< gzip(algorithm output): the ".gz file".

  /// Compression ratio per Eq. 3: raw_gz_bytes / gz_bytes... — see note: the
  /// paper sizes both raw and compressed data as .gz files, so both numerator
  /// and denominator are gzipped byte counts.
  double compression_ratio = 0.0;

  /// Number of segments produced (Figure 3). For PMC/Swing this is the model
  /// segment count; for SZ (which has no explicit segments) it is the number
  /// of constant runs in the decompressed output, matching the paper's
  /// observation that quantization makes SZ "fit a constant line like PMC".
  size_t segment_count = 0;

  /// Transformation errors (Definition 6) of decompressed vs. raw.
  double te_rmse = 0.0;
  double te_nrmse = 0.0;
  double te_rse = 0.0;
  double te_max_rel = 0.0;  ///< Realized L-inf relative error.

  TimeSeries decompressed;
};

/// Serializes the raw series as binary: shared timestamp header + 8-byte
/// IEEE values (the in-memory working format).
std::vector<uint8_t> SerializeRaw(const TimeSeries& series);

/// Serializes the raw series as CSV text ("timestamp,value" rows). The
/// paper's raw-size baseline applies gzip *directly to the raw dataset*,
/// i.e. to the distributed CSV files, so the CR numerator uses this form.
std::vector<uint8_t> SerializeRawCsv(const TimeSeries& series);

/// gzip(SerializeRawCsv(series)).size() — the numerator of every CR.
size_t RawGzipSize(const TimeSeries& series);

/// Runs the full pipeline for one (compressor, error bound) pair.
Result<PipelineResult> RunPipeline(const Compressor& compressor,
                                   const TimeSeries& series,
                                   double error_bound);

/// Counts maximal runs of identical consecutive values; the segment-count
/// proxy for codecs without explicit segments.
size_t CountConstantRuns(const TimeSeries& series);

/// Decompresses any blob produced by this library's codecs by dispatching
/// on the algorithm-id byte in the shared header. The entry point for tools
/// that receive opaque compressed files.
Result<TimeSeries> DecompressAny(const std::vector<uint8_t>& blob);

/// Creates a compressor by name. Recognized names: the paper's three PEBLC
/// methods ("PMC", "SWING", "SZ"), the lossless baselines ("GORILLA",
/// "CHIMP") and the related-work polynomial method ("PPA").
Result<std::unique_ptr<Compressor>> MakeCompressor(const std::string& name);

/// Names of the three lossy compressors evaluated by the paper, in its order.
const std::vector<std::string>& LossyCompressorNames();

/// The paper's 13 error bounds: {0.01, 0.03, 0.05, 0.07, 0.1, 0.15, 0.2,
/// 0.25, 0.3, 0.4, 0.5, 0.65, 0.8}.
const std::vector<double>& PaperErrorBounds();

}  // namespace lossyts::compress

#endif  // LOSSYTS_COMPRESS_PIPELINE_H_
