#include "compress/sz.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

#include "compress/header.h"
#include "compress/serde.h"
#include "zip/bitstream.h"
#include "zip/huffman.h"

namespace lossyts::compress {

namespace {

enum class PredictorId : uint8_t {
  kLorenzo = 0,      // Previous reconstructed value.
  kMeanLorenzo = 1,  // Block mean.
  kLinearRegression = 2,
};

enum ValueClass : uint8_t { kZero = 0, kNonZero = 1 };

struct BlockModel {
  PredictorId predictor;
  float abs_bound = 0.0f;  // Per-block absolute bound (see Compress).
  double mean = 0.0;       // kMeanLorenzo.
  double a = 0.0;          // kLinearRegression intercept.
  double b = 0.0;          // kLinearRegression slope.
};

// Chooses the predictor with the smallest total absolute residual over the
// raw block values (the sampling-based estimation SZ performs).
void ChooseBlockModel(const std::vector<double>& w, size_t begin, size_t end,
                      double prev_value, BlockModel* model) {
  const size_t n = end - begin;

  double lorenzo_cost = 0.0;
  double prev = prev_value;
  for (size_t i = begin; i < end; ++i) {
    lorenzo_cost += std::abs(w[i] - prev);
    prev = w[i];
  }

  double mean = 0.0;
  for (size_t i = begin; i < end; ++i) mean += w[i];
  mean /= static_cast<double>(n);
  double mean_cost = 0.0;
  for (size_t i = begin; i < end; ++i) mean_cost += std::abs(w[i] - mean);

  // Least-squares line over local indices 0..n-1.
  double a = mean;
  double b = 0.0;
  if (n >= 2) {
    const double x_mean = static_cast<double>(n - 1) / 2.0;
    double sxy = 0.0;
    double sxx = 0.0;
    for (size_t i = begin; i < end; ++i) {
      const double dx = static_cast<double>(i - begin) - x_mean;
      sxy += dx * (w[i] - mean);
      sxx += dx * dx;
    }
    b = sxx > 0.0 ? sxy / sxx : 0.0;
    a = mean - b * x_mean;
  }
  double linear_cost = 0.0;
  for (size_t i = begin; i < end; ++i) {
    linear_cost += std::abs(w[i] - (a + b * static_cast<double>(i - begin)));
  }

  if (lorenzo_cost <= mean_cost && lorenzo_cost <= linear_cost) {
    model->predictor = PredictorId::kLorenzo;
  } else if (mean_cost <= linear_cost) {
    model->predictor = PredictorId::kMeanLorenzo;
    model->mean = mean;
  } else {
    model->predictor = PredictorId::kLinearRegression;
    model->a = a;
    model->b = b;
  }
}

// Prediction and reconstruction arithmetic shared by Compress and
// Decompress. The encoder *verifies* every quantized reconstruction against
// the point's relative allowance (the LFZip-style max-error check), which is
// only sound if it computes bit-for-bit what the decoder will compute — so
// both sides call these and nothing else.
double PredictValue(const BlockModel& model, size_t local_index,
                    double prev_rec) {
  switch (model.predictor) {
    case PredictorId::kLorenzo:
      return prev_rec;
    case PredictorId::kMeanLorenzo:
      return model.mean;
    case PredictorId::kLinearRegression:
      return model.a + model.b * static_cast<double>(local_index);
  }
  return prev_rec;
}

double ReconstructValue(double pred, double delta, int code) {
  return pred + 2.0 * delta * static_cast<double>(code);
}

}  // namespace

Result<std::vector<uint8_t>> SzCompressor::Compress(
    const TimeSeries& series, double error_bound) const {
  if (Status s = CheckErrorBound(error_bound); !s.ok()) return s;
  if (series.empty()) {
    return Status::InvalidArgument("cannot compress an empty series");
  }
  if (Status s = CheckFiniteValues(series); !s.ok()) return s;
  if (Status s = CheckHeaderRepresentable(series); !s.ok()) return s;

  const std::vector<double>& v = series.values();
  const int radius = options_.quant_radius;
  const int unpredictable_symbol = 2 * radius;

  // Stage 1: exact zeros go to the class stream (they have zero tolerance
  // under the relative bound); the non-zero values form the coding stream.
  std::vector<uint8_t> classes(v.size());
  std::vector<double> w;
  w.reserve(v.size());
  for (size_t i = 0; i < v.size(); ++i) {
    if (v[i] == 0.0) {
      classes[i] = kZero;
    } else {
      classes[i] = kNonZero;
      w.push_back(v[i]);
    }
  }

  // Stages 2-3: blockwise prediction + quantization. Following SZ 2.1's
  // pointwise-relative mode, each block uses the *conservative* absolute
  // bound ε·min|w_i| over the block, which guarantees the pointwise bound
  // for every member but costs compression whenever the block spans a wide
  // magnitude range — the overhead the paper's SZ exhibits.
  std::vector<int> symbols;
  symbols.reserve(w.size());
  std::vector<double> unpredictable;
  std::vector<BlockModel> models;
  double prev_rec = 0.0;

  for (size_t begin = 0; begin < w.size(); begin += options_.block_size) {
    const size_t end = std::min(begin + options_.block_size, w.size());
    BlockModel model;
    double min_mag = std::abs(w[begin]);
    for (size_t i = begin; i < end; ++i) {
      min_mag = std::min(min_mag, std::abs(w[i]));
    }
    // Store the bound as f32 and quantize with the rounded-down value so
    // encoder and decoder agree bit-for-bit and the bound still holds.
    float bound32 = static_cast<float>(error_bound * min_mag);
    if (std::isinf(bound32)) {
      // ε·min|v| past FLT_MAX would quantize every residual to code 0 and
      // reconstruct pred + 2·inf·0 = NaN. FLT_MAX is still below the true
      // bound (the cast overflowed), so it is a valid conservative δ.
      bound32 = std::numeric_limits<float>::max();
    }
    if (static_cast<double>(bound32) > error_bound * min_mag) {
      bound32 = std::nextafterf(bound32, 0.0f);
    }
    model.abs_bound = bound32;
    ChooseBlockModel(w, begin, end, prev_rec, &model);
    models.push_back(model);

    const double delta = static_cast<double>(bound32);
    for (size_t i = begin; i < end; ++i) {
      const double pred = PredictValue(model, i - begin, prev_rec);
      bool predictable = delta > 0.0;
      double code_f = 0.0;
      if (predictable) {
        code_f = std::round((w[i] - pred) / (2.0 * delta));
        predictable = std::abs(code_f) < static_cast<double>(radius);
      }
      if (predictable) {
        // Verify the decoder's exact reconstruction against the allowance.
        // |2δ·round(r/2δ) − r| ≤ δ only holds in real arithmetic; the
        // division, scaling, and final addition each round, and near a bin
        // edge the accumulated drift can cross the bound. Any point the
        // reconstruction cannot provably cover is stored verbatim.
        const double rec = ReconstructValue(pred, delta,
                                            static_cast<int>(code_f));
        const Allowance a = RelativeAllowance(w[i], error_bound);
        // isfinite rejects an overflowed ±inf reconstruction that would
        // "fit" an allowance whose endpoint itself overflowed to ±inf.
        predictable = std::isfinite(rec) && rec >= a.lo && rec <= a.hi;
      }
      if (!predictable) {
        symbols.push_back(unpredictable_symbol);
        unpredictable.push_back(w[i]);
        prev_rec = w[i];
      } else {
        const int code = static_cast<int>(code_f);
        symbols.push_back(code + radius);
        prev_rec = ReconstructValue(pred, delta, code);
      }
    }
  }

  // Stage 4: entropy-code the symbols.
  ByteWriter writer;
  WriteHeader(MakeHeader(AlgorithmId::kSz, series), writer);
  if (Status s = PutCountU32(writer, w.size(), "SZ nonzero"); !s.ok()) {
    return s;
  }
  for (uint8_t c : classes) writer.PutU8(c);

  if (Status s = PutCountU32(writer, models.size(), "SZ block model");
      !s.ok()) {
    return s;
  }
  for (const BlockModel& m : models) {
    writer.PutU8(static_cast<uint8_t>(m.predictor));
    uint32_t bound_bits;
    std::memcpy(&bound_bits, &m.abs_bound, sizeof(bound_bits));
    writer.PutU32(bound_bits);
    if (m.predictor == PredictorId::kMeanLorenzo) {
      writer.PutDouble(m.mean);
    } else if (m.predictor == PredictorId::kLinearRegression) {
      writer.PutDouble(m.a);
      writer.PutDouble(m.b);
    }
  }

  std::vector<uint64_t> freqs(static_cast<size_t>(unpredictable_symbol) + 1,
                              0);
  for (int s : symbols) freqs[static_cast<size_t>(s)]++;
  Result<std::vector<int>> lengths = zip::BuildCodeLengths(freqs, 15);
  if (lengths.ok()) {
    writer.PutU8(0);  // Huffman mode.
    uint32_t n_used = 0;
    for (int l : *lengths) {
      if (l > 0) ++n_used;
    }
    writer.PutU32(n_used);
    for (size_t s = 0; s < lengths->size(); ++s) {
      if ((*lengths)[s] > 0) {
        writer.PutU32(static_cast<uint32_t>(s));
        writer.PutU8(static_cast<uint8_t>((*lengths)[s]));
      }
    }
    const std::vector<uint32_t> codes = zip::CanonicalCodes(*lengths);
    zip::BitWriter bits;
    for (int s : symbols) {
      bits.WriteHuffmanCode(codes[static_cast<size_t>(s)],
                            (*lengths)[static_cast<size_t>(s)]);
    }
    std::vector<uint8_t> payload = bits.Finish();
    if (Status s = PutCountU32(writer, payload.size(), "SZ Huffman payload");
        !s.ok()) {
      return s;
    }
    writer.PutBytes(payload);
  } else {
    // Degenerate distribution; store the raw codes (gzip still shrinks them).
    writer.PutU8(1);
    for (int s : symbols) writer.PutU32(static_cast<uint32_t>(s));
  }

  if (Status s = PutCountU32(writer, unpredictable.size(),
                             "SZ unpredictable value");
      !s.ok()) {
    return s;
  }
  for (double x : unpredictable) writer.PutDouble(x);
  return writer.Finish();
}

Result<TimeSeries> SzCompressor::Decompress(
    const std::vector<uint8_t>& blob) const {
  ByteReader reader(blob);
  Result<BlobHeader> header = ReadHeader(reader, AlgorithmId::kSz);
  if (!header.ok()) return header.status();

  const int radius = options_.quant_radius;
  const int unpredictable_symbol = 2 * radius;

  Result<uint32_t> n_nonzero = reader.GetU32();
  if (!n_nonzero.ok()) return n_nonzero.status();
  // Every count below sizes an allocation, so each is checked against what
  // the remaining payload could possibly hold before the vector is built —
  // a corrupted length field must fail as Corruption, not bad_alloc.
  if (*n_nonzero > header->num_points) {
    return Status::Corruption("SZ nonzero count exceeds point count");
  }
  if (header->num_points > reader.remaining()) {
    return Status::Corruption("SZ class stream truncated");
  }

  std::vector<uint8_t> classes(header->num_points);
  for (uint32_t i = 0; i < header->num_points; ++i) {
    Result<uint8_t> c = reader.GetU8();
    if (!c.ok()) return c.status();
    if (*c > kNonZero) return Status::Corruption("invalid SZ value class");
    classes[i] = *c;
  }

  Result<uint32_t> n_blocks = reader.GetU32();
  if (!n_blocks.ok()) return n_blocks.status();
  if (*n_blocks > reader.remaining()) {  // Each block model is >= 5 bytes.
    return Status::Corruption("SZ block count exceeds payload");
  }
  std::vector<BlockModel> models(*n_blocks);
  for (BlockModel& m : models) {
    Result<uint8_t> p = reader.GetU8();
    if (!p.ok()) return p.status();
    if (*p > static_cast<uint8_t>(PredictorId::kLinearRegression)) {
      return Status::Corruption("invalid SZ predictor id");
    }
    m.predictor = static_cast<PredictorId>(*p);
    Result<uint32_t> bound_bits = reader.GetU32();
    if (!bound_bits.ok()) return bound_bits.status();
    uint32_t bits = *bound_bits;
    std::memcpy(&m.abs_bound, &bits, sizeof(m.abs_bound));
    if (m.predictor == PredictorId::kMeanLorenzo) {
      Result<double> mean = reader.GetDouble();
      if (!mean.ok()) return mean.status();
      m.mean = *mean;
    } else if (m.predictor == PredictorId::kLinearRegression) {
      Result<double> a = reader.GetDouble();
      if (!a.ok()) return a.status();
      Result<double> b = reader.GetDouble();
      if (!b.ok()) return b.status();
      m.a = *a;
      m.b = *b;
    }
  }

  // Decode symbols.
  Result<uint8_t> mode = reader.GetU8();
  if (!mode.ok()) return mode.status();
  std::vector<int> symbols;
  symbols.reserve(*n_nonzero);
  if (*mode == 0) {
    Result<uint32_t> n_used = reader.GetU32();
    if (!n_used.ok()) return n_used.status();
    std::vector<int> lengths(static_cast<size_t>(unpredictable_symbol) + 1,
                             0);
    for (uint32_t k = 0; k < *n_used; ++k) {
      Result<uint32_t> sym = reader.GetU32();
      if (!sym.ok()) return sym.status();
      Result<uint8_t> len = reader.GetU8();
      if (!len.ok()) return len.status();
      if (*sym >= lengths.size()) {
        return Status::Corruption("SZ Huffman symbol out of range");
      }
      lengths[*sym] = *len;
    }
    zip::HuffmanDecoder decoder;
    if (Status s = decoder.Init(lengths); !s.ok()) return s;
    Result<uint32_t> payload_size = reader.GetU32();
    if (!payload_size.ok()) return payload_size.status();
    if (*payload_size > reader.remaining()) {
      return Status::Corruption("SZ Huffman payload truncated");
    }
    zip::BitReader bits(reader.current(), *payload_size);
    if (Status s = reader.Skip(*payload_size); !s.ok()) return s;
    for (uint32_t i = 0; i < *n_nonzero; ++i) {
      Result<int> sym = decoder.Decode(bits);
      if (!sym.ok()) return sym.status();
      symbols.push_back(*sym);
    }
  } else if (*mode == 1) {
    for (uint32_t i = 0; i < *n_nonzero; ++i) {
      Result<uint32_t> sym = reader.GetU32();
      if (!sym.ok()) return sym.status();
      // Compare as unsigned: casting first would wrap codes >= 2^31 to
      // negative ints that slip past the check and decode as garbage.
      if (*sym > static_cast<uint32_t>(unpredictable_symbol)) {
        return Status::Corruption("SZ raw symbol out of range");
      }
      symbols.push_back(static_cast<int>(*sym));
    }
  } else {
    return Status::Corruption("invalid SZ symbol coding mode");
  }

  Result<uint32_t> n_unpredictable = reader.GetU32();
  if (!n_unpredictable.ok()) return n_unpredictable.status();
  if (*n_unpredictable > reader.remaining() / sizeof(double)) {
    return Status::Corruption("SZ unpredictable count exceeds payload");
  }
  std::vector<double> unpredictable(*n_unpredictable);
  for (double& x : unpredictable) {
    Result<double> val = reader.GetDouble();
    if (!val.ok()) return val.status();
    x = *val;
  }

  // Reconstruct the non-zero stream.
  std::vector<double> w(*n_nonzero);
  double prev_rec = 0.0;
  size_t unpred_pos = 0;
  size_t block = 0;
  for (size_t i = 0; i < w.size(); ++i) {
    if (i > 0 && i % options_.block_size == 0) ++block;
    if (block >= models.size()) {
      return Status::Corruption("SZ block stream shorter than symbol stream");
    }
    const BlockModel& m = models[block];
    const double delta = static_cast<double>(m.abs_bound);
    const double pred =
        PredictValue(m, i - block * options_.block_size, prev_rec);
    const int sym = symbols[i];
    if (sym == unpredictable_symbol) {
      if (unpred_pos >= unpredictable.size()) {
        return Status::Corruption("SZ unpredictable stream exhausted");
      }
      w[i] = unpredictable[unpred_pos++];
    } else {
      w[i] = ReconstructValue(pred, delta, sym - radius);
    }
    prev_rec = w[i];
  }

  // Merge zeros back in.
  std::vector<double> values(header->num_points);
  size_t j = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    if (classes[i] == kZero) {
      values[i] = 0.0;
    } else {
      if (j >= w.size()) {
        return Status::Corruption("SZ class stream inconsistent");
      }
      values[i] = w[j++];
    }
  }
  if (j != w.size()) {
    return Status::Corruption("SZ nonzero count mismatch");
  }
  return TimeSeries(header->first_timestamp, header->interval_seconds,
                    std::move(values));
}

}  // namespace lossyts::compress
