#ifndef LOSSYTS_COMPRESS_SZ_H_
#define LOSSYTS_COMPRESS_SZ_H_

#include "compress/compressor.h"

namespace lossyts::compress {

/// SZ-style error-bounded compressor (Liang et al., Big Data'18; paper §3.2),
/// configured for the *pointwise relative* bound used throughout the paper.
///
/// Pipeline (mirroring SZ 2.1's PW_REL mode):
///  1. Exact zeros are split off into a class stream (the relative bound
///     gives them zero tolerance); non-zero values form the coding stream.
///  2. Block split into fixed-size segments; per block SZ evaluates three
///     predictors — classic Lorenzo (previous reconstructed value),
///     mean-integrated Lorenzo (block mean), and linear regression — and
///     keeps the best fit.
///  3. Linear-scale quantization of the prediction residuals with the
///     block's *conservative* absolute bound δ = ε·min|v| (as SZ's
///     pointwise-relative mode derives per-block bounds), using 2·δ-wide
///     bins; residuals outside the code range are stored verbatim
///     ("unpredictable" values).
///  4. Entropy coding of the quantization codes with a canonical Huffman
///     coder. The evaluation pipeline then applies gzip, as SZ itself does.
///
/// The quantization step is what produces the constant runs and small
/// fluctuations visible in the paper's Figure 1.
class SzCompressor : public Compressor {
 public:
  /// Tunables; defaults match the behaviour described in the paper.
  struct Options {
    size_t block_size = 128;   ///< Points per prediction block.
    int quant_radius = 32768;  ///< Codes cover [-radius, radius).
  };

  SzCompressor() = default;
  explicit SzCompressor(const Options& options) : options_(options) {}

  std::string_view name() const override { return "SZ"; }

  Result<std::vector<uint8_t>> Compress(const TimeSeries& series,
                                        double error_bound) const override;
  Result<TimeSeries> Decompress(
      const std::vector<uint8_t>& blob) const override;

 private:
  Options options_;
};

}  // namespace lossyts::compress

#endif  // LOSSYTS_COMPRESS_SZ_H_
