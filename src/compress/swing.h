#ifndef LOSSYTS_COMPRESS_SWING_H_
#define LOSSYTS_COMPRESS_SWING_H_

#include "compress/compressor.h"

namespace lossyts::compress {

/// Swing Filter (Elmeleegy et al., VLDB'09; paper §3.2).
///
/// Each segment is a linear approximation anchored exactly at its first point
/// (t_s, v_s). While streaming, the filter maintains the steepest (`upper`)
/// and shallowest (`lower`) slopes such that the line stays inside every
/// point's relative allowance; a point whose allowance cannot be intersected
/// closes the segment. Following ModelarDB's variant used by the paper, the
/// emitted slope is the mean of the final upper and lower slopes.
///
/// Blob layout after the shared header: u32 segment count, then per segment a
/// u16 length, the f64 anchor value and the f64 slope per index step. Two
/// model coefficients per segment — the storage overhead the paper identifies
/// as Swing's CR weakness relative to PMC.
class SwingCompressor : public Compressor {
 public:
  std::string_view name() const override { return "SWING"; }

  Result<std::vector<uint8_t>> Compress(const TimeSeries& series,
                                        double error_bound) const override;
  Result<TimeSeries> Decompress(
      const std::vector<uint8_t>& blob) const override;
};

}  // namespace lossyts::compress

#endif  // LOSSYTS_COMPRESS_SWING_H_
