#include "compress/pipeline.h"

#include <cstdio>
#include <string>

#include "compress/chimp.h"
#include "compress/gorilla.h"
#include "compress/header.h"
#include "compress/pmc.h"
#include "compress/ppa.h"
#include "compress/serde.h"
#include "compress/swing.h"
#include "compress/sz.h"
#include "core/failpoint.h"
#include "core/metrics.h"
#include "zip/gzip.h"

namespace lossyts::compress {

std::vector<uint8_t> SerializeRaw(const TimeSeries& series) {
  ByteWriter writer;
  writer.PutI32(static_cast<int32_t>(series.start_timestamp()));
  writer.PutU16(static_cast<uint16_t>(series.interval_seconds()));
  writer.PutU32(static_cast<uint32_t>(series.size()));
  for (double v : series.values()) writer.PutDouble(v);
  return writer.Finish();
}

std::vector<uint8_t> SerializeRawCsv(const TimeSeries& series) {
  std::string text = "timestamp,value\n";
  char buffer[64];
  for (size_t i = 0; i < series.size(); ++i) {
    std::snprintf(buffer, sizeof(buffer), "%lld,%.10g\n",
                  static_cast<long long>(series.TimestampAt(i)), series[i]);
    text += buffer;
  }
  return std::vector<uint8_t>(text.begin(), text.end());
}

size_t RawGzipSize(const TimeSeries& series) {
  return zip::GzipCompress(SerializeRawCsv(series)).size();
}

size_t CountConstantRuns(const TimeSeries& series) {
  if (series.empty()) return 0;
  size_t runs = 1;
  for (size_t i = 1; i < series.size(); ++i) {
    if (series[i] != series[i - 1]) ++runs;
  }
  return runs;
}

Result<PipelineResult> RunPipeline(const Compressor& compressor,
                                   const TimeSeries& series,
                                   double error_bound) {
  PipelineResult result;
  result.compressor_name = std::string(compressor.name());
  result.error_bound = error_bound;

  const std::vector<uint8_t> raw_csv = SerializeRawCsv(series);
  result.raw_bytes = raw_csv.size();
  result.raw_gz_bytes = zip::GzipCompress(raw_csv).size();

  LOSSYTS_FAILPOINT("compress");
  Result<std::vector<uint8_t>> blob = compressor.Compress(series, error_bound);
  if (!blob.ok()) return blob.status();
  result.compressed_bytes = blob->size();
  result.gz_bytes = zip::GzipCompress(*blob).size();
  result.compression_ratio = static_cast<double>(result.raw_gz_bytes) /
                             static_cast<double>(result.gz_bytes);

  LOSSYTS_FAILPOINT("decompress");
  Result<TimeSeries> decompressed = compressor.Decompress(*blob);
  if (!decompressed.ok()) return decompressed.status();
  if (decompressed->size() != series.size()) {
    return Status::Internal("decompressed size mismatch");
  }

  // Segment count: PMC and Swing encode an explicit u32 segment count right
  // after the shared header; for other codecs fall back to constant runs.
  if (compressor.name() == "PMC" || compressor.name() == "SWING" ||
      compressor.name() == "PPA") {
    ByteReader reader(*blob);
    // Header: id, timestamp, interval, count.
    if (Status s = reader.Skip(1 + 4 + 2 + 4); !s.ok()) return s;
    Result<uint32_t> segments = reader.GetU32();
    if (!segments.ok()) return segments.status();
    result.segment_count = *segments;
  } else {
    result.segment_count = CountConstantRuns(*decompressed);
  }

  Result<double> rmse = Rmse(series.values(), decompressed->values());
  if (!rmse.ok()) return rmse.status();
  result.te_rmse = *rmse;
  Result<double> nrmse = Nrmse(series.values(), decompressed->values());
  if (!nrmse.ok()) return nrmse.status();
  result.te_nrmse = *nrmse;
  Result<double> rse = Rse(series.values(), decompressed->values());
  if (!rse.ok()) return rse.status();
  result.te_rse = *rse;
  Result<double> max_rel = MaxRelError(series.values(), decompressed->values());
  if (!max_rel.ok()) return max_rel.status();
  result.te_max_rel = *max_rel;

  result.decompressed = std::move(*decompressed);
  return result;
}

Result<TimeSeries> DecompressAny(const std::vector<uint8_t>& blob) {
  if (blob.empty()) return Status::Corruption("empty blob");
  switch (static_cast<AlgorithmId>(blob[0])) {
    case AlgorithmId::kPmc:
      return PmcCompressor().Decompress(blob);
    case AlgorithmId::kSwing:
      return SwingCompressor().Decompress(blob);
    case AlgorithmId::kSz:
      return SzCompressor().Decompress(blob);
    case AlgorithmId::kGorilla:
      return GorillaCompressor().Decompress(blob);
    case AlgorithmId::kChimp:
      return ChimpCompressor().Decompress(blob);
    case AlgorithmId::kPpa:
      return PpaCompressor().Decompress(blob);
  }
  return Status::Corruption("unknown algorithm id in blob header");
}

Result<std::unique_ptr<Compressor>> MakeCompressor(const std::string& name) {
  if (name == "PMC") return std::unique_ptr<Compressor>(new PmcCompressor());
  if (name == "SWING") {
    return std::unique_ptr<Compressor>(new SwingCompressor());
  }
  if (name == "SZ") return std::unique_ptr<Compressor>(new SzCompressor());
  if (name == "GORILLA") {
    return std::unique_ptr<Compressor>(new GorillaCompressor());
  }
  if (name == "CHIMP") {
    return std::unique_ptr<Compressor>(new ChimpCompressor());
  }
  if (name == "PPA") return std::unique_ptr<Compressor>(new PpaCompressor());
  return Status::NotFound("unknown compressor: " + name);
}

const std::vector<std::string>& LossyCompressorNames() {
  static const std::vector<std::string>& names =
      *new std::vector<std::string>{"PMC", "SWING", "SZ"};
  return names;
}

const std::vector<double>& PaperErrorBounds() {
  static const std::vector<double>& bounds = *new std::vector<double>{
      0.01, 0.03, 0.05, 0.07, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.65, 0.8};
  return bounds;
}

}  // namespace lossyts::compress
