#include "compress/chimp.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "compress/header.h"
#include "compress/serde.h"
#include "zip/bitstream.h"

namespace lossyts::compress {

namespace {

// Chimp rounds leading-zero counts down to one of eight values so the count
// fits a 3-bit code.
constexpr int kLeadingTable[8] = {0, 8, 12, 16, 18, 20, 22, 24};

int LeadingCode(int leading) {
  int code = 0;
  for (int i = 0; i < 8; ++i) {
    if (kLeadingTable[i] <= leading) code = i;
  }
  return code;
}

uint64_t DoubleToBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

int LeadingZeros(uint64_t x) { return x == 0 ? 64 : __builtin_clzll(x); }
int TrailingZeros(uint64_t x) { return x == 0 ? 64 : __builtin_ctzll(x); }

void WriteBitsMsbFirst(zip::BitWriter& writer, uint64_t value, int count) {
  for (int i = count - 1; i >= 0; --i) {
    writer.WriteBits(static_cast<uint32_t>((value >> i) & 1u), 1);
  }
}

Result<uint64_t> ReadBitsMsbFirst(zip::BitReader& reader, int count) {
  uint64_t value = 0;
  for (int i = 0; i < count; ++i) {
    Result<uint32_t> bit = reader.ReadBit();
    if (!bit.ok()) return bit.status();
    value = (value << 1) | *bit;
  }
  return value;
}

}  // namespace

Result<std::vector<uint8_t>> ChimpCompressor::Compress(
    const TimeSeries& series, double /*error_bound*/) const {
  if (series.empty()) {
    return Status::InvalidArgument("cannot compress an empty series");
  }
  if (Status s = CheckHeaderRepresentable(series); !s.ok()) return s;

  zip::BitWriter bits;
  uint64_t prev = DoubleToBits(series[0]);
  WriteBitsMsbFirst(bits, prev, 64);

  int prev_leading = -1;
  for (size_t i = 1; i < series.size(); ++i) {
    const uint64_t cur = DoubleToBits(series[i]);
    const uint64_t x = cur ^ prev;
    prev = cur;
    if (x == 0) {
      bits.WriteBits(0b00, 2);
      prev_leading = -1;  // Chimp resets the reuse state on identical values.
      continue;
    }
    const int leading_code = LeadingCode(LeadingZeros(x));
    const int leading = kLeadingTable[leading_code];
    const int trailing = TrailingZeros(x);
    if (trailing > 6) {
      // '01': center-bits case for XORs with a long zero tail.
      const int significant = 64 - leading - trailing;
      bits.WriteBits(0b10, 2);  // LSB-first write of the bit pair (0,1).
      bits.WriteBits(static_cast<uint32_t>(leading_code), 3);
      bits.WriteBits(static_cast<uint32_t>(significant), 6);
      WriteBitsMsbFirst(bits, x >> trailing, significant);
      prev_leading = -1;
    } else if (leading == prev_leading) {
      // '10': reuse the previous leading-zero count.
      bits.WriteBits(0b01, 2);
      WriteBitsMsbFirst(bits, x, 64 - leading);
    } else {
      // '11': transmit a new leading-zero count.
      bits.WriteBits(0b11, 2);
      bits.WriteBits(static_cast<uint32_t>(leading_code), 3);
      WriteBitsMsbFirst(bits, x, 64 - leading);
      prev_leading = leading;
    }
  }

  ByteWriter writer;
  WriteHeader(MakeHeader(AlgorithmId::kChimp, series), writer);
  std::vector<uint8_t> payload = bits.Finish();
  if (Status s = PutCountU32(writer, payload.size(), "Chimp payload");
      !s.ok()) {
    return s;
  }
  writer.PutBytes(payload);
  return writer.Finish();
}

namespace {

// Shared decode core: reconstructs the first min(limit, num_points) values,
// mirroring gorilla.cc's DecodeGorilla — the early-stop path is the same
// sequential walk, just cut short.
Result<TimeSeries> DecodeChimp(const std::vector<uint8_t>& blob,
                               size_t limit) {
  ByteReader reader(blob);
  Result<BlobHeader> header = ReadHeader(reader, AlgorithmId::kChimp);
  if (!header.ok()) return header.status();
  Result<uint32_t> payload_size = reader.GetU32();
  if (!payload_size.ok()) return payload_size.status();
  if (*payload_size > reader.remaining()) {
    return Status::Corruption("Chimp payload truncated");
  }
  zip::BitReader bits(reader.current(), *payload_size);
  if (header->num_points == 0) {
    return Status::Corruption("Chimp blob with zero points");
  }

  const size_t target = std::min<size_t>(limit, header->num_points);
  std::vector<double> values;
  values.reserve(SafeReserve(static_cast<uint32_t>(target)));
  Result<uint64_t> first = ReadBitsMsbFirst(bits, 64);
  if (!first.ok()) return first.status();
  uint64_t prev = *first;
  values.push_back(BitsToDouble(prev));

  int prev_leading = -1;
  while (values.size() < target) {
    Result<uint32_t> control = bits.ReadBits(2);
    if (!control.ok()) return control.status();
    uint64_t x = 0;
    switch (*control) {
      case 0b00:  // Identical value.
        prev_leading = -1;
        break;
      case 0b10: {  // Center-bits case (written as pair (0,1)).
        Result<uint32_t> leading_code = bits.ReadBits(3);
        if (!leading_code.ok()) return leading_code.status();
        Result<uint32_t> significant = bits.ReadBits(6);
        if (!significant.ok()) return significant.status();
        const int leading = kLeadingTable[*leading_code];
        const int trailing = 64 - leading - static_cast<int>(*significant);
        // significant == 0 never leaves the encoder (a zero XOR is the '00'
        // control) and would make the shift below exceed 63.
        if (*significant == 0 || trailing < 0) {
          return Status::Corruption("Chimp bad bit counts");
        }
        Result<uint64_t> center =
            ReadBitsMsbFirst(bits, static_cast<int>(*significant));
        if (!center.ok()) return center.status();
        x = *center << trailing;
        prev_leading = -1;
        break;
      }
      case 0b01: {  // Reuse previous leading count.
        if (prev_leading < 0) {
          return Status::Corruption("Chimp reuse before a leading count");
        }
        Result<uint64_t> tail = ReadBitsMsbFirst(bits, 64 - prev_leading);
        if (!tail.ok()) return tail.status();
        x = *tail;
        break;
      }
      case 0b11: {  // New leading count.
        Result<uint32_t> leading_code = bits.ReadBits(3);
        if (!leading_code.ok()) return leading_code.status();
        prev_leading = kLeadingTable[*leading_code];
        Result<uint64_t> tail = ReadBitsMsbFirst(bits, 64 - prev_leading);
        if (!tail.ok()) return tail.status();
        x = *tail;
        break;
      }
      default:
        return Status::Corruption("Chimp invalid control bits");
    }
    prev ^= x;
    values.push_back(BitsToDouble(prev));
  }
  return TimeSeries(header->first_timestamp, header->interval_seconds,
                    std::move(values));
}

}  // namespace

Result<TimeSeries> ChimpCompressor::Decompress(
    const std::vector<uint8_t>& blob) const {
  return DecodeChimp(blob, std::numeric_limits<size_t>::max());
}

Result<TimeSeries> ChimpCompressor::DecompressPrefix(
    const std::vector<uint8_t>& blob, size_t max_points) const {
  if (max_points == 0) {
    return Status::InvalidArgument("prefix decode requires max_points >= 1");
  }
  return DecodeChimp(blob, max_points);
}

}  // namespace lossyts::compress
