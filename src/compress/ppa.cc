#include "compress/ppa.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "compress/header.h"
#include "compress/serde.h"

namespace lossyts::compress {

namespace {

// Least-squares polynomial fit of degree `degree` over v[begin, begin+len)
// against local indices 0..len-1. Returns false when the normal equations
// are singular (short segments get a lower degree instead).
bool FitPolynomial(const std::vector<double>& v, size_t begin, size_t len,
                   int degree, std::array<double, 3>* coeffs) {
  const int k = degree + 1;
  double xtx[3][3] = {};
  double xty[3] = {};
  for (size_t i = 0; i < len; ++i) {
    const double t = static_cast<double>(i);
    double powers[3] = {1.0, t, t * t};
    for (int r = 0; r < k; ++r) {
      for (int c = 0; c < k; ++c) xtx[r][c] += powers[r] * powers[c];
      xty[r] += powers[r] * v[begin + i];
    }
  }
  // Gaussian elimination with partial pivoting on the k-by-k system.
  double a[3][4];
  for (int r = 0; r < k; ++r) {
    for (int c = 0; c < k; ++c) a[r][c] = xtx[r][c];
    a[r][k] = xty[r];
  }
  for (int col = 0; col < k; ++col) {
    int pivot = col;
    for (int r = col + 1; r < k; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-12) return false;
    for (int c = 0; c <= k; ++c) std::swap(a[col][c], a[pivot][c]);
    for (int r = 0; r < k; ++r) {
      if (r == col) continue;
      const double f = a[r][col] / a[col][col];
      for (int c = col; c <= k; ++c) a[r][c] -= f * a[col][c];
    }
  }
  coeffs->fill(0.0);
  for (int r = 0; r < k; ++r) (*coeffs)[r] = a[r][k] / a[r][r];
  return true;
}

double EvalPolynomial(const std::array<double, 3>& coeffs, double t) {
  return coeffs[0] + coeffs[1] * t + coeffs[2] * t * t;
}

// Checks the fitted polynomial against every point's relative allowance.
// The negated comparison rejects NaN reconstructions (overflowed normal
// equations yield NaN coefficients, and `rec < lo || rec > hi` is all-false
// for NaN); the isfinite check additionally rejects ±inf reconstructions,
// which would otherwise slip through when |v| is so large that the allowance
// endpoints themselves overflow to ±inf — decompressed output must stay
// finite so it can be re-compressed.
bool Feasible(const std::vector<double>& v, size_t begin, size_t len,
              const std::array<double, 3>& coeffs, double error_bound) {
  for (size_t i = 0; i < len; ++i) {
    const double rec = EvalPolynomial(coeffs, static_cast<double>(i));
    const Allowance a = RelativeAllowance(v[begin + i], error_bound);
    if (!std::isfinite(rec) || !(rec >= a.lo && rec <= a.hi)) return false;
  }
  return true;
}

struct Segment {
  uint16_t length;
  uint8_t degree;
  std::array<double, 3> coeffs;
};

}  // namespace

Result<std::vector<uint8_t>> PpaCompressor::Compress(
    const TimeSeries& series, double error_bound) const {
  if (Status s = CheckErrorBound(error_bound); !s.ok()) return s;
  if (series.empty()) {
    return Status::InvalidArgument("cannot compress an empty series");
  }
  if (Status s = CheckFiniteValues(series); !s.ok()) return s;
  if (Status s = CheckHeaderRepresentable(series); !s.ok()) return s;

  const std::vector<double>& v = series.values();
  std::vector<Segment> segments;
  size_t pos = 0;
  while (pos < v.size()) {
    const size_t remaining =
        std::min(v.size() - pos, options_.max_segment_length);

    // Per degree, find the maximal feasible length via exponential growth
    // followed by binary search (each probe refits and verifies, O(len)).
    Segment best;
    best.length = 1;
    best.degree = 0;
    best.coeffs = {v[pos], 0.0, 0.0};
    double best_density = 1.0 / (3.0 + 8.0);  // Points per stored byte.

    for (int degree = 0; degree <= options_.max_degree; ++degree) {
      auto feasible_at = [&](size_t len,
                             std::array<double, 3>* coeffs) -> bool {
        if (len < static_cast<size_t>(degree) + 1) return false;
        const int effective_degree =
            std::min<int>(degree, static_cast<int>(len) - 1);
        if (!FitPolynomial(v, pos, len, effective_degree, coeffs)) {
          return false;
        }
        return Feasible(v, pos, len, *coeffs, error_bound);
      };

      std::array<double, 3> coeffs{};
      size_t lo = static_cast<size_t>(degree) + 1;
      if (lo > remaining) break;
      if (!feasible_at(lo, &coeffs)) continue;
      size_t hi = lo;
      std::array<double, 3> lo_coeffs = coeffs;
      while (hi < remaining) {
        const size_t next = std::min(remaining, hi * 2);
        if (feasible_at(next, &coeffs)) {
          hi = next;
          lo_coeffs = coeffs;
          if (next == remaining) break;
        } else {
          // Binary search in (hi, next).
          size_t bad = next;
          size_t good = hi;
          while (good + 1 < bad) {
            const size_t mid = (good + bad) / 2;
            if (feasible_at(mid, &coeffs)) {
              good = mid;
              lo_coeffs = coeffs;
            } else {
              bad = mid;
            }
          }
          hi = good;
          break;
        }
      }
      const double bytes = 3.0 + 8.0 * static_cast<double>(degree + 1);
      const double density = static_cast<double>(hi) / bytes;
      if (density > best_density) {
        best_density = density;
        best.length = static_cast<uint16_t>(hi);
        best.degree = static_cast<uint8_t>(degree);
        best.coeffs = lo_coeffs;
      }
    }
    segments.push_back(best);
    pos += best.length;
  }

  ByteWriter writer;
  WriteHeader(MakeHeader(AlgorithmId::kPpa, series), writer);
  if (Status s = PutCountU32(writer, segments.size(), "PPA segment");
      !s.ok()) {
    return s;
  }
  for (const Segment& s : segments) {
    writer.PutU16(s.length);
    writer.PutU8(s.degree);
    for (int c = 0; c <= s.degree; ++c) writer.PutDouble(s.coeffs[c]);
  }
  return writer.Finish();
}

Result<TimeSeries> PpaCompressor::Decompress(
    const std::vector<uint8_t>& blob) const {
  ByteReader reader(blob);
  Result<BlobHeader> header = ReadHeader(reader, AlgorithmId::kPpa);
  if (!header.ok()) return header.status();
  Result<uint32_t> num_segments = reader.GetU32();
  if (!num_segments.ok()) return num_segments.status();

  std::vector<double> values;
  values.reserve(SafeReserve(header->num_points));
  for (uint32_t s = 0; s < *num_segments; ++s) {
    Result<uint16_t> length = reader.GetU16();
    if (!length.ok()) return length.status();
    if (values.size() + *length > header->num_points) {
      return Status::Corruption(
          "PPA segment lengths overrun the point count");
    }
    Result<uint8_t> degree = reader.GetU8();
    if (!degree.ok()) return degree.status();
    if (*degree > 2) return Status::Corruption("PPA degree out of range");
    std::array<double, 3> coeffs{};
    for (int c = 0; c <= *degree; ++c) {
      Result<double> coeff = reader.GetDouble();
      if (!coeff.ok()) return coeff.status();
      coeffs[static_cast<size_t>(c)] = *coeff;
    }
    for (uint16_t i = 0; i < *length; ++i) {
      values.push_back(EvalPolynomial(coeffs, static_cast<double>(i)));
    }
  }
  if (values.size() != header->num_points) {
    return Status::Corruption("PPA segment lengths do not sum to point count");
  }
  return TimeSeries(header->first_timestamp, header->interval_seconds,
                    std::move(values));
}

}  // namespace lossyts::compress
