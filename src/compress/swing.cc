#include "compress/swing.h"

#include <algorithm>
#include <limits>

#include "compress/header.h"
#include "compress/serde.h"

namespace lossyts::compress {

namespace {

constexpr size_t kMaxSegmentLength = 65535;

struct Segment {
  uint16_t length;
  double anchor;  // Exact first value of the segment.
  double slope;   // Value change per index step.
};

// Unlike PMC's single mean (stored as f32 when safe, see pmc.cc), Swing's
// coefficients stay f64: the slope is multiplied by the in-segment index, so
// float rounding drifts linearly along the segment and would constantly
// force costly re-verification fallbacks. This matches ModelarDB and is the
// storage overhead the paper identifies as Swing's CR weakness (§4.2).

}  // namespace

Result<std::vector<uint8_t>> SwingCompressor::Compress(
    const TimeSeries& series, double error_bound) const {
  if (Status s = CheckErrorBound(error_bound); !s.ok()) return s;
  if (series.empty()) {
    return Status::InvalidArgument("cannot compress an empty series");
  }

  std::vector<Segment> segments;
  const std::vector<double>& v = series.values();

  size_t start = 0;
  double anchor = v[0];
  double slope_lo = -std::numeric_limits<double>::infinity();
  double slope_hi = std::numeric_limits<double>::infinity();

  auto close_segment = [&](size_t end) {
    double slope = 0.0;
    if (end - start > 1) {
      // Mean of the upper and lower bounding slopes (ModelarDB variant).
      slope = 0.5 * (slope_lo + slope_hi);
    }
    segments.push_back({static_cast<uint16_t>(end - start), anchor, slope});
  };

  for (size_t i = 1; i < v.size(); ++i) {
    const double step = static_cast<double>(i - start);
    const Allowance a = RelativeAllowance(v[i], error_bound);
    // Slope range that keeps the line inside this point's allowance.
    const double cand_lo = (a.lo - anchor) / step;
    const double cand_hi = (a.hi - anchor) / step;
    const double new_lo = std::max(slope_lo, cand_lo);
    const double new_hi = std::min(slope_hi, cand_hi);
    if (new_lo <= new_hi && (i - start) < kMaxSegmentLength) {
      slope_lo = new_lo;
      slope_hi = new_hi;
    } else {
      close_segment(i);
      start = i;
      anchor = v[i];
      slope_lo = -std::numeric_limits<double>::infinity();
      slope_hi = std::numeric_limits<double>::infinity();
    }
  }
  close_segment(v.size());

  ByteWriter writer;
  WriteHeader(MakeHeader(AlgorithmId::kSwing, series), writer);
  writer.PutU32(static_cast<uint32_t>(segments.size()));
  for (const Segment& s : segments) {
    writer.PutU16(s.length);
    writer.PutDouble(s.anchor);
    writer.PutDouble(s.slope);
  }
  return writer.Finish();
}

Result<TimeSeries> SwingCompressor::Decompress(
    const std::vector<uint8_t>& blob) const {
  ByteReader reader(blob);
  Result<BlobHeader> header = ReadHeader(reader, AlgorithmId::kSwing);
  if (!header.ok()) return header.status();

  Result<uint32_t> num_segments = reader.GetU32();
  if (!num_segments.ok()) return num_segments.status();

  std::vector<double> values;
  values.reserve(header->num_points);
  for (uint32_t s = 0; s < *num_segments; ++s) {
    Result<uint16_t> length = reader.GetU16();
    if (!length.ok()) return length.status();
    Result<double> anchor = reader.GetDouble();
    if (!anchor.ok()) return anchor.status();
    Result<double> slope = reader.GetDouble();
    if (!slope.ok()) return slope.status();
    for (uint16_t k = 0; k < *length; ++k) {
      values.push_back(*anchor + *slope * static_cast<double>(k));
    }
  }
  if (values.size() != header->num_points) {
    return Status::Corruption(
        "Swing segment lengths do not sum to point count");
  }
  return TimeSeries(header->first_timestamp, header->interval_seconds,
                    std::move(values));
}

}  // namespace lossyts::compress
