#include "compress/swing.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "compress/header.h"
#include "compress/serde.h"

namespace lossyts::compress {

namespace {

constexpr size_t kMaxSegmentLength = 65535;

struct Segment {
  uint16_t length;
  double anchor;  // Exact first value of the segment.
  double slope;   // Value change per index step.
};

// Unlike PMC's single mean (stored as f32 when safe, see pmc.cc), Swing's
// coefficients stay f64: the slope is multiplied by the in-segment index, so
// float rounding drifts linearly along the segment and would constantly
// force costly re-verification fallbacks. This matches ModelarDB and is the
// storage overhead the paper identifies as Swing's CR weakness (§4.2).

// The one reconstruction expression, shared by Compress's verification pass
// and Decompress so both sides round identically. The slope interval
// intersection guarantees the bound only in exact arithmetic; the rounding
// of slope*k can push a point just outside its allowance, and for exact
// zeros (zero-width allowance) even a 1-ulp drift is a violation — so the
// compressor must verify with precisely the decoder's arithmetic.
double ReconstructPoint(double anchor, double slope, size_t k) {
  return anchor + slope * static_cast<double>(k);
}

}  // namespace

Result<std::vector<uint8_t>> SwingCompressor::Compress(
    const TimeSeries& series, double error_bound) const {
  if (Status s = CheckErrorBound(error_bound); !s.ok()) return s;
  if (series.empty()) {
    return Status::InvalidArgument("cannot compress an empty series");
  }
  if (Status s = CheckFiniteValues(series); !s.ok()) return s;
  if (Status s = CheckHeaderRepresentable(series); !s.ok()) return s;

  std::vector<Segment> segments;
  const std::vector<double>& v = series.values();

  // Per-point slope interval history of the current segment: intervals[k-1]
  // is the intersected feasible range after accepting in-segment offset k.
  // Kept so that when verification shortens the segment, the slope for the
  // shorter prefix is the midpoint of *its* interval, not the full one's.
  std::vector<std::pair<double, double>> intervals;

  size_t start = 0;
  while (start < v.size()) {
    const double anchor = v[start];
    double slope_lo = -std::numeric_limits<double>::infinity();
    double slope_hi = std::numeric_limits<double>::infinity();
    intervals.clear();

    size_t i = start + 1;
    for (; i < v.size(); ++i) {
      const double step = static_cast<double>(i - start);
      const Allowance a = RelativeAllowance(v[i], error_bound);
      // Slope range that keeps the line inside this point's allowance.
      const double cand_lo = (a.lo - anchor) / step;
      const double cand_hi = (a.hi - anchor) / step;
      const double new_lo = std::max(slope_lo, cand_lo);
      const double new_hi = std::min(slope_hi, cand_hi);
      if (!(new_lo <= new_hi) || (i - start) >= kMaxSegmentLength) break;
      slope_lo = new_lo;
      slope_hi = new_hi;
      intervals.emplace_back(new_lo, new_hi);
    }

    // Candidate segment [start, i). The interval intersection certifies the
    // bound only for real arithmetic; verify the decoder's floating-point
    // reconstruction and shrink to the longest conforming prefix. Offset 0
    // reconstructs the anchor exactly, so the loop always terminates with
    // len >= 1 and every emitted point provably inside its allowance.
    size_t len = i - start;
    double slope = 0.0;
    while (true) {
      // Mean of the upper and lower bounding slopes (ModelarDB variant).
      slope = len > 1 ? 0.5 * (intervals[len - 2].first +
                               intervals[len - 2].second)
                      : 0.0;
      // A non-finite slope (the interval endpoints can overflow to ±inf for
      // values near DBL_MAX) poisons even offset 0 at decode time, because
      // inf * 0 is NaN — so reject it outright rather than trusting the
      // offset-0-is-exact shortcut. Likewise a reconstruction of ±inf can
      // pass the allowance comparison when the allowance itself overflowed,
      // but would make the output non-recompressible.
      size_t bad = len;
      if (len > 1 && !std::isfinite(slope)) bad = 1;
      for (size_t k = 1; k < bad; ++k) {
        const double rec = ReconstructPoint(anchor, slope, k);
        const Allowance a = RelativeAllowance(v[start + k], error_bound);
        if (!std::isfinite(rec) || !(rec >= a.lo && rec <= a.hi)) {
          bad = k;
          break;
        }
      }
      if (bad == len) break;
      len = bad;
    }
    segments.push_back({static_cast<uint16_t>(len), anchor, slope});
    start += len;
  }

  ByteWriter writer;
  WriteHeader(MakeHeader(AlgorithmId::kSwing, series), writer);
  if (Status s = PutCountU32(writer, segments.size(), "Swing segment");
      !s.ok()) {
    return s;
  }
  for (const Segment& s : segments) {
    writer.PutU16(s.length);
    writer.PutDouble(s.anchor);
    writer.PutDouble(s.slope);
  }
  return writer.Finish();
}

Result<TimeSeries> SwingCompressor::Decompress(
    const std::vector<uint8_t>& blob) const {
  ByteReader reader(blob);
  Result<BlobHeader> header = ReadHeader(reader, AlgorithmId::kSwing);
  if (!header.ok()) return header.status();

  Result<uint32_t> num_segments = reader.GetU32();
  if (!num_segments.ok()) return num_segments.status();

  std::vector<double> values;
  values.reserve(SafeReserve(header->num_points));
  for (uint32_t s = 0; s < *num_segments; ++s) {
    Result<uint16_t> length = reader.GetU16();
    if (!length.ok()) return length.status();
    if (values.size() + *length > header->num_points) {
      return Status::Corruption(
          "Swing segment lengths overrun the point count");
    }
    Result<double> anchor = reader.GetDouble();
    if (!anchor.ok()) return anchor.status();
    Result<double> slope = reader.GetDouble();
    if (!slope.ok()) return slope.status();
    for (uint16_t k = 0; k < *length; ++k) {
      values.push_back(ReconstructPoint(*anchor, *slope, k));
    }
  }
  if (values.size() != header->num_points) {
    return Status::Corruption(
        "Swing segment lengths do not sum to point count");
  }
  return TimeSeries(header->first_timestamp, header->interval_seconds,
                    std::move(values));
}

}  // namespace lossyts::compress
