#include "compress/gorilla.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "compress/header.h"
#include "compress/serde.h"
#include "zip/bitstream.h"

namespace lossyts::compress {

namespace {

uint64_t DoubleToBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

int LeadingZeros(uint64_t x) { return x == 0 ? 64 : __builtin_clzll(x); }
int TrailingZeros(uint64_t x) { return x == 0 ? 64 : __builtin_ctzll(x); }

// Writes `count` bits of `value` starting from the most-significant of the
// selected range (Gorilla packs meaningful XOR bits MSB-first).
void WriteBitsMsbFirst(zip::BitWriter& writer, uint64_t value, int count) {
  for (int i = count - 1; i >= 0; --i) {
    writer.WriteBits(static_cast<uint32_t>((value >> i) & 1u), 1);
  }
}

Result<uint64_t> ReadBitsMsbFirst(zip::BitReader& reader, int count) {
  uint64_t value = 0;
  for (int i = 0; i < count; ++i) {
    Result<uint32_t> bit = reader.ReadBit();
    if (!bit.ok()) return bit.status();
    value = (value << 1) | *bit;
  }
  return value;
}

}  // namespace

Result<std::vector<uint8_t>> GorillaCompressor::Compress(
    const TimeSeries& series, double /*error_bound*/) const {
  if (series.empty()) {
    return Status::InvalidArgument("cannot compress an empty series");
  }
  if (Status s = CheckHeaderRepresentable(series); !s.ok()) return s;

  zip::BitWriter bits;
  uint64_t prev = DoubleToBits(series[0]);
  WriteBitsMsbFirst(bits, prev, 64);

  int prev_leading = -1;
  int prev_trailing = -1;
  for (size_t i = 1; i < series.size(); ++i) {
    const uint64_t cur = DoubleToBits(series[i]);
    const uint64_t x = cur ^ prev;
    prev = cur;
    if (x == 0) {
      bits.WriteBits(0, 1);
      continue;
    }
    bits.WriteBits(1, 1);
    int leading = LeadingZeros(x);
    const int trailing = TrailingZeros(x);
    if (leading > 31) leading = 31;  // The field is 5 bits wide.
    if (prev_leading >= 0 && leading >= prev_leading &&
        trailing >= prev_trailing) {
      // Control '0': reuse the previous window.
      bits.WriteBits(0, 1);
      const int meaningful = 64 - prev_leading - prev_trailing;
      WriteBitsMsbFirst(bits, x >> prev_trailing, meaningful);
    } else {
      // Control '1': transmit a new window.
      bits.WriteBits(1, 1);
      const int meaningful = 64 - leading - trailing;
      bits.WriteBits(static_cast<uint32_t>(leading), 5);
      // Store meaningful-1 in 6 bits (meaningful is in 1..64).
      bits.WriteBits(static_cast<uint32_t>(meaningful - 1), 6);
      WriteBitsMsbFirst(bits, x >> trailing, meaningful);
      prev_leading = leading;
      prev_trailing = trailing;
    }
  }

  ByteWriter writer;
  WriteHeader(MakeHeader(AlgorithmId::kGorilla, series), writer);
  std::vector<uint8_t> payload = bits.Finish();
  if (Status s = PutCountU32(writer, payload.size(), "Gorilla payload");
      !s.ok()) {
    return s;
  }
  writer.PutBytes(payload);
  return writer.Finish();
}

namespace {

// Shared decode core: reconstructs the first min(limit, num_points) values.
// The XOR chain has no random access, so both the full decode and the
// early-stop prefix path walk it identically and differ only in where they
// stop — which is what keeps the two bit-identical.
Result<TimeSeries> DecodeGorilla(const std::vector<uint8_t>& blob,
                                 size_t limit) {
  ByteReader reader(blob);
  Result<BlobHeader> header = ReadHeader(reader, AlgorithmId::kGorilla);
  if (!header.ok()) return header.status();
  Result<uint32_t> payload_size = reader.GetU32();
  if (!payload_size.ok()) return payload_size.status();
  if (*payload_size > reader.remaining()) {
    return Status::Corruption("Gorilla payload truncated");
  }
  zip::BitReader bits(reader.current(), *payload_size);

  if (header->num_points == 0) {
    return Status::Corruption("Gorilla blob with zero points");
  }
  const size_t target = std::min<size_t>(limit, header->num_points);
  std::vector<double> values;
  values.reserve(SafeReserve(static_cast<uint32_t>(target)));

  Result<uint64_t> first = ReadBitsMsbFirst(bits, 64);
  if (!first.ok()) return first.status();
  uint64_t prev = *first;
  values.push_back(BitsToDouble(prev));

  int leading = 0;
  int trailing = 0;
  bool window_set = false;
  while (values.size() < target) {
    Result<uint32_t> nonzero = bits.ReadBit();
    if (!nonzero.ok()) return nonzero.status();
    if (*nonzero == 0) {
      values.push_back(BitsToDouble(prev));
      continue;
    }
    Result<uint32_t> new_window = bits.ReadBit();
    if (!new_window.ok()) return new_window.status();
    if (*new_window == 1) {
      Result<uint32_t> lead = bits.ReadBits(5);
      if (!lead.ok()) return lead.status();
      Result<uint32_t> mlen = bits.ReadBits(6);
      if (!mlen.ok()) return mlen.status();
      leading = static_cast<int>(*lead);
      const int meaningful = static_cast<int>(*mlen) + 1;
      trailing = 64 - leading - meaningful;
      if (trailing < 0) return Status::Corruption("Gorilla window invalid");
      window_set = true;
    } else if (!window_set) {
      return Status::Corruption("Gorilla reuses window before defining one");
    }
    const int meaningful = 64 - leading - trailing;
    Result<uint64_t> xbits = ReadBitsMsbFirst(bits, meaningful);
    if (!xbits.ok()) return xbits.status();
    const uint64_t x = *xbits << trailing;
    prev ^= x;
    values.push_back(BitsToDouble(prev));
  }
  return TimeSeries(header->first_timestamp, header->interval_seconds,
                    std::move(values));
}

}  // namespace

Result<TimeSeries> GorillaCompressor::Decompress(
    const std::vector<uint8_t>& blob) const {
  return DecodeGorilla(blob, std::numeric_limits<size_t>::max());
}

Result<TimeSeries> GorillaCompressor::DecompressPrefix(
    const std::vector<uint8_t>& blob, size_t max_points) const {
  if (max_points == 0) {
    return Status::InvalidArgument("prefix decode requires max_points >= 1");
  }
  return DecodeGorilla(blob, max_points);
}

}  // namespace lossyts::compress
