#ifndef LOSSYTS_COMPRESS_PPA_H_
#define LOSSYTS_COMPRESS_PPA_H_

#include "compress/compressor.h"

namespace lossyts::compress {

/// Piecewise Polynomial Approximation (Eichinger et al., VLDB J. 2015) — the
/// compressor behind the only prior lossy-compression-vs-forecasting result
/// the paper cites (§6.3). Each segment is approximated by the least-squares
/// polynomial of degree 0..max_degree that covers the longest stretch of
/// points within their relative allowances, chosen per segment to maximize
/// points-per-byte.
///
/// Blob layout after the shared header: u32 segment count, then per segment
/// a u16 length, u8 degree and (degree+1) f64 coefficients (evaluated on
/// local indices 0..length-1).
class PpaCompressor : public Compressor {
 public:
  struct Options {
    int max_degree = 2;
    /// Cap on segment length (bounds the O(length) feasibility checks).
    size_t max_segment_length = 2048;
  };

  PpaCompressor() = default;
  explicit PpaCompressor(const Options& options) : options_(options) {}

  std::string_view name() const override { return "PPA"; }

  Result<std::vector<uint8_t>> Compress(const TimeSeries& series,
                                        double error_bound) const override;
  Result<TimeSeries> Decompress(
      const std::vector<uint8_t>& blob) const override;

 private:
  Options options_;
};

}  // namespace lossyts::compress

#endif  // LOSSYTS_COMPRESS_PPA_H_
