#ifndef LOSSYTS_COMPRESS_SERDE_H_
#define LOSSYTS_COMPRESS_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/status.h"

namespace lossyts::compress {

/// Little-endian byte-level writer for compressed payload headers and model
/// coefficient streams.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU16(uint16_t v) {
    for (int i = 0; i < 2; ++i) bytes_.push_back((v >> (8 * i)) & 0xFF);
  }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xFF);
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes_.push_back((v >> (8 * i)) & 0xFF);
  }
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }
  void PutBytes(const std::vector<uint8_t>& data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  size_t size() const { return bytes_.size(); }
  std::vector<uint8_t> Finish() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Writes a size_t count as u32, failing instead of silently truncating when
/// the count does not fit. Segment/model/symbol counts are stored as u32 on
/// the wire; a count past 2^32-1 would otherwise wrap and decode as a shorter
/// stream that still parses, corrupting the reconstruction undetectably.
inline Status PutCountU32(ByteWriter& writer, size_t count,
                          const char* what) {
  if (count > 0xFFFFFFFFull) {
    return Status::Internal(std::string(what) +
                            " count exceeds the u32 wire format: " +
                            std::to_string(count));
  }
  writer.PutU32(static_cast<uint32_t>(count));
  return Status::OK();
}

/// Little-endian byte-level reader; every accessor bounds-checks and returns
/// Corruption past the end so malformed blobs never crash decompression.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> GetU8() {
    if (pos_ + 1 > size_) return Eof();
    return data_[pos_++];
  }
  Result<uint16_t> GetU16() {
    if (pos_ + 2 > size_) return Eof();
    uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<uint16_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  Result<uint32_t> GetU32() {
    if (pos_ + 4 > size_) return Eof();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  Result<uint64_t> GetU64() {
    if (pos_ + 8 > size_) return Eof();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  Result<int32_t> GetI32() {
    Result<uint32_t> v = GetU32();
    if (!v.ok()) return v.status();
    return static_cast<int32_t>(*v);
  }
  Result<int64_t> GetI64() {
    Result<uint64_t> v = GetU64();
    if (!v.ok()) return v.status();
    return static_cast<int64_t>(*v);
  }
  Result<double> GetDouble() {
    Result<uint64_t> bits = GetU64();
    if (!bits.ok()) return bits.status();
    double v;
    uint64_t b = *bits;
    std::memcpy(&v, &b, sizeof(v));
    return v;
  }

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  const uint8_t* current() const { return data_ + pos_; }
  /// Advances past `n` bytes. Corruption (with the cursor clamped to the end,
  /// so remaining() never underflows) when fewer than `n` bytes remain — a
  /// corrupted length field must not teleport the cursor out of the buffer.
  Status Skip(size_t n) {
    if (n > remaining()) {
      pos_ = size_;
      return Eof();
    }
    pos_ += n;
    return Status::OK();
  }

 private:
  static Status Eof() {
    return Status::Corruption("compressed payload truncated");
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace lossyts::compress

#endif  // LOSSYTS_COMPRESS_SERDE_H_
