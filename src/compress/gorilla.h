#ifndef LOSSYTS_COMPRESS_GORILLA_H_
#define LOSSYTS_COMPRESS_GORILLA_H_

#include "compress/compressor.h"

namespace lossyts::compress {

/// Facebook Gorilla lossless value compression (Pelkonen et al., VLDB'15;
/// paper §3.3 uses it as the lossless baseline).
///
/// Each value is XOR-ed with the previous one; a zero XOR is a single '0'
/// bit, otherwise a control bit selects between reusing the previous
/// leading/trailing-zero window ('10' + meaningful bits) and emitting a new
/// window ('11' + 5-bit leading-zero count + 6-bit length + bits). Following
/// the paper, the whole series is compressed as a single block rather than
/// Gorilla's two-hour blocks.
///
/// Gorilla is lossless, so Compress ignores the error bound (pass 0.0 is
/// allowed) and Decompress reproduces the input bit-exactly.
class GorillaCompressor : public Compressor {
 public:
  std::string_view name() const override { return "GORILLA"; }

  Result<std::vector<uint8_t>> Compress(const TimeSeries& series,
                                        double error_bound) const override;
  Result<TimeSeries> Decompress(
      const std::vector<uint8_t>& blob) const override;

  /// Decodes only the first min(max_points, total) values and stops reading
  /// the bit stream there — the XOR chain is strictly sequential, so a point
  /// read in the middle of a chunk costs a prefix, not a full decode. The
  /// prefix is bit-identical to the same slice of a full Decompress.
  /// max_points must be >= 1.
  Result<TimeSeries> DecompressPrefix(const std::vector<uint8_t>& blob,
                                      size_t max_points) const;
};

}  // namespace lossyts::compress

#endif  // LOSSYTS_COMPRESS_GORILLA_H_
