#ifndef LOSSYTS_COMPRESS_HEADER_H_
#define LOSSYTS_COMPRESS_HEADER_H_

#include <algorithm>
#include <cstdint>

#include "compress/compressor.h"
#include "compress/serde.h"
#include "core/status.h"
#include "core/time_series.h"

namespace lossyts::compress {

/// Shared blob header, following paper §3.2: "we compress the timestamps for
/// all the methods by storing the first timestamp as a 32-bit integer, the
/// sampling interval as a 16-bit integer, and the length of the generated
/// segments as a 16-bit integer" plus "a header with the sampling interval,
/// initial timestamp, and the number of data points".
struct BlobHeader {
  AlgorithmId algorithm;
  int32_t first_timestamp = 0;
  uint16_t interval_seconds = 0;
  uint32_t num_points = 0;
};

inline void WriteHeader(const BlobHeader& header, ByteWriter& writer) {
  writer.PutU8(static_cast<uint8_t>(header.algorithm));
  writer.PutI32(header.first_timestamp);
  writer.PutU16(header.interval_seconds);
  writer.PutU32(header.num_points);
}

inline Result<BlobHeader> ReadHeader(ByteReader& reader,
                                     AlgorithmId expected) {
  BlobHeader h;
  Result<uint8_t> alg = reader.GetU8();
  if (!alg.ok()) return alg.status();
  if (*alg != static_cast<uint8_t>(expected)) {
    return Status::Corruption("blob was produced by a different algorithm");
  }
  h.algorithm = expected;
  Result<int32_t> ts = reader.GetI32();
  if (!ts.ok()) return ts.status();
  h.first_timestamp = *ts;
  Result<uint16_t> interval = reader.GetU16();
  if (!interval.ok()) return interval.status();
  h.interval_seconds = *interval;
  Result<uint32_t> n = reader.GetU32();
  if (!n.ok()) return n.status();
  // Sanity bound against corrupted counts: even the densest segment encoding
  // (PMC: 65535 points per 7-byte segment) cannot describe more points than
  // this, so decoders can trust num_points for pre-allocation.
  const uint64_t max_points =
      static_cast<uint64_t>(reader.remaining()) * 16384 + 1;
  if (*n > max_points) {
    return Status::Corruption("point count exceeds what the payload can hold");
  }
  h.num_points = *n;
  return h;
}

/// Clamp for decoder pre-allocation sized from the header's point count. The
/// count passes only a coarse payload-derived sanity bound in ReadHeader, so
/// a corrupted count can still be orders of magnitude too large; reserving it
/// verbatim turns a 20-byte blob edit into a multi-gigabyte bad_alloc. The
/// vector grows normally past the clamp for genuinely long series.
inline size_t SafeReserve(uint32_t num_points) {
  return std::min<size_t>(num_points, size_t{1} << 16);
}

/// Validates that the series metadata fits the wire header exactly: i32
/// first timestamp, u16 sampling interval, u32 point count. MakeHeader casts
/// unconditionally, so every Compress implementation calls this first —
/// otherwise e.g. an interval of 70000 s would silently round-trip as 4464 s
/// and the header round-trip oracle (conform/oracles.h) would fire.
inline Status CheckHeaderRepresentable(const TimeSeries& series) {
  if (series.start_timestamp() < INT32_MIN ||
      series.start_timestamp() > INT32_MAX) {
    return Status::InvalidArgument(
        "first timestamp does not fit the i32 header field: " +
        std::to_string(series.start_timestamp()));
  }
  if (series.interval_seconds() < 0 || series.interval_seconds() > 65535) {
    return Status::InvalidArgument(
        "sampling interval does not fit the u16 header field: " +
        std::to_string(series.interval_seconds()));
  }
  if (series.size() > 0xFFFFFFFFull) {
    return Status::InvalidArgument(
        "point count does not fit the u32 header field: " +
        std::to_string(series.size()));
  }
  return Status::OK();
}

inline BlobHeader MakeHeader(AlgorithmId algorithm, const TimeSeries& series) {
  BlobHeader h;
  h.algorithm = algorithm;
  h.first_timestamp = static_cast<int32_t>(series.start_timestamp());
  h.interval_seconds = static_cast<uint16_t>(series.interval_seconds());
  h.num_points = static_cast<uint32_t>(series.size());
  return h;
}

}  // namespace lossyts::compress

#endif  // LOSSYTS_COMPRESS_HEADER_H_
