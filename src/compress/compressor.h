#ifndef LOSSYTS_COMPRESS_COMPRESSOR_H_
#define LOSSYTS_COMPRESS_COMPRESSOR_H_

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"
#include "core/time_series.h"

namespace lossyts::compress {

/// Pointwise error-bounded lossy compression (PEBLC, paper Definition 4).
///
/// All compressors in this library guarantee the *relative* pointwise bound:
/// every decompressed value v̂_i satisfies |v̂_i − v_i| ≤ ε·|v_i|. A raw value
/// of exactly zero therefore has zero tolerance and must be reconstructed
/// exactly — this is what breaks Swing's long segments on the Solar dataset's
/// night-time zeros, and the library deliberately preserves that behaviour.
///
/// Compressed blobs are self-describing: they begin with the shared timestamp
/// header of paper §3.2 (first timestamp as a 32-bit integer, the sampling
/// interval as a 16-bit integer, the point count) written by the concrete
/// algorithm, so Decompress needs only the bytes. The final gzip pass of the
/// evaluation pipeline is applied separately (see pipeline.h), mirroring how
/// the paper sizes everything as .gz files.
class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Short identifier, e.g. "PMC", "SWING", "SZ".
  virtual std::string_view name() const = 0;

  /// Compresses `series` under relative pointwise bound `error_bound`
  /// (ε > 0). The output is the pre-gzip binary blob.
  virtual Result<std::vector<uint8_t>> Compress(const TimeSeries& series,
                                                double error_bound) const = 0;

  /// Reconstructs the series from a blob produced by Compress.
  virtual Result<TimeSeries> Decompress(
      const std::vector<uint8_t>& blob) const = 0;
};

/// Algorithm tags stored as the first header byte of every blob so that a
/// mismatched Decompress call fails cleanly instead of misparsing.
enum class AlgorithmId : uint8_t {
  kPmc = 1,
  kSwing = 2,
  kSz = 3,
  kGorilla = 4,
  kChimp = 5,
  kPpa = 6,
};

/// Half-open allowance interval for one point under the relative bound:
/// the reconstructed value must lie in [value − ε·|value|, value + ε·|value|].
struct Allowance {
  double lo;
  double hi;
};

inline Allowance RelativeAllowance(double value, double error_bound) {
  const double slack = error_bound * (value < 0 ? -value : value);
  return Allowance{value - slack, value + slack};
}

/// Validates the error bound argument shared by all compressors. The
/// negated form of the first comparison also rejects NaN, whose comparisons
/// are all false.
inline Status CheckErrorBound(double error_bound) {
  if (!(error_bound > 0.0) || error_bound >= 1.0) {
    return Status::InvalidArgument(
        "relative error bound must be in (0, 1), got " +
        std::to_string(error_bound));
  }
  return Status::OK();
}

/// Rejects non-finite input values for the lossy codecs: a NaN has no
/// allowance interval at all and an infinity has a degenerate one, so the
/// pointwise guarantee of Definition 4 is unsatisfiable. The lossless codecs
/// (Gorilla, Chimp) accept any bit pattern and do not call this.
inline Status CheckFiniteValues(const TimeSeries& series) {
  const std::vector<double>& v = series.values();
  for (size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) {
      return Status::InvalidArgument(
          "lossy compression requires finite values; index " +
          std::to_string(i) + " is " + std::to_string(v[i]));
    }
  }
  return Status::OK();
}

}  // namespace lossyts::compress

#endif  // LOSSYTS_COMPRESS_COMPRESSOR_H_
