#include "compress/pmc.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "compress/header.h"
#include "compress/serde.h"

namespace lossyts::compress {

namespace {

constexpr size_t kMaxSegmentLength = 65535;  // Lengths are stored as u16.

// Per-segment coefficient width flags. ModelarDB stores model coefficients
// as 32-bit floats; we do the same whenever the rounded value still lies in
// the segment's feasible mean interval, falling back to f64 otherwise so the
// error-bound guarantee is never compromised.
constexpr uint8_t kF32 = 0;
constexpr uint8_t kF64 = 1;

struct Segment {
  uint16_t length;
  double mean;
  uint8_t width;  // kF32 or kF64.
};

}  // namespace

Result<std::vector<uint8_t>> PmcCompressor::Compress(
    const TimeSeries& series, double error_bound) const {
  if (Status s = CheckErrorBound(error_bound); !s.ok()) return s;
  if (series.empty()) {
    return Status::InvalidArgument("cannot compress an empty series");
  }
  if (Status s = CheckFiniteValues(series); !s.ok()) return s;
  if (Status s = CheckHeaderRepresentable(series); !s.ok()) return s;

  std::vector<Segment> segments;
  const std::vector<double>& v = series.values();

  size_t window_start = 0;
  double window_sum = 0.0;
  // The running mean must stay within [lo, hi], the intersection of the
  // allowance intervals of every point currently in the window.
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  double committed_mean = 0.0;  // Last mean known to satisfy the window.

  auto close_segment = [&](size_t end) {
    Segment segment;
    segment.length = static_cast<uint16_t>(end - window_start);
    const double rounded = static_cast<double>(
        static_cast<float>(committed_mean));
    // The isfinite check matters when a huge value's allowance endpoint
    // overflowed to ±inf: the f32 cast then overflows too, and an infinite
    // `rounded` would compare "inside" the infinite interval.
    if (options_.f32_coefficients && std::isfinite(rounded) && rounded >= lo &&
        rounded <= hi) {
      segment.mean = rounded;
      segment.width = kF32;
    } else {
      segment.mean = committed_mean;
      segment.width = kF64;
    }
    segments.push_back(segment);
  };

  for (size_t i = 0; i < v.size(); ++i) {
    const Allowance a = RelativeAllowance(v[i], error_bound);
    const double new_lo = std::max(lo, a.lo);
    const double new_hi = std::min(hi, a.hi);
    const double new_sum = window_sum + v[i];
    const double new_mean =
        new_sum / static_cast<double>(i - window_start + 1);
    // isfinite guards the same-sign overflow of window_sum near DBL_MAX: an
    // infinite mean passes the interval test once an allowance endpoint has
    // itself overflowed to ±inf, yet decodes to a non-recompressible inf.
    const bool fits = new_lo <= new_hi && std::isfinite(new_mean) &&
                      new_mean >= new_lo && new_mean <= new_hi &&
                      (i - window_start) < kMaxSegmentLength;
    if (fits) {
      lo = new_lo;
      hi = new_hi;
      window_sum = new_sum;
      committed_mean = new_mean;
    } else {
      close_segment(i);
      window_start = i;
      window_sum = v[i];
      lo = a.lo;
      hi = a.hi;
      committed_mean = v[i];
    }
  }
  close_segment(v.size());

  ByteWriter writer;
  WriteHeader(MakeHeader(AlgorithmId::kPmc, series), writer);
  if (Status s = PutCountU32(writer, segments.size(), "PMC segment");
      !s.ok()) {
    return s;
  }
  for (const Segment& s : segments) {
    writer.PutU16(s.length);
    writer.PutU8(s.width);
    if (s.width == kF32) {
      uint32_t bits;
      const float f = static_cast<float>(s.mean);
      std::memcpy(&bits, &f, sizeof(bits));
      writer.PutU32(bits);
    } else {
      writer.PutDouble(s.mean);
    }
  }
  return writer.Finish();
}

Result<TimeSeries> PmcCompressor::Decompress(
    const std::vector<uint8_t>& blob) const {
  ByteReader reader(blob);
  Result<BlobHeader> header = ReadHeader(reader, AlgorithmId::kPmc);
  if (!header.ok()) return header.status();

  Result<uint32_t> num_segments = reader.GetU32();
  if (!num_segments.ok()) return num_segments.status();

  std::vector<double> values;
  values.reserve(SafeReserve(header->num_points));
  for (uint32_t s = 0; s < *num_segments; ++s) {
    Result<uint16_t> length = reader.GetU16();
    if (!length.ok()) return length.status();
    if (values.size() + *length > header->num_points) {
      return Status::Corruption(
          "PMC segment lengths overrun the point count");
    }
    Result<uint8_t> width = reader.GetU8();
    if (!width.ok()) return width.status();
    double mean = 0.0;
    if (*width == kF32) {
      Result<uint32_t> bits = reader.GetU32();
      if (!bits.ok()) return bits.status();
      float f;
      uint32_t b = *bits;
      std::memcpy(&f, &b, sizeof(f));
      mean = static_cast<double>(f);
    } else if (*width == kF64) {
      Result<double> value = reader.GetDouble();
      if (!value.ok()) return value.status();
      mean = *value;
    } else {
      return Status::Corruption("invalid PMC coefficient width flag");
    }
    for (uint16_t k = 0; k < *length; ++k) values.push_back(mean);
  }
  if (values.size() != header->num_points) {
    return Status::Corruption("PMC segment lengths do not sum to point count");
  }
  return TimeSeries(header->first_timestamp, header->interval_seconds,
                    std::move(values));
}

}  // namespace lossyts::compress
