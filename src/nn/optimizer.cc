#include "nn/optimizer.h"

#include <cmath>

namespace lossyts::nn {

Adam::Adam(std::vector<Var> parameters, const Options& options)
    : parameters_(std::move(parameters)), options_(options) {
  for (const Var& p : parameters_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
  ZeroGrad();
}

void Adam::ZeroGrad() {
  for (const Var& p : parameters_) {
    p->grad = Tensor(p->value.rows(), p->value.cols(), 0.0);
  }
}

Status Adam::Step() {
  // Divergence guard: a single non-finite gradient would propagate through
  // the moment buffers into every parameter, so reject the step before any
  // state is mutated — m_/v_/step_count_ must not advance on a rejected
  // step, or the survivors' bias correction would drift out of sync with
  // the moments (see the Step() contract in the header). The squared norm
  // is also what clipping needs.
  double norm_sq = 0.0;
  for (const Var& p : parameters_) {
    if (p->grad.size() != p->value.size()) continue;
    for (double g : p->grad.storage()) norm_sq += g * g;
  }
  if (!std::isfinite(norm_sq)) {
    ZeroGrad();
    return Status::Internal("non-finite gradient in Adam::Step");
  }

  ++step_count_;
  const double bc1 =
      1.0 - std::pow(options_.beta1, static_cast<double>(step_count_));
  const double bc2 =
      1.0 - std::pow(options_.beta2, static_cast<double>(step_count_));

  // Global gradient-norm clipping.
  double scale = 1.0;
  if (options_.clip_norm > 0.0) {
    const double norm = std::sqrt(norm_sq);
    if (norm > options_.clip_norm) scale = options_.clip_norm / norm;
  }

  for (size_t i = 0; i < parameters_.size(); ++i) {
    Var& p = parameters_[i];
    if (p->grad.size() != p->value.size()) continue;  // Unused this step.
    for (size_t j = 0; j < p->value.size(); ++j) {
      const double g = p->grad.storage()[j] * scale;
      m_[i].storage()[j] =
          options_.beta1 * m_[i].storage()[j] + (1.0 - options_.beta1) * g;
      v_[i].storage()[j] = options_.beta2 * v_[i].storage()[j] +
                           (1.0 - options_.beta2) * g * g;
      const double m_hat = m_[i].storage()[j] / bc1;
      const double v_hat = v_[i].storage()[j] / bc2;
      p->value.storage()[j] -=
          options_.learning_rate *
          (m_hat / (std::sqrt(v_hat) + options_.epsilon) +
           options_.weight_decay * p->value.storage()[j]);
    }
  }
  ZeroGrad();
  return Status::OK();
}

}  // namespace lossyts::nn
