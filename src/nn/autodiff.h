#ifndef LOSSYTS_NN_AUTODIFF_H_
#define LOSSYTS_NN_AUTODIFF_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "nn/tensor.h"

namespace lossyts::nn {

/// One node of the dynamically-built computation graph (reverse-mode tape).
/// Nodes are created by the op functions below and connected by shared_ptr,
/// so a forward pass owns its graph and everything is freed when the loss
/// Var goes out of scope. Parameters are long-lived leaf nodes whose `grad`
/// the optimizer consumes.
struct Node {
  Tensor value;
  Tensor grad;
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> inputs;
  /// Accumulates this node's grad into its inputs' grads.
  std::function<void(Node&)> backward;
};

using Var = std::shared_ptr<Node>;

/// Creates a leaf holding `value`. Parameters pass requires_grad = true.
Var MakeVar(Tensor value, bool requires_grad = false);

/// Runs reverse-mode accumulation from `loss` (must be 1×1). Zeroes grads of
/// every node in the graph first, then seeds d(loss)/d(loss) = 1.
void Backward(const Var& loss);

// ---- Core ops. Shapes are asserted; all return new graph nodes. ----

/// Matrix product a(m×k) · b(k×n).
Var MatMul(const Var& a, const Var& b);
/// Element-wise sum (same shape).
Var Add(const Var& a, const Var& b);
/// Adds a 1×n bias row to every row of a (m×n).
Var AddRowBroadcast(const Var& a, const Var& bias);
/// Element-wise difference (same shape).
Var Sub(const Var& a, const Var& b);
/// Element-wise (Hadamard) product.
Var Mul(const Var& a, const Var& b);
/// Multiplies by a constant.
Var Scale(const Var& a, double s);

Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Relu(const Var& a);
Var Gelu(const Var& a);

/// Row-wise softmax with an optional additive mask (same shape; use large
/// negative entries to block positions, e.g. causal attention masks). A row
/// whose every position is masked to -inf has an empty support; it is
/// defined as the uniform distribution with zero gradient rather than NaN.
Var Softmax(const Var& a, const Tensor* additive_mask = nullptr);

/// Row-wise layer normalization with learned gain/bias (1×n each).
Var LayerNorm(const Var& a, const Var& gain, const Var& bias,
              double epsilon = 1e-5);

/// Inverted dropout. Active only when `train` is true; scaling keeps the
/// expectation unchanged.
Var Dropout(const Var& a, double rate, bool train, Rng& rng);

Var Transpose(const Var& a);
/// Rows [begin, end) of a.
Var SliceRows(const Var& a, size_t begin, size_t end);
/// Columns [begin, end) of a.
Var SliceCols(const Var& a, size_t begin, size_t end);
/// Stacks a (m1×n) on top of b (m2×n).
Var ConcatRows(const Var& a, const Var& b);
/// Concatenates a (m×n1) and b (m×n2) side by side.
Var ConcatCols(const Var& a, const Var& b);

/// Mean of all entries (1×1).
Var Mean(const Var& a);
/// Mean squared error between same-shaped tensors (1×1).
Var MseLoss(const Var& prediction, const Var& target);

/// Average-pools rows with the given stride (Informer's distilling step).
Var StridedRowPool(const Var& a, size_t stride);

}  // namespace lossyts::nn

#endif  // LOSSYTS_NN_AUTODIFF_H_
