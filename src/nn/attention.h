#ifndef LOSSYTS_NN_ATTENTION_H_
#define LOSSYTS_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "nn/module.h"

namespace lossyts::nn {

/// Multi-head scaled dot-product attention over a single sequence
/// (seq_len × d_model tensors; the library trains sequence models one window
/// at a time). `causal` adds a lower-triangular mask to the self-attention
/// scores.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(size_t d_model, size_t num_heads, Rng& rng);

  /// Full attention: softmax(Q·K^T/√d)·V per head, heads concatenated and
  /// projected. query: (Lq×d), key/value: (Lk×d).
  Var Forward(const Var& query, const Var& key, const Var& value,
              bool causal = false) const;

  /// Informer's ProbSparse self-attention: only the top-u queries by the
  /// max-minus-mean sparsity score attend normally; the rest output the mean
  /// of the values (Zhou et al., AAAI'21). u = ceil(factor·ln(Lq)).
  Var ForwardProbSparse(const Var& x, double factor = 5.0) const;

  std::vector<Var> Parameters() const override;

  size_t d_model() const { return d_model_; }
  size_t num_heads() const { return num_heads_; }

 private:
  Var HeadAttention(const Var& q, const Var& k, const Var& v,
                    bool causal) const;

  size_t d_model_;
  size_t num_heads_;
  size_t d_head_;
  std::unique_ptr<Linear> wq_;
  std::unique_ptr<Linear> wk_;
  std::unique_ptr<Linear> wv_;
  std::unique_ptr<Linear> wo_;
};

/// Pre-norm Transformer encoder layer: MHA + feed-forward, residuals and
/// layer norms, with dropout.
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(size_t d_model, size_t num_heads, size_t d_ff,
                          double dropout, Rng& rng);

  /// When `prob_sparse` is true the self-attention uses Informer's
  /// ProbSparse mechanism.
  Var Forward(const Var& x, bool train, Rng& rng,
              bool prob_sparse = false) const;

  std::vector<Var> Parameters() const override;

 private:
  double dropout_;
  std::unique_ptr<MultiHeadAttention> attention_;
  std::unique_ptr<Linear> ff1_;
  std::unique_ptr<Linear> ff2_;
  std::unique_ptr<LayerNormModule> norm1_;
  std::unique_ptr<LayerNormModule> norm2_;
};

/// Transformer decoder layer: causal self-attention, cross-attention to the
/// encoder memory, feed-forward.
class TransformerDecoderLayer : public Module {
 public:
  TransformerDecoderLayer(size_t d_model, size_t num_heads, size_t d_ff,
                          double dropout, Rng& rng);

  Var Forward(const Var& x, const Var& memory, bool train, Rng& rng) const;

  std::vector<Var> Parameters() const override;

 private:
  double dropout_;
  std::unique_ptr<MultiHeadAttention> self_attention_;
  std::unique_ptr<MultiHeadAttention> cross_attention_;
  std::unique_ptr<Linear> ff1_;
  std::unique_ptr<Linear> ff2_;
  std::unique_ptr<LayerNormModule> norm1_;
  std::unique_ptr<LayerNormModule> norm2_;
  std::unique_ptr<LayerNormModule> norm3_;
};

/// Sinusoidal positional encoding added to a (seq × d_model) tensor.
Tensor PositionalEncoding(size_t seq_len, size_t d_model);

}  // namespace lossyts::nn

#endif  // LOSSYTS_NN_ATTENTION_H_
