#include "nn/attention.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace lossyts::nn {

namespace {
constexpr double kMaskValue = -1e9;
}  // namespace

MultiHeadAttention::MultiHeadAttention(size_t d_model, size_t num_heads,
                                       Rng& rng)
    : d_model_(d_model), num_heads_(num_heads), d_head_(d_model / num_heads) {
  assert(d_model % num_heads == 0);
  wq_ = std::make_unique<Linear>(d_model, d_model, rng);
  wk_ = std::make_unique<Linear>(d_model, d_model, rng);
  wv_ = std::make_unique<Linear>(d_model, d_model, rng);
  wo_ = std::make_unique<Linear>(d_model, d_model, rng);
}

Var MultiHeadAttention::HeadAttention(const Var& q, const Var& k, const Var& v,
                                      bool causal) const {
  const double scale = 1.0 / std::sqrt(static_cast<double>(d_head_));
  Var scores = Scale(MatMul(q, Transpose(k)), scale);
  Var weights;
  if (causal) {
    assert(q->value.rows() == k->value.rows());
    Tensor mask(q->value.rows(), k->value.rows(), 0.0);
    for (size_t i = 0; i < mask.rows(); ++i) {
      for (size_t j = i + 1; j < mask.cols(); ++j) mask(i, j) = kMaskValue;
    }
    weights = Softmax(scores, &mask);
  } else {
    weights = Softmax(scores);
  }
  return MatMul(weights, v);
}

Var MultiHeadAttention::Forward(const Var& query, const Var& key,
                                const Var& value, bool causal) const {
  const Var q = wq_->Forward(query);
  const Var k = wk_->Forward(key);
  const Var v = wv_->Forward(value);
  Var concat;
  for (size_t h = 0; h < num_heads_; ++h) {
    const size_t begin = h * d_head_;
    const size_t end = begin + d_head_;
    const Var head = HeadAttention(SliceCols(q, begin, end),
                                   SliceCols(k, begin, end),
                                   SliceCols(v, begin, end), causal);
    concat = h == 0 ? head : ConcatCols(concat, head);
  }
  return wo_->Forward(concat);
}

Var MultiHeadAttention::ForwardProbSparse(const Var& x, double factor) const {
  const Var q = wq_->Forward(x);
  const Var k = wk_->Forward(x);
  const Var v = wv_->Forward(x);
  const size_t seq = x->value.rows();
  const size_t u = std::min<size_t>(
      seq, static_cast<size_t>(
               std::ceil(factor * std::log(static_cast<double>(seq) + 1.0))));
  const double scale = 1.0 / std::sqrt(static_cast<double>(d_head_));

  Var concat;
  for (size_t h = 0; h < num_heads_; ++h) {
    const size_t begin = h * d_head_;
    const size_t end = begin + d_head_;
    const Var qh = SliceCols(q, begin, end);
    const Var kh = SliceCols(k, begin, end);
    const Var vh = SliceCols(v, begin, end);

    Var scores = Scale(MatMul(qh, Transpose(kh)), scale);

    // Sparsity measure M(q_i) = max_j s_ij − mean_j s_ij on the numeric
    // values; the discrete top-u selection is treated as a constant, exactly
    // as in the reference implementation.
    std::vector<std::pair<double, size_t>> sparsity(seq);
    for (size_t i = 0; i < seq; ++i) {
      double mx = scores->value(i, 0);
      double sum = 0.0;
      for (size_t j = 0; j < seq; ++j) {
        mx = std::max(mx, scores->value(i, j));
        sum += scores->value(i, j);
      }
      sparsity[i] = {mx - sum / static_cast<double>(seq), i};
    }
    std::partial_sort(sparsity.begin(), sparsity.begin() + u, sparsity.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    Tensor select(seq, seq, 0.0);       // Diagonal 1 for active queries.
    Tensor complement(seq, seq, 0.0);   // Diagonal 1 for lazy queries.
    for (size_t i = 0; i < seq; ++i) complement(i, i) = 1.0;
    for (size_t r = 0; r < u; ++r) {
      const size_t i = sparsity[r].second;
      select(i, i) = 1.0;
      complement(i, i) = 0.0;
    }

    const Var attended = MatMul(Softmax(scores), vh);
    // Lazy queries output the mean of V: (1/L)·ones·V.
    Tensor ones(seq, seq, 1.0 / static_cast<double>(seq));
    const Var mean_v = MatMul(MakeVar(std::move(ones)), vh);
    const Var head = Add(MatMul(MakeVar(std::move(select)), attended),
                         MatMul(MakeVar(std::move(complement)), mean_v));
    concat = h == 0 ? head : ConcatCols(concat, head);
  }
  return wo_->Forward(concat);
}

std::vector<Var> MultiHeadAttention::Parameters() const {
  std::vector<Var> params;
  for (const auto* linear : {wq_.get(), wk_.get(), wv_.get(), wo_.get()}) {
    for (const Var& p : linear->Parameters()) params.push_back(p);
  }
  return params;
}

TransformerEncoderLayer::TransformerEncoderLayer(size_t d_model,
                                                 size_t num_heads, size_t d_ff,
                                                 double dropout, Rng& rng)
    : dropout_(dropout) {
  attention_ = std::make_unique<MultiHeadAttention>(d_model, num_heads, rng);
  ff1_ = std::make_unique<Linear>(d_model, d_ff, rng);
  ff2_ = std::make_unique<Linear>(d_ff, d_model, rng);
  norm1_ = std::make_unique<LayerNormModule>(d_model);
  norm2_ = std::make_unique<LayerNormModule>(d_model);
}

Var TransformerEncoderLayer::Forward(const Var& x, bool train, Rng& rng,
                                     bool prob_sparse) const {
  const Var normed = norm1_->Forward(x);
  const Var attended = prob_sparse
                           ? attention_->ForwardProbSparse(normed)
                           : attention_->Forward(normed, normed, normed);
  const Var x1 = Add(x, Dropout(attended, dropout_, train, rng));
  const Var normed2 = norm2_->Forward(x1);
  const Var ff = ff2_->Forward(Gelu(ff1_->Forward(normed2)));
  return Add(x1, Dropout(ff, dropout_, train, rng));
}

std::vector<Var> TransformerEncoderLayer::Parameters() const {
  std::vector<Var> params = attention_->Parameters();
  for (const Module* m :
       {static_cast<const Module*>(ff1_.get()),
        static_cast<const Module*>(ff2_.get()),
        static_cast<const Module*>(norm1_.get()),
        static_cast<const Module*>(norm2_.get())}) {
    for (const Var& p : m->Parameters()) params.push_back(p);
  }
  return params;
}

TransformerDecoderLayer::TransformerDecoderLayer(size_t d_model,
                                                 size_t num_heads, size_t d_ff,
                                                 double dropout, Rng& rng)
    : dropout_(dropout) {
  self_attention_ =
      std::make_unique<MultiHeadAttention>(d_model, num_heads, rng);
  cross_attention_ =
      std::make_unique<MultiHeadAttention>(d_model, num_heads, rng);
  ff1_ = std::make_unique<Linear>(d_model, d_ff, rng);
  ff2_ = std::make_unique<Linear>(d_ff, d_model, rng);
  norm1_ = std::make_unique<LayerNormModule>(d_model);
  norm2_ = std::make_unique<LayerNormModule>(d_model);
  norm3_ = std::make_unique<LayerNormModule>(d_model);
}

Var TransformerDecoderLayer::Forward(const Var& x, const Var& memory,
                                     bool train, Rng& rng) const {
  const Var n1 = norm1_->Forward(x);
  const Var self =
      self_attention_->Forward(n1, n1, n1, /*causal=*/true);
  const Var x1 = Add(x, Dropout(self, dropout_, train, rng));

  const Var n2 = norm2_->Forward(x1);
  const Var cross = cross_attention_->Forward(n2, memory, memory);
  const Var x2 = Add(x1, Dropout(cross, dropout_, train, rng));

  const Var n3 = norm3_->Forward(x2);
  const Var ff = ff2_->Forward(Gelu(ff1_->Forward(n3)));
  return Add(x2, Dropout(ff, dropout_, train, rng));
}

std::vector<Var> TransformerDecoderLayer::Parameters() const {
  std::vector<Var> params = self_attention_->Parameters();
  for (const Var& p : cross_attention_->Parameters()) params.push_back(p);
  for (const Module* m :
       {static_cast<const Module*>(ff1_.get()),
        static_cast<const Module*>(ff2_.get()),
        static_cast<const Module*>(norm1_.get()),
        static_cast<const Module*>(norm2_.get()),
        static_cast<const Module*>(norm3_.get())}) {
    for (const Var& p : m->Parameters()) params.push_back(p);
  }
  return params;
}

Tensor PositionalEncoding(size_t seq_len, size_t d_model) {
  Tensor pe(seq_len, d_model);
  for (size_t pos = 0; pos < seq_len; ++pos) {
    for (size_t i = 0; i < d_model; ++i) {
      const double angle =
          static_cast<double>(pos) /
          std::pow(10000.0, 2.0 * static_cast<double>(i / 2) /
                                static_cast<double>(d_model));
      pe(pos, i) = i % 2 == 0 ? std::sin(angle) : std::cos(angle);
    }
  }
  return pe;
}

}  // namespace lossyts::nn
