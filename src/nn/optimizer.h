#ifndef LOSSYTS_NN_OPTIMIZER_H_
#define LOSSYTS_NN_OPTIMIZER_H_

#include <vector>

#include "core/status.h"
#include "nn/autodiff.h"

namespace lossyts::nn {

/// Adam optimizer (Kingma & Ba 2015) with decoupled weight decay. The paper
/// trains every deep model with learning rate 1e-3 and weight decay 1e-4
/// (§3.4), which are the defaults here.
class Adam {
 public:
  struct Options {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
    double weight_decay = 1e-4;
    /// Gradient-norm clip; <= 0 disables clipping.
    double clip_norm = 5.0;
  };

  explicit Adam(std::vector<Var> parameters) : Adam(std::move(parameters), Options()) {}
  Adam(std::vector<Var> parameters, const Options& options);

  /// Applies one update using the gradients accumulated by Backward().
  /// Internal when the gradients are non-finite — a diverged step must
  /// surface as a failed fit, not as NaN weights that silently poison every
  /// later metric. A rejected step is a full no-op on optimizer state:
  /// parameters, the moment buffers m/v, and the bias-correction step count
  /// are all untouched (the guard runs before any of them is mutated), and
  /// only the gradients are cleared. Training may therefore continue with
  /// the next batch exactly as if the diverged batch had never been seen;
  /// tests/nn/optimizer_test.cc pins this recovery contract bit-for-bit.
  Status Step();

  /// Clears parameter gradients (Backward() re-zeroes reachable nodes, but
  /// parameters unused in a particular graph keep stale grads otherwise).
  void ZeroGrad();

 private:
  std::vector<Var> parameters_;
  Options options_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  int64_t step_count_ = 0;
};

}  // namespace lossyts::nn

#endif  // LOSSYTS_NN_OPTIMIZER_H_
