#ifndef LOSSYTS_NN_MODULE_H_
#define LOSSYTS_NN_MODULE_H_

#include <vector>

#include "core/rng.h"
#include "nn/autodiff.h"

namespace lossyts::nn {

/// Base for parameterized layers: exposes the long-lived parameter leaves so
/// optimizers and parameter-count reports can walk the whole model.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameter leaves of this module (and its children).
  virtual std::vector<Var> Parameters() const = 0;

  /// Total scalar parameter count.
  size_t NumParameters() const {
    size_t n = 0;
    for (const Var& p : Parameters()) n += p->value.size();
    return n;
  }
};

/// Creates a trainable leaf initialized with Glorot/Xavier uniform values.
Var GlorotParameter(size_t rows, size_t cols, Rng& rng);

/// Creates a trainable leaf filled with a constant (biases, norm gains).
Var ConstantParameter(size_t rows, size_t cols, double value);

/// Fully connected layer y = x·W + b for row-major batches (m×in -> m×out).
class Linear : public Module {
 public:
  Linear(size_t in_features, size_t out_features, Rng& rng);

  Var Forward(const Var& x) const;
  std::vector<Var> Parameters() const override { return {weight_, bias_}; }

 private:
  Var weight_;
  Var bias_;
};

/// Learnable layer normalization over feature columns.
class LayerNormModule : public Module {
 public:
  explicit LayerNormModule(size_t features);

  Var Forward(const Var& x) const;
  std::vector<Var> Parameters() const override { return {gain_, bias_}; }

 private:
  Var gain_;
  Var bias_;
};

/// Gated recurrent unit cell (Cho et al. 2014). Processes one time step:
/// given input x_t (1×input) and state h_{t-1} (1×hidden), returns h_t.
class GruCell : public Module {
 public:
  GruCell(size_t input_size, size_t hidden_size, Rng& rng);

  Var Forward(const Var& x, const Var& h_prev) const;
  size_t hidden_size() const { return hidden_size_; }
  std::vector<Var> Parameters() const override;

 private:
  size_t hidden_size_;
  // Update gate z, reset gate r, candidate n: each has input and hidden
  // weights plus a bias.
  Var wz_, uz_, bz_;
  Var wr_, ur_, br_;
  Var wn_, un_, bn_;
};

}  // namespace lossyts::nn

#endif  // LOSSYTS_NN_MODULE_H_
