#ifndef LOSSYTS_NN_TENSOR_H_
#define LOSSYTS_NN_TENSOR_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace lossyts::nn {

/// Dense row-major 2-D matrix of doubles — the value type of the autodiff
/// engine. Sequence models treat rows as time steps and columns as feature
/// channels; a plain vector is a 1×n or n×1 tensor.
class Tensor {
 public:
  Tensor() = default;
  Tensor(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Tensor FromVector(const std::vector<double>& v, bool column = true) {
    Tensor t(column ? v.size() : 1, column ? 1 : v.size());
    t.data_ = v;
    return t;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& storage() { return data_; }
  const std::vector<double>& storage() const { return data_; }

  void Fill(double value) {
    for (double& v : data_) v = value;
  }

  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace lossyts::nn

#endif  // LOSSYTS_NN_TENSOR_H_
