#include "nn/module.h"

#include <cmath>

namespace lossyts::nn {

Var GlorotParameter(size_t rows, size_t cols, Rng& rng) {
  Tensor t(rows, cols);
  const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& v : t.storage()) v = rng.Uniform(-limit, limit);
  return MakeVar(std::move(t), /*requires_grad=*/true);
}

Var ConstantParameter(size_t rows, size_t cols, double value) {
  return MakeVar(Tensor(rows, cols, value), /*requires_grad=*/true);
}

Linear::Linear(size_t in_features, size_t out_features, Rng& rng)
    : weight_(GlorotParameter(in_features, out_features, rng)),
      bias_(ConstantParameter(1, out_features, 0.0)) {}

Var Linear::Forward(const Var& x) const {
  return AddRowBroadcast(MatMul(x, weight_), bias_);
}

LayerNormModule::LayerNormModule(size_t features)
    : gain_(ConstantParameter(1, features, 1.0)),
      bias_(ConstantParameter(1, features, 0.0)) {}

Var LayerNormModule::Forward(const Var& x) const {
  return LayerNorm(x, gain_, bias_);
}

GruCell::GruCell(size_t input_size, size_t hidden_size, Rng& rng)
    : hidden_size_(hidden_size),
      wz_(GlorotParameter(input_size, hidden_size, rng)),
      uz_(GlorotParameter(hidden_size, hidden_size, rng)),
      bz_(ConstantParameter(1, hidden_size, 0.0)),
      wr_(GlorotParameter(input_size, hidden_size, rng)),
      ur_(GlorotParameter(hidden_size, hidden_size, rng)),
      br_(ConstantParameter(1, hidden_size, 0.0)),
      wn_(GlorotParameter(input_size, hidden_size, rng)),
      un_(GlorotParameter(hidden_size, hidden_size, rng)),
      bn_(ConstantParameter(1, hidden_size, 0.0)) {}

Var GruCell::Forward(const Var& x, const Var& h_prev) const {
  const Var z = Sigmoid(
      AddRowBroadcast(Add(MatMul(x, wz_), MatMul(h_prev, uz_)), bz_));
  const Var r = Sigmoid(
      AddRowBroadcast(Add(MatMul(x, wr_), MatMul(h_prev, ur_)), br_));
  const Var n = Tanh(AddRowBroadcast(
      Add(MatMul(x, wn_), MatMul(Mul(r, h_prev), un_)), bn_));
  // h = (1-z) * n + z * h_prev.
  const Var one_minus_z = Scale(Sub(z, MakeVar(Tensor(
                                           z->value.rows(), z->value.cols(),
                                           1.0))),
                                -1.0);
  return Add(Mul(one_minus_z, n), Mul(z, h_prev));
}

std::vector<Var> GruCell::Parameters() const {
  return {wz_, uz_, bz_, wr_, ur_, br_, wn_, un_, bn_};
}

}  // namespace lossyts::nn
