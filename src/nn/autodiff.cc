#include "nn/autodiff.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <unordered_set>

#include "core/failpoint.h"

namespace lossyts::nn {

namespace {

Var MakeOpNode(Tensor value, std::vector<Var> inputs,
               std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->inputs = std::move(inputs);
  for (const Var& in : node->inputs) {
    node->requires_grad = node->requires_grad || in->requires_grad;
  }
  if (node->requires_grad) node->backward = std::move(backward);
  return node;
}

void TopoSort(const Var& root, std::vector<Node*>& order) {
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.push_back({root.get(), 0});
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < node->inputs.size()) {
      Node* next = node->inputs[child].get();
      ++child;
      if (visited.insert(next).second) stack.push_back({next, 0});
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

Var MakeVar(Tensor value, bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  return node;
}

void Backward(const Var& loss) {
  assert(loss->value.rows() == 1 && loss->value.cols() == 1);
  std::vector<Node*> order;
  TopoSort(loss, order);
  for (Node* n : order) {
    n->grad = Tensor(n->value.rows(), n->value.cols(), 0.0);
  }
  loss->grad(0, 0) = 1.0;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward) (*it)->backward(**it);
  }
}

Var MatMul(const Var& a, const Var& b) {
  assert(a->value.cols() == b->value.rows());
  const size_t m = a->value.rows();
  const size_t k = a->value.cols();
  const size_t n = b->value.cols();
  Tensor out(m, n);
  for (size_t i = 0; i < m; ++i) {
    for (size_t p = 0; p < k; ++p) {
      const double av = a->value(i, p);
      if (av == 0.0) continue;
      for (size_t j = 0; j < n; ++j) out(i, j) += av * b->value(p, j);
    }
  }
  return MakeOpNode(std::move(out), {a, b}, [m, k, n](Node& node) {
    const Var& a_in = node.inputs[0];
    const Var& b_in = node.inputs[1];
    // dA = dOut · B^T,  dB = A^T · dOut.
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < n; ++j) {
        const double g = node.grad(i, j);
        if (g == 0.0) continue;
        for (size_t p = 0; p < k; ++p) {
          a_in->grad(i, p) += g * b_in->value(p, j);
          b_in->grad(p, j) += a_in->value(i, p) * g;
        }
      }
    }
    // Seeded-fault drill for the finite-difference gradient oracle: when the
    // site is armed the accumulated dA is corrupted, which numcheck must
    // report. One relaxed atomic load when unarmed (see core/failpoint.h).
    if (!FailPoints::Hit("autodiff_backward_perturb").ok()) {
      a_in->grad(0, 0) += 0.5;
    }
  });
}

Var Add(const Var& a, const Var& b) {
  assert(a->value.SameShape(b->value));
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) {
    out.storage()[i] += b->value.storage()[i];
  }
  return MakeOpNode(std::move(out), {a, b}, [](Node& node) {
    for (size_t i = 0; i < node.grad.size(); ++i) {
      node.inputs[0]->grad.storage()[i] += node.grad.storage()[i];
      node.inputs[1]->grad.storage()[i] += node.grad.storage()[i];
    }
  });
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  assert(bias->value.rows() == 1 && bias->value.cols() == a->value.cols());
  Tensor out = a->value;
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) out(r, c) += bias->value(0, c);
  }
  return MakeOpNode(std::move(out), {a, bias}, [](Node& node) {
    for (size_t r = 0; r < node.grad.rows(); ++r) {
      for (size_t c = 0; c < node.grad.cols(); ++c) {
        node.inputs[0]->grad(r, c) += node.grad(r, c);
        node.inputs[1]->grad(0, c) += node.grad(r, c);
      }
    }
  });
}

Var Sub(const Var& a, const Var& b) {
  assert(a->value.SameShape(b->value));
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) {
    out.storage()[i] -= b->value.storage()[i];
  }
  return MakeOpNode(std::move(out), {a, b}, [](Node& node) {
    for (size_t i = 0; i < node.grad.size(); ++i) {
      node.inputs[0]->grad.storage()[i] += node.grad.storage()[i];
      node.inputs[1]->grad.storage()[i] -= node.grad.storage()[i];
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  assert(a->value.SameShape(b->value));
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) {
    out.storage()[i] *= b->value.storage()[i];
  }
  return MakeOpNode(std::move(out), {a, b}, [](Node& node) {
    for (size_t i = 0; i < node.grad.size(); ++i) {
      node.inputs[0]->grad.storage()[i] +=
          node.grad.storage()[i] * node.inputs[1]->value.storage()[i];
      node.inputs[1]->grad.storage()[i] +=
          node.grad.storage()[i] * node.inputs[0]->value.storage()[i];
    }
  });
}

Var Scale(const Var& a, double s) {
  Tensor out = a->value;
  for (double& v : out.storage()) v *= s;
  return MakeOpNode(std::move(out), {a}, [s](Node& node) {
    for (size_t i = 0; i < node.grad.size(); ++i) {
      node.inputs[0]->grad.storage()[i] += s * node.grad.storage()[i];
    }
  });
}

Var Sigmoid(const Var& a) {
  Tensor out = a->value;
  for (double& v : out.storage()) v = 1.0 / (1.0 + std::exp(-v));
  return MakeOpNode(std::move(out), {a}, [](Node& node) {
    for (size_t i = 0; i < node.grad.size(); ++i) {
      const double y = node.value.storage()[i];
      node.inputs[0]->grad.storage()[i] +=
          node.grad.storage()[i] * y * (1.0 - y);
    }
  });
}

Var Tanh(const Var& a) {
  Tensor out = a->value;
  for (double& v : out.storage()) v = std::tanh(v);
  return MakeOpNode(std::move(out), {a}, [](Node& node) {
    for (size_t i = 0; i < node.grad.size(); ++i) {
      const double y = node.value.storage()[i];
      node.inputs[0]->grad.storage()[i] +=
          node.grad.storage()[i] * (1.0 - y * y);
    }
  });
}

Var Relu(const Var& a) {
  Tensor out = a->value;
  for (double& v : out.storage()) v = std::max(v, 0.0);
  return MakeOpNode(std::move(out), {a}, [](Node& node) {
    for (size_t i = 0; i < node.grad.size(); ++i) {
      if (node.inputs[0]->value.storage()[i] > 0.0) {
        node.inputs[0]->grad.storage()[i] += node.grad.storage()[i];
      }
    }
  });
}

Var Gelu(const Var& a) {
  // Tanh approximation of GELU.
  constexpr double kC = 0.7978845608028654;  // sqrt(2/pi).
  Tensor out = a->value;
  for (double& v : out.storage()) {
    const double inner = kC * (v + 0.044715 * v * v * v);
    v = 0.5 * v * (1.0 + std::tanh(inner));
  }
  return MakeOpNode(std::move(out), {a}, [](Node& node) {
    constexpr double kC2 = 0.7978845608028654;
    for (size_t i = 0; i < node.grad.size(); ++i) {
      const double x = node.inputs[0]->value.storage()[i];
      const double inner = kC2 * (x + 0.044715 * x * x * x);
      const double t = std::tanh(inner);
      const double dinner = kC2 * (1.0 + 3.0 * 0.044715 * x * x);
      const double dy = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner;
      node.inputs[0]->grad.storage()[i] += node.grad.storage()[i] * dy;
    }
  });
}

Var Softmax(const Var& a, const Tensor* additive_mask) {
  Tensor out = a->value;
  if (additive_mask != nullptr) {
    assert(additive_mask->SameShape(out));
    for (size_t i = 0; i < out.size(); ++i) {
      out.storage()[i] += additive_mask->storage()[i];
    }
  }
  // A row masked to -inf in every position has an empty support: the
  // shifted exponentials would all be exp(-inf - -inf) = NaN. Such rows are
  // defined as the uniform distribution with zero gradient (the limit of a
  // row with no preference), and the backward pass skips them.
  auto dead_rows = std::make_shared<std::vector<uint8_t>>(out.rows(), 0);
  for (size_t r = 0; r < out.rows(); ++r) {
    double mx = out(r, 0);
    for (size_t c = 1; c < out.cols(); ++c) mx = std::max(mx, out(r, c));
    if (std::isinf(mx) && mx < 0.0) {
      (*dead_rows)[r] = 1;
      for (size_t c = 0; c < out.cols(); ++c) {
        out(r, c) = 1.0 / static_cast<double>(out.cols());
      }
      continue;
    }
    double sum = 0.0;
    for (size_t c = 0; c < out.cols(); ++c) {
      out(r, c) = std::exp(out(r, c) - mx);
      sum += out(r, c);
    }
    for (size_t c = 0; c < out.cols(); ++c) out(r, c) /= sum;
  }
  return MakeOpNode(std::move(out), {a}, [dead_rows](Node& node) {
    for (size_t r = 0; r < node.grad.rows(); ++r) {
      if ((*dead_rows)[r]) continue;  // Constant output: zero gradient.
      double dot = 0.0;
      for (size_t c = 0; c < node.grad.cols(); ++c) {
        dot += node.grad(r, c) * node.value(r, c);
      }
      for (size_t c = 0; c < node.grad.cols(); ++c) {
        node.inputs[0]->grad(r, c) +=
            node.value(r, c) * (node.grad(r, c) - dot);
      }
    }
  });
}

Var LayerNorm(const Var& a, const Var& gain, const Var& bias,
              double epsilon) {
  const size_t n = a->value.cols();
  assert(gain->value.rows() == 1 && gain->value.cols() == n);
  assert(bias->value.rows() == 1 && bias->value.cols() == n);
  Tensor out(a->value.rows(), n);
  for (size_t r = 0; r < a->value.rows(); ++r) {
    double mu = 0.0;
    for (size_t c = 0; c < n; ++c) mu += a->value(r, c);
    mu /= static_cast<double>(n);
    double var = 0.0;
    for (size_t c = 0; c < n; ++c) {
      const double d = a->value(r, c) - mu;
      var += d * d;
    }
    var /= static_cast<double>(n);
    const double inv = 1.0 / std::sqrt(var + epsilon);
    for (size_t c = 0; c < n; ++c) {
      const double xhat = (a->value(r, c) - mu) * inv;
      out(r, c) = xhat * gain->value(0, c) + bias->value(0, c);
    }
  }
  return MakeOpNode(std::move(out), {a, gain, bias}, [epsilon, n](Node& node) {
    const Var& a_in = node.inputs[0];
    const Var& gain_in = node.inputs[1];
    const Var& bias_in = node.inputs[2];
    const double dn = static_cast<double>(n);
    for (size_t r = 0; r < node.grad.rows(); ++r) {
      double mu = 0.0;
      for (size_t c = 0; c < n; ++c) mu += a_in->value(r, c);
      mu /= dn;
      double var = 0.0;
      for (size_t c = 0; c < n; ++c) {
        const double d = a_in->value(r, c) - mu;
        var += d * d;
      }
      var /= dn;
      const double inv = 1.0 / std::sqrt(var + epsilon);

      double sum_dxhat = 0.0;
      double sum_dxhat_xhat = 0.0;
      for (size_t c = 0; c < n; ++c) {
        const double xhat = (a_in->value(r, c) - mu) * inv;
        const double dxhat = node.grad(r, c) * gain_in->value(0, c);
        sum_dxhat += dxhat;
        sum_dxhat_xhat += dxhat * xhat;
        gain_in->grad(0, c) += node.grad(r, c) * xhat;
        bias_in->grad(0, c) += node.grad(r, c);
      }
      for (size_t c = 0; c < n; ++c) {
        const double xhat = (a_in->value(r, c) - mu) * inv;
        const double dxhat = node.grad(r, c) * gain_in->value(0, c);
        a_in->grad(r, c) +=
            inv * (dxhat - sum_dxhat / dn - xhat * sum_dxhat_xhat / dn);
      }
    }
  });
}

Var Dropout(const Var& a, double rate, bool train, Rng& rng) {
  if (!train || rate <= 0.0) {
    // Identity pass-through that still joins the graph.
    return Scale(a, 1.0);
  }
  const double keep = 1.0 - rate;
  auto mask = std::make_shared<Tensor>(a->value.rows(), a->value.cols());
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) {
    const bool kept = rng.Uniform() < keep;
    mask->storage()[i] = kept ? 1.0 / keep : 0.0;
    out.storage()[i] *= mask->storage()[i];
  }
  return MakeOpNode(std::move(out), {a}, [mask](Node& node) {
    for (size_t i = 0; i < node.grad.size(); ++i) {
      node.inputs[0]->grad.storage()[i] +=
          node.grad.storage()[i] * mask->storage()[i];
    }
  });
}

Var Transpose(const Var& a) {
  Tensor out(a->value.cols(), a->value.rows());
  for (size_t r = 0; r < a->value.rows(); ++r) {
    for (size_t c = 0; c < a->value.cols(); ++c) out(c, r) = a->value(r, c);
  }
  return MakeOpNode(std::move(out), {a}, [](Node& node) {
    for (size_t r = 0; r < node.grad.rows(); ++r) {
      for (size_t c = 0; c < node.grad.cols(); ++c) {
        node.inputs[0]->grad(c, r) += node.grad(r, c);
      }
    }
  });
}

Var SliceRows(const Var& a, size_t begin, size_t end) {
  assert(begin <= end && end <= a->value.rows());
  Tensor out(end - begin, a->value.cols());
  for (size_t r = begin; r < end; ++r) {
    for (size_t c = 0; c < a->value.cols(); ++c) {
      out(r - begin, c) = a->value(r, c);
    }
  }
  return MakeOpNode(std::move(out), {a}, [begin](Node& node) {
    for (size_t r = 0; r < node.grad.rows(); ++r) {
      for (size_t c = 0; c < node.grad.cols(); ++c) {
        node.inputs[0]->grad(begin + r, c) += node.grad(r, c);
      }
    }
  });
}

Var SliceCols(const Var& a, size_t begin, size_t end) {
  assert(begin <= end && end <= a->value.cols());
  Tensor out(a->value.rows(), end - begin);
  for (size_t r = 0; r < a->value.rows(); ++r) {
    for (size_t c = begin; c < end; ++c) out(r, c - begin) = a->value(r, c);
  }
  return MakeOpNode(std::move(out), {a}, [begin](Node& node) {
    for (size_t r = 0; r < node.grad.rows(); ++r) {
      for (size_t c = 0; c < node.grad.cols(); ++c) {
        node.inputs[0]->grad(r, begin + c) += node.grad(r, c);
      }
    }
  });
}

Var ConcatRows(const Var& a, const Var& b) {
  assert(a->value.cols() == b->value.cols());
  Tensor out(a->value.rows() + b->value.rows(), a->value.cols());
  for (size_t r = 0; r < a->value.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) out(r, c) = a->value(r, c);
  }
  for (size_t r = 0; r < b->value.rows(); ++r) {
    for (size_t c = 0; c < out.cols(); ++c) {
      out(a->value.rows() + r, c) = b->value(r, c);
    }
  }
  const size_t split = a->value.rows();
  return MakeOpNode(std::move(out), {a, b}, [split](Node& node) {
    for (size_t r = 0; r < node.grad.rows(); ++r) {
      for (size_t c = 0; c < node.grad.cols(); ++c) {
        if (r < split) {
          node.inputs[0]->grad(r, c) += node.grad(r, c);
        } else {
          node.inputs[1]->grad(r - split, c) += node.grad(r, c);
        }
      }
    }
  });
}

Var ConcatCols(const Var& a, const Var& b) {
  assert(a->value.rows() == b->value.rows());
  Tensor out(a->value.rows(), a->value.cols() + b->value.cols());
  for (size_t r = 0; r < out.rows(); ++r) {
    for (size_t c = 0; c < a->value.cols(); ++c) out(r, c) = a->value(r, c);
    for (size_t c = 0; c < b->value.cols(); ++c) {
      out(r, a->value.cols() + c) = b->value(r, c);
    }
  }
  const size_t split = a->value.cols();
  return MakeOpNode(std::move(out), {a, b}, [split](Node& node) {
    for (size_t r = 0; r < node.grad.rows(); ++r) {
      for (size_t c = 0; c < node.grad.cols(); ++c) {
        if (c < split) {
          node.inputs[0]->grad(r, c) += node.grad(r, c);
        } else {
          node.inputs[1]->grad(r, c - split) += node.grad(r, c);
        }
      }
    }
  });
}

Var Mean(const Var& a) {
  Tensor out(1, 1);
  double sum = 0.0;
  for (double v : a->value.storage()) sum += v;
  out(0, 0) = sum / static_cast<double>(a->value.size());
  return MakeOpNode(std::move(out), {a}, [](Node& node) {
    const double g =
        node.grad(0, 0) / static_cast<double>(node.inputs[0]->value.size());
    for (double& v : node.inputs[0]->grad.storage()) v += g;
  });
}

Var MseLoss(const Var& prediction, const Var& target) {
  assert(prediction->value.SameShape(target->value));
  Tensor out(1, 1);
  double sum = 0.0;
  for (size_t i = 0; i < prediction->value.size(); ++i) {
    const double d =
        prediction->value.storage()[i] - target->value.storage()[i];
    sum += d * d;
  }
  out(0, 0) = sum / static_cast<double>(prediction->value.size());
  return MakeOpNode(std::move(out), {prediction, target}, [](Node& node) {
    const double scale =
        2.0 * node.grad(0, 0) /
        static_cast<double>(node.inputs[0]->value.size());
    for (size_t i = 0; i < node.inputs[0]->value.size(); ++i) {
      const double d = node.inputs[0]->value.storage()[i] -
                       node.inputs[1]->value.storage()[i];
      node.inputs[0]->grad.storage()[i] += scale * d;
      node.inputs[1]->grad.storage()[i] -= scale * d;
    }
  });
}

Var StridedRowPool(const Var& a, size_t stride) {
  assert(stride >= 1);
  const size_t in_rows = a->value.rows();
  const size_t out_rows = (in_rows + stride - 1) / stride;
  Tensor out(out_rows, a->value.cols());
  for (size_t o = 0; o < out_rows; ++o) {
    const size_t begin = o * stride;
    const size_t end = std::min(begin + stride, in_rows);
    for (size_t c = 0; c < out.cols(); ++c) {
      double sum = 0.0;
      for (size_t r = begin; r < end; ++r) sum += a->value(r, c);
      out(o, c) = sum / static_cast<double>(end - begin);
    }
  }
  return MakeOpNode(std::move(out), {a}, [stride, in_rows](Node& node) {
    for (size_t o = 0; o < node.grad.rows(); ++o) {
      const size_t begin = o * stride;
      const size_t end = std::min(begin + stride, in_rows);
      const double inv = 1.0 / static_cast<double>(end - begin);
      for (size_t c = 0; c < node.grad.cols(); ++c) {
        for (size_t r = begin; r < end; ++r) {
          node.inputs[0]->grad(r, c) += node.grad(o, c) * inv;
        }
      }
    }
  });
}

}  // namespace lossyts::nn
