#include "query/query.h"

#include <dirent.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>

#include "core/failpoint.h"
#include "core/metric_registry.h"
#include "core/thread_pool.h"
#include "store/reader.h"

namespace lossyts::query {

namespace {

constexpr char kStoreSuffix[] = ".lts";

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// The request, validated and canonicalized once up front so every failure
/// mode surfaces before any store I/O.
struct ResolvedQuery {
  std::vector<std::string> metric_names;
  bool needs_insample = false;
  std::vector<store::AggregateKind> aggregate_kinds;
  std::vector<std::string> aggregate_names;
};

Result<ResolvedQuery> ResolveQuery(const QueryOptions& options) {
  if (options.metrics.empty() && options.aggregates.empty()) {
    return Status::InvalidArgument(
        "query requests neither metrics nor aggregates");
  }
  if (options.t0 > options.t1) {
    return Status::InvalidArgument("query range is inverted: t0 > t1");
  }
  if (options.group_by == GroupMode::kPrefix && options.delimiter.empty()) {
    return Status::InvalidArgument(
        "prefix grouping needs a non-empty delimiter");
  }
  ResolvedQuery resolved;
  if (!options.metrics.empty()) {
    Result<std::vector<std::string>> canonical =
        CanonicalMetricNames(options.metrics);
    if (!canonical.ok()) return canonical.status();
    for (const std::string& name : *canonical) {
      Result<MetricSpec> spec = MetricRegistry::Global().Parse(name);
      if (!spec.ok()) return spec.status();
      if (spec->needs_interval) {
        return Status::InvalidArgument(
            "metric '" + name +
            "' needs prediction intervals; stores hold point forecasts");
      }
      resolved.needs_insample |= spec->needs_insample;
    }
    resolved.metric_names = std::move(*canonical);
  }
  for (const std::string& name : options.aggregates) {
    Result<store::AggregateKind> kind = store::ParseAggregateKind(name);
    if (!kind.ok()) return kind.status();
    resolved.aggregate_kinds.push_back(*kind);
    resolved.aggregate_names.push_back(store::AggregateKindName(*kind));
  }
  return resolved;
}

std::string GroupKeyFor(const QueryOptions& options, const std::string& name) {
  switch (options.group_by) {
    case GroupMode::kSeries:
      return name;
    case GroupMode::kPrefix: {
      const size_t at = name.find(options.delimiter);
      return at == std::string::npos ? name : name.substr(0, at);
    }
    case GroupMode::kAll:
      return "all";
  }
  return name;
}

/// Index window of a series inside the [t0, t1] predicate.
struct RangeView {
  size_t begin = 0;
  size_t count = 0;
  int64_t start_timestamp = 0;
};

RangeView ClampToRange(const TimeSeries& series, int64_t t0, int64_t t1) {
  RangeView view;
  if (series.empty()) return view;
  const int64_t interval = series.interval_seconds();
  const int64_t first = series.start_timestamp();
  const int64_t last = series.TimestampAt(series.size() - 1);
  int64_t lo = first;
  if (t0 > lo) {
    // First grid point >= t0.
    lo = first + ((t0 - first) + interval - 1) / interval * interval;
  }
  const int64_t hi = std::min(t1, last);
  if (lo > hi) return view;
  view.begin = static_cast<size_t>((lo - first) / interval);
  view.count = static_cast<size_t>((hi - lo) / interval) + 1;
  view.start_timestamp = lo;
  return view;
}

/// Per-series partial aggregate, mergeable across a group in any grouping
/// mode (the merge itself always walks series in canonical order).
struct SeriesAggregate {
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  uint64_t count = 0;
};

void AccumulateValues(const std::vector<double>& values, const RangeView& view,
                      SeriesAggregate& agg) {
  for (size_t i = 0; i < view.count; ++i) {
    const double v = values[view.begin + i];
    if (agg.count == 0 || v < agg.min) agg.min = v;
    if (agg.count == 0 || v > agg.max) agg.max = v;
    agg.sum += v;
    ++agg.count;
  }
}

void MergeAggregate(const SeriesAggregate& in, SeriesAggregate& out) {
  if (in.count == 0) return;
  if (out.count == 0 || in.min < out.min) out.min = in.min;
  if (out.count == 0 || in.max > out.max) out.max = in.max;
  out.sum += in.sum;
  out.count += in.count;
}

Result<double> FinishAggregate(store::AggregateKind kind,
                               const SeriesAggregate& agg,
                               const std::string& group) {
  switch (kind) {
    case store::AggregateKind::kCount:
      return static_cast<double>(agg.count);
    case store::AggregateKind::kSum:
      return agg.sum;
    case store::AggregateKind::kMin:
    case store::AggregateKind::kMax:
    case store::AggregateKind::kMean:
      if (agg.count == 0) {
        return Status::OutOfRange("group '" + group + "' selects no points for " +
                                  store::AggregateKindName(kind));
      }
      if (kind == store::AggregateKind::kMin) return agg.min;
      if (kind == store::AggregateKind::kMax) return agg.max;
      return agg.sum / static_cast<double>(agg.count);
  }
  return Status::Internal("unhandled aggregate kind");
}

/// Appends the (actual, predicted) pairs of one series' overlap — after the
/// range predicate — onto the group's pooled vectors, in timestamp order.
Status AppendAlignedPairs(const std::string& name, const TimeSeries& actual,
                          const RangeView& actual_view,
                          const TimeSeries& predicted,
                          const RangeView& predicted_view,
                          std::vector<double>& actual_out,
                          std::vector<double>& predicted_out) {
  if (actual_view.count == 0 || predicted_view.count == 0) {
    return Status::OK();
  }
  if (actual.interval_seconds() != predicted.interval_seconds()) {
    return Status::InvalidArgument(
        "series '" + name +
        "': actual and predicted stores disagree on the sampling interval");
  }
  const int64_t interval = actual.interval_seconds();
  if ((predicted_view.start_timestamp - actual_view.start_timestamp) %
          interval !=
      0) {
    return Status::InvalidArgument(
        "series '" + name +
        "': predicted store is off the actual store's sampling grid");
  }
  const int64_t start =
      std::max(actual_view.start_timestamp, predicted_view.start_timestamp);
  const int64_t actual_last =
      actual_view.start_timestamp +
      static_cast<int64_t>(actual_view.count - 1) * interval;
  const int64_t predicted_last =
      predicted_view.start_timestamp +
      static_cast<int64_t>(predicted_view.count - 1) * interval;
  const int64_t last = std::min(actual_last, predicted_last);
  if (last < start) return Status::OK();
  const size_t n = static_cast<size_t>((last - start) / interval) + 1;
  const size_t a0 =
      actual_view.begin +
      static_cast<size_t>((start - actual_view.start_timestamp) / interval);
  const size_t p0 =
      predicted_view.begin +
      static_cast<size_t>((start - predicted_view.start_timestamp) / interval);
  actual_out.insert(actual_out.end(), actual.values().begin() + a0,
                    actual.values().begin() + a0 + n);
  predicted_out.insert(predicted_out.end(), predicted.values().begin() + p0,
                       predicted.values().begin() + p0 + n);
  return Status::OK();
}

/// Group state assembled while walking series in canonical order.
struct GroupAccum {
  uint64_t series_count = 0;
  uint64_t points = 0;
  SeriesAggregate aggregate;
  std::vector<double> actual;
  std::vector<double> predicted;
};

Result<QueryResult> FinishGroups(const ResolvedQuery& resolved,
                                 const QueryOptions& options,
                                 std::map<std::string, GroupAccum>& groups) {
  QueryResult result;
  result.metric_names = resolved.metric_names;
  result.aggregate_names = resolved.aggregate_names;
  for (auto& [group, accum] : groups) {
    GroupRow row;
    row.group = group;
    row.series_count = accum.series_count;
    row.points = accum.points;
    for (const store::AggregateKind kind : resolved.aggregate_kinds) {
      Result<double> value = FinishAggregate(kind, accum.aggregate, group);
      if (!value.ok()) return value.status();
      row.aggregates.push_back(*value);
    }
    if (!resolved.metric_names.empty()) {
      if (accum.actual.empty()) {
        return Status::InvalidArgument(
            "group '" + group +
            "' has no (actual, predicted) pairs in the requested time range");
      }
      MetricContext ctx;
      ctx.actual = &accum.actual;
      ctx.predicted = &accum.predicted;
      if (resolved.needs_insample) ctx.insample = &accum.actual;
      ctx.season_length = std::max(1, options.season_length);
      ctx.series = group;
      Result<std::vector<double>> metrics =
          EvaluateMetrics(resolved.metric_names, ctx);
      if (!metrics.ok()) return metrics.status();
      row.metrics = std::move(*metrics);
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace

Result<GroupMode> ParseGroupMode(const std::string& name) {
  if (name == "series") return GroupMode::kSeries;
  if (name == "prefix") return GroupMode::kPrefix;
  if (name == "all") return GroupMode::kAll;
  return Status::InvalidArgument(
      "unknown group mode '" + name + "' (want series, prefix or all)");
}

const char* GroupModeName(GroupMode mode) {
  switch (mode) {
    case GroupMode::kSeries:
      return "series";
    case GroupMode::kPrefix:
      return "prefix";
    case GroupMode::kAll:
      return "all";
  }
  return "?";
}

Result<QueryResult> EvaluateGroupedSeries(
    const std::vector<SeriesInput>& series, const QueryOptions& options) {
  Result<ResolvedQuery> resolved = ResolveQuery(options);
  if (!resolved.ok()) return resolved.status();

  std::vector<const SeriesInput*> ordered;
  ordered.reserve(series.size());
  for (const SeriesInput& s : series) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(),
            [](const SeriesInput* a, const SeriesInput* b) {
              return a->name < b->name;
            });

  std::map<std::string, GroupAccum> groups;
  for (const SeriesInput* s : ordered) {
    if (s->actual == nullptr) {
      return Status::InvalidArgument("series '" + s->name +
                                     "' has no actual data");
    }
    if (!resolved->metric_names.empty() && s->predicted == nullptr) {
      return Status::InvalidArgument(
          "series '" + s->name +
          "' has no predicted data for metric evaluation");
    }
    if (!options.match.empty() &&
        s->name.find(options.match) == std::string::npos) {
      continue;
    }
    GroupAccum& accum = groups[GroupKeyFor(options, s->name)];
    ++accum.series_count;
    const RangeView actual_view =
        ClampToRange(*s->actual, options.t0, options.t1);
    accum.points += actual_view.count;
    if (!resolved->aggregate_kinds.empty()) {
      SeriesAggregate agg;
      AccumulateValues(s->actual->values(), actual_view, agg);
      MergeAggregate(agg, accum.aggregate);
    }
    if (!resolved->metric_names.empty()) {
      const RangeView predicted_view =
          ClampToRange(*s->predicted, options.t0, options.t1);
      if (Status st = AppendAlignedPairs(s->name, *s->actual, actual_view,
                                         *s->predicted, predicted_view,
                                         accum.actual, accum.predicted);
          !st.ok()) {
        return st;
      }
    }
  }
  return FinishGroups(*resolved, options, groups);
}

Result<QueryResult> QueryStoreDir(const std::string& dir,
                                  const QueryOptions& options) {
  Result<ResolvedQuery> resolved = ResolveQuery(options);
  if (!resolved.ok()) return resolved.status();
  const bool want_metrics = !resolved->metric_names.empty();
  if (want_metrics && options.pred_suffix.empty()) {
    return Status::InvalidArgument(
        "metric queries need a non-empty --pred-suffix to pair stores");
  }

  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IoError("cannot list " + dir + ": " + std::strerror(errno));
  }
  std::vector<std::string> bases;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (!EndsWith(name, kStoreSuffix)) continue;
    const std::string base =
        name.substr(0, name.size() - std::strlen(kStoreSuffix));
    if (!options.pred_suffix.empty() && EndsWith(base, options.pred_suffix)) {
      continue;  // A forecast store, reachable only through its pair.
    }
    if (!options.match.empty() &&
        base.find(options.match) == std::string::npos) {
      continue;
    }
    bases.push_back(base);
  }
  ::closedir(d);
  std::sort(bases.begin(), bases.end());
  if (bases.empty()) {
    return Status::NotFound("no series stores in " + dir +
                            (options.match.empty()
                                 ? std::string()
                                 : " match '" + options.match + "'"));
  }

  // Per-series fetch fans out on the pool; every slot lands at its input
  // index, and all merging below walks slots in canonical (sorted) order, so
  // the result is byte-identical for every jobs value. On failure the first
  // error in canonical order wins.
  struct Fetched {
    Status status;
    TimeSeries actual;
    TimeSeries predicted;
    SeriesAggregate aggregate;
    uint64_t points = 0;
    uint64_t pushdown_chunks = 0;
    uint64_t decoded_chunks = 0;
  };
  std::vector<Fetched> fetched(bases.size());
  ThreadPool pool(options.jobs);
  for (size_t i = 0; i < bases.size(); ++i) {
    pool.Submit([&, i] {
      Fetched& out = fetched[i];
      out.status = FailPoints::Hit("query_fetch");
      if (!out.status.ok()) return;
      const std::string path = dir + "/" + bases[i] + kStoreSuffix;
      Result<std::unique_ptr<store::StoreReader>> reader =
          store::StoreReader::Open(path);
      if (!reader.ok()) {
        out.status = reader.status();
        return;
      }
      if (want_metrics) {
        // The decode path: reconstruct only the selected range, paired with
        // the forecast store. Select() is how the decoded-chunk counter
        // knows the cost without instrumenting the reader.
        const auto count_decoded = [&out](const store::StoreReader& r,
                                          int64_t t0, int64_t t1) {
          Result<store::StoreReader::Selection> sel = r.Select(t0, t1);
          if (sel.ok() && sel->count > 0) {
            out.decoded_chunks += sel->last_chunk - sel->first_chunk + 1;
          }
        };
        count_decoded(**reader, options.t0, options.t1);
        Result<TimeSeries> actual =
            (*reader)->ReadRange(options.t0, options.t1, 1);
        if (!actual.ok()) {
          out.status = actual.status();
          return;
        }
        out.actual = std::move(*actual);
        out.points = out.actual.size();
        const std::string pred_path =
            dir + "/" + bases[i] + options.pred_suffix + kStoreSuffix;
        Result<std::unique_ptr<store::StoreReader>> pred =
            store::StoreReader::Open(pred_path);
        if (!pred.ok()) {
          out.status = Status::NotFound(
              "series '" + bases[i] + "' has no forecast store at " +
              pred_path + " (" + pred.status().message() + ")");
          return;
        }
        count_decoded(**pred, options.t0, options.t1);
        Result<TimeSeries> predicted =
            (*pred)->ReadRange(options.t0, options.t1, 1);
        if (!predicted.ok()) {
          out.status = predicted.status();
          return;
        }
        out.predicted = std::move(*predicted);
        if (!resolved->aggregate_kinds.empty()) {
          RangeView view;
          view.count = out.actual.size();
          view.start_timestamp = out.actual.start_timestamp();
          AccumulateValues(out.actual.values(), view, out.aggregate);
        }
        return;
      }
      // Aggregate-only: answered on segment models (pushdown) without
      // decoding; the points column costs one index walk.
      Result<store::StoreReader::Selection> selection =
          (*reader)->Select(options.t0, options.t1);
      if (!selection.ok()) {
        out.status = selection.status();
        return;
      }
      out.points = selection->count;
      SeriesAggregate& agg = out.aggregate;
      for (const store::AggregateKind kind :
           {store::AggregateKind::kMin, store::AggregateKind::kMax,
            store::AggregateKind::kSum}) {
        if (selection->count == 0) break;
        Result<store::AggregateResult> r =
            store::AggregateRange(**reader, kind, options.t0, options.t1);
        if (!r.ok()) {
          out.status = r.status();
          return;
        }
        if (kind == store::AggregateKind::kMin) agg.min = r->value;
        if (kind == store::AggregateKind::kMax) agg.max = r->value;
        if (kind == store::AggregateKind::kSum) agg.sum = r->value;
        out.pushdown_chunks += r->pushdown_chunks;
        out.decoded_chunks += r->decoded_chunks;
      }
      agg.count = selection->count;
    });
  }
  pool.Wait();
  for (const Fetched& f : fetched) {
    if (!f.status.ok()) return f.status;
  }

  std::map<std::string, GroupAccum> groups;
  QueryResult counters;
  for (size_t i = 0; i < bases.size(); ++i) {
    GroupAccum& accum = groups[GroupKeyFor(options, bases[i])];
    ++accum.series_count;
    accum.points += fetched[i].points;
    MergeAggregate(fetched[i].aggregate, accum.aggregate);
    counters.pushdown_chunks += fetched[i].pushdown_chunks;
    counters.decoded_chunks += fetched[i].decoded_chunks;
    if (want_metrics) {
      RangeView actual_view;
      actual_view.count = fetched[i].actual.size();
      actual_view.start_timestamp = fetched[i].actual.start_timestamp();
      RangeView predicted_view;
      predicted_view.count = fetched[i].predicted.size();
      predicted_view.start_timestamp = fetched[i].predicted.start_timestamp();
      if (Status st = AppendAlignedPairs(
              bases[i], fetched[i].actual, actual_view, fetched[i].predicted,
              predicted_view, accum.actual, accum.predicted);
          !st.ok()) {
        return st;
      }
    }
  }
  Result<QueryResult> result = FinishGroups(*resolved, options, groups);
  if (!result.ok()) return result.status();
  result->pushdown_chunks = counters.pushdown_chunks;
  result->decoded_chunks = counters.decoded_chunks;
  return result;
}

std::string FormatQueryResult(const QueryResult& result) {
  std::string out = "group,series,points";
  for (const std::string& name : result.aggregate_names) out += ',' + name;
  for (const std::string& name : result.metric_names) out += ',' + name;
  out += '\n';
  char buffer[32];
  for (const GroupRow& row : result.rows) {
    out += row.group;
    out += ',' + std::to_string(row.series_count);
    out += ',' + std::to_string(row.points);
    for (const double v : row.aggregates) {
      std::snprintf(buffer, sizeof(buffer), "%.17g", v);
      out += ',';
      out += buffer;
    }
    for (const double v : row.metrics) {
      std::snprintf(buffer, sizeof(buffer), "%.17g", v);
      out += ',';
      out += buffer;
    }
    out += '\n';
  }
  return out;
}

}  // namespace lossyts::query
