#ifndef LOSSYTS_QUERY_QUERY_H_
#define LOSSYTS_QUERY_QUERY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/status.h"
#include "core/time_series.h"
#include "store/query.h"

namespace lossyts::query {

/// How series fold into groups:
///  - kSeries: one group per series (GROUP BY series).
///  - kPrefix: series grouped by their name up to the first delimiter
///    ("turbine_3" and "turbine_7" share group "turbine"; a name without the
///    delimiter is its own group).
///  - kAll: a single group named "all".
enum class GroupMode { kSeries, kPrefix, kAll };

/// Parses "series" / "prefix" / "all" (the CLI spelling).
Result<GroupMode> ParseGroupMode(const std::string& name);
const char* GroupModeName(GroupMode mode);

struct QueryOptions {
  /// Registered metric names (core/metric_registry.h) evaluated per group
  /// against (actual, predicted) pairs. May be empty when `aggregates` is
  /// not. Interval metrics (coverage) are rejected — stores hold point
  /// forecasts only.
  std::vector<std::string> metrics;
  /// Plain range aggregates ("MIN"/"MAX"/"SUM"/"COUNT"/"MEAN") over the
  /// actual stores, answered by segment pushdown where the codec allows.
  std::vector<std::string> aggregates;
  GroupMode group_by = GroupMode::kSeries;
  /// Prefix-grouping delimiter; must be non-empty for kPrefix.
  std::string delimiter = "_";
  /// Inclusive time-range predicate, pushed down into the store layer
  /// (chunk selection + partial decode; segment models for aggregates).
  int64_t t0 = std::numeric_limits<int64_t>::min();
  int64_t t1 = std::numeric_limits<int64_t>::max();
  /// Worker threads for the per-series fan-out; <= 1 runs inline. The
  /// result is byte-identical for every value (canonical-order merge).
  int jobs = 1;
  /// Substring filter on the series name; empty matches everything.
  std::string match;
  /// A series `<name>` pairs with the forecast store `<name><pred_suffix>`;
  /// stores with this suffix are never treated as actual series themselves.
  std::string pred_suffix = ".pred";
  /// Seasonal naive lag for scaled metrics (MASE).
  int season_length = 1;
};

/// One GROUP BY output row.
struct GroupRow {
  std::string group;
  uint64_t series_count = 0;
  /// Actual points inside the time range, summed over the group's series.
  uint64_t points = 0;
  /// Values for QueryResult::aggregate_names, positionally.
  std::vector<double> aggregates;
  /// Values for QueryResult::metric_names, positionally.
  std::vector<double> metrics;
};

struct QueryResult {
  /// Canonical metric spellings (CanonicalMetricNames of the request).
  std::vector<std::string> metric_names;
  std::vector<std::string> aggregate_names;
  /// Rows sorted by group name — the canonical order that makes the result
  /// byte-identical for every --jobs value.
  std::vector<GroupRow> rows;
  /// Pushdown effectiveness over the aggregate path (summed store counters).
  uint64_t pushdown_chunks = 0;
  uint64_t decoded_chunks = 0;
};

/// One series' reconstructed data handed to the grouping engine. `predicted`
/// may be null only when the query requests no metrics.
struct SeriesInput {
  std::string name;
  const TimeSeries* actual = nullptr;
  const TimeSeries* predicted = nullptr;
};

/// The grouping/evaluation core, independent of where the series came from
/// (directory of .lts stores offline, shard snapshots in the serve daemon).
///
/// Group semantics are pooled, SQL-style: each group's metric is evaluated
/// over the concatenation of its series' (actual, predicted) pairs in
/// canonical (sorted-name) order — not an average of per-series metrics. For
/// scaled metrics (MASE) the pooled actual vector doubles as the in-sample
/// series. A series whose actual and predicted grids disagree (different
/// interval or misaligned timestamps) is an InvalidArgument naming it.
Result<QueryResult> EvaluateGroupedSeries(const std::vector<SeriesInput>& series,
                                          const QueryOptions& options);

/// Runs a grouped query over a directory of `.lts` stores: every
/// `<name>.lts` (minus `pred_suffix` stores) is an actual series, read over
/// [t0, t1] with chunk decodes fanned out on `jobs` threads, paired with
/// `<name><pred_suffix>.lts` when metrics are requested. Aggregates go
/// through store/query segment pushdown instead of decoding. The merge is
/// canonical-order, so the result — and FormatQueryResult's text — is
/// byte-identical for every `jobs`. Carries the "query_fetch" failpoint in
/// the per-series fetch; on injected failure the first error in canonical
/// series order is returned.
Result<QueryResult> QueryStoreDir(const std::string& dir,
                                  const QueryOptions& options);

/// Renders the result as a CSV table: a header of
/// `group,series,points[,<aggregates...>][,<metrics...>]` then one row per
/// group with doubles formatted %.17g. Canonical: equal results format to
/// equal bytes.
std::string FormatQueryResult(const QueryResult& result);

}  // namespace lossyts::query

#endif  // LOSSYTS_QUERY_QUERY_H_
