#include "core/metric_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

#include "core/metrics.h"

namespace lossyts {

namespace {

Status CheckSameNonEmpty(const std::vector<double>& x,
                         const std::vector<double>& y) {
  if (x.empty()) return Status::InvalidArgument("metric input is empty");
  if (x.size() != y.size()) {
    return Status::InvalidArgument(
        "metric inputs have different lengths: " + std::to_string(x.size()) +
        " vs " + std::to_string(y.size()));
  }
  return Status::OK();
}

std::string SeriesLabel(const MetricContext& ctx) {
  return ctx.series.empty() ? std::string("<unnamed>") : ctx.series;
}

/// Small-denominator guard shared with MaxRelError (core/metrics.cc): a
/// reference magnitude below this clamps to it instead of dividing by ~0.
constexpr double kRelDenomFloor = 1e-12;

std::string FormatParam(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

double PinballSum(const std::vector<double>& actual,
                  const std::vector<double>& predicted, double q) {
  double sum = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - predicted[i];
    sum += d >= 0.0 ? q * d : (q - 1.0) * d;
  }
  return sum;
}

Result<double> MseKernel(const MetricContext& ctx,
                         const std::vector<double>&) {
  const std::vector<double>& x = *ctx.actual;
  const std::vector<double>& y = *ctx.predicted;
  if (Status s = CheckSameNonEmpty(x, y); !s.ok()) return s;
  double ss = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    ss += d * d;
  }
  return ss / static_cast<double>(x.size());
}

Result<double> MapeKernel(const MetricContext& ctx,
                          const std::vector<double>&) {
  const std::vector<double>& x = *ctx.actual;
  const std::vector<double>& y = *ctx.predicted;
  if (Status s = CheckSameNonEmpty(x, y); !s.ok()) return s;
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double denom = std::max(std::abs(x[i]), kRelDenomFloor);
    sum += std::abs(x[i] - y[i]) / denom;
  }
  return sum / static_cast<double>(x.size());
}

Result<double> SmapeKernel(const MetricContext& ctx,
                           const std::vector<double>&) {
  const std::vector<double>& x = *ctx.actual;
  const std::vector<double>& y = *ctx.predicted;
  if (Status s = CheckSameNonEmpty(x, y); !s.ok()) return s;
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double denom =
        std::max((std::abs(x[i]) + std::abs(y[i])) / 2.0, kRelDenomFloor);
    sum += std::abs(x[i] - y[i]) / denom;
  }
  return sum / static_cast<double>(x.size());
}

Result<double> BiasKernel(const MetricContext& ctx,
                          const std::vector<double>&) {
  const std::vector<double>& x = *ctx.actual;
  const std::vector<double>& y = *ctx.predicted;
  if (Status s = CheckSameNonEmpty(x, y); !s.ok()) return s;
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) sum += y[i] - x[i];
  return sum / static_cast<double>(x.size());
}

Result<double> MaseKernel(const MetricContext& ctx,
                          const std::vector<double>&) {
  if (Status s = CheckSameNonEmpty(*ctx.actual, *ctx.predicted); !s.ok()) {
    return s;
  }
  const std::vector<double>& ins = *ctx.insample;
  const size_t lag =
      static_cast<size_t>(std::max(1, ctx.season_length));
  if (ins.size() <= lag) {
    return Status::InvalidArgument(
        "MASE undefined: in-sample series '" + SeriesLabel(ctx) + "' has " +
        std::to_string(ins.size()) + " points, need more than " +
        std::to_string(lag));
  }
  double scale = 0.0;
  for (size_t t = lag; t < ins.size(); ++t) {
    scale += std::abs(ins[t] - ins[t - lag]);
  }
  scale /= static_cast<double>(ins.size() - lag);
  if (!(scale > 0.0)) {
    return Status::InvalidArgument(
        "MASE undefined: constant in-sample series '" + SeriesLabel(ctx) +
        "'");
  }
  Result<double> mae = Mae(*ctx.actual, *ctx.predicted);
  if (!mae.ok()) return mae.status();
  return *mae / scale;
}

Result<double> PinballKernel(const MetricContext& ctx,
                             const std::vector<double>& params) {
  const std::vector<double>& x = *ctx.actual;
  const std::vector<double>& y = *ctx.predicted;
  if (Status s = CheckSameNonEmpty(x, y); !s.ok()) return s;
  return PinballSum(x, y, params[0]) / static_cast<double>(x.size());
}

Result<double> CrpsKernel(const MetricContext& ctx,
                          const std::vector<double>& params) {
  const std::vector<double>& x = *ctx.actual;
  const std::vector<double>& y = *ctx.predicted;
  if (Status s = CheckSameNonEmpty(x, y); !s.ok()) return s;
  double sum = 0.0;
  for (double q : params) sum += PinballSum(x, y, q);
  // The quantile-averaged pinball approximation of CRPS, scaled by 2 so a
  // dense grid recovers the closed form (for a point forecast it converges
  // to MAE, which numcheck's oracle pins).
  return 2.0 * sum /
         (static_cast<double>(params.size()) *
          static_cast<double>(x.size()));
}

Result<double> CoverageKernel(const MetricContext& ctx,
                              const std::vector<double>&) {
  const std::vector<double>& x = *ctx.actual;
  const std::vector<double>& lo = *ctx.lower;
  const std::vector<double>& hi = *ctx.upper;
  if (x.empty()) return Status::InvalidArgument("metric input is empty");
  if (lo.size() != x.size() || hi.size() != x.size()) {
    return Status::InvalidArgument(
        "coverage interval lengths (" + std::to_string(lo.size()) + ", " +
        std::to_string(hi.size()) + ") do not match actual length " +
        std::to_string(x.size()));
  }
  size_t inside = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (lo[i] <= x[i] && x[i] <= hi[i]) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(x.size());
}

/// Wraps a `Result<double>(x, y)` free function from core/metrics.h.
MetricKernel PairKernel(Result<double> (*fn)(const std::vector<double>&,
                                             const std::vector<double>&)) {
  MetricKernel kernel;
  kernel.fn = [fn](const MetricContext& ctx, const std::vector<double>&) {
    return fn(*ctx.actual, *ctx.predicted);
  };
  return kernel;
}

Result<double> ParseQuantile(const std::string& token,
                             const std::string& name) {
  if (token.empty()) {
    return Status::InvalidArgument("metric '" + name +
                                   "' has an empty parameter");
  }
  char* end = nullptr;
  const double q = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || !std::isfinite(q) || q <= 0.0 ||
      q >= 1.0) {
    return Status::InvalidArgument("metric parameter '" + token + "' in '" +
                                   name + "' is not a quantile in (0, 1)");
  }
  return q;
}

Status CheckFinite(const std::vector<double>& values, const char* label,
                   const MetricContext& ctx) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      std::string message = "non-finite value at index " + std::to_string(i) +
                            " in " + label + " input";
      if (!ctx.series.empty()) message += " for series '" + ctx.series + "'";
      return Status::InvalidArgument(message);
    }
  }
  return Status::OK();
}

}  // namespace

MetricRegistry::MetricRegistry() {
  kernels_["r"] = PairKernel(&PearsonR);
  kernels_["rse"] = PairKernel(&Rse);
  kernels_["rmse"] = PairKernel(&Rmse);
  kernels_["nrmse"] = PairKernel(&Nrmse);
  kernels_["mae"] = PairKernel(&Mae);

  MetricKernel mse;
  mse.fn = &MseKernel;
  kernels_["mse"] = std::move(mse);

  MetricKernel mape;
  mape.fn = &MapeKernel;
  kernels_["mape"] = std::move(mape);

  MetricKernel smape;
  smape.fn = &SmapeKernel;
  kernels_["smape"] = std::move(smape);

  MetricKernel bias;
  bias.fn = &BiasKernel;
  kernels_["bias"] = std::move(bias);

  MetricKernel mase;
  mase.fn = &MaseKernel;
  mase.needs_insample = true;
  kernels_["mase"] = std::move(mase);

  MetricKernel pinball;
  pinball.fn = &PinballKernel;
  pinball.min_params = 1;
  pinball.max_params = 1;
  pinball.default_params = {0.5};
  kernels_["pinball"] = std::move(pinball);

  MetricKernel crps;
  crps.fn = &CrpsKernel;
  crps.min_params = 1;
  crps.max_params = 64;
  // Dense default grid 0.05, 0.10, ..., 0.95.
  for (int k = 1; k <= 19; ++k) {
    crps.default_params.push_back(static_cast<double>(k) / 20.0);
  }
  kernels_["crps"] = std::move(crps);

  MetricKernel coverage;
  coverage.fn = &CoverageKernel;
  coverage.needs_interval = true;
  kernels_["coverage"] = std::move(coverage);
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Status MetricRegistry::Register(const std::string& base, MetricKernel kernel) {
  if (base.empty() || base.find('@') != std::string::npos) {
    return Status::InvalidArgument("invalid metric base name '" + base + "'");
  }
  if (!kernel.fn) {
    return Status::InvalidArgument("metric '" + base + "' has no kernel");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (kernels_.count(base) != 0) {
    return Status::FailedPrecondition("metric '" + base +
                                      "' is already registered");
  }
  kernels_[base] = std::move(kernel);
  return Status::OK();
}

Result<MetricSpec> MetricRegistry::Parse(const std::string& name) const {
  if (name.empty()) return Status::InvalidArgument("empty metric name");
  const size_t at = name.find('@');
  MetricSpec spec;
  spec.base = name.substr(0, at);
  Result<MetricKernel> kernel = Find(spec.base);
  if (!kernel.ok()) return kernel.status();
  spec.needs_insample = kernel->needs_insample;
  spec.needs_interval = kernel->needs_interval;
  if (at == std::string::npos) {
    spec.name = spec.base;
    spec.params = kernel->default_params;
    return spec;
  }
  if (kernel->max_params == 0) {
    return Status::InvalidArgument("metric '" + spec.base +
                                   "' takes no parameters");
  }
  std::string rest = name.substr(at + 1);
  size_t pos = 0;
  while (true) {
    const size_t plus = rest.find('+', pos);
    const std::string token =
        rest.substr(pos, plus == std::string::npos ? plus : plus - pos);
    Result<double> q = ParseQuantile(token, name);
    if (!q.ok()) return q.status();
    spec.params.push_back(*q);
    if (plus == std::string::npos) break;
    pos = plus + 1;
  }
  if (spec.params.size() < kernel->min_params ||
      spec.params.size() > kernel->max_params) {
    return Status::InvalidArgument(
        "metric '" + spec.base + "' takes between " +
        std::to_string(kernel->min_params) + " and " +
        std::to_string(kernel->max_params) + " parameters, got " +
        std::to_string(spec.params.size()));
  }
  spec.name = spec.base + "@";
  for (size_t i = 0; i < spec.params.size(); ++i) {
    if (i > 0) spec.name += '+';
    spec.name += FormatParam(spec.params[i]);
  }
  return spec;
}

Result<MetricKernel> MetricRegistry::Find(const std::string& base) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = kernels_.find(base);
  if (it == kernels_.end()) {
    return Status::NotFound("unknown metric '" + base + "'");
  }
  return it->second;
}

std::vector<std::string> MetricRegistry::BaseNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(kernels_.size());
  for (const auto& [name, kernel] : kernels_) names.push_back(name);
  return names;
}

const std::vector<std::string>& PinnedForecastMetrics() {
  static const std::vector<std::string>* pinned =
      new std::vector<std::string>{"r", "rse", "rmse", "nrmse"};
  return *pinned;
}

Result<std::vector<std::string>> CanonicalMetricNames(
    const std::vector<std::string>& names) {
  if (names.empty()) return Status::InvalidArgument("metric list is empty");
  std::vector<std::string> canonical;
  std::set<std::string> seen;
  for (const std::string& name : names) {
    Result<MetricSpec> spec = MetricRegistry::Global().Parse(name);
    if (!spec.ok()) return spec.status();
    if (seen.insert(spec->name).second) canonical.push_back(spec->name);
  }
  return canonical;
}

Result<std::vector<std::string>> ResolveMetricNames(
    const std::vector<std::string>& extra) {
  std::vector<std::string> resolved = PinnedForecastMetrics();
  std::set<std::string> seen(resolved.begin(), resolved.end());
  for (const std::string& name : extra) {
    Result<MetricSpec> spec = MetricRegistry::Global().Parse(name);
    if (!spec.ok()) return spec.status();
    if (seen.insert(spec->name).second) resolved.push_back(spec->name);
  }
  return resolved;
}

Result<std::vector<double>> EvaluateMetrics(
    const std::vector<std::string>& names, const MetricContext& ctx) {
  if (names.empty()) return Status::InvalidArgument("no metrics requested");
  if (ctx.actual == nullptr || ctx.predicted == nullptr) {
    return Status::InvalidArgument(
        "metric context is missing actual/predicted input");
  }
  std::vector<MetricSpec> specs;
  specs.reserve(names.size());
  bool needs_insample = false;
  bool needs_interval = false;
  for (const std::string& name : names) {
    Result<MetricSpec> spec = MetricRegistry::Global().Parse(name);
    if (!spec.ok()) return spec.status();
    needs_insample = needs_insample || spec->needs_insample;
    needs_interval = needs_interval || spec->needs_interval;
    specs.push_back(std::move(*spec));
  }
  // Non-finite inputs are rejected once up front (not per kernel), so every
  // metric sees the same contract regardless of evaluation order.
  if (Status s = CheckFinite(*ctx.actual, "actual", ctx); !s.ok()) return s;
  if (Status s = CheckFinite(*ctx.predicted, "predicted", ctx); !s.ok()) {
    return s;
  }
  if (needs_insample) {
    if (ctx.insample == nullptr || ctx.insample->empty()) {
      return Status::InvalidArgument(
          "metric requires an in-sample series, none provided for series '" +
          SeriesLabel(ctx) + "'");
    }
    if (Status s = CheckFinite(*ctx.insample, "in-sample", ctx); !s.ok()) {
      return s;
    }
  }
  if (needs_interval) {
    if (ctx.lower == nullptr || ctx.upper == nullptr) {
      return Status::InvalidArgument(
          "metric requires prediction-interval bounds, none provided for "
          "series '" +
          SeriesLabel(ctx) + "'");
    }
    if (Status s = CheckFinite(*ctx.lower, "lower-bound", ctx); !s.ok()) {
      return s;
    }
    if (Status s = CheckFinite(*ctx.upper, "upper-bound", ctx); !s.ok()) {
      return s;
    }
  }
  std::vector<double> values;
  values.reserve(specs.size());
  for (const MetricSpec& spec : specs) {
    Result<MetricKernel> kernel = MetricRegistry::Global().Find(spec.base);
    if (!kernel.ok()) return kernel.status();
    Result<double> value = kernel->fn(ctx, spec.params);
    if (!value.ok()) return value.status();
    values.push_back(*value);
  }
  return values;
}

}  // namespace lossyts
