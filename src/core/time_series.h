#ifndef LOSSYTS_CORE_TIME_SERIES_H_
#define LOSSYTS_CORE_TIME_SERIES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"

namespace lossyts {

/// A regular univariate time series (paper Definitions 1-2): values sampled
/// at a constant interval starting from a known timestamp.
///
/// All six evaluation datasets are regular, and the pointwise error-bounded
/// compressors rely on regularity to reconstruct timestamps from a compact
/// header (first timestamp + sampling interval + per-segment lengths), so the
/// representation stores the values densely and materializes timestamps on
/// demand.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Builds a series starting at `start_timestamp` (seconds since epoch) with
  /// `interval_seconds` between consecutive points.
  TimeSeries(int64_t start_timestamp, int32_t interval_seconds,
             std::vector<double> values)
      : start_(start_timestamp),
        interval_(interval_seconds),
        values_(std::move(values)) {}

  /// Number of data points.
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  int64_t start_timestamp() const { return start_; }
  int32_t interval_seconds() const { return interval_; }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  double operator[](size_t i) const { return values_[i]; }

  /// Timestamp of the i-th data point.
  int64_t TimestampAt(size_t i) const {
    return start_ + static_cast<int64_t>(i) * interval_;
  }

  /// Returns the sub-series covering points [begin, end) (paper Definition 3).
  /// Fails if the range is out of bounds or inverted.
  Result<TimeSeries> Slice(size_t begin, size_t end) const;

  /// Appends a value at the next regular timestamp.
  void Append(double value) { values_.push_back(value); }

  /// Descriptive statistics used by Table 1 and the rIQD analysis.
  struct Stats {
    size_t length = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double q1 = 0.0;      ///< 25th percentile.
    double median = 0.0;  ///< 50th percentile.
    double q3 = 0.0;      ///< 75th percentile.
    double variance = 0.0;
    /// Relative interquartile difference (Q3-Q1)/|mean| * 100, in percent.
    double riqd_percent = 0.0;
  };

  /// Computes descriptive statistics. Fails on an empty series.
  Result<Stats> ComputeStats() const;

 private:
  int64_t start_ = 0;
  int32_t interval_ = 1;
  std::vector<double> values_;
};

/// Linear-interpolation quantile of `sorted` (must be ascending, non-empty),
/// with q in [0, 1]. Matches the common "type 7" definition used by R/numpy.
double QuantileSorted(const std::vector<double>& sorted, double q);

}  // namespace lossyts

#endif  // LOSSYTS_CORE_TIME_SERIES_H_
