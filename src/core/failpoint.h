#ifndef LOSSYTS_CORE_FAILPOINT_H_
#define LOSSYTS_CORE_FAILPOINT_H_

#include <cstdint>
#include <string>

#include "core/status.h"

namespace lossyts {

/// Deterministic fault injection in the LevelDB/RocksDB failpoint style.
///
/// Production code marks named injection sites with LOSSYTS_FAILPOINT("site");
/// a site costs one relaxed atomic load when nothing is armed. Tests (or the
/// LOSSYTS_FAILPOINTS environment variable) arm a site to fail on the k-th
/// future hit, which turns "the compressor failed mid-sweep" from a code-review
/// argument into an executable scenario.
///
/// Sites currently wired in:
///   "compress"    — compress::RunPipeline, before the codec's Compress
///   "decompress"  — compress::RunPipeline, before the codec's Decompress
///   "train_step"  — forecast::NnForecaster::Fit, before each batch step
///   "cache_write" — eval::GridCheckpointWriter::Append, before the row write
///   "store_write" — store::StoreWriter, before each chunk frame and before
///                   the index/footer epilogue; on fire the writer leaves a
///                   genuinely torn half-frame on disk, the scenario the
///                   reader's salvage scan recovers from
///   "wal_write"   — serve::WalWriter::Append, before each record frame; on
///                   fire half the frame reaches the log and the writer is
///                   dead, the torn tail WAL replay must drop
///   "wal_fsync"   — serve::WalWriter::Sync, before the fsync that makes a
///                   batch of acked appends durable
///   "shard_flush" — serve::Shard checkpoint, before each per-series store
///                   rewrite and before the WAL reset, modelling a crash in
///                   the middle of a checkpoint (replay must stay idempotent)
///   "socket_write"— serve::WriteFrame, before the socket send, modelling a
///                   peer that dies between request and reply
///   "query_fetch" — query::QueryStoreDir, at the head of each per-series
///                   fetch task, modelling a store that dies mid-query (the
///                   first failure in canonical series order is surfaced)
///   "autodiff_backward_perturb" — nn::MatMul's backward; corrupts dA so the
///                   numcheck gradient oracle's seeded-fault drill has a
///                   real bug to catch (used as a trigger, not a Status)
class FailPoints {
 public:
  /// Arms `site`: hits are counted from 1, and hits `fire_on` through
  /// `fire_on + times - 1` fail with Status::Internal. Re-arming a site
  /// replaces the previous arming and resets its hit counter.
  static void Arm(const std::string& site, uint64_t fire_on,
                  uint64_t times = 1);

  /// Disarms one site (its hit counter is discarded).
  static void Disarm(const std::string& site);

  /// Disarms every site; tests call this in TearDown so armings never leak.
  static void DisarmAll();

  /// Counts a hit at `site`; returns a non-OK Internal status exactly when the
  /// site is armed and the hit falls in the firing window. Prefer the
  /// LOSSYTS_FAILPOINT macro at call sites.
  static Status Hit(const char* site);

  /// Hits recorded at `site` since it was last armed (0 when not armed).
  static uint64_t HitCount(const std::string& site);

  /// Parses an arming spec: comma- or semicolon-separated `site@k` or
  /// `site@kxN` entries, e.g. "compress@2,train_step@1x3". Malformed entries
  /// are ignored. The LOSSYTS_FAILPOINTS environment variable is parsed with
  /// this at startup so recovery paths can be exercised from the CLI.
  static void ArmFromSpec(const std::string& spec);
};

}  // namespace lossyts

/// Injection site marker: fails the enclosing function (returning Status or
/// Result<T>) when the site is armed and firing; a no-op otherwise.
#define LOSSYTS_FAILPOINT(site)                                        \
  do {                                                                 \
    ::lossyts::Status lossyts_failpoint_status =                       \
        ::lossyts::FailPoints::Hit(site);                              \
    if (!lossyts_failpoint_status.ok()) return lossyts_failpoint_status; \
  } while (0)

#endif  // LOSSYTS_CORE_FAILPOINT_H_
