#include "core/failpoint.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

namespace lossyts {

namespace {

struct Arming {
  uint64_t fire_on = 0;
  uint64_t times = 0;
  uint64_t hits = 0;
};

std::mutex& Mutex() {
  static std::mutex& mu = *new std::mutex;
  return mu;
}

std::map<std::string, Arming>& Sites() {
  static std::map<std::string, Arming>& sites = *new std::map<std::string, Arming>;
  return sites;
}

// Fast-path flag so unarmed sites cost one relaxed load, not a lock.
std::atomic<bool>& AnyArmed() {
  static std::atomic<bool>& flag = *new std::atomic<bool>(false);
  return flag;
}

// Arms from LOSSYTS_FAILPOINTS once, before main touches any site.
const bool g_env_armed = [] {
  if (const char* spec = std::getenv("LOSSYTS_FAILPOINTS")) {
    FailPoints::ArmFromSpec(spec);
  }
  return true;
}();

}  // namespace

void FailPoints::Arm(const std::string& site, uint64_t fire_on,
                     uint64_t times) {
  if (site.empty() || fire_on == 0 || times == 0) return;
  std::lock_guard<std::mutex> lock(Mutex());
  Sites()[site] = Arming{fire_on, times, 0};
  AnyArmed().store(true, std::memory_order_relaxed);
}

void FailPoints::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mutex());
  Sites().erase(site);
  AnyArmed().store(!Sites().empty(), std::memory_order_relaxed);
}

void FailPoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  Sites().clear();
  AnyArmed().store(false, std::memory_order_relaxed);
}

Status FailPoints::Hit(const char* site) {
  if (!AnyArmed().load(std::memory_order_relaxed)) return Status::OK();
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Sites().find(site);
  if (it == Sites().end()) return Status::OK();
  Arming& arming = it->second;
  ++arming.hits;
  if (arming.hits >= arming.fire_on &&
      arming.hits < arming.fire_on + arming.times) {
    return Status::Internal("failpoint " + std::string(site) + " fired (hit " +
                            std::to_string(arming.hits) + ")");
  }
  return Status::OK();
}

uint64_t FailPoints::HitCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Sites().find(site);
  return it == Sites().end() ? 0 : it->second.hits;
}

void FailPoints::ArmFromSpec(const std::string& spec) {
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find_first_of(",;", begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    const size_t at = entry.find('@');
    if (at == std::string::npos || at == 0) continue;
    const std::string site = entry.substr(0, at);
    const std::string counts = entry.substr(at + 1);
    char* rest = nullptr;
    const unsigned long long fire_on =
        std::strtoull(counts.c_str(), &rest, 10);
    if (rest == counts.c_str() || fire_on == 0) continue;
    unsigned long long times = 1;
    if (*rest == 'x') {
      char* times_end = nullptr;
      times = std::strtoull(rest + 1, &times_end, 10);
      if (times_end == rest + 1 || times == 0) continue;
    } else if (*rest != '\0') {
      continue;
    }
    Arm(site, fire_on, times);
  }
}

}  // namespace lossyts
