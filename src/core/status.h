#ifndef LOSSYTS_CORE_STATUS_H_
#define LOSSYTS_CORE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace lossyts {

/// Error codes used across the library. Fallible public APIs never throw;
/// they return Status (or Result<T> when a value is produced).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kCorruption,
  kNotFound,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kUnavailable,
};

/// Lightweight status object in the RocksDB style: a code plus a
/// human-readable message. Copyable and cheap when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  /// Transient overload: the caller should back off and retry (the serve
  /// daemon's admission-control and deadline replies map to this code).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or a non-OK Status. Access to the value
/// of a failed result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace lossyts

#endif  // LOSSYTS_CORE_STATUS_H_
