#ifndef LOSSYTS_CORE_PROGRESS_H_
#define LOSSYTS_CORE_PROGRESS_H_

#include <cstdio>

namespace lossyts {

/// Mutex-guarded progress reporting for anything that logs from concurrent
/// stages. Each Printf() formats into a private buffer and writes it with a
/// single fwrite under a global lock, so parallel grid cells cannot shred
/// each other's lines the way raw fprintf(stderr, ...) interleaving does.
class Progress {
 public:
  /// printf-style; the caller includes the trailing '\n'. The formatted line
  /// is written atomically with respect to other Printf() calls.
  static void Printf(const char* format, ...)
#if defined(__GNUC__) || defined(__clang__)
      __attribute__((format(printf, 1, 2)))
#endif
      ;

  /// Redirects output (default: stderr). Pass nullptr to restore stderr.
  /// Tests point this at a tmpfile to assert line atomicity.
  static void SetStreamForTest(std::FILE* stream);

 private:
  Progress() = delete;
};

}  // namespace lossyts

#endif  // LOSSYTS_CORE_PROGRESS_H_
