#include "core/thread_pool.h"

#include "core/seed.h"

namespace lossyts {

namespace {

// Index of the worker running on this thread, or -1 on external threads.
// thread_local rather than a member so nested Submit() calls from inside a
// task can find their home queue without a map lookup.
thread_local int t_worker_index = -1;
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

int ThreadPool::DefaultJobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int jobs) {
  if (jobs == 0) jobs = DefaultJobs();
  if (jobs <= 1) {
    inline_mode_ = true;
    return;
  }
  queues_.reserve(static_cast<size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(jobs));
  for (int i = 0; i < jobs; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  if (inline_mode_) return;
  Wait();
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunTask(std::function<void()>& task) {
  task();
  std::lock_guard<std::mutex> lock(pending_mu_);
  if (--pending_ == 0) pending_cv_.notify_all();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    ++pending_;
  }
  if (inline_mode_) {
    // Inline mode: run now, on this thread. Children submitted by the task
    // run nested, giving depth-first execution in dependency order.
    RunTask(task);
    return;
  }
  size_t target;
  if (t_worker_pool == this && t_worker_index >= 0) {
    target = static_cast<size_t>(t_worker_index);
  } else {
    std::lock_guard<std::mutex> lock(submit_mu_);
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  idle_cv_.notify_one();
}

bool ThreadPool::TryRunOne(size_t index) {
  std::function<void()> task;
  // Own queue first, newest task (LIFO): DAG children land here and their
  // inputs are still warm.
  {
    std::lock_guard<std::mutex> lock(queues_[index]->mu);
    if (!queues_[index]->tasks.empty()) {
      task = std::move(queues_[index]->tasks.back());
      queues_[index]->tasks.pop_back();
    }
  }
  if (!task) {
    // Steal FIFO from a deterministic-per-worker but well-spread victim
    // order; stealing the oldest task grabs the root of the largest
    // unstarted subtree.
    Rng rng(TagSeed(index, "thread-pool-victim"));
    const size_t n = queues_.size();
    const size_t start = static_cast<size_t>(rng.NextU64() % n);
    for (size_t step = 0; step < n && !task; ++step) {
      const size_t victim = (start + step) % n;
      if (victim == index) continue;
      std::lock_guard<std::mutex> lock(queues_[victim]->mu);
      if (!queues_[victim]->tasks.empty()) {
        task = std::move(queues_[victim]->tasks.front());
        queues_[victim]->tasks.pop_front();
      }
    }
  }
  if (!task) return false;
  RunTask(task);
  return true;
}

void ThreadPool::WorkerLoop(size_t index) {
  t_worker_index = static_cast<int>(index);
  t_worker_pool = this;
  for (;;) {
    if (TryRunOne(index)) continue;
    std::unique_lock<std::mutex> lock(idle_mu_);
    if (stop_) return;
    // Timed wait instead of precise wakeup bookkeeping: a submit between the
    // failed scan and this wait costs at most one timeout period.
    idle_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void ThreadPool::Wait() {
  if (inline_mode_) return;  // Submit() already ran everything.
  std::unique_lock<std::mutex> lock(pending_mu_);
  pending_cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace lossyts
