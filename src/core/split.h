#ifndef LOSSYTS_CORE_SPLIT_H_
#define LOSSYTS_CORE_SPLIT_H_

#include "core/status.h"
#include "core/time_series.h"

namespace lossyts {

/// Chronological train/validation/test partition of a series.
struct TrainValTest {
  TimeSeries train;
  TimeSeries val;
  TimeSeries test;
};

/// Options for SplitSeries. Defaults follow the paper (§3.4): 70% train,
/// 10% validation, 20% test, split chronologically.
struct SplitOptions {
  double train_fraction = 0.70;
  double val_fraction = 0.10;
  // Test gets the remainder.
};

/// Splits `series` chronologically. Fails if fractions are out of range or
/// any partition would be empty.
Result<TrainValTest> SplitSeries(const TimeSeries& series,
                                 const SplitOptions& options = {});

}  // namespace lossyts

#endif  // LOSSYTS_CORE_SPLIT_H_
