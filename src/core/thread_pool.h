#ifndef LOSSYTS_CORE_THREAD_POOL_H_
#define LOSSYTS_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lossyts {

/// Work-stealing thread pool shared by the evaluation stage DAG.
///
/// Each worker owns a deque: it pushes and pops its own tasks LIFO (good
/// locality for DAG nodes that spawn their children), while idle workers
/// steal FIFO from a victim's other end, so the oldest — typically largest —
/// subtrees migrate first. External threads submit round-robin across the
/// worker deques.
///
/// `jobs <= 1` puts the pool in *inline mode*: no threads are started and
/// Submit() runs the task on the calling thread before returning. Inline
/// mode keeps single-job runs free of thread overhead and makes their
/// execution order exactly the submission/dependency-resolution order, which
/// is what the grid's sequential-equivalence tests pin down.
///
/// Tasks must not throw; a task may call Submit() to schedule follow-up work
/// (DAG children), and Wait() accounts for such nested submissions.
class ThreadPool {
 public:
  /// `jobs` is the worker-thread count; <= 1 selects inline mode and 0 is
  /// remapped to DefaultJobs().
  explicit ThreadPool(int jobs);

  /// Drains remaining tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `task`. Worker threads push onto their own deque; external
  /// threads distribute round-robin. Inline mode runs the task immediately.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task — including tasks submitted by other
  /// tasks — has finished. Safe to call repeatedly.
  void Wait();

  /// Resolved parallelism: 1 in inline mode, else the worker count.
  int jobs() const { return inline_mode_ ? 1 : static_cast<int>(workers_.size()); }

  /// Hardware concurrency with a floor of 1, the `--jobs 0` resolution.
  static int DefaultJobs();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t index);
  bool TryRunOne(size_t index);
  void RunTask(std::function<void()>& task);

  bool inline_mode_ = false;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;  // Wakes sleeping workers on Submit.
  bool stop_ = false;

  std::mutex pending_mu_;
  std::condition_variable pending_cv_;  // Signals Wait() when drained.
  uint64_t pending_ = 0;

  std::mutex submit_mu_;
  size_t next_queue_ = 0;  // Round-robin cursor for external submits.
};

}  // namespace lossyts

#endif  // LOSSYTS_CORE_THREAD_POOL_H_
