#include "core/split.h"

#include <string>

namespace lossyts {

Result<TrainValTest> SplitSeries(const TimeSeries& series,
                                 const SplitOptions& options) {
  if (options.train_fraction <= 0.0 || options.val_fraction < 0.0 ||
      options.train_fraction + options.val_fraction >= 1.0) {
    return Status::InvalidArgument("invalid split fractions");
  }
  const size_t n = series.size();
  const size_t n_train = static_cast<size_t>(
      static_cast<double>(n) * options.train_fraction);
  const size_t n_val = static_cast<size_t>(
      static_cast<double>(n) * options.val_fraction);
  const size_t n_test = n - n_train - n_val;
  if (n_train == 0 || n_test == 0) {
    return Status::FailedPrecondition(
        "series of length " + std::to_string(n) + " too short to split");
  }
  TrainValTest out;
  Result<TimeSeries> train = series.Slice(0, n_train);
  if (!train.ok()) return train.status();
  out.train = std::move(*train);
  Result<TimeSeries> val = series.Slice(n_train, n_train + n_val);
  if (!val.ok()) return val.status();
  out.val = std::move(*val);
  Result<TimeSeries> test = series.Slice(n_train + n_val, n);
  if (!test.ok()) return test.status();
  out.test = std::move(*test);
  return out;
}

}  // namespace lossyts
