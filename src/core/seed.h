#ifndef LOSSYTS_CORE_SEED_H_
#define LOSSYTS_CORE_SEED_H_

#include <cstdint>
#include <string_view>

#include "core/rng.h"

namespace lossyts {

// Deterministic seed-stream derivation.
//
// Every stochastic stage of the evaluation grid draws its seed from the
// *identity* of the work, never from execution order, so a sweep produces
// bit-identical records whether its cells run sequentially or on a thread
// pool. RetrySeed() in eval/grid.h is the original instance of this scheme
// (retry attempt -> fresh stream); MixSeed/TagSeed generalize it to any
// integer or string identity component.

/// Derives an independent stream from `base` and an integer identity
/// component (retry attempt, worker index, shard number). MixSeed(base, 0)
/// is *not* base: every salt, including 0, selects a scrambled stream.
inline uint64_t MixSeed(uint64_t base, uint64_t salt) {
  Rng rng(base ^ (salt * 0x9E3779B97F4A7C15ULL));
  return rng.NextU64();
}

/// FNV-1a over `tag`, the string half of an identity ("dataset|model|...").
inline uint64_t HashTag(std::string_view tag) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : tag) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Derives an independent stream from `base` and a string identity, e.g.
/// TagSeed(cell_seed, "ETTm1|DLinear|PMC"). Deterministic across platforms.
inline uint64_t TagSeed(uint64_t base, std::string_view tag) {
  return MixSeed(base, HashTag(tag));
}

}  // namespace lossyts

#endif  // LOSSYTS_CORE_SEED_H_
