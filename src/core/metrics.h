#ifndef LOSSYTS_CORE_METRICS_H_
#define LOSSYTS_CORE_METRICS_H_

#include <vector>

#include "core/status.h"

namespace lossyts {

/// Distance and similarity metrics from paper §3.5 (Eq. 4-5). In every
/// function, `x` is the reference (raw/actual) series and `y` the compared
/// (predicted or decompressed) series; both must be equal-length, non-empty.

/// Root Mean Square Error.
Result<double> Rmse(const std::vector<double>& x, const std::vector<double>& y);

/// RMSE normalized by the range of the reference series: RMSE / (max(x)-min(x)).
Result<double> Nrmse(const std::vector<double>& x, const std::vector<double>& y);

/// Root Relative Squared Error: sqrt(sum (x-y)^2) / sqrt(sum (x-mean(x))^2).
Result<double> Rse(const std::vector<double>& x, const std::vector<double>& y);

/// Pearson correlation coefficient.
Result<double> PearsonR(const std::vector<double>& x,
                        const std::vector<double>& y);

/// Mean Absolute Error.
Result<double> Mae(const std::vector<double>& x, const std::vector<double>& y);

/// Maximum absolute pointwise deviation (the L-infinity distance); used to
/// verify compressor error-bound guarantees.
Result<double> MaxAbsError(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Maximum relative pointwise deviation max_i |x_i - y_i| / |x_i|, with a
/// small-denominator guard matching the relative error-bound definition used
/// by the compressors (see compress/compressor.h).
Result<double> MaxRelError(const std::vector<double>& x,
                           const std::vector<double>& y);

/// The four paper metrics (and everything beyond them) are evaluated by name
/// through the pluggable registry in core/metric_registry.h; the fixed
/// MetricSet bundle this header used to define is gone.

}  // namespace lossyts

#endif  // LOSSYTS_CORE_METRICS_H_
