#ifndef LOSSYTS_CORE_RNG_H_
#define LOSSYTS_CORE_RNG_H_

#include <cmath>
#include <cstdint>

namespace lossyts {

/// Deterministic, seedable pseudo-random generator (SplitMix64).
///
/// Every stochastic component in the library (dataset generators, model weight
/// initialization, dropout, gradient-boosting subsampling) takes an explicit
/// Rng so that runs are reproducible bit-for-bit across platforms. The
/// standard library distributions are avoided on purpose: their outputs are
/// implementation-defined.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) { return NextU64() % n; }

  /// Standard normal via Box-Muller (uses two uniforms per pair; the spare is
  /// cached).
  double Normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = Uniform();
    double u2 = Uniform();
    // Guard against log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// Derives an independent child generator; useful for giving each model
  /// replica its own stream.
  Rng Fork() { return Rng(NextU64()); }

 private:
  uint64_t state_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace lossyts

#endif  // LOSSYTS_CORE_RNG_H_
