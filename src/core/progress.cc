#include "core/progress.h"

#include <cstdarg>
#include <mutex>
#include <string>
#include <vector>

namespace lossyts {

namespace {

std::mutex& Mutex() {
  static std::mutex& mu = *new std::mutex;
  return mu;
}

std::FILE*& Stream() {
  static std::FILE* stream = nullptr;
  return stream;
}

}  // namespace

void Progress::Printf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list measure;
  va_copy(measure, args);
  const int needed = std::vsnprintf(nullptr, 0, format, measure);
  va_end(measure);
  if (needed < 0) {
    va_end(args);
    return;
  }
  std::vector<char> buffer(static_cast<size_t>(needed) + 1);
  std::vsnprintf(buffer.data(), buffer.size(), format, args);
  va_end(args);

  std::lock_guard<std::mutex> lock(Mutex());
  std::FILE* out = Stream() != nullptr ? Stream() : stderr;
  std::fwrite(buffer.data(), 1, static_cast<size_t>(needed), out);
  std::fflush(out);
}

void Progress::SetStreamForTest(std::FILE* stream) {
  std::lock_guard<std::mutex> lock(Mutex());
  Stream() = stream;
}

}  // namespace lossyts
