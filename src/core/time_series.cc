#include "core/time_series.h"

#include <algorithm>
#include <cmath>

namespace lossyts {

Result<TimeSeries> TimeSeries::Slice(size_t begin, size_t end) const {
  if (begin > end || end > values_.size()) {
    return Status::OutOfRange("Slice(" + std::to_string(begin) + ", " +
                              std::to_string(end) + ") on series of length " +
                              std::to_string(values_.size()));
  }
  std::vector<double> vals(values_.begin() + begin, values_.begin() + end);
  return TimeSeries(TimestampAt(begin), interval_, std::move(vals));
}

double QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Result<TimeSeries::Stats> TimeSeries::ComputeStats() const {
  if (values_.empty()) {
    return Status::FailedPrecondition("ComputeStats on empty series");
  }
  Stats s;
  s.length = values_.size();
  double sum = 0.0;
  double mn = values_[0];
  double mx = values_[0];
  for (double v : values_) {
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  s.mean = sum / static_cast<double>(values_.size());
  s.min = mn;
  s.max = mx;
  double ss = 0.0;
  for (double v : values_) {
    const double d = v - s.mean;
    ss += d * d;
  }
  s.variance = ss / static_cast<double>(values_.size());

  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  s.q1 = QuantileSorted(sorted, 0.25);
  s.median = QuantileSorted(sorted, 0.50);
  s.q3 = QuantileSorted(sorted, 0.75);
  const double denom = std::abs(s.mean) > 1e-12 ? std::abs(s.mean) : 1e-12;
  s.riqd_percent = (s.q3 - s.q1) / denom * 100.0;
  return s;
}

}  // namespace lossyts
