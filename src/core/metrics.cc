#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace lossyts {

namespace {

Status CheckSameNonEmpty(const std::vector<double>& x,
                         const std::vector<double>& y) {
  if (x.empty()) return Status::InvalidArgument("metric input is empty");
  if (x.size() != y.size()) {
    return Status::InvalidArgument(
        "metric inputs have different lengths: " + std::to_string(x.size()) +
        " vs " + std::to_string(y.size()));
  }
  return Status::OK();
}

double Mean(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace

Result<double> Rmse(const std::vector<double>& x,
                    const std::vector<double>& y) {
  if (Status s = CheckSameNonEmpty(x, y); !s.ok()) return s;
  double ss = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(x.size()));
}

Result<double> Nrmse(const std::vector<double>& x,
                     const std::vector<double>& y) {
  Result<double> rmse = Rmse(x, y);
  if (!rmse.ok()) return rmse.status();
  const auto [mn, mx] = std::minmax_element(x.begin(), x.end());
  const double range = *mx - *mn;
  if (range <= 0.0) {
    return Status::FailedPrecondition("NRMSE undefined: reference is constant");
  }
  return *rmse / range;
}

Result<double> Rse(const std::vector<double>& x, const std::vector<double>& y) {
  if (Status s = CheckSameNonEmpty(x, y); !s.ok()) return s;
  const double mean_x = Mean(x);
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    num += d * d;
    const double c = x[i] - mean_x;
    den += c * c;
  }
  if (den <= 0.0) {
    return Status::FailedPrecondition("RSE undefined: reference is constant");
  }
  return std::sqrt(num) / std::sqrt(den);
}

Result<double> PearsonR(const std::vector<double>& x,
                        const std::vector<double>& y) {
  if (Status s = CheckSameNonEmpty(x, y); !s.ok()) return s;
  const double mean_x = Mean(x);
  const double mean_y = Mean(y);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return Status::FailedPrecondition("PearsonR undefined: constant input");
  }
  return sxy / (std::sqrt(sxx) * std::sqrt(syy));
}

Result<double> Mae(const std::vector<double>& x, const std::vector<double>& y) {
  if (Status s = CheckSameNonEmpty(x, y); !s.ok()) return s;
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) sum += std::abs(x[i] - y[i]);
  return sum / static_cast<double>(x.size());
}

Result<double> MaxAbsError(const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (Status s = CheckSameNonEmpty(x, y); !s.ok()) return s;
  double mx = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    mx = std::max(mx, std::abs(x[i] - y[i]));
  }
  return mx;
}

Result<double> MaxRelError(const std::vector<double>& x,
                           const std::vector<double>& y) {
  if (Status s = CheckSameNonEmpty(x, y); !s.ok()) return s;
  double mx = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double denom = std::max(std::abs(x[i]), 1e-12);
    mx = std::max(mx, std::abs(x[i] - y[i]) / denom);
  }
  return mx;
}

}  // namespace lossyts
