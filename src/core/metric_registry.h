#ifndef LOSSYTS_CORE_METRIC_REGISTRY_H_
#define LOSSYTS_CORE_METRIC_REGISTRY_H_

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"

namespace lossyts {

/// Inputs a metric kernel may consume. `actual` and `predicted` are always
/// required; the optional vectors exist for metrics that need more than the
/// point forecast (MASE needs the training in-sample series, coverage needs
/// a prediction interval). `series` labels error messages only.
struct MetricContext {
  const std::vector<double>* actual = nullptr;
  const std::vector<double>* predicted = nullptr;
  /// In-sample (training) values for scaled metrics such as MASE.
  const std::vector<double>* insample = nullptr;
  /// Seasonal naive lag used by MASE's in-sample scale (clamped to >= 1).
  int season_length = 1;
  /// Prediction-interval bounds for coverage, aligned with `actual`.
  const std::vector<double>* lower = nullptr;
  const std::vector<double>* upper = nullptr;
  std::string series;
};

/// One registered metric family. The kernel receives the context plus the
/// parsed `@`-parameters (quantiles); parameter arity is validated at parse
/// time against [min_params, max_params], so kernels may assume it.
struct MetricKernel {
  std::function<Result<double>(const MetricContext&,
                               const std::vector<double>&)>
      fn;
  bool needs_insample = false;
  bool needs_interval = false;
  size_t min_params = 0;
  size_t max_params = 0;
  /// Parameters used when the metric is named bare (e.g. `pinball` means
  /// `pinball@0.5`, bare `crps` means a dense 0.05..0.95 quantile grid).
  std::vector<double> default_params;
};

/// A parsed metric name: `base[@p1+p2+...]`. Parameters are quantiles in
/// (0, 1), '+'-separated because metric lists themselves are ','-separated
/// on the CLI. `name` is the canonical spelling (parameters reformatted), so
/// equal specs always compare equal as strings.
struct MetricSpec {
  std::string name;
  std::string base;
  std::vector<double> params;
  bool needs_insample = false;
  bool needs_interval = false;
};

/// Name -> kernel table. Process-global via Global(); tests and downstream
/// code may Register() additional metrics, which then work everywhere a
/// metric name is accepted (grid --metrics, lossyts query, serve).
class MetricRegistry {
 public:
  /// The global registry, with all built-in metrics pre-registered:
  /// r, rse, rmse, nrmse, mae, mse, mape, smape, bias, mase,
  /// pinball[@q], crps[@q1+q2+...], coverage.
  static MetricRegistry& Global();

  /// Registers a metric family under `base` (no '@' allowed).
  /// FailedPrecondition if the name is taken.
  Status Register(const std::string& base, MetricKernel kernel);

  /// Parses `name` into a canonical spec, validating that the base exists,
  /// the parameter arity is in range and every parameter is a quantile in
  /// (0, 1).
  Result<MetricSpec> Parse(const std::string& name) const;

  /// Looks up the kernel for a base name (no parameters).
  Result<MetricKernel> Find(const std::string& base) const;

  /// Registered base names, sorted.
  std::vector<std::string> BaseNames() const;

 private:
  MetricRegistry();

  mutable std::mutex mu_;
  std::map<std::string, MetricKernel> kernels_;
};

/// Indices of the pinned paper metrics inside every resolved metric vector.
inline constexpr size_t kMetricR = 0;
inline constexpr size_t kMetricRse = 1;
inline constexpr size_t kMetricRmse = 2;
inline constexpr size_t kMetricNrmse = 3;

/// The four paper §3.5 metrics every grid record always carries, in order.
const std::vector<std::string>& PinnedForecastMetrics();

/// Resolves a metric-name list for the grid: the pinned four first, then
/// every canonicalized extra (unknown names and bad parameters are errors;
/// duplicates, including of the pinned four, are dropped).
Result<std::vector<std::string>> ResolveMetricNames(
    const std::vector<std::string>& extra);

/// Parses + canonicalizes a free-standing metric list (no pinned prefix),
/// deduplicating while preserving order. Empty input is an error.
Result<std::vector<std::string>> CanonicalMetricNames(
    const std::vector<std::string>& names);

/// Evaluates every named metric against the context, in order. All inputs
/// are validated up front: non-finite values are rejected with an
/// InvalidArgument naming the first offending index (the StandardScaler::Fit
/// convention), and a metric whose required context vector is missing fails
/// rather than silently degrading.
Result<std::vector<double>> EvaluateMetrics(
    const std::vector<std::string>& names, const MetricContext& ctx);

}  // namespace lossyts

#endif  // LOSSYTS_CORE_METRIC_REGISTRY_H_
