#!/usr/bin/env bash
# CI entry point: builds and tests the plain configuration, then rebuilds
# under ASan and UBSan (LOSSYTS_SANITIZE, see the top-level CMakeLists.txt)
# so the decoder robustness and failpoint-recovery paths are memory-checked,
# not just status-checked, and finally under TSan to race-check the thread
# pool, the progress reporter and the parallel grid's determinism tests.
#
# Usage: tools/ci.sh [build-root]          (default: ci-build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_ROOT="${1:-ci-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_config() {
  local name="$1" sanitize="$2" filter="${3:-}"
  local dir="${BUILD_ROOT}/${name}"
  echo "=== ${name} (LOSSYTS_SANITIZE='${sanitize}') ==="
  cmake -B "${dir}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DLOSSYTS_SANITIZE="${sanitize}"
  cmake --build "${dir}" -j "${JOBS}"
  if [[ -n "${filter}" ]]; then
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -R "${filter}"
  else
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
    # Codec conformance smoke: adversarial corpus x codecs x error bounds
    # through the pointwise-bound oracles plus decoder fuzzing. CI keeps the
    # grid small (2 cases per family); for a soak, set LOSSYTS_CONFORM_ITERS
    # to 8+ (>= 6 also cycles the whole "lengths" family across the u16
    # segment cap). The variable feeds both this smoke leg and the
    # ConformanceTest.FullGridIsClean ctest above.
    "${dir}/tools/lossyts" conform --cases "${LOSSYTS_CONFORM_ITERS:-2}"
    # Numerics conformance smoke: finite-difference gradient oracles over the
    # autodiff ops and forecaster networks, closed-form analysis oracles, and
    # the training-determinism drill. CI keeps it small (2 seeded cases per
    # component); for a soak set LOSSYTS_NUMCHECK_ITERS to 8+. The variable
    # also sizes NumCheckTest.FullRunIsClean in the ctest pass above. Runs in
    # the plain, ASan, and UBSan legs, so the gradient math is also checked
    # for UB (signed overflow, bad shifts) and memory errors.
    "${dir}/tools/lossyts" numcheck --iters "${LOSSYTS_NUMCHECK_ITERS:-2}"
    # Chunk store smoke: ingest a dataset, answer an aggregate by segment
    # pushdown and by full decode, and verify every reconstructed point
    # against the raw data under the conform bound oracle. Runs in the
    # plain, ASan, and UBSan legs, so the frame parser and salvage scan are
    # memory-checked too. LOSSYTS_STORE_ITERS picks how many error bounds
    # the loop covers (default 1; the full list is 0.01 0.05 0.2).
    local store_bounds=(0.05 0.01 0.2)
    local store_iters="${LOSSYTS_STORE_ITERS:-1}"
    for eb in "${store_bounds[@]:0:${store_iters}}"; do
      local lts="${dir}/store_smoke_${eb}.lts"
      "${dir}/tools/lossyts" store ingest PMC,SWING,SZ,GORILLA "${eb}" \
        Solar "${lts}"
      "${dir}/tools/lossyts" store query "${lts}" MEAN
      "${dir}/tools/lossyts" store query "${lts}" MEAN --no-pushdown
      "${dir}/tools/lossyts" store verify "${lts}" Solar
    done
  fi
}

run_config plain ""
ASAN_OPTIONS=detect_leaks=0 run_config asan address
UBSAN_OPTIONS=halt_on_error=1 run_config ubsan undefined
# TSan is restricted to the concurrency suite: the pool, the progress
# reporter, the artifact store and the parallel-vs-sequential grid tests
# exercise every cross-thread edge, and a full TSan run of the NN training
# tests would dominate CI time without touching more shared state.
TSAN_OPTIONS=halt_on_error=1 run_config tsan thread \
  'ThreadPoolTest|ProgressTest|SeedTest|GridConcurrencyTest|ArtifactStoreTest|StoreConcurrencyTest'

echo "=== ci.sh: all configurations passed ==="
