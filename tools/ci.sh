#!/usr/bin/env bash
# CI entry point: builds and tests the plain configuration, then rebuilds
# under ASan and UBSan (LOSSYTS_SANITIZE, see the top-level CMakeLists.txt)
# so the decoder robustness and failpoint-recovery paths are memory-checked,
# not just status-checked, and finally under TSan to race-check the thread
# pool, the progress reporter and the parallel grid's determinism tests.
#
# Usage: tools/ci.sh [build-root]          (default: ci-build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_ROOT="${1:-ci-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# Serve-daemon crash smoke, run in every leg (so the WAL replay and socket
# paths are also sanitizer-checked): start `lossyts serve`, drive mixed
# traffic, SIGKILL the daemon mid-ingest, reopen the catalog and verify that
# every acked append survived and only whole ops are visible. Iterations via
# LOSSYTS_SERVE_ITERS (default 1). Fails fast if a leg leaves a daemon
# process behind.
serve_smoke() {
  local dir="$1"
  local bin="${dir}/tools/lossyts"
  local iters="${LOSSYTS_SERVE_ITERS:-1}"
  local i
  for ((i = 0; i < iters; ++i)); do
    local catalog="${dir}/serve_smoke_${i}"
    local sock="${catalog}.sock"
    local log="${catalog}.log"
    rm -rf "${catalog}" "${sock}"

    # Phase 1: daemon up, mixed traffic, then SIGKILL mid-ingest.
    "${bin}" serve "${catalog}" --socket "${sock}" --shards 2 \
      --codecs GORILLA >"${log}" 2>&1 &
    local pid=$!
    local up=0 t
    for ((t = 0; t < 150; ++t)); do
      if [[ -S "${sock}" ]]; then up=1; break; fi
      sleep 0.1
    done
    if [[ "${up}" != 1 ]]; then
      echo "serve_smoke: daemon never came up"; cat "${log}"; return 1
    fi
    "${bin}" client "${sock}" ping >/dev/null
    local b
    for b in 0 1 2 3; do
      "${bin}" client "${sock}" append smoke $((b * 180)) 60 \
        1.5,2.5,-3.5 >/dev/null
      "${bin}" client "${sock}" read smoke 0 100000 >/dev/null
    done
    "${bin}" client "${sock}" stats >/dev/null
    # Burst feeder: one point per op, value == index; it records every ack,
    # and the daemon is killed -9 while the stream is live.
    local acked_file="${catalog}.acked"
    echo 0 >"${acked_file}"
    (
      n=0
      while "${bin}" client "${sock}" append burst $((n * 60)) 60 "${n}" \
          >/dev/null 2>&1; do
        n=$((n + 1))
        echo "${n}" >"${acked_file}"
      done
    ) &
    local feeder=$!
    sleep 1
    kill -9 "${pid}" 2>/dev/null || true
    wait "${pid}" 2>/dev/null || true
    wait "${feeder}" 2>/dev/null || true
    local acked
    acked="$(cat "${acked_file}")"

    # Phase 2: reopen the catalog; the durability contract must hold.
    rm -f "${sock}"
    "${bin}" serve "${catalog}" --socket "${sock}" --shards 2 \
      --codecs GORILLA >"${log}" 2>&1 &
    pid=$!
    up=0
    for ((t = 0; t < 150; ++t)); do
      if [[ -S "${sock}" ]]; then up=1; break; fi
      sleep 0.1
    done
    if [[ "${up}" != 1 ]]; then
      echo "serve_smoke: reopened daemon never came up"; cat "${log}"
      return 1
    fi
    local smoke_lines
    smoke_lines="$("${bin}" client "${sock}" read smoke 0 1000000 | wc -l)"
    if [[ "${smoke_lines}" -ne 12 ]]; then
      echo "serve_smoke: smoke series has ${smoke_lines} points, wanted 12"
      return 1
    fi
    local burst
    burst="$({ "${bin}" client "${sock}" read burst 0 100000000 \
      || true; } 2>/dev/null | wc -l)"
    if [[ "${burst}" -lt "${acked}" ]]; then
      echo "serve_smoke: lost acked writes (${burst} recovered < ${acked})"
      return 1
    fi
    if [[ "${burst}" -gt 0 ]]; then
      local last expected_last
      last="$("${bin}" client "${sock}" read burst 0 100000000 | tail -1)"
      expected_last="$(((burst - 1) * 60)),$((burst - 1))"
      if [[ "${last}" != "${expected_last}" ]]; then
        echo "serve_smoke: burst tail '${last}' != '${expected_last}'"
        return 1
      fi
    fi
    "${bin}" client "${sock}" shutdown >/dev/null
    wait "${pid}"
    echo "serve_smoke[${i}]: acked ${acked} burst ops, recovered ${burst}"
  done
  if pgrep -f "${bin} serve" >/dev/null 2>&1; then
    echo "serve_smoke: daemon process left behind after the leg"
    pkill -9 -f "${bin} serve" || true
    return 1
  fi
}

# Grouped-query smoke, run in every leg: build a directory of store pairs
# (`<name>.lts` + `<name>.pred.lts`), run the same grouped-metric query at
# --jobs 1 and --jobs 4, and require byte-identical output — the query
# layer's determinism contract, here sanitizer-checked as well. Also runs an
# aggregate-only query, which must be answerable by segment pushdown alone.
query_smoke() {
  local dir="$1"
  local bin="${dir}/tools/lossyts"
  local qdir="${dir}/query_smoke"
  rm -rf "${qdir}"
  mkdir -p "${qdir}"
  local s
  for s in east west; do
    "${bin}" store ingest PMC 0.05 Solar "${qdir}/solar_${s}.lts" >/dev/null
    "${bin}" store ingest SWING 0.10 Solar \
      "${qdir}/solar_${s}.pred.lts" >/dev/null
  done
  "${bin}" query "${qdir}" --metrics mae,rmse,smape,bias,pinball@0.9 \
    --agg MEAN,COUNT --group-by prefix >"${qdir}/j1.txt" 2>/dev/null
  "${bin}" query "${qdir}" --metrics mae,rmse,smape,bias,pinball@0.9 \
    --agg MEAN,COUNT --group-by prefix --jobs 4 >"${qdir}/j4.txt" 2>/dev/null
  if ! cmp -s "${qdir}/j1.txt" "${qdir}/j4.txt"; then
    echo "query_smoke: --jobs 1 vs --jobs 4 outputs differ"
    diff "${qdir}/j1.txt" "${qdir}/j4.txt" || true
    return 1
  fi
  "${bin}" query "${qdir}" --agg MIN,MAX,MEAN --group-by all >/dev/null
  echo "query_smoke: deterministic across jobs" \
    "($(wc -l <"${qdir}/j1.txt") lines)"
}

run_config() {
  local name="$1" sanitize="$2" filter="${3:-}"
  local dir="${BUILD_ROOT}/${name}"
  echo "=== ${name} (LOSSYTS_SANITIZE='${sanitize}') ==="
  cmake -B "${dir}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DLOSSYTS_SANITIZE="${sanitize}"
  cmake --build "${dir}" -j "${JOBS}"
  if [[ -n "${filter}" ]]; then
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -R "${filter}"
  else
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
    # Codec conformance smoke: adversarial corpus x codecs x error bounds
    # through the pointwise-bound oracles plus decoder fuzzing. CI keeps the
    # grid small (2 cases per family); for a soak, set LOSSYTS_CONFORM_ITERS
    # to 8+ (>= 6 also cycles the whole "lengths" family across the u16
    # segment cap). The variable feeds both this smoke leg and the
    # ConformanceTest.FullGridIsClean ctest above.
    "${dir}/tools/lossyts" conform --cases "${LOSSYTS_CONFORM_ITERS:-2}"
    # Numerics conformance smoke: finite-difference gradient oracles over the
    # autodiff ops and forecaster networks, closed-form analysis oracles, and
    # the training-determinism drill. CI keeps it small (2 seeded cases per
    # component); for a soak set LOSSYTS_NUMCHECK_ITERS to 8+. The variable
    # also sizes NumCheckTest.FullRunIsClean in the ctest pass above. Runs in
    # the plain, ASan, and UBSan legs, so the gradient math is also checked
    # for UB (signed overflow, bad shifts) and memory errors.
    "${dir}/tools/lossyts" numcheck --iters "${LOSSYTS_NUMCHECK_ITERS:-2}"
    # Chunk store smoke: ingest a dataset, answer an aggregate by segment
    # pushdown and by full decode, and verify every reconstructed point
    # against the raw data under the conform bound oracle. Runs in the
    # plain, ASan, and UBSan legs, so the frame parser and salvage scan are
    # memory-checked too. LOSSYTS_STORE_ITERS picks how many error bounds
    # the loop covers (default 1; the full list is 0.01 0.05 0.2).
    local store_bounds=(0.05 0.01 0.2)
    local store_iters="${LOSSYTS_STORE_ITERS:-1}"
    for eb in "${store_bounds[@]:0:${store_iters}}"; do
      local lts="${dir}/store_smoke_${eb}.lts"
      "${dir}/tools/lossyts" store ingest PMC,SWING,SZ,GORILLA "${eb}" \
        Solar "${lts}"
      "${dir}/tools/lossyts" store query "${lts}" MEAN
      "${dir}/tools/lossyts" store query "${lts}" MEAN --no-pushdown
      "${dir}/tools/lossyts" store verify "${lts}" Solar
    done
  fi
  serve_smoke "${dir}"
  query_smoke "${dir}"
}

run_config plain ""
ASAN_OPTIONS=detect_leaks=0 run_config asan address
UBSAN_OPTIONS=halt_on_error=1 run_config ubsan undefined
# TSan is restricted to the concurrency suite: the pool, the progress
# reporter, the artifact store, the parallel-vs-sequential grid tests, and
# the serve-daemon/store reader-vs-writer races exercise every cross-thread
# edge, and a full TSan run of the NN training tests would dominate CI time
# without touching more shared state.
TSAN_OPTIONS=halt_on_error=1 run_config tsan thread \
  'ThreadPoolTest|ProgressTest|SeedTest|GridConcurrencyTest|ArtifactStoreTest|StoreConcurrencyTest|ServeConcurrencyTest|ServeDaemonConcurrencyTest|StoreRaceConcurrencyTest'

echo "=== ci.sh: all configurations passed ==="
