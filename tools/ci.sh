#!/usr/bin/env bash
# CI entry point: builds and tests the plain configuration, then rebuilds
# under ASan and UBSan (LOSSYTS_SANITIZE, see the top-level CMakeLists.txt)
# so the decoder robustness and failpoint-recovery paths are memory-checked,
# not just status-checked.
#
# Usage: tools/ci.sh [build-root]          (default: ci-build)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_ROOT="${1:-ci-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_config() {
  local name="$1" sanitize="$2"
  local dir="${BUILD_ROOT}/${name}"
  echo "=== ${name} (LOSSYTS_SANITIZE='${sanitize}') ==="
  cmake -B "${dir}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DLOSSYTS_SANITIZE="${sanitize}"
  cmake --build "${dir}" -j "${JOBS}"
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

run_config plain ""
ASAN_OPTIONS=detect_leaks=0 run_config asan address
UBSAN_OPTIONS=halt_on_error=1 run_config ubsan undefined

echo "=== ci.sh: all configurations passed ==="
