// lossyts — command-line front end for the compression library.
//
//   lossyts compress <PMC|SWING|SZ|PPA|GORILLA|CHIMP> <eb> <in.csv> <out.lts>
//   lossyts decompress <in.lts> <out.csv>
//   lossyts stats <in.csv | dataset-name>
//   lossyts sweep <in.csv | dataset-name>
//   lossyts grid [--resume] [--fresh] [--cache <path>] [--jobs N] [filters...]
//   lossyts conform [--cases N] [--seed S] [--codecs a,b] [--jobs N] [...]
//   lossyts numcheck [--iters N] [--seed S] [--ops a,b] [--models a,b] [...]
//   lossyts store ingest|query|stats|verify|ingest-grid ...
//
// Compressed files are the library's self-describing blobs wrapped in gzip
// (the paper's measurement format), so `decompress` needs no codec argument.
// `store` files are the chunk store format from src/store/ — CRC-framed
// chunk records plus a sparse time index, queryable without full decode.

#include <csignal>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "compress/pipeline.h"
#include "conform/harness.h"
#include "data/csv.h"
#include "data/datasets.h"
#include "eval/grid.h"
#include "eval/report.h"
#include "eval/store_source.h"
#include "features/registry.h"
#include "numcheck/harness.h"
#include "query/query.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "store/format.h"
#include "store/query.h"
#include "store/reader.h"
#include "store/writer.h"
#include "zip/gzip.h"

using namespace lossyts;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  lossyts compress <PMC|SWING|SZ|PPA|GORILLA|CHIMP> <eb> <in.csv> "
      "<out.lts>\n"
      "  lossyts decompress <in.lts> <out.csv>\n"
      "  lossyts stats <in.csv | dataset-name>\n"
      "  lossyts sweep <in.csv | dataset-name>\n"
      "  lossyts grid [--resume] [--fresh] [--cache <path>] [--retries N]\n"
      "               [--jobs N] [--datasets a,b] [--models a,b]\n"
      "               [--compressors a,b] [--error-bounds 0.05,0.4]\n"
      "               [--seeds 1,2] [--metrics mae,pinball@0.9]\n"
      "  lossyts conform [--cases N] [--seed S] [--codecs a,b]\n"
      "               [--error-bounds 0.01,0.2] [--bit-flips N]\n"
      "               [--no-mutate] [--jobs N]\n"
      "  lossyts numcheck [--iters N] [--seed S] [--ops a,b] [--models a,b]\n"
      "               [--oracles a,b] [--jobs N]   (list \"none\" to skip a\n"
      "               category; empty list means all)\n"
      "  lossyts store ingest <codec[,codec...]> <eb> <in.csv | dataset>\n"
      "               <out.lts> [--span N]\n"
      "  lossyts store query <in.lts> <MIN|MAX|SUM|COUNT|MEAN> [<t0> <t1>]\n"
      "               [--jobs N] [--no-pushdown]\n"
      "  lossyts store stats <in.lts>\n"
      "  lossyts store verify <in.lts> <in.csv | dataset>\n"
      "  lossyts store ingest-grid <dir> [--datasets a,b]\n"
      "               [--compressors a,b] [--error-bounds 0.05,0.4]\n"
      "  lossyts query <dir> [--metrics a,b] [--agg MIN,MEAN,..]\n"
      "               [--group-by series|prefix|all] [--delim <d>]\n"
      "               [--range <t0> <t1>] [--jobs N] [--match <substr>]\n"
      "               [--pred-suffix <s>] [--season N]\n"
      "  lossyts serve <dir> [--socket <path>] [--shards N] [--jobs N]\n"
      "               [--eb E] [--span N] [--codecs a,b] [--no-sync]\n"
      "               [--flush-wal-bytes N] [--max-queue N]\n"
      "               [--deadline-ms N] [--client-timeout-ms N]\n"
      "  lossyts client <socket> ping | list | stats | shutdown\n"
      "  lossyts client <socket> append <series> <t0> <interval> <v1,v2,..>\n"
      "  lossyts client <socket> read <series> <t0> <t1>\n"
      "  lossyts client <socket> query --metrics a,b [--group-by m]\n"
      "               [--delim <d>] [--range <t0> <t1>] [--match <substr>]\n"
      "               [--pred-suffix <s>] [--season N]\n"
      "  (grid also takes --store-dir <dir> to source transforms from\n"
      "   store files, and --build-stores to build them first)\n"
      "dataset names: ETTm1 ETTm2 Solar Weather ElecDem Wind\n");
  return 2;
}

Result<TimeSeries> LoadSeries(const std::string& arg) {
  for (const std::string& name : data::DatasetNames()) {
    if (name == arg) {
      data::DatasetOptions options;
      options.length_fraction = 0.125;
      Result<data::Dataset> dataset = data::MakeDataset(name, options);
      if (!dataset.ok()) return dataset.status();
      return dataset->series;
    }
  }
  return data::LoadCsv(arg);
}

Result<std::vector<uint8_t>> ReadBinary(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return Status::IoError("cannot open " + path);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(file)),
                              std::istreambuf_iterator<char>());
}

Status WriteBinary(const std::string& path, const std::vector<uint8_t>& data) {
  std::ofstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  file.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
  if (!file.good()) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

int Compress(const std::string& codec_name, const std::string& eb_text,
             const std::string& in_path, const std::string& out_path) {
  Result<TimeSeries> series = LoadSeries(in_path);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<compress::Compressor>> codec =
      compress::MakeCompressor(codec_name);
  if (!codec.ok()) {
    std::fprintf(stderr, "%s\n", codec.status().ToString().c_str());
    return 1;
  }
  const double eb = std::strtod(eb_text.c_str(), nullptr);
  Result<std::vector<uint8_t>> blob = (*codec)->Compress(*series, eb);
  if (!blob.ok()) {
    std::fprintf(stderr, "%s\n", blob.status().ToString().c_str());
    return 1;
  }
  const std::vector<uint8_t> gz = zip::GzipCompress(*blob);
  if (Status s = WriteBinary(out_path, gz); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const size_t raw_gz = compress::RawGzipSize(*series);
  std::printf("%s: %zu points -> %zu bytes (CR %.1fx vs gzip'd CSV)\n",
              codec_name.c_str(), series->size(), gz.size(),
              static_cast<double>(raw_gz) / static_cast<double>(gz.size()));
  return 0;
}

int Decompress(const std::string& in_path, const std::string& out_path) {
  Result<std::vector<uint8_t>> gz = ReadBinary(in_path);
  if (!gz.ok()) {
    std::fprintf(stderr, "%s\n", gz.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<uint8_t>> blob = zip::GzipDecompress(*gz);
  if (!blob.ok()) {
    std::fprintf(stderr, "%s\n", blob.status().ToString().c_str());
    return 1;
  }
  Result<TimeSeries> series = compress::DecompressAny(*blob);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }
  if (Status s = data::SaveCsv(*series, out_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu points to %s\n", series->size(), out_path.c_str());
  return 0;
}

int Stats(const std::string& arg) {
  Result<TimeSeries> series = LoadSeries(arg);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }
  Result<TimeSeries::Stats> stats = series->ComputeStats();
  if (!stats.ok()) return 1;
  std::printf("points:   %zu\n", stats->length);
  std::printf("interval: %d s\n", series->interval_seconds());
  std::printf("mean:     %.4f\n", stats->mean);
  std::printf("min/max:  %.4f / %.4f\n", stats->min, stats->max);
  std::printf("Q1/Q3:    %.4f / %.4f\n", stats->q1, stats->q3);
  std::printf("rIQD:     %.1f%%\n", stats->riqd_percent);
  Result<features::FeatureMap> features =
      features::ComputeAllFeatures(*series, 0);
  if (features.ok()) {
    std::printf("entropy:  %.3f   hurst: %.3f   max_kl_shift: %.3f\n",
                features->at("entropy"), features->at("hurst"),
                features->at("max_kl_shift"));
  }
  return 0;
}

int Sweep(const std::string& arg) {
  Result<TimeSeries> series = LoadSeries(arg);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }
  eval::TableWriter table({"codec", "eb", "CR", "TE(NRMSE)"});
  for (const std::string& name : {"PMC", "SWING", "SZ", "PPA"}) {
    Result<std::unique_ptr<compress::Compressor>> codec =
        compress::MakeCompressor(name);
    if (!codec.ok()) return 1;
    for (double eb : {0.01, 0.05, 0.2}) {
      Result<compress::PipelineResult> run =
          compress::RunPipeline(**codec, *series, eb);
      if (!run.ok()) return 1;
      table.AddRow({name, eval::FormatDouble(eb, 2),
                    eval::FormatDouble(run->compression_ratio, 1),
                    eval::FormatDouble(run->te_nrmse, 4)});
    }
  }
  table.Print();
  return 0;
}

std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> items;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

// Runs the evaluation grid with checkpoint/resume. The checkpoint is written
// incrementally (one CRC-framed row per completed cell), so an interrupted
// sweep rerun with --resume salvages every finished cell and computes only
// the missing ones. Without --resume any existing cache is discarded.
int Grid(int argc, char** argv) {
  eval::GridOptions options;
  options.verbose = true;
  bool resume = false;
  bool build_stores = false;
  std::string cache_path = eval::DefaultGridCachePath();
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--resume") {
      resume = true;
    } else if (arg == "--fresh") {
      resume = false;
    } else if (arg == "--cache") {
      const char* v = next();
      if (v == nullptr) return Usage();
      cache_path = v;
    } else if (arg == "--store-dir") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.store_dir = v;
    } else if (arg == "--build-stores") {
      build_stores = true;
    } else if (arg == "--retries") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.max_cell_retries = std::atoi(v);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.jobs = std::atoi(v);
    } else if (arg == "--datasets") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.datasets = SplitList(v);
    } else if (arg == "--models") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.models = SplitList(v);
    } else if (arg == "--compressors") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.compressors = SplitList(v);
    } else if (arg == "--error-bounds") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.error_bounds.clear();
      for (const std::string& eb : SplitList(v)) {
        options.error_bounds.push_back(std::strtod(eb.c_str(), nullptr));
      }
    } else if (arg == "--seeds") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.seeds.clear();
      for (const std::string& seed : SplitList(v)) {
        options.seeds.push_back(std::strtoull(seed.c_str(), nullptr, 10));
      }
    } else if (arg == "--metrics") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.metrics = SplitList(v);
    } else {
      return Usage();
    }
  }
  if (build_stores) {
    if (options.store_dir.empty()) {
      std::fprintf(stderr, "--build-stores requires --store-dir\n");
      return Usage();
    }
    if (Status s = eval::BuildTransformStores(options, options.store_dir);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  if (!resume) std::remove(cache_path.c_str());
  Result<std::vector<eval::GridRecord>> records =
      eval::LoadOrRunGrid(options, cache_path);
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.status().ToString().c_str());
    return 1;
  }
  const std::vector<const eval::GridRecord*> failed =
      eval::FailedRecords(*records);
  std::printf("grid: %zu cells (%zu failed), checkpoint at %s\n",
              records->size(), failed.size(), cache_path.c_str());
  if (!failed.empty()) {
    eval::TableWriter table({"dataset", "model", "codec", "eb", "seed",
                             "attempts", "error"});
    for (const eval::GridRecord* r : failed) {
      table.AddRow({r->dataset, r->model, r->compressor,
                    eval::FormatDouble(r->error_bound, 2),
                    std::to_string(r->seed), std::to_string(r->attempts),
                    r->error});
    }
    table.Print();
  }
  return 0;
}

// Runs the codec conformance harness: adversarial corpus × codecs × error
// bounds through the pointwise-bound oracles plus the decoder-fuzzing pass.
// Exits nonzero iff any oracle fired; each failure line carries the codec,
// ε, corpus family/index, and seed needed to reproduce it deterministically.
int Conform(int argc, char** argv) {
  conform::ConformOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--cases") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.cases_per_family = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.base_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--codecs") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.codecs = SplitList(v);
    } else if (arg == "--error-bounds") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.error_bounds.clear();
      for (const std::string& eb : SplitList(v)) {
        options.error_bounds.push_back(std::strtod(eb.c_str(), nullptr));
      }
    } else if (arg == "--bit-flips") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.random_bit_flips = std::atoi(v);
    } else if (arg == "--no-mutate") {
      options.mutate = false;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.jobs = std::atoi(v);
    } else {
      return Usage();
    }
  }
  Result<conform::ConformSummary> summary = conform::RunConform(options);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  for (const conform::ConformFailure& f : summary->failures) {
    std::fprintf(stderr, "%s\n", conform::FormatFailure(f).c_str());
  }
  std::printf("conform: %zu cells, %zu mutants, %zu failures (seed %llu)\n",
              summary->cases, summary->mutants, summary->failures.size(),
              static_cast<unsigned long long>(options.base_seed));
  return summary->failures.empty() ? 0 : 1;
}

// Runs the numerics conformance harness: finite-difference gradient oracles
// over the autodiff ops and forecaster networks, plus closed-form analysis
// and training-determinism oracles. Exits nonzero iff any check fired; each
// failure line carries the component, case index, and seed needed to
// reproduce it deterministically.
int Numcheck(int argc, char** argv) {
  numcheck::NumCheckOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--iters") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.iters = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.base_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--ops") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.ops = SplitList(v);
    } else if (arg == "--models") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.models = SplitList(v);
    } else if (arg == "--oracles") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.oracles = SplitList(v);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.jobs = std::atoi(v);
    } else {
      return Usage();
    }
  }
  Result<numcheck::NumCheckSummary> summary = numcheck::RunNumCheck(options);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  for (const numcheck::NumCheckFailure& f : summary->failures) {
    std::fprintf(stderr, "%s\n", numcheck::FormatFailure(f).c_str());
  }
  std::printf("numcheck: %zu cases, %zu checks, %zu failures (seed %llu)\n",
              summary->cases, summary->checks, summary->failures.size(),
              static_cast<unsigned long long>(options.base_seed));
  return summary->failures.empty() ? 0 : 1;
}

const char* AlgorithmName(compress::AlgorithmId id) {
  switch (id) {
    case compress::AlgorithmId::kPmc: return "PMC";
    case compress::AlgorithmId::kSwing: return "SWING";
    case compress::AlgorithmId::kSz: return "SZ";
    case compress::AlgorithmId::kGorilla: return "GORILLA";
    case compress::AlgorithmId::kChimp: return "CHIMP";
    case compress::AlgorithmId::kPpa: return "PPA";
  }
  return "?";
}

int StoreIngest(int argc, char** argv) {
  if (argc < 7) return Usage();
  store::StoreOptions options;
  options.codecs = SplitList(argv[3]);
  options.error_bound = std::strtod(argv[4], nullptr);
  const std::string in_path = argv[5];
  const std::string out_path = argv[6];
  for (int i = 7; i < argc; ++i) {
    if (std::string(argv[i]) == "--span" && i + 1 < argc) {
      options.chunk_span = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else {
      return Usage();
    }
  }
  Result<TimeSeries> series = LoadSeries(in_path);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<store::StoreWriter>> writer =
      store::StoreWriter::Create(out_path, options);
  if (!writer.ok()) {
    std::fprintf(stderr, "%s\n", writer.status().ToString().c_str());
    return 1;
  }
  if (Status s = (*writer)->Append(*series); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (Status s = (*writer)->Finish(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const size_t raw_gz = compress::RawGzipSize(*series);
  std::printf(
      "%s: %llu points in %llu chunks -> %llu bytes (CR %.1fx vs gzip'd "
      "CSV)\n",
      out_path.c_str(),
      static_cast<unsigned long long>((*writer)->points_written()),
      static_cast<unsigned long long>((*writer)->chunks_written()),
      static_cast<unsigned long long>((*writer)->bytes_written()),
      static_cast<double>(raw_gz) /
          static_cast<double>((*writer)->bytes_written()));
  return 0;
}

int StoreQuery(int argc, char** argv) {
  if (argc < 5) return Usage();
  const std::string path = argv[3];
  Result<store::AggregateKind> kind = store::ParseAggregateKind(argv[4]);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return Usage();
  }
  Result<std::unique_ptr<store::StoreReader>> reader =
      store::StoreReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  int64_t t0 = (*reader)->start_timestamp();
  int64_t t1 = (*reader)->last_timestamp();
  store::AggregateOptions options;
  int i = 5;
  if (i + 1 < argc && argv[i][0] != '-') {
    t0 = std::strtoll(argv[i], nullptr, 10);
    t1 = std::strtoll(argv[i + 1], nullptr, 10);
    i += 2;
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      options.jobs = std::atoi(argv[++i]);
    } else if (arg == "--no-pushdown") {
      options.allow_pushdown = false;
    } else {
      return Usage();
    }
  }
  Result<store::AggregateResult> result =
      store::AggregateRange(**reader, *kind, t0, t1, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s[%lld, %lld] = %.17g  (±%.3g vs raw, %llu points, "
              "%zu pushdown / %zu decoded chunks)\n",
              store::AggregateKindName(*kind), static_cast<long long>(t0),
              static_cast<long long>(t1), result->value, result->error_bound,
              static_cast<unsigned long long>(result->count),
              result->pushdown_chunks, result->decoded_chunks);
  return 0;
}

int StoreStats(int argc, char** argv) {
  if (argc != 4) return Usage();
  Result<std::unique_ptr<store::StoreReader>> opened =
      store::StoreReader::Open(argv[3]);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    return 1;
  }
  const store::StoreReader& reader = **opened;
  std::string codecs;
  for (const std::string& name : reader.header().codecs) {
    if (!codecs.empty()) codecs += ',';
    codecs += name;
  }
  std::printf("state:     %s\n", reader.clean() ? "complete" : "salvaged");
  std::printf("bound:     %g\n", reader.header().error_bound);
  std::printf("span:      %u points/chunk\n", reader.header().chunk_span);
  std::printf("codecs:    %s\n", codecs.c_str());
  std::printf("points:    %llu\n",
              static_cast<unsigned long long>(reader.total_points()));
  std::printf("chunks:    %zu\n", reader.chunks().size());
  std::printf("bytes:     %zu\n", reader.file_size());
  if (!reader.chunks().empty()) {
    std::printf("range:     [%lld, %lld] at %d s\n",
                static_cast<long long>(reader.start_timestamp()),
                static_cast<long long>(reader.last_timestamp()),
                reader.interval_seconds());
    size_t by_alg[7] = {};
    for (const store::ChunkInfo& chunk : reader.chunks()) {
      const size_t id = static_cast<size_t>(chunk.algorithm);
      if (id < 7) ++by_alg[id];
    }
    std::string mix;
    for (size_t id = 1; id < 7; ++id) {
      if (by_alg[id] == 0) continue;
      if (!mix.empty()) mix += ", ";
      mix += std::to_string(by_alg[id]);
      mix += "x";
      mix += AlgorithmName(static_cast<compress::AlgorithmId>(id));
    }
    std::printf("chunk mix: %s\n", mix.c_str());
  }
  return 0;
}

// Verifies a store against the raw series it was ingested from: the time
// grid must match, every reconstructed point must sit inside the
// RelativeAllowance interval of its raw value (bit-exact for lossless
// chunks — the same §2 pointwise oracle the conform harness enforces), and
// every pushdown aggregate must sit within its self-reported error bound of
// the same aggregate over the raw data.
int StoreVerify(int argc, char** argv) {
  if (argc != 5) return Usage();
  Result<std::unique_ptr<store::StoreReader>> opened =
      store::StoreReader::Open(argv[3]);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    return 1;
  }
  const store::StoreReader& reader = **opened;
  Result<TimeSeries> raw = LoadSeries(argv[4]);
  if (!raw.ok()) {
    std::fprintf(stderr, "%s\n", raw.status().ToString().c_str());
    return 1;
  }
  if (reader.total_points() > raw->size() ||
      reader.start_timestamp() != raw->start_timestamp() ||
      reader.interval_seconds() != raw->interval_seconds()) {
    std::fprintf(stderr,
                 "verify: store grid does not match the raw series "
                 "(%llu stored vs %zu raw points)\n",
                 static_cast<unsigned long long>(reader.total_points()),
                 raw->size());
    return 1;
  }
  if (!reader.clean()) {
    std::printf("verify: store is a salvaged prefix (%llu of %zu points); "
                "verifying the prefix\n",
                static_cast<unsigned long long>(reader.total_points()),
                raw->size());
  }
  Result<TimeSeries> recon = reader.ReadAll();
  if (!recon.ok()) {
    std::fprintf(stderr, "%s\n", recon.status().ToString().c_str());
    return 1;
  }
  const double eb = reader.header().error_bound;
  size_t checked = 0;
  for (const store::ChunkInfo& chunk : reader.chunks()) {
    const bool lossless = store::IsLosslessAlgorithm(chunk.algorithm);
    for (uint32_t k = 0; k < chunk.num_points; ++k, ++checked) {
      const double v = raw->values()[checked];
      const double v_hat = recon->values()[checked];
      bool ok;
      if (lossless) {
        // Bit-exact, NaN included: compare representations.
        ok = std::memcmp(&v, &v_hat, sizeof(double)) == 0;
      } else {
        const compress::Allowance a = compress::RelativeAllowance(v, eb);
        ok = v_hat >= a.lo && v_hat <= a.hi;
      }
      if (!ok) {
        std::fprintf(stderr,
                     "verify: point %zu out of bound: raw %.17g vs stored "
                     "%.17g (eb %g, %s chunk)\n",
                     checked, v, v_hat, eb, AlgorithmName(chunk.algorithm));
        return 1;
      }
    }
  }
  // Aggregate verification: the pushdown answer must be within its own
  // reported bound of the raw aggregate (small fp slack for the summation
  // order difference).
  const char* kinds[] = {"MIN", "MAX", "SUM", "COUNT", "MEAN"};
  for (const char* name : kinds) {
    Result<store::AggregateKind> kind = store::ParseAggregateKind(name);
    Result<store::AggregateResult> got = store::AggregateRange(
        reader, *kind, reader.start_timestamp(), reader.last_timestamp());
    if (!got.ok()) {
      std::fprintf(stderr, "verify: %s failed: %s\n", name,
                   got.status().ToString().c_str());
      return 1;
    }
    double expect = 0.0;
    double sum = 0.0, mn = raw->values()[0], mx = raw->values()[0];
    for (size_t i = 0; i < checked; ++i) {
      const double v = raw->values()[i];
      sum += v;
      if (v < mn) mn = v;
      if (v > mx) mx = v;
    }
    switch (*kind) {
      case store::AggregateKind::kMin: expect = mn; break;
      case store::AggregateKind::kMax: expect = mx; break;
      case store::AggregateKind::kSum: expect = sum; break;
      case store::AggregateKind::kCount:
        expect = static_cast<double>(checked);
        break;
      case store::AggregateKind::kMean:
        expect = sum / static_cast<double>(checked);
        break;
    }
    const double slack =
        got->error_bound + 1e-9 * std::max(1.0, std::abs(expect));
    if (std::abs(got->value - expect) > slack) {
      std::fprintf(stderr,
                   "verify: %s = %.17g deviates from raw %.17g beyond its "
                   "reported bound %.3g\n",
                   name, got->value, expect, got->error_bound);
      return 1;
    }
  }
  std::printf("verify: OK — %zu points within bound %g, all aggregates "
              "within their reported error\n",
              checked, eb);
  return 0;
}

int StoreIngestGrid(int argc, char** argv) {
  if (argc < 4) return Usage();
  eval::GridOptions options;
  const std::string dir = argv[3];
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--datasets") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.datasets = SplitList(v);
    } else if (arg == "--compressors") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.compressors = SplitList(v);
    } else if (arg == "--error-bounds") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.error_bounds.clear();
      for (const std::string& eb : SplitList(v)) {
        options.error_bounds.push_back(std::strtod(eb.c_str(), nullptr));
      }
    } else {
      return Usage();
    }
  }
  if (Status s = eval::BuildTransformStores(options, dir); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("built transform stores under %s\n", dir.c_str());
  return 0;
}

volatile std::sig_atomic_t g_interrupted = 0;

void HandleSignal(int) { g_interrupted = 1; }

// Runs the serve daemon in the foreground until a client shutdown request
// or SIGINT/SIGTERM arrives, then drains gracefully (queued appends still
// commit, every shard checkpoints). A SIGKILL instead is the crash the WAL
// recovers from on the next start.
int Serve(int argc, char** argv) {
  if (argc < 3) return Usage();
  serve::DaemonOptions options;
  options.dir = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--socket" && (v = next())) {
      options.socket_path = v;
    } else if (arg == "--shards" && (v = next())) {
      options.shards = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--jobs" && (v = next())) {
      options.jobs = std::atoi(v);
    } else if (arg == "--eb" && (v = next())) {
      options.shard.error_bound = std::strtod(v, nullptr);
    } else if (arg == "--span" && (v = next())) {
      options.shard.chunk_span = static_cast<uint32_t>(std::atoi(v));
    } else if (arg == "--codecs" && (v = next())) {
      options.shard.codecs = SplitList(v);
    } else if (arg == "--no-sync") {
      options.shard.sync = false;
    } else if (arg == "--flush-wal-bytes" && (v = next())) {
      options.shard.flush_wal_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--max-queue" && (v = next())) {
      options.max_queue_ops = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--deadline-ms" && (v = next())) {
      options.append_deadline_ms = std::atoi(v);
    } else if (arg == "--client-timeout-ms" && (v = next())) {
      options.client_timeout_ms = std::atoi(v);
    } else {
      return Usage();
    }
  }
  Result<std::unique_ptr<serve::Daemon>> daemon =
      serve::Daemon::Start(options);
  if (!daemon.ok()) {
    std::fprintf(stderr, "%s\n", daemon.status().ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  const serve::ServeStats boot = (*daemon)->Stats();
  std::printf("serving %s on %s (%llu shards, %llu series, %llu points",
              options.dir.c_str(), (*daemon)->socket_path().c_str(),
              static_cast<unsigned long long>(boot.shards),
              static_cast<unsigned long long>(boot.series),
              static_cast<unsigned long long>(boot.points));
  if (boot.replayed_records > 0 || boot.salvaged_stores > 0) {
    std::printf("; recovered %llu wal records, %llu salvaged stores",
                static_cast<unsigned long long>(boot.replayed_records),
                static_cast<unsigned long long>(boot.salvaged_stores));
  }
  std::printf(")\n");
  std::fflush(stdout);
  (*daemon)->Wait([] { return g_interrupted != 0; });
  if (Status s = (*daemon)->Stop(); !s.ok()) {
    std::fprintf(stderr, "drain: %s\n", s.ToString().c_str());
    return 1;
  }
  const serve::ServeStats stats = (*daemon)->Stats();
  std::printf("drained: %llu appends acked, %llu rejected, %llu flushes, "
              "%llu evicted clients\n",
              static_cast<unsigned long long>(stats.appended_ops),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.flushes),
              static_cast<unsigned long long>(stats.evicted_clients));
  return stats.failed_shards == 0 ? 0 : 1;
}

int ClientCmd(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string socket_path = argv[2];
  const std::string sub = argv[3];
  Result<std::unique_ptr<serve::Client>> client =
      serve::Client::Connect(socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }
  if (sub == "ping" && argc == 4) {
    if (Status s = (*client)->Ping(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }
  if (sub == "append" && argc == 8) {
    std::vector<double> values;
    for (const std::string& v : SplitList(argv[7])) {
      values.push_back(std::strtod(v.c_str(), nullptr));
    }
    Status s = (*client)->Append(argv[4], std::strtoll(argv[5], nullptr, 10),
                                 std::atoi(argv[6]), values);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("acked %zu points\n", values.size());
    return 0;
  }
  if (sub == "read" && argc == 7) {
    Result<TimeSeries> series =
        (*client)->ReadRange(argv[4], std::strtoll(argv[5], nullptr, 10),
                             std::strtoll(argv[6], nullptr, 10));
    if (!series.ok()) {
      std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
      return 1;
    }
    for (size_t i = 0; i < series->size(); ++i) {
      std::printf("%lld,%.17g\n",
                  static_cast<long long>(
                      series->start_timestamp() +
                      static_cast<int64_t>(i) * series->interval_seconds()),
                  series->values()[i]);
    }
    return 0;
  }
  if (sub == "list" && argc == 4) {
    Result<std::vector<std::string>> names = (*client)->ListSeries();
    if (!names.ok()) {
      std::fprintf(stderr, "%s\n", names.status().ToString().c_str());
      return 1;
    }
    for (const std::string& name : *names) std::printf("%s\n", name.c_str());
    return 0;
  }
  if (sub == "stats" && argc == 4) {
    Result<serve::ServeStats> stats = (*client)->Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("shards:          %llu (%llu failed)\n",
                static_cast<unsigned long long>(stats->shards),
                static_cast<unsigned long long>(stats->failed_shards));
    std::printf("series:          %llu\n",
                static_cast<unsigned long long>(stats->series));
    std::printf("points:          %llu\n",
                static_cast<unsigned long long>(stats->points));
    std::printf("wal bytes:       %llu\n",
                static_cast<unsigned long long>(stats->wal_bytes));
    std::printf("appends acked:   %llu\n",
                static_cast<unsigned long long>(stats->appended_ops));
    std::printf("flushes:         %llu (%llu failed)\n",
                static_cast<unsigned long long>(stats->flushes),
                static_cast<unsigned long long>(stats->flush_failures));
    std::printf("recovery:        %llu wal records, %llu salvaged stores\n",
                static_cast<unsigned long long>(stats->replayed_records),
                static_cast<unsigned long long>(stats->salvaged_stores));
    std::printf("admission:       %llu accepted, %llu rejected, %llu "
                "deadline misses\n",
                static_cast<unsigned long long>(stats->accepted),
                static_cast<unsigned long long>(stats->rejected),
                static_cast<unsigned long long>(stats->deadline_misses));
    std::printf("evicted clients: %llu\n",
                static_cast<unsigned long long>(stats->evicted_clients));
    return 0;
  }
  if (sub == "query" && argc >= 5) {
    serve::QuerySpec spec;
    for (int i = 4; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        return i + 1 < argc ? argv[++i] : nullptr;
      };
      const char* v = nullptr;
      if (arg == "--metrics" && (v = next())) {
        spec.metrics = SplitList(v);
      } else if (arg == "--group-by" && (v = next())) {
        spec.group_by = v;
      } else if (arg == "--delim" && (v = next())) {
        spec.delimiter = v;
      } else if (arg == "--range") {
        const char* a = next();
        const char* b = next();
        if (a == nullptr || b == nullptr) return Usage();
        spec.t0 = std::strtoll(a, nullptr, 10);
        spec.t1 = std::strtoll(b, nullptr, 10);
      } else if (arg == "--match" && (v = next())) {
        spec.match = v;
      } else if (arg == "--pred-suffix" && (v = next())) {
        spec.pred_suffix = v;
      } else if (arg == "--season" && (v = next())) {
        spec.season_length = std::atoi(v);
      } else {
        return Usage();
      }
    }
    Result<query::QueryResult> result = (*client)->Query(spec);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", query::FormatQueryResult(*result).c_str());
    return 0;
  }
  if (sub == "shutdown" && argc == 4) {
    if (Status s = (*client)->Shutdown(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("shutdown requested\n");
    return 0;
  }
  return Usage();
}

// Grouped-metric / aggregate query over a directory of store files — the
// offline twin of the daemon's kQuery (`lossyts client <sock> query`).
int QueryCmd(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string dir = argv[2];
  query::QueryOptions options;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--metrics" && (v = next())) {
      options.metrics = SplitList(v);
    } else if (arg == "--agg" && (v = next())) {
      options.aggregates = SplitList(v);
    } else if (arg == "--group-by" && (v = next())) {
      Result<query::GroupMode> mode = query::ParseGroupMode(v);
      if (!mode.ok()) {
        std::fprintf(stderr, "%s\n", mode.status().ToString().c_str());
        return 1;
      }
      options.group_by = *mode;
    } else if (arg == "--delim" && (v = next())) {
      options.delimiter = v;
    } else if (arg == "--range") {
      const char* a = next();
      const char* b = next();
      if (a == nullptr || b == nullptr) return Usage();
      options.t0 = std::strtoll(a, nullptr, 10);
      options.t1 = std::strtoll(b, nullptr, 10);
    } else if (arg == "--jobs" && (v = next())) {
      options.jobs = std::atoi(v);
    } else if (arg == "--match" && (v = next())) {
      options.match = v;
    } else if (arg == "--pred-suffix" && (v = next())) {
      options.pred_suffix = v;
    } else if (arg == "--season" && (v = next())) {
      options.season_length = std::atoi(v);
    } else {
      return Usage();
    }
  }
  Result<query::QueryResult> result = query::QueryStoreDir(dir, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", query::FormatQueryResult(*result).c_str());
  std::fprintf(stderr, "pushdown chunks: %llu, decoded chunks: %llu\n",
               static_cast<unsigned long long>(result->pushdown_chunks),
               static_cast<unsigned long long>(result->decoded_chunks));
  return 0;
}

int StoreCmd(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string sub = argv[2];
  if (sub == "ingest") return StoreIngest(argc, argv);
  if (sub == "query") return StoreQuery(argc, argv);
  if (sub == "stats") return StoreStats(argc, argv);
  if (sub == "verify") return StoreVerify(argc, argv);
  if (sub == "ingest-grid") return StoreIngestGrid(argc, argv);
  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "compress" && argc == 6) {
    return Compress(argv[2], argv[3], argv[4], argv[5]);
  }
  if (command == "decompress" && argc == 4) {
    return Decompress(argv[2], argv[3]);
  }
  if (command == "stats" && argc == 3) return Stats(argv[2]);
  if (command == "sweep" && argc == 3) return Sweep(argv[2]);
  if (command == "grid") return Grid(argc, argv);
  if (command == "conform") return Conform(argc, argv);
  if (command == "numcheck") return Numcheck(argc, argv);
  if (command == "store") return StoreCmd(argc, argv);
  if (command == "query") return QueryCmd(argc, argv);
  if (command == "serve") return Serve(argc, argv);
  if (command == "client") return ClientCmd(argc, argv);
  return Usage();
}
