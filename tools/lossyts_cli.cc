// lossyts — command-line front end for the compression library.
//
//   lossyts compress <PMC|SWING|SZ|PPA|GORILLA|CHIMP> <eb> <in.csv> <out.lts>
//   lossyts decompress <in.lts> <out.csv>
//   lossyts stats <in.csv | dataset-name>
//   lossyts sweep <in.csv | dataset-name>
//   lossyts grid [--resume] [--fresh] [--cache <path>] [--jobs N] [filters...]
//   lossyts conform [--cases N] [--seed S] [--codecs a,b] [--jobs N] [...]
//   lossyts numcheck [--iters N] [--seed S] [--ops a,b] [--models a,b] [...]
//
// Compressed files are the library's self-describing blobs wrapped in gzip
// (the paper's measurement format), so `decompress` needs no codec argument.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "compress/pipeline.h"
#include "conform/harness.h"
#include "data/csv.h"
#include "data/datasets.h"
#include "eval/grid.h"
#include "eval/report.h"
#include "features/registry.h"
#include "numcheck/harness.h"
#include "zip/gzip.h"

using namespace lossyts;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  lossyts compress <PMC|SWING|SZ|PPA|GORILLA|CHIMP> <eb> <in.csv> "
      "<out.lts>\n"
      "  lossyts decompress <in.lts> <out.csv>\n"
      "  lossyts stats <in.csv | dataset-name>\n"
      "  lossyts sweep <in.csv | dataset-name>\n"
      "  lossyts grid [--resume] [--fresh] [--cache <path>] [--retries N]\n"
      "               [--jobs N] [--datasets a,b] [--models a,b]\n"
      "               [--compressors a,b] [--error-bounds 0.05,0.4]\n"
      "               [--seeds 1,2]\n"
      "  lossyts conform [--cases N] [--seed S] [--codecs a,b]\n"
      "               [--error-bounds 0.01,0.2] [--bit-flips N]\n"
      "               [--no-mutate] [--jobs N]\n"
      "  lossyts numcheck [--iters N] [--seed S] [--ops a,b] [--models a,b]\n"
      "               [--oracles a,b] [--jobs N]   (list \"none\" to skip a\n"
      "               category; empty list means all)\n"
      "dataset names: ETTm1 ETTm2 Solar Weather ElecDem Wind\n");
  return 2;
}

Result<TimeSeries> LoadSeries(const std::string& arg) {
  for (const std::string& name : data::DatasetNames()) {
    if (name == arg) {
      data::DatasetOptions options;
      options.length_fraction = 0.125;
      Result<data::Dataset> dataset = data::MakeDataset(name, options);
      if (!dataset.ok()) return dataset.status();
      return dataset->series;
    }
  }
  return data::LoadCsv(arg);
}

Result<std::vector<uint8_t>> ReadBinary(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.is_open()) return Status::IoError("cannot open " + path);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(file)),
                              std::istreambuf_iterator<char>());
}

Status WriteBinary(const std::string& path, const std::vector<uint8_t>& data) {
  std::ofstream file(path, std::ios::binary);
  if (!file.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  file.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
  if (!file.good()) return Status::IoError("write to " + path + " failed");
  return Status::OK();
}

int Compress(const std::string& codec_name, const std::string& eb_text,
             const std::string& in_path, const std::string& out_path) {
  Result<TimeSeries> series = LoadSeries(in_path);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }
  Result<std::unique_ptr<compress::Compressor>> codec =
      compress::MakeCompressor(codec_name);
  if (!codec.ok()) {
    std::fprintf(stderr, "%s\n", codec.status().ToString().c_str());
    return 1;
  }
  const double eb = std::strtod(eb_text.c_str(), nullptr);
  Result<std::vector<uint8_t>> blob = (*codec)->Compress(*series, eb);
  if (!blob.ok()) {
    std::fprintf(stderr, "%s\n", blob.status().ToString().c_str());
    return 1;
  }
  const std::vector<uint8_t> gz = zip::GzipCompress(*blob);
  if (Status s = WriteBinary(out_path, gz); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  const size_t raw_gz = compress::RawGzipSize(*series);
  std::printf("%s: %zu points -> %zu bytes (CR %.1fx vs gzip'd CSV)\n",
              codec_name.c_str(), series->size(), gz.size(),
              static_cast<double>(raw_gz) / static_cast<double>(gz.size()));
  return 0;
}

int Decompress(const std::string& in_path, const std::string& out_path) {
  Result<std::vector<uint8_t>> gz = ReadBinary(in_path);
  if (!gz.ok()) {
    std::fprintf(stderr, "%s\n", gz.status().ToString().c_str());
    return 1;
  }
  Result<std::vector<uint8_t>> blob = zip::GzipDecompress(*gz);
  if (!blob.ok()) {
    std::fprintf(stderr, "%s\n", blob.status().ToString().c_str());
    return 1;
  }
  Result<TimeSeries> series = compress::DecompressAny(*blob);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }
  if (Status s = data::SaveCsv(*series, out_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu points to %s\n", series->size(), out_path.c_str());
  return 0;
}

int Stats(const std::string& arg) {
  Result<TimeSeries> series = LoadSeries(arg);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }
  Result<TimeSeries::Stats> stats = series->ComputeStats();
  if (!stats.ok()) return 1;
  std::printf("points:   %zu\n", stats->length);
  std::printf("interval: %d s\n", series->interval_seconds());
  std::printf("mean:     %.4f\n", stats->mean);
  std::printf("min/max:  %.4f / %.4f\n", stats->min, stats->max);
  std::printf("Q1/Q3:    %.4f / %.4f\n", stats->q1, stats->q3);
  std::printf("rIQD:     %.1f%%\n", stats->riqd_percent);
  Result<features::FeatureMap> features =
      features::ComputeAllFeatures(*series, 0);
  if (features.ok()) {
    std::printf("entropy:  %.3f   hurst: %.3f   max_kl_shift: %.3f\n",
                features->at("entropy"), features->at("hurst"),
                features->at("max_kl_shift"));
  }
  return 0;
}

int Sweep(const std::string& arg) {
  Result<TimeSeries> series = LoadSeries(arg);
  if (!series.ok()) {
    std::fprintf(stderr, "%s\n", series.status().ToString().c_str());
    return 1;
  }
  eval::TableWriter table({"codec", "eb", "CR", "TE(NRMSE)"});
  for (const std::string& name : {"PMC", "SWING", "SZ", "PPA"}) {
    Result<std::unique_ptr<compress::Compressor>> codec =
        compress::MakeCompressor(name);
    if (!codec.ok()) return 1;
    for (double eb : {0.01, 0.05, 0.2}) {
      Result<compress::PipelineResult> run =
          compress::RunPipeline(**codec, *series, eb);
      if (!run.ok()) return 1;
      table.AddRow({name, eval::FormatDouble(eb, 2),
                    eval::FormatDouble(run->compression_ratio, 1),
                    eval::FormatDouble(run->te_nrmse, 4)});
    }
  }
  table.Print();
  return 0;
}

std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> items;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

// Runs the evaluation grid with checkpoint/resume. The checkpoint is written
// incrementally (one CRC-framed row per completed cell), so an interrupted
// sweep rerun with --resume salvages every finished cell and computes only
// the missing ones. Without --resume any existing cache is discarded.
int Grid(int argc, char** argv) {
  eval::GridOptions options;
  options.verbose = true;
  bool resume = false;
  std::string cache_path = eval::DefaultGridCachePath();
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--resume") {
      resume = true;
    } else if (arg == "--fresh") {
      resume = false;
    } else if (arg == "--cache") {
      const char* v = next();
      if (v == nullptr) return Usage();
      cache_path = v;
    } else if (arg == "--retries") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.max_cell_retries = std::atoi(v);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.jobs = std::atoi(v);
    } else if (arg == "--datasets") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.datasets = SplitList(v);
    } else if (arg == "--models") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.models = SplitList(v);
    } else if (arg == "--compressors") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.compressors = SplitList(v);
    } else if (arg == "--error-bounds") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.error_bounds.clear();
      for (const std::string& eb : SplitList(v)) {
        options.error_bounds.push_back(std::strtod(eb.c_str(), nullptr));
      }
    } else if (arg == "--seeds") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.seeds.clear();
      for (const std::string& seed : SplitList(v)) {
        options.seeds.push_back(std::strtoull(seed.c_str(), nullptr, 10));
      }
    } else {
      return Usage();
    }
  }
  if (!resume) std::remove(cache_path.c_str());
  Result<std::vector<eval::GridRecord>> records =
      eval::LoadOrRunGrid(options, cache_path);
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.status().ToString().c_str());
    return 1;
  }
  const std::vector<const eval::GridRecord*> failed =
      eval::FailedRecords(*records);
  std::printf("grid: %zu cells (%zu failed), checkpoint at %s\n",
              records->size(), failed.size(), cache_path.c_str());
  if (!failed.empty()) {
    eval::TableWriter table({"dataset", "model", "codec", "eb", "seed",
                             "attempts", "error"});
    for (const eval::GridRecord* r : failed) {
      table.AddRow({r->dataset, r->model, r->compressor,
                    eval::FormatDouble(r->error_bound, 2),
                    std::to_string(r->seed), std::to_string(r->attempts),
                    r->error});
    }
    table.Print();
  }
  return 0;
}

// Runs the codec conformance harness: adversarial corpus × codecs × error
// bounds through the pointwise-bound oracles plus the decoder-fuzzing pass.
// Exits nonzero iff any oracle fired; each failure line carries the codec,
// ε, corpus family/index, and seed needed to reproduce it deterministically.
int Conform(int argc, char** argv) {
  conform::ConformOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--cases") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.cases_per_family = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.base_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--codecs") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.codecs = SplitList(v);
    } else if (arg == "--error-bounds") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.error_bounds.clear();
      for (const std::string& eb : SplitList(v)) {
        options.error_bounds.push_back(std::strtod(eb.c_str(), nullptr));
      }
    } else if (arg == "--bit-flips") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.random_bit_flips = std::atoi(v);
    } else if (arg == "--no-mutate") {
      options.mutate = false;
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.jobs = std::atoi(v);
    } else {
      return Usage();
    }
  }
  Result<conform::ConformSummary> summary = conform::RunConform(options);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  for (const conform::ConformFailure& f : summary->failures) {
    std::fprintf(stderr, "%s\n", conform::FormatFailure(f).c_str());
  }
  std::printf("conform: %zu cells, %zu mutants, %zu failures (seed %llu)\n",
              summary->cases, summary->mutants, summary->failures.size(),
              static_cast<unsigned long long>(options.base_seed));
  return summary->failures.empty() ? 0 : 1;
}

// Runs the numerics conformance harness: finite-difference gradient oracles
// over the autodiff ops and forecaster networks, plus closed-form analysis
// and training-determinism oracles. Exits nonzero iff any check fired; each
// failure line carries the component, case index, and seed needed to
// reproduce it deterministically.
int Numcheck(int argc, char** argv) {
  numcheck::NumCheckOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--iters") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.iters = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.base_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--ops") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.ops = SplitList(v);
    } else if (arg == "--models") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.models = SplitList(v);
    } else if (arg == "--oracles") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.oracles = SplitList(v);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.jobs = std::atoi(v);
    } else {
      return Usage();
    }
  }
  Result<numcheck::NumCheckSummary> summary = numcheck::RunNumCheck(options);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  for (const numcheck::NumCheckFailure& f : summary->failures) {
    std::fprintf(stderr, "%s\n", numcheck::FormatFailure(f).c_str());
  }
  std::printf("numcheck: %zu cases, %zu checks, %zu failures (seed %llu)\n",
              summary->cases, summary->checks, summary->failures.size(),
              static_cast<unsigned long long>(options.base_seed));
  return summary->failures.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "compress" && argc == 6) {
    return Compress(argv[2], argv[3], argv[4], argv[5]);
  }
  if (command == "decompress" && argc == 4) {
    return Decompress(argv[2], argv[3]);
  }
  if (command == "stats" && argc == 3) return Stats(argv[2]);
  if (command == "sweep" && argc == 3) return Sweep(argv[2]);
  if (command == "grid") return Grid(argc, argv);
  if (command == "conform") return Conform(argc, argv);
  if (command == "numcheck") return Numcheck(argc, argv);
  return Usage();
}
