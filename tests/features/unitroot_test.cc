#include "features/unitroot.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace lossyts::features {
namespace {

std::vector<double> WhiteNoise(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = rng.Normal();
  return x;
}

std::vector<double> RandomWalk(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  double s = 0.0;
  for (auto& v : x) {
    s += rng.Normal();
    v = s;
  }
  return x;
}

TEST(KpssTest, StationarySeriesHasSmallStatistic) {
  // 5% critical value for the level-stationary KPSS test is 0.463.
  EXPECT_LT(UnitrootKpss(WhiteNoise(2000, 1)), 0.463);
}

TEST(KpssTest, RandomWalkHasLargeStatistic) {
  EXPECT_GT(UnitrootKpss(RandomWalk(2000, 2)), 0.463);
}

TEST(KpssTest, TrendingSeriesIsNonStationary) {
  std::vector<double> x(2000);
  Rng rng(3);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.01 * static_cast<double>(i) + rng.Normal();
  }
  EXPECT_GT(UnitrootKpss(x), 0.463);
}

TEST(KpssTest, ShortSeriesReturnsZero) {
  EXPECT_EQ(UnitrootKpss({1.0, 2.0, 3.0}), 0.0);
}

TEST(PhillipsPerronTest, StationarySeriesStronglyRejectsUnitRoot) {
  // 5% critical value of the PP tau statistic is about -2.86; white noise
  // should be far below it.
  EXPECT_LT(UnitrootPp(WhiteNoise(2000, 4)), -10.0);
}

TEST(PhillipsPerronTest, RandomWalkDoesNotReject) {
  EXPECT_GT(UnitrootPp(RandomWalk(2000, 5)), -2.86);
}

TEST(PhillipsPerronTest, Ar1NearUnitRootIsIntermediate) {
  Rng rng(6);
  std::vector<double> x(2000);
  double v = 0.0;
  for (auto& val : x) {
    v = 0.99 * v + rng.Normal();
    val = v;
  }
  const double pp = UnitrootPp(x);
  EXPECT_LT(pp, UnitrootPp(RandomWalk(2000, 7)));
  EXPECT_GT(pp, UnitrootPp(WhiteNoise(2000, 8)));
}

TEST(PhillipsPerronTest, ConstantSeriesReturnsZero) {
  std::vector<double> x(100, 5.0);
  EXPECT_EQ(UnitrootPp(x), 0.0);
}

}  // namespace
}  // namespace lossyts::features
