#include "features/rolling.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace lossyts::features {
namespace {

TEST(RollingTest, RollingMeansBasic) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> means = RollingMeans(x, 3);
  ASSERT_EQ(means.size(), 3u);
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 3.0);
  EXPECT_DOUBLE_EQ(means[2], 4.0);
}

TEST(RollingTest, RollingVariancesBasic) {
  std::vector<double> x = {1.0, 1.0, 1.0, 5.0, 5.0, 5.0};
  std::vector<double> vars = RollingVariances(x, 3);
  ASSERT_EQ(vars.size(), 4u);
  EXPECT_NEAR(vars[0], 0.0, 1e-12);
  EXPECT_NEAR(vars[3], 0.0, 1e-12);
  EXPECT_GT(vars[1], 1.0);
}

TEST(RollingTest, TooShortReturnsEmpty) {
  std::vector<double> x = {1.0, 2.0};
  EXPECT_TRUE(RollingMeans(x, 3).empty());
  EXPECT_TRUE(RollingVariances(x, 5).empty());
}

TEST(RollingTest, LevelShiftDetectsStep) {
  std::vector<double> x(100, 0.0);
  for (size_t i = 50; i < 100; ++i) x[i] = 10.0;
  ShiftResult r = MaxLevelShift(x, 10);
  EXPECT_NEAR(r.max_shift, 10.0, 1e-9);
  // The boundary between the fully-before and fully-after windows.
  EXPECT_NEAR(static_cast<double>(r.index), 50.0, 10.0);
}

TEST(RollingTest, VarShiftDetectsVolatilityChange) {
  Rng rng(1);
  std::vector<double> x(200);
  for (size_t i = 0; i < 100; ++i) x[i] = rng.Normal(0.0, 0.1);
  for (size_t i = 100; i < 200; ++i) x[i] = rng.Normal(0.0, 5.0);
  ShiftResult r = MaxVarShift(x, 20);
  EXPECT_GT(r.max_shift, 5.0);
  EXPECT_NEAR(static_cast<double>(r.index), 100.0, 25.0);
}

TEST(RollingTest, KlShiftDetectsDistributionChange) {
  Rng rng(2);
  std::vector<double> x(200);
  for (size_t i = 0; i < 100; ++i) x[i] = rng.Normal(0.0, 1.0);
  for (size_t i = 100; i < 200; ++i) x[i] = rng.Normal(20.0, 1.0);
  ShiftResult r = MaxKlShift(x, 20);
  EXPECT_GT(r.max_shift, 10.0);
}

TEST(RollingTest, KlShiftOnStationaryNoiseIsSmall) {
  Rng rng(3);
  std::vector<double> x(1000);
  for (auto& v : x) v = rng.Normal();
  ShiftResult r = MaxKlShift(x, 50);
  EXPECT_LT(r.max_shift, 2.0);
}

TEST(RollingTest, KlShiftIsCappedOnFlattenedWindows) {
  // A constant window has ~zero variance; the KL against a noisy window
  // explodes and must be clamped, not infinite (the PMC case from §4.3.3).
  Rng rng(4);
  std::vector<double> x(200);
  for (size_t i = 0; i < 100; ++i) x[i] = 5.0;  // PMC-style constant segment.
  for (size_t i = 100; i < 200; ++i) x[i] = rng.Normal(5.0, 1.0);
  ShiftResult r = MaxKlShift(x, 25, 50.0);
  EXPECT_LE(r.max_shift, 50.0);
  EXPECT_GT(r.max_shift, 10.0);
}

TEST(RollingTest, ShiftsOnConstantSeriesAreZero) {
  std::vector<double> x(100, 2.5);
  EXPECT_EQ(MaxLevelShift(x, 10).max_shift, 0.0);
  EXPECT_EQ(MaxVarShift(x, 10).max_shift, 0.0);
  EXPECT_EQ(MaxKlShift(x, 10).max_shift, 0.0);
}

}  // namespace
}  // namespace lossyts::features
