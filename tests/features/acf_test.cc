#include "features/acf.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace lossyts::features {
namespace {

TEST(AcfTest, WhiteNoiseHasNearZeroAcf) {
  Rng rng(1);
  std::vector<double> x(20000);
  for (auto& v : x) v = rng.Normal();
  std::vector<double> acf = Acf(x, 5);
  for (double a : acf) EXPECT_NEAR(a, 0.0, 0.03);
}

TEST(AcfTest, Ar1ProcessMatchesPhi) {
  Rng rng(2);
  std::vector<double> x(50000);
  double v = 0.0;
  for (auto& val : x) {
    v = 0.8 * v + rng.Normal();
    val = v;
  }
  std::vector<double> acf = Acf(x, 3);
  EXPECT_NEAR(acf[0], 0.8, 0.02);
  EXPECT_NEAR(acf[1], 0.64, 0.03);
  EXPECT_NEAR(acf[2], 0.512, 0.04);
}

TEST(AcfTest, PeriodicSeriesHasSeasonalAcfPeak) {
  std::vector<double> x(1000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(2.0 * 3.14159265 * static_cast<double>(i) / 24.0);
  }
  std::vector<double> acf = Acf(x, 24);
  EXPECT_GT(acf[23], 0.95);  // Lag 24 = full period.
  EXPECT_LT(acf[11], -0.9);  // Lag 12 = anti-phase.
}

TEST(AcfTest, ConstantSeriesGivesZeros) {
  std::vector<double> x(100, 3.0);
  std::vector<double> acf = Acf(x, 5);
  for (double a : acf) EXPECT_EQ(a, 0.0);
}

TEST(AcfTest, ShortSeriesHandled) {
  std::vector<double> x = {1.0};
  EXPECT_EQ(Acf(x, 5).size(), 5u);
  for (double a : Acf(x, 5)) EXPECT_EQ(a, 0.0);
}

TEST(PacfTest, Ar1HasSinglePacfSpike) {
  Rng rng(3);
  std::vector<double> x(50000);
  double v = 0.0;
  for (auto& val : x) {
    v = 0.7 * v + rng.Normal();
    val = v;
  }
  std::vector<double> pacf = Pacf(x, 5);
  EXPECT_NEAR(pacf[0], 0.7, 0.02);
  for (size_t k = 1; k < pacf.size(); ++k) {
    EXPECT_NEAR(pacf[k], 0.0, 0.03) << "lag " << k + 1;
  }
}

TEST(PacfTest, Ar2HasTwoPacfSpikes) {
  Rng rng(4);
  std::vector<double> x(50000);
  double v1 = 0.0;
  double v2 = 0.0;
  for (auto& val : x) {
    const double v = 0.5 * v1 + 0.3 * v2 + rng.Normal();
    v2 = v1;
    v1 = v;
    val = v;
  }
  std::vector<double> pacf = Pacf(x, 4);
  EXPECT_GT(std::abs(pacf[0]), 0.5);
  EXPECT_NEAR(pacf[1], 0.3, 0.03);
  EXPECT_NEAR(pacf[2], 0.0, 0.03);
  EXPECT_NEAR(pacf[3], 0.0, 0.03);
}

TEST(DiffTest, FirstDifference) {
  std::vector<double> x = {1.0, 4.0, 9.0, 16.0};
  std::vector<double> d = Diff(x, 1);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 3.0);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
  EXPECT_DOUBLE_EQ(d[2], 7.0);
}

TEST(DiffTest, SecondDifferenceOfQuadraticIsConstant) {
  std::vector<double> x(20);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i * i);
  }
  std::vector<double> d = Diff(x, 2);
  for (double v : d) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(DiffTest, TooShortReturnsEmpty) {
  std::vector<double> x = {1.0};
  EXPECT_TRUE(Diff(x, 1).empty());
  EXPECT_TRUE(Diff(x, 3).empty());
}

TEST(SumOfSquaresTest, BasicAndTruncated) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(SumOfSquares(v, 2), 5.0);
  EXPECT_DOUBLE_EQ(SumOfSquares(v, 10), 14.0);
  EXPECT_DOUBLE_EQ(SumOfSquares(v, 0), 0.0);
}

}  // namespace
}  // namespace lossyts::features
