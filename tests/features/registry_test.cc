#include "features/registry.h"

#include <cmath>

#include <gtest/gtest.h>

#include "compress/pmc.h"
#include "core/rng.h"
#include "data/datasets.h"

namespace lossyts::features {
namespace {

TimeSeries SeasonalSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = 20.0 +
           4.0 * std::sin(2.0 * 3.14159265 * static_cast<double>(i) / 24.0) +
           0.5 * rng.Normal();
  }
  return TimeSeries(0, 3600, std::move(v));
}

TEST(RegistryTest, ExactlyFortyTwoFeatures) {
  EXPECT_EQ(FeatureNames().size(), kFeatureCount);
  EXPECT_EQ(kFeatureCount, 42u);
}

TEST(RegistryTest, ComputesAllNamedFeatures) {
  Result<FeatureMap> f = ComputeAllFeatures(SeasonalSeries(500, 1), 24);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  EXPECT_EQ(f->size(), kFeatureCount);
  for (const std::string& name : FeatureNames()) {
    EXPECT_TRUE(f->count(name)) << "missing feature " << name;
  }
}

TEST(RegistryTest, AllFeaturesAreFinite) {
  Result<FeatureMap> f = ComputeAllFeatures(SeasonalSeries(1000, 2), 24);
  ASSERT_TRUE(f.ok());
  for (const auto& [name, value] : *f) {
    EXPECT_TRUE(std::isfinite(value)) << name << " = " << value;
  }
}

TEST(RegistryTest, SeasonalSeriesHasHighSeasStrength) {
  Result<FeatureMap> f = ComputeAllFeatures(SeasonalSeries(1000, 3), 24);
  ASSERT_TRUE(f.ok());
  EXPECT_GT(f->at("seas_strength"), 0.8);
  EXPECT_GT(f->at("seas_acf1"), 0.5);
  EXPECT_EQ(f->at("nperiods"), 1.0);
  EXPECT_EQ(f->at("seasonal_period"), 24.0);
}

TEST(RegistryTest, NonSeasonalModeWorks) {
  Rng rng(4);
  std::vector<double> v(500);
  for (auto& x : v) x = rng.Normal();
  Result<FeatureMap> f =
      ComputeAllFeatures(TimeSeries(0, 60, std::move(v)), 0);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->at("seas_strength"), 0.0);
  EXPECT_EQ(f->at("nperiods"), 0.0);
  EXPECT_EQ(f->at("seasonal_period"), 1.0);
}

TEST(RegistryTest, TooShortSeriesFails) {
  EXPECT_FALSE(ComputeAllFeatures(SeasonalSeries(40, 5), 24).ok());
}

TEST(RegistryTest, MeanAndVarMatchDirectComputation) {
  TimeSeries ts = SeasonalSeries(500, 6);
  Result<FeatureMap> f = ComputeAllFeatures(ts, 24);
  ASSERT_TRUE(f.ok());
  Result<TimeSeries::Stats> stats = ts.ComputeStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(f->at("mean"), stats->mean, 1e-9);
  EXPECT_NEAR(f->at("var"), stats->variance * 500.0 / 499.0, 1e-6);
}

TEST(RegistryTest, PmcCompressionRaisesKlShift) {
  // The paper's core RQ2 finding: PMC's constant segments blow up the KL
  // divergence between consecutive windows.
  TimeSeries ts = SeasonalSeries(2000, 7);
  Result<FeatureMap> raw = ComputeAllFeatures(ts, 24);
  ASSERT_TRUE(raw.ok());

  compress::PmcCompressor pmc;
  Result<std::vector<uint8_t>> blob = pmc.Compress(ts, 0.3);
  ASSERT_TRUE(blob.ok());
  Result<TimeSeries> decompressed = pmc.Decompress(*blob);
  ASSERT_TRUE(decompressed.ok());
  Result<FeatureMap> lossy = ComputeAllFeatures(*decompressed, 24);
  ASSERT_TRUE(lossy.ok());

  EXPECT_GT(lossy->at("max_kl_shift"), raw->at("max_kl_shift"));
  EXPECT_GT(lossy->at("flat_spots"), raw->at("flat_spots"));
}

TEST(RegistryTest, RelativeDifferenceOnIdenticalMapsIsZero) {
  Result<FeatureMap> f = ComputeAllFeatures(SeasonalSeries(500, 8), 24);
  ASSERT_TRUE(f.ok());
  FeatureMap diff = RelativeDifferencePercent(*f, *f);
  for (const auto& [name, value] : diff) {
    EXPECT_EQ(value, 0.0) << name;
  }
}

TEST(RegistryTest, RelativeDifferenceDetectsChange) {
  FeatureMap a = {{"mean", 10.0}, {"var", 4.0}};
  FeatureMap b = {{"mean", 11.0}, {"var", 4.0}};
  FeatureMap diff = RelativeDifferencePercent(a, b);
  EXPECT_NEAR(diff.at("mean"), 10.0, 1e-9);
  EXPECT_EQ(diff.at("var"), 0.0);
}

TEST(RegistryTest, WorksOnAllSixDatasets) {
  data::DatasetOptions options;
  options.length_fraction = 0.03;  // Keep this test fast.
  for (const std::string& name : data::DatasetNames()) {
    Result<data::Dataset> d = data::MakeDataset(name, options);
    ASSERT_TRUE(d.ok()) << name;
    Result<FeatureMap> f =
        ComputeAllFeatures(d->series, d->season_length);
    ASSERT_TRUE(f.ok()) << name << ": " << f.status().ToString();
    for (const auto& [feature, value] : *f) {
      EXPECT_TRUE(std::isfinite(value)) << name << "/" << feature;
    }
  }
}

}  // namespace
}  // namespace lossyts::features
