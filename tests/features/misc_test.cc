#include "features/misc.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "features/spectral.h"

namespace lossyts::features {
namespace {

TEST(FlatSpotsTest, ConstantSeriesIsAllFlat) {
  std::vector<double> x(50, 3.0);
  EXPECT_EQ(FlatSpots(x), 50u);
}

TEST(FlatSpotsTest, DetectsLongPlateau) {
  std::vector<double> x;
  for (int i = 0; i < 20; ++i) x.push_back(static_cast<double>(i));
  for (int i = 0; i < 30; ++i) x.push_back(19.5);
  for (int i = 0; i < 20; ++i) x.push_back(static_cast<double>(i) / 3.0);
  EXPECT_GE(FlatSpots(x), 30u);
}

TEST(CrossingPointsTest, AlternatingSeries) {
  std::vector<double> x;
  for (int i = 0; i < 10; ++i) {
    x.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  EXPECT_EQ(CrossingPoints(x), 9u);
}

TEST(CrossingPointsTest, MonotoneSeriesCrossesOnce) {
  std::vector<double> x;
  for (int i = 0; i < 100; ++i) x.push_back(static_cast<double>(i));
  EXPECT_EQ(CrossingPoints(x), 1u);
}

TEST(LumpinessStabilityTest, HomogeneousNoiseHasLowValues) {
  Rng rng(1);
  std::vector<double> x(4000);
  for (auto& v : x) v = rng.Normal();
  EXPECT_LT(Lumpiness(x, 100), 0.1);
  EXPECT_LT(Stability(x, 100), 0.1);
}

TEST(LumpinessStabilityTest, VaryingVarianceRaisesLumpiness) {
  Rng rng(2);
  std::vector<double> calm(4000);
  std::vector<double> lumpy(4000);
  for (size_t i = 0; i < 4000; ++i) {
    calm[i] = rng.Normal();
    lumpy[i] = (i / 500) % 2 == 0 ? rng.Normal(0.0, 0.1) : rng.Normal(0.0, 3.0);
  }
  EXPECT_GT(Lumpiness(lumpy, 100), Lumpiness(calm, 100) * 5.0);
}

TEST(LumpinessStabilityTest, LevelShiftsRaiseStability) {
  Rng rng(3);
  std::vector<double> shifting(4000);
  for (size_t i = 0; i < 4000; ++i) {
    shifting[i] = ((i / 500) % 2 == 0 ? -3.0 : 3.0) + rng.Normal(0.0, 0.3);
  }
  EXPECT_GT(Stability(shifting, 100), 0.5);
}

TEST(HurstTest, WhiteNoiseNearHalf) {
  Rng rng(4);
  std::vector<double> x(8192);
  for (auto& v : x) v = rng.Normal();
  EXPECT_NEAR(HurstExponent(x), 0.55, 0.12);
}

TEST(HurstTest, PersistentSeriesAboveHalf) {
  Rng rng(5);
  std::vector<double> x(8192);
  double s = 0.0;
  for (auto& v : x) {
    s += rng.Normal();
    v = s;  // Integrated noise is strongly persistent.
  }
  EXPECT_GT(HurstExponent(x), 0.8);
}

TEST(NonlinearityTest, LinearProcessScoresLow) {
  Rng rng(6);
  std::vector<double> x(4000);
  double v = 0.0;
  for (auto& val : x) {
    v = 0.6 * v + rng.Normal();
    val = v;
  }
  EXPECT_LT(Nonlinearity(x), 12.0);
}

TEST(NonlinearityTest, ChaoticLogisticMapScoresHigh) {
  // The logistic map is exactly quadratic in its lag, so the Teräsvirta-style
  // augmented regression captures almost all residual variance.
  Rng rng(7);
  std::vector<double> x(4000);
  double v = 0.37;
  for (auto& val : x) {
    v = 3.8 * v * (1.0 - v) + 0.001 * rng.Normal();
    v = std::clamp(v, 0.01, 0.99);
    val = v;
  }
  EXPECT_GT(Nonlinearity(x), 100.0);
}

TEST(ArchStatTest, HomoskedasticNoiseScoresLow) {
  Rng rng(8);
  std::vector<double> x(4000);
  for (auto& v : x) v = rng.Normal();
  EXPECT_LT(ArchStat(x), 0.05);
}

TEST(ArchStatTest, VolatilityClusteringScoresHigher) {
  Rng rng(9);
  std::vector<double> x(4000);
  double sigma = 1.0;
  for (auto& v : x) {
    sigma = 0.95 * sigma + 0.05 * (1.0 + 3.0 * rng.Uniform());
    v = rng.Normal(0.0, sigma * sigma);
  }
  EXPECT_GT(ArchStat(x), ArchStat([&] {
              Rng r2(10);
              std::vector<double> w(4000);
              for (auto& v : w) v = r2.Normal();
              return w;
            }()));
}

TEST(HoltTest, SmoothTrendPrefersLowAlphaHighTrendFit) {
  std::vector<double> x(500);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = 2.0 * static_cast<double>(i) + 5.0;
  }
  HoltParameters p = FitHolt(x);
  // A perfect linear series is forecast exactly for any parameters; just
  // check the fit runs and returns valid ranges.
  EXPECT_GE(p.alpha, 0.0);
  EXPECT_LE(p.alpha, 1.0);
  EXPECT_GE(p.beta, 0.0);
  EXPECT_LE(p.beta, 1.0);
}

TEST(HoltTest, NoisyLevelPrefersSmallAlpha) {
  Rng rng(11);
  std::vector<double> x(2000);
  for (auto& v : x) v = 100.0 + rng.Normal();
  HoltParameters p = FitHolt(x);
  EXPECT_LT(p.alpha, 0.4);
  EXPECT_LT(p.beta, 0.3);
}

TEST(HoltTest, FastMovingLevelPrefersLargeAlpha) {
  Rng rng(12);
  std::vector<double> x(2000);
  double s = 0.0;
  for (auto& v : x) {
    s += rng.Normal();
    v = s;
  }
  HoltParameters p = FitHolt(x);
  EXPECT_GT(p.alpha, 0.6);
}

TEST(StandardizeTest, ZeroMeanUnitVariance) {
  Rng rng(13);
  std::vector<double> x(1000);
  for (auto& v : x) v = rng.Normal(50.0, 10.0);
  std::vector<double> z = Standardize(x);
  double mean = 0.0;
  for (double v : z) mean += v;
  mean /= static_cast<double>(z.size());
  EXPECT_NEAR(mean, 0.0, 1e-9);
}

TEST(StandardizeTest, ConstantMapsToZeros) {
  std::vector<double> x(10, 4.0);
  for (double v : Standardize(x)) EXPECT_EQ(v, 0.0);
}

TEST(SpectralTest, FftRoundTrip) {
  Rng rng(14);
  std::vector<std::complex<double>> a(64);
  std::vector<std::complex<double>> original(64);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = {rng.Normal(), rng.Normal()};
    original[i] = a[i];
  }
  Fft(a);
  Fft(a, /*inverse=*/true);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(a[i].imag(), original[i].imag(), 1e-9);
  }
}

TEST(SpectralTest, PureToneHasLowEntropy) {
  std::vector<double> x(1024);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(2.0 * 3.14159265 * static_cast<double>(i) / 32.0);
  }
  EXPECT_LT(SpectralEntropy(x), 0.3);
}

TEST(SpectralTest, WhiteNoiseHasHighEntropy) {
  Rng rng(15);
  std::vector<double> x(1024);
  for (auto& v : x) v = rng.Normal();
  EXPECT_GT(SpectralEntropy(x), 0.85);
}

TEST(SpectralTest, ConstantSeriesEntropyZero) {
  std::vector<double> x(128, 2.0);
  EXPECT_EQ(SpectralEntropy(x), 0.0);
}

}  // namespace
}  // namespace lossyts::features
