#include "features/decompose.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace lossyts::features {
namespace {

constexpr double kPi = 3.14159265358979323846;

std::vector<double> SeasonalTrendSeries(size_t n, double trend_slope,
                                        double seasonal_amp, double noise,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = 10.0 + trend_slope * static_cast<double>(i) +
           seasonal_amp * std::sin(2.0 * kPi * static_cast<double>(i) / 24.0) +
           noise * rng.Normal();
  }
  return x;
}

TEST(DecomposeTest, RecoversComponentsOfCleanSeries) {
  std::vector<double> x = SeasonalTrendSeries(480, 0.05, 3.0, 0.0, 1);
  Result<Decomposition> d = Decompose(x, 24);
  ASSERT_TRUE(d.ok());
  // Remainder of a noise-free series should be near zero.
  for (double r : d->remainder) EXPECT_NEAR(r, 0.0, 0.15);
  // Trend is increasing.
  EXPECT_GT(d->trend.back(), d->trend.front());
  // Seasonal amplitude recovered.
  double max_s = 0.0;
  for (double s : d->seasonal) max_s = std::max(max_s, s);
  EXPECT_NEAR(max_s, 3.0, 0.3);
}

TEST(DecomposeTest, StrengthsOnStronglySeasonalSeries) {
  std::vector<double> x = SeasonalTrendSeries(960, 0.0, 5.0, 0.3, 2);
  Result<Decomposition> d = Decompose(x, 24);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(SeasonalStrength(*d), 0.9);
}

TEST(DecomposeTest, StrengthsOnPureNoise) {
  Rng rng(3);
  std::vector<double> x(960);
  for (auto& v : x) v = rng.Normal();
  Result<Decomposition> d = Decompose(x, 24);
  ASSERT_TRUE(d.ok());
  EXPECT_LT(SeasonalStrength(*d), 0.35);
  EXPECT_LT(TrendStrength(*d), 0.35);
}

TEST(DecomposeTest, TrendStrengthOnTrendingSeries) {
  std::vector<double> x = SeasonalTrendSeries(960, 0.1, 1.0, 0.3, 4);
  Result<Decomposition> d = Decompose(x, 24);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(TrendStrength(*d), 0.9);
}

TEST(DecomposeTest, LinearityPositiveForUpwardTrend) {
  std::vector<double> up = SeasonalTrendSeries(480, 0.1, 1.0, 0.1, 5);
  std::vector<double> down = SeasonalTrendSeries(480, -0.1, 1.0, 0.1, 6);
  Result<Decomposition> du = Decompose(up, 24);
  Result<Decomposition> dd = Decompose(down, 24);
  ASSERT_TRUE(du.ok());
  ASSERT_TRUE(dd.ok());
  EXPECT_GT(Linearity(*du), 0.0);
  EXPECT_LT(Linearity(*dd), 0.0);
}

TEST(DecomposeTest, CurvatureDetectsParabola) {
  std::vector<double> x(480);
  for (size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / 480.0 - 0.5;
    x[i] = 100.0 * t * t +
           std::sin(2.0 * kPi * static_cast<double>(i) / 24.0);
  }
  Result<Decomposition> d = Decompose(x, 24);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(std::abs(Curvature(*d)), std::abs(Linearity(*d)));
}

TEST(DecomposeTest, SpikeDetectsOutlierInRemainder) {
  std::vector<double> clean = SeasonalTrendSeries(480, 0.0, 2.0, 0.1, 7);
  std::vector<double> spiked = clean;
  spiked[240] += 50.0;
  Result<Decomposition> dc = Decompose(clean, 24);
  Result<Decomposition> ds = Decompose(spiked, 24);
  ASSERT_TRUE(dc.ok());
  ASSERT_TRUE(ds.ok());
  EXPECT_GT(Spike(*ds), Spike(*dc) * 10.0);
}

TEST(DecomposeTest, PeakAndTroughPhases) {
  // sin peaks at a quarter of the period (phase 6 of 24).
  std::vector<double> x = SeasonalTrendSeries(480, 0.0, 4.0, 0.0, 8);
  Result<Decomposition> d = Decompose(x, 24);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(SeasonalPeak(*d), 6u);
  EXPECT_EQ(SeasonalTrough(*d), 18u);
}

TEST(DecomposeTest, RejectsTooShortSeries) {
  std::vector<double> x(50, 1.0);
  EXPECT_FALSE(Decompose(x, 24).ok());
}

TEST(DecomposeTest, RejectsBadPeriod) {
  std::vector<double> x(100, 1.0);
  EXPECT_FALSE(Decompose(x, 1).ok());
}

TEST(DecomposeTest, DetrendOnlyHasZeroSeasonal) {
  Rng rng(9);
  std::vector<double> x(200);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.1 * static_cast<double>(i) + rng.Normal();
  }
  Result<Decomposition> d = DetrendOnly(x, 10);
  ASSERT_TRUE(d.ok());
  for (double s : d->seasonal) EXPECT_EQ(s, 0.0);
  EXPECT_EQ(SeasonalStrength(*d), 0.0);
  EXPECT_GT(TrendStrength(*d), 0.8);
}

TEST(DecomposeTest, OddPeriodWorks) {
  std::vector<double> x(300);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(2.0 * kPi * static_cast<double>(i) / 7.0);
  }
  Result<Decomposition> d = Decompose(x, 7);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(SeasonalStrength(*d), 0.9);
}

}  // namespace
}  // namespace lossyts::features
