#include "zip/lz77.h"

#include <string>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace lossyts::zip {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

// Reconstructs the input from tokens; the fundamental LZ77 invariant.
std::vector<uint8_t> Reconstruct(const std::vector<Lz77Token>& tokens) {
  std::vector<uint8_t> out;
  for (const Lz77Token& t : tokens) {
    if (t.is_match) {
      const size_t start = out.size() - t.distance;
      for (int k = 0; k < t.length; ++k) out.push_back(out[start + k]);
    } else {
      out.push_back(t.literal);
    }
  }
  return out;
}

TEST(Lz77Test, EmptyInputGivesNoTokens) {
  EXPECT_TRUE(Lz77Tokenize(nullptr, 0).empty());
}

TEST(Lz77Test, ShortInputIsAllLiterals) {
  std::vector<uint8_t> data = Bytes("ab");
  std::vector<Lz77Token> tokens = Lz77Tokenize(data.data(), data.size());
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_FALSE(tokens[0].is_match);
  EXPECT_FALSE(tokens[1].is_match);
}

TEST(Lz77Test, RepetitionProducesMatches) {
  std::vector<uint8_t> data = Bytes("abcabcabcabcabcabc");
  std::vector<Lz77Token> tokens = Lz77Tokenize(data.data(), data.size());
  bool has_match = false;
  for (const Lz77Token& t : tokens) has_match |= t.is_match;
  EXPECT_TRUE(has_match);
  EXPECT_LT(tokens.size(), data.size());
  EXPECT_EQ(Reconstruct(tokens), data);
}

TEST(Lz77Test, OverlappingMatchReconstructs) {
  // "aaaa..." forces distance-1 overlapping copies.
  std::vector<uint8_t> data(100, 'a');
  std::vector<Lz77Token> tokens = Lz77Tokenize(data.data(), data.size());
  EXPECT_EQ(Reconstruct(tokens), data);
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_TRUE(tokens[1].is_match);
  EXPECT_EQ(tokens[1].distance, 1);
}

TEST(Lz77Test, MatchFieldsWithinDeflateLimits) {
  Rng rng(3);
  std::vector<uint8_t> data;
  for (int i = 0; i < 50000; ++i) {
    data.push_back(static_cast<uint8_t>(rng.UniformInt(4)));
  }
  std::vector<Lz77Token> tokens = Lz77Tokenize(data.data(), data.size());
  for (const Lz77Token& t : tokens) {
    if (t.is_match) {
      EXPECT_GE(t.length, 3);
      EXPECT_LE(t.length, 258);
      EXPECT_GE(t.distance, 1);
      EXPECT_LE(t.distance, 32768);
    }
  }
  EXPECT_EQ(Reconstruct(tokens), data);
}

TEST(Lz77Test, RandomBytesReconstruct) {
  Rng rng(11);
  std::vector<uint8_t> data;
  for (int i = 0; i < 10000; ++i) {
    data.push_back(static_cast<uint8_t>(rng.UniformInt(256)));
  }
  std::vector<Lz77Token> tokens = Lz77Tokenize(data.data(), data.size());
  EXPECT_EQ(Reconstruct(tokens), data);
}

TEST(Lz77Test, TextCompressesWell) {
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "the quick brown fox jumps over the lazy dog. ";
  }
  std::vector<uint8_t> data = Bytes(text);
  std::vector<Lz77Token> tokens = Lz77Tokenize(data.data(), data.size());
  EXPECT_LT(tokens.size(), data.size() / 5);
  EXPECT_EQ(Reconstruct(tokens), data);
}

}  // namespace
}  // namespace lossyts::zip
