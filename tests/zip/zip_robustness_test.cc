// Corruption robustness for the lossless layer, mirroring
// tests/compress/robustness_test.cc: truncated and bit-flipped gzip and raw
// DEFLATE streams must come back as a clean error Status (or, for flips the
// format cannot detect, a successful decode) — never a crash, hang or
// out-of-bounds read.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "zip/deflate.h"
#include "zip/gzip.h"

namespace lossyts::zip {
namespace {

// Mixed text/binary sample with enough structure to exercise dynamic
// Huffman blocks and LZ77 matches.
std::vector<uint8_t> SampleData(size_t n) {
  Rng rng(11);
  std::vector<uint8_t> data(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 7 < 4) {
      data[i] = static_cast<uint8_t>('a' + (i % 13));
    } else {
      data[i] = static_cast<uint8_t>(rng.UniformInt(256));
    }
  }
  return data;
}

TEST(ZipRobustnessTest, TruncatedGzipAlwaysErrors) {
  const std::vector<uint8_t> gz = GzipCompress(SampleData(2000));
  for (size_t keep = 0; keep < gz.size(); ++keep) {
    std::vector<uint8_t> truncated(gz.begin(), gz.begin() + keep);
    Result<std::vector<uint8_t>> out = GzipDecompress(truncated);
    EXPECT_FALSE(out.ok()) << "keep=" << keep;
  }
}

TEST(ZipRobustnessTest, TruncatedDeflateAlwaysErrors) {
  const std::vector<uint8_t> deflated = DeflateCompress(SampleData(2000));
  for (size_t keep = 0; keep < deflated.size(); ++keep) {
    std::vector<uint8_t> truncated(deflated.begin(), deflated.begin() + keep);
    Result<std::vector<uint8_t>> out = DeflateDecompress(truncated);
    EXPECT_FALSE(out.ok()) << "keep=" << keep;
  }
}

TEST(ZipRobustnessTest, BitFlippedGzipNeverCrashes) {
  const std::vector<uint8_t> data = SampleData(3000);
  const std::vector<uint8_t> gz = GzipCompress(data);
  Rng rng(12);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = gz;
    const int flips = 1 + static_cast<int>(rng.UniformInt(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.UniformInt(mutated.size());
      mutated[pos] ^= static_cast<uint8_t>(1u << rng.UniformInt(8));
    }
    // Flips in ignored header fields (e.g. MTIME) may legitimately decode;
    // a flip that changes the payload must be caught by the CRC trailer.
    Result<std::vector<uint8_t>> out = GzipDecompress(mutated);
    if (out.ok()) EXPECT_EQ(*out, data);
  }
  SUCCEED();
}

TEST(ZipRobustnessTest, BitFlippedDeflateNeverCrashes) {
  const std::vector<uint8_t> deflated = DeflateCompress(SampleData(3000));
  Rng rng(13);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = deflated;
    const int flips = 1 + static_cast<int>(rng.UniformInt(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.UniformInt(mutated.size());
      mutated[pos] ^= static_cast<uint8_t>(1u << rng.UniformInt(8));
    }
    // Raw DEFLATE has no checksum, so a flip may decode to wrong bytes; the
    // invariant under test is bounded, crash-free decoding.
    Result<std::vector<uint8_t>> out = DeflateDecompress(mutated);
    (void)out;
  }
  SUCCEED();
}

TEST(ZipRobustnessTest, RandomGarbageNeverCrashes) {
  Rng rng(14);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> garbage(rng.UniformInt(600));
    for (uint8_t& b : garbage) b = static_cast<uint8_t>(rng.UniformInt(256));
    (void)GzipDecompress(garbage);
    (void)DeflateDecompress(garbage);
  }
  SUCCEED();
}

TEST(ZipRobustnessTest, EveryByteZeroedGzipIsHandled) {
  const std::vector<uint8_t> data = SampleData(600);
  const std::vector<uint8_t> gz = GzipCompress(data);
  for (size_t pos = 0; pos < gz.size(); ++pos) {
    std::vector<uint8_t> mutated = gz;
    mutated[pos] = 0;
    Result<std::vector<uint8_t>> out = GzipDecompress(mutated);
    if (out.ok()) EXPECT_EQ(*out, data) << "pos=" << pos;
  }
}

}  // namespace
}  // namespace lossyts::zip
