#include "zip/gzip.h"

#include <string>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace lossyts::zip {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(GzipTest, RoundTripText) {
  std::string text;
  for (int i = 0; i < 100; ++i) text += "gzip container round trip ";
  std::vector<uint8_t> input = Bytes(text);
  std::vector<uint8_t> gz = GzipCompress(input);
  Result<std::vector<uint8_t>> out = GzipDecompress(gz);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, input);
}

TEST(GzipTest, RoundTripEmpty) {
  std::vector<uint8_t> gz = GzipCompress({});
  Result<std::vector<uint8_t>> out = GzipDecompress(gz);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(GzipTest, HeaderHasGzipMagic) {
  std::vector<uint8_t> gz = GzipCompress(Bytes("x"));
  ASSERT_GE(gz.size(), 18u);
  EXPECT_EQ(gz[0], 0x1F);
  EXPECT_EQ(gz[1], 0x8B);
  EXPECT_EQ(gz[2], 8);  // DEFLATE.
}

TEST(GzipTest, DetectsCorruptedBody) {
  std::string text;
  for (int i = 0; i < 50; ++i) text += "some compressible payload ";
  std::vector<uint8_t> gz = GzipCompress(Bytes(text));
  gz[gz.size() / 2] ^= 0x5A;  // Flip bits mid-body.
  EXPECT_FALSE(GzipDecompress(gz).ok());
}

TEST(GzipTest, DetectsCorruptedCrc) {
  std::vector<uint8_t> gz = GzipCompress(Bytes("check the trailer"));
  gz[gz.size() - 5] ^= 0xFF;  // Inside the CRC field.
  Result<std::vector<uint8_t>> out = GzipDecompress(gz);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCorruption);
}

TEST(GzipTest, DetectsBadMagic) {
  std::vector<uint8_t> gz = GzipCompress(Bytes("hello"));
  gz[0] = 0x00;
  EXPECT_FALSE(GzipDecompress(gz).ok());
}

TEST(GzipTest, RejectsTooShortInput) {
  std::vector<uint8_t> tiny = {0x1F, 0x8B, 0x08};
  EXPECT_FALSE(GzipDecompress(tiny).ok());
}

TEST(GzipTest, CompressesDoublePayloadBelowRawSize) {
  // Smooth time-series doubles (the raw-dataset baseline case).
  Rng rng(17);
  std::vector<double> values;
  double v = 50.0;
  for (int i = 0; i < 20000; ++i) {
    v += 0.05 * rng.Normal();
    values.push_back(v);
  }
  std::vector<uint8_t> input(
      reinterpret_cast<const uint8_t*>(values.data()),
      reinterpret_cast<const uint8_t*>(values.data()) + values.size() * 8);
  std::vector<uint8_t> gz = GzipCompress(input);
  EXPECT_LT(gz.size(), input.size());
  Result<std::vector<uint8_t>> out = GzipDecompress(gz);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, input);
}

TEST(GzipTest, RandomPayloadSweep) {
  Rng rng(29);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<uint8_t> input;
    const size_t n = rng.UniformInt(20000);
    for (size_t i = 0; i < n; ++i) {
      input.push_back(static_cast<uint8_t>(rng.UniformInt(64)));
    }
    std::vector<uint8_t> gz = GzipCompress(input);
    Result<std::vector<uint8_t>> out = GzipDecompress(gz);
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(*out, input);
  }
}

}  // namespace
}  // namespace lossyts::zip
