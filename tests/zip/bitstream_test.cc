#include "zip/bitstream.h"

#include <gtest/gtest.h>

namespace lossyts::zip {
namespace {

TEST(BitstreamTest, WriteReadRoundTrip) {
  BitWriter writer;
  writer.WriteBits(0b101, 3);
  writer.WriteBits(0b11110000, 8);
  writer.WriteBits(1, 1);
  std::vector<uint8_t> bytes = writer.Finish();

  BitReader reader(bytes);
  EXPECT_EQ(*reader.ReadBits(3), 0b101u);
  EXPECT_EQ(*reader.ReadBits(8), 0b11110000u);
  EXPECT_EQ(*reader.ReadBits(1), 1u);
}

TEST(BitstreamTest, LsbFirstPacking) {
  BitWriter writer;
  writer.WriteBits(1, 1);  // Bit 0 of first byte.
  writer.WriteBits(0, 1);
  writer.WriteBits(1, 1);  // Bit 2.
  std::vector<uint8_t> bytes = writer.Finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b00000101);
}

TEST(BitstreamTest, HuffmanCodeIsBitReversed) {
  // Code 0b10 of length 2 must be emitted MSB-first: 1 then 0.
  BitWriter writer;
  writer.WriteHuffmanCode(0b10, 2);
  std::vector<uint8_t> bytes = writer.Finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0] & 0b11, 0b01);  // LSB-first stream: first bit = 1.
}

TEST(BitstreamTest, AlignToBytePads) {
  BitWriter writer;
  writer.WriteBits(1, 1);
  writer.AlignToByte();
  writer.WriteByte(0xAB);
  std::vector<uint8_t> bytes = writer.Finish();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[1], 0xAB);

  BitReader reader(bytes);
  EXPECT_EQ(*reader.ReadBit(), 1u);
  reader.AlignToByte();
  EXPECT_EQ(*reader.ReadByte(), 0xAB);
}

TEST(BitstreamTest, ReadPastEndFails) {
  BitWriter writer;
  writer.WriteBits(0x3, 2);
  std::vector<uint8_t> bytes = writer.Finish();
  BitReader reader(bytes);
  EXPECT_TRUE(reader.ReadBits(8).ok());
  EXPECT_FALSE(reader.ReadBits(8).ok());
}

TEST(BitstreamTest, EmptyReaderFailsImmediately) {
  BitReader reader(nullptr, 0);
  EXPECT_FALSE(reader.ReadBit().ok());
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BitstreamTest, MultiByteValues) {
  BitWriter writer;
  writer.WriteBits(0xDEAD, 16);
  writer.WriteBits(0xBEEF, 16);
  std::vector<uint8_t> bytes = writer.Finish();
  BitReader reader(bytes);
  EXPECT_EQ(*reader.ReadBits(16), 0xDEADu);
  EXPECT_EQ(*reader.ReadBits(16), 0xBEEFu);
}

TEST(BitstreamTest, BitCountTracksWrites) {
  BitWriter writer;
  writer.WriteBits(0, 5);
  EXPECT_EQ(writer.bit_count(), 5u);
  writer.AlignToByte();
  EXPECT_EQ(writer.bit_count(), 8u);
}

}  // namespace
}  // namespace lossyts::zip
