#include "zip/huffman.h"

#include <numeric>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace lossyts::zip {
namespace {

// Kraft sum in units of 2^-max; a complete prefix code sums to exactly 1.
double KraftSum(const std::vector<int>& lengths) {
  double sum = 0.0;
  for (int l : lengths) {
    if (l > 0) sum += std::pow(2.0, -l);
  }
  return sum;
}

TEST(HuffmanTest, TwoSymbolsGetOneBitEach) {
  Result<std::vector<int>> lengths = BuildCodeLengths({5, 3}, 15);
  ASSERT_TRUE(lengths.ok());
  EXPECT_EQ((*lengths)[0], 1);
  EXPECT_EQ((*lengths)[1], 1);
}

TEST(HuffmanTest, SingleSymbolGetsLengthOne) {
  Result<std::vector<int>> lengths = BuildCodeLengths({0, 9, 0}, 15);
  ASSERT_TRUE(lengths.ok());
  EXPECT_EQ((*lengths)[0], 0);
  EXPECT_EQ((*lengths)[1], 1);
  EXPECT_EQ((*lengths)[2], 0);
}

TEST(HuffmanTest, AllZeroFrequenciesGiveAllZeroLengths) {
  Result<std::vector<int>> lengths = BuildCodeLengths({0, 0, 0}, 15);
  ASSERT_TRUE(lengths.ok());
  for (int l : *lengths) EXPECT_EQ(l, 0);
}

TEST(HuffmanTest, SkewedFrequenciesGiveShorterCodesToFrequentSymbols) {
  Result<std::vector<int>> lengths = BuildCodeLengths({100, 10, 10, 1}, 15);
  ASSERT_TRUE(lengths.ok());
  EXPECT_LE((*lengths)[0], (*lengths)[1]);
  EXPECT_LE((*lengths)[1], (*lengths)[3]);
  EXPECT_NEAR(KraftSum(*lengths), 1.0, 1e-12);
}

TEST(HuffmanTest, LengthLimitIsEnforced) {
  // Fibonacci-like frequencies force deep trees in unlimited Huffman.
  std::vector<uint64_t> freqs;
  uint64_t a = 1;
  uint64_t b = 1;
  for (int i = 0; i < 30; ++i) {
    freqs.push_back(a);
    const uint64_t next = a + b;
    a = b;
    b = next;
  }
  Result<std::vector<int>> lengths = BuildCodeLengths(freqs, 15);
  ASSERT_TRUE(lengths.ok());
  int max_len = 0;
  for (int l : *lengths) max_len = std::max(max_len, l);
  EXPECT_LE(max_len, 15);
  EXPECT_NEAR(KraftSum(*lengths), 1.0, 1e-12);
}

TEST(HuffmanTest, LengthLimitSeven) {
  std::vector<uint64_t> freqs(19);
  for (size_t i = 0; i < freqs.size(); ++i) freqs[i] = 1ull << i;
  Result<std::vector<int>> lengths = BuildCodeLengths(freqs, 7);
  ASSERT_TRUE(lengths.ok());
  int max_len = 0;
  for (int l : *lengths) max_len = std::max(max_len, l);
  EXPECT_LE(max_len, 7);
  EXPECT_NEAR(KraftSum(*lengths), 1.0, 1e-12);
}

TEST(HuffmanTest, TooManySymbolsForLimitFails) {
  std::vector<uint64_t> freqs(9, 1);  // 9 symbols cannot fit in 3-bit codes.
  EXPECT_FALSE(BuildCodeLengths(freqs, 3).ok());
}

TEST(HuffmanTest, CanonicalCodesAreIncreasingWithinLength) {
  std::vector<int> lengths = {2, 1, 3, 3};
  std::vector<uint32_t> codes = CanonicalCodes(lengths);
  // RFC 1951 example-style: length-1 symbol gets 0, length-2 gets 10,
  // length-3 symbols get 110, 111.
  EXPECT_EQ(codes[1], 0b0u);
  EXPECT_EQ(codes[0], 0b10u);
  EXPECT_EQ(codes[2], 0b110u);
  EXPECT_EQ(codes[3], 0b111u);
}

TEST(HuffmanTest, EncodeDecodeRoundTrip) {
  std::vector<uint64_t> freqs = {50, 20, 20, 5, 4, 1};
  Result<std::vector<int>> lengths = BuildCodeLengths(freqs, 15);
  ASSERT_TRUE(lengths.ok());
  std::vector<uint32_t> codes = CanonicalCodes(*lengths);

  std::vector<int> message = {0, 1, 2, 3, 4, 5, 0, 0, 2, 1, 5, 4, 3};
  BitWriter writer;
  for (int s : message) writer.WriteHuffmanCode(codes[s], (*lengths)[s]);
  std::vector<uint8_t> bytes = writer.Finish();

  HuffmanDecoder decoder;
  ASSERT_TRUE(decoder.Init(*lengths).ok());
  BitReader reader(bytes);
  for (int expected : message) {
    Result<int> sym = decoder.Decode(reader);
    ASSERT_TRUE(sym.ok());
    EXPECT_EQ(*sym, expected);
  }
}

TEST(HuffmanTest, DecoderRejectsOversubscribedCode) {
  // Three symbols of length 1 oversubscribe a binary prefix code.
  HuffmanDecoder decoder;
  EXPECT_FALSE(decoder.Init({1, 1, 1}).ok());
}

TEST(HuffmanTest, DecoderRejectsIncompleteCode) {
  // Two symbols of length 2 leave half the code space unused.
  HuffmanDecoder decoder;
  EXPECT_FALSE(decoder.Init({2, 2}).ok());
}

TEST(HuffmanTest, DecoderAcceptsDegenerateSingleSymbol) {
  HuffmanDecoder decoder;
  ASSERT_TRUE(decoder.Init({0, 1, 0}).ok());
  BitWriter writer;
  writer.WriteHuffmanCode(0, 1);
  std::vector<uint8_t> bytes = writer.Finish();
  BitReader reader(bytes);
  Result<int> sym = decoder.Decode(reader);
  ASSERT_TRUE(sym.ok());
  EXPECT_EQ(*sym, 1);
}

TEST(HuffmanTest, RandomAlphabetRoundTrips) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.UniformInt(280);
    std::vector<uint64_t> freqs(n);
    for (auto& f : freqs) f = rng.UniformInt(1000);
    // Ensure at least two used symbols.
    freqs[0] += 1;
    freqs[n - 1] += 1;
    Result<std::vector<int>> lengths = BuildCodeLengths(freqs, 15);
    ASSERT_TRUE(lengths.ok());
    std::vector<uint32_t> codes = CanonicalCodes(*lengths);
    HuffmanDecoder decoder;
    ASSERT_TRUE(decoder.Init(*lengths).ok());

    std::vector<int> message;
    for (int i = 0; i < 200; ++i) {
      int s = static_cast<int>(rng.UniformInt(n));
      while ((*lengths)[s] == 0) s = static_cast<int>(rng.UniformInt(n));
      message.push_back(s);
    }
    BitWriter writer;
    for (int s : message) writer.WriteHuffmanCode(codes[s], (*lengths)[s]);
    std::vector<uint8_t> bytes = writer.Finish();
    BitReader reader(bytes);
    for (int expected : message) {
      Result<int> sym = decoder.Decode(reader);
      ASSERT_TRUE(sym.ok());
      ASSERT_EQ(*sym, expected);
    }
  }
}

}  // namespace
}  // namespace lossyts::zip
