#include "zip/deflate.h"

#include <string>

#include <gtest/gtest.h>

#include "core/rng.h"

namespace lossyts::zip {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

void ExpectRoundTrip(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> compressed = DeflateCompress(input);
  Result<std::vector<uint8_t>> output = DeflateDecompress(compressed);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_EQ(*output, input);
}

TEST(DeflateTest, EmptyInput) { ExpectRoundTrip({}); }

TEST(DeflateTest, SingleByte) { ExpectRoundTrip({0x42}); }

TEST(DeflateTest, ShortAscii) { ExpectRoundTrip(Bytes("hello")); }

TEST(DeflateTest, AllSameByte) {
  ExpectRoundTrip(std::vector<uint8_t>(5000, 0xAA));
}

TEST(DeflateTest, RepetitiveTextShrinks) {
  std::string text;
  for (int i = 0; i < 500; ++i) text += "compress me please ";
  std::vector<uint8_t> input = Bytes(text);
  std::vector<uint8_t> compressed = DeflateCompress(input);
  EXPECT_LT(compressed.size(), input.size() / 4);
  ExpectRoundTrip(input);
}

TEST(DeflateTest, AllByteValues) {
  std::vector<uint8_t> input;
  for (int rep = 0; rep < 8; ++rep) {
    for (int b = 0; b < 256; ++b) input.push_back(static_cast<uint8_t>(b));
  }
  ExpectRoundTrip(input);
}

TEST(DeflateTest, RandomBinary) {
  Rng rng(21);
  std::vector<uint8_t> input;
  for (int i = 0; i < 40000; ++i) {
    input.push_back(static_cast<uint8_t>(rng.UniformInt(256)));
  }
  ExpectRoundTrip(input);
}

TEST(DeflateTest, LowEntropyBinary) {
  Rng rng(22);
  std::vector<uint8_t> input;
  for (int i = 0; i < 40000; ++i) {
    input.push_back(static_cast<uint8_t>(rng.UniformInt(3)));
  }
  std::vector<uint8_t> compressed = DeflateCompress(input);
  EXPECT_LT(compressed.size(), input.size() / 2);
  ExpectRoundTrip(input);
}

TEST(DeflateTest, DoubleArrayPayload) {
  // The shape of payload the compression pipeline actually produces.
  Rng rng(5);
  std::vector<double> values;
  double v = 100.0;
  for (int i = 0; i < 4000; ++i) {
    v += rng.Normal();
    values.push_back(v);
  }
  std::vector<uint8_t> input(
      reinterpret_cast<const uint8_t*>(values.data()),
      reinterpret_cast<const uint8_t*>(values.data()) + values.size() * 8);
  ExpectRoundTrip(input);
}

TEST(DeflateTest, DecompressRejectsGarbage) {
  std::vector<uint8_t> garbage = {0xFF, 0x13, 0x77, 0x00, 0xAB};
  Result<std::vector<uint8_t>> out = DeflateDecompress(garbage);
  // Reserved block type or corrupt Huffman table must fail, never crash.
  EXPECT_FALSE(out.ok());
}

TEST(DeflateTest, DecompressRejectsTruncatedStream) {
  std::vector<uint8_t> compressed = DeflateCompress(Bytes(
      "a reasonably long string that will not fit in the truncated stream"));
  compressed.resize(compressed.size() / 2);
  EXPECT_FALSE(DeflateDecompress(compressed).ok());
}

TEST(DeflateTest, DecodesStoredBlocks) {
  // Tiny inputs use stored blocks; verify the path explicitly.
  std::vector<uint8_t> input = Bytes("abc");
  std::vector<uint8_t> compressed = DeflateCompress(input);
  // Stored block: 1 byte header + LEN/NLEN + payload.
  EXPECT_EQ(compressed.size(), 1u + 4u + input.size());
  ExpectRoundTrip(input);
}

class DeflateSizeSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(DeflateSizeSweepTest, RoundTripsAtEverySize) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<uint8_t> input;
  for (int i = 0; i < GetParam(); ++i) {
    input.push_back(static_cast<uint8_t>(rng.UniformInt(16)));
  }
  ExpectRoundTrip(input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeflateSizeSweepTest,
                         ::testing::Values(0, 1, 2, 3, 7, 8, 9, 100, 257, 258,
                                           259, 1000, 32768, 32769, 65536,
                                           100000));

}  // namespace
}  // namespace lossyts::zip
