#include "zip/crc32.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

namespace lossyts::zip {
namespace {

uint32_t CrcOfString(const std::string& s) {
  return ComputeCrc32(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

TEST(Crc32Test, KnownCheckValue) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(CrcOfString("123456789"), 0xCBF43926u);
}

TEST(Crc32Test, EmptyInputIsZero) { EXPECT_EQ(CrcOfString(""), 0u); }

TEST(Crc32Test, SingleByte) {
  // crc32(b"a") as produced by zlib.
  EXPECT_EQ(CrcOfString("a"), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string s = "hello world, this is an incremental test";
  Crc32 inc;
  inc.Update(reinterpret_cast<const uint8_t*>(s.data()), 5);
  inc.Update(reinterpret_cast<const uint8_t*>(s.data()) + 5, s.size() - 5);
  EXPECT_EQ(inc.value(), CrcOfString(s));
}

TEST(Crc32Test, SensitiveToSingleBitFlip) {
  std::string a = "payload";
  std::string b = a;
  b[3] = static_cast<char>(b[3] ^ 1);
  EXPECT_NE(CrcOfString(a), CrcOfString(b));
}

}  // namespace
}  // namespace lossyts::zip
