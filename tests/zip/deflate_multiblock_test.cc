// Decoder coverage for stream shapes our encoder never produces but the
// format allows: multiple blocks, fixed-Huffman blocks, and mixed block
// types. The streams are hand-assembled with the BitWriter.

#include <string>

#include <gtest/gtest.h>

#include "zip/bitstream.h"
#include "zip/deflate.h"
#include "zip/huffman.h"

namespace lossyts::zip {
namespace {

// Writes one stored (uncompressed) block.
void WriteStored(BitWriter& writer, const std::string& data, bool final) {
  writer.WriteBits(final ? 1 : 0, 1);
  writer.WriteBits(0, 2);
  writer.AlignToByte();
  const uint16_t len = static_cast<uint16_t>(data.size());
  writer.WriteByte(static_cast<uint8_t>(len & 0xFF));
  writer.WriteByte(static_cast<uint8_t>(len >> 8));
  writer.WriteByte(static_cast<uint8_t>(~len & 0xFF));
  writer.WriteByte(static_cast<uint8_t>((~len >> 8) & 0xFF));
  for (char c : data) writer.WriteByte(static_cast<uint8_t>(c));
}

// Fixed-Huffman literal codes per RFC 1951 §3.2.6.
std::vector<int> FixedLengths() {
  std::vector<int> lengths(288);
  for (int s = 0; s <= 143; ++s) lengths[s] = 8;
  for (int s = 144; s <= 255; ++s) lengths[s] = 9;
  for (int s = 256; s <= 279; ++s) lengths[s] = 7;
  for (int s = 280; s <= 287; ++s) lengths[s] = 8;
  return lengths;
}

// Writes a fixed-Huffman block containing only literals.
void WriteFixedLiterals(BitWriter& writer, const std::string& data,
                        bool final) {
  const std::vector<int> lengths = FixedLengths();
  const std::vector<uint32_t> codes = CanonicalCodes(lengths);
  writer.WriteBits(final ? 1 : 0, 1);
  writer.WriteBits(1, 2);  // BTYPE = fixed.
  for (char c : data) {
    const auto sym = static_cast<unsigned char>(c);
    writer.WriteHuffmanCode(codes[sym], lengths[sym]);
  }
  writer.WriteHuffmanCode(codes[256], lengths[256]);  // End of block.
}

TEST(DeflateMultiblockTest, TwoStoredBlocks) {
  BitWriter writer;
  WriteStored(writer, "hello ", false);
  WriteStored(writer, "world", true);
  Result<std::vector<uint8_t>> out = DeflateDecompress(writer.Finish());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(std::string(out->begin(), out->end()), "hello world");
}

TEST(DeflateMultiblockTest, FixedHuffmanBlock) {
  BitWriter writer;
  WriteFixedLiterals(writer, "fixed huffman literals", true);
  Result<std::vector<uint8_t>> out = DeflateDecompress(writer.Finish());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(std::string(out->begin(), out->end()), "fixed huffman literals");
}

TEST(DeflateMultiblockTest, MixedStoredAndFixedBlocks) {
  BitWriter writer;
  WriteStored(writer, "stored|", false);
  WriteFixedLiterals(writer, "fixed|", false);
  WriteStored(writer, "stored again", true);
  Result<std::vector<uint8_t>> out = DeflateDecompress(writer.Finish());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(std::string(out->begin(), out->end()),
            "stored|fixed|stored again");
}

TEST(DeflateMultiblockTest, BackReferenceAcrossBlockBoundary) {
  // A match in a later block may reference data emitted by an earlier block.
  BitWriter writer;
  WriteStored(writer, "abcdef", false);
  // Fixed block with one match: length 6, distance 6 (copies "abcdef").
  const std::vector<int> lengths = FixedLengths();
  const std::vector<uint32_t> codes = CanonicalCodes(lengths);
  writer.WriteBits(1, 1);  // BFINAL.
  writer.WriteBits(1, 2);  // Fixed.
  // Length 6 -> code 260 (base 6, no extra bits).
  writer.WriteHuffmanCode(codes[260], lengths[260]);
  // Distance 6 -> dist code 4 (base 5, 1 extra bit = 1), 5-bit fixed codes.
  const std::vector<int> dist_lengths(32, 5);
  const std::vector<uint32_t> dist_codes = CanonicalCodes(dist_lengths);
  writer.WriteHuffmanCode(dist_codes[4], 5);
  writer.WriteBits(1, 1);  // Extra bit: 5 + 1 = 6.
  writer.WriteHuffmanCode(codes[256], lengths[256]);

  Result<std::vector<uint8_t>> out = DeflateDecompress(writer.Finish());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(std::string(out->begin(), out->end()), "abcdefabcdef");
}

TEST(DeflateMultiblockTest, MissingFinalBlockErrors) {
  BitWriter writer;
  WriteStored(writer, "only a non-final block", false);
  EXPECT_FALSE(DeflateDecompress(writer.Finish()).ok());
}

}  // namespace
}  // namespace lossyts::zip
