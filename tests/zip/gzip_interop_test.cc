// Interoperability tests against the system gzip tool: our encoder's output
// must decompress with gunzip, and gzip's output must decompress with our
// decoder. These are the strongest end-to-end checks that the from-scratch
// DEFLATE implementation is RFC 1951/1952 conformant. Skipped when no gzip
// binary is available.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "zip/gzip.h"

namespace lossyts::zip {
namespace {

bool HaveSystemGzip() {
  return std::system("command -v gzip > /dev/null 2>&1") == 0;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(file)),
                              std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& data) {
  std::ofstream file(path, std::ios::binary);
  file.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size()));
}

std::vector<uint8_t> MakePayload(size_t n, uint64_t seed, int alphabet) {
  Rng rng(seed);
  std::vector<uint8_t> data(n);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.UniformInt(static_cast<uint64_t>(alphabet)));
  }
  return data;
}

class GzipInteropTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!HaveSystemGzip()) GTEST_SKIP() << "no system gzip available";
    base_ = ::testing::TempDir() + "/lossyts_interop";
  }
  void TearDown() override {
    std::remove((base_ + ".bin").c_str());
    std::remove((base_ + ".bin.gz").c_str());
    std::remove((base_ + ".gz").c_str());
    std::remove((base_ + ".out").c_str());
  }

  std::string base_;
};

TEST_F(GzipInteropTest, SystemGunzipReadsOurOutput) {
  const std::vector<uint8_t> payload = MakePayload(50000, 1, 32);
  WriteFile(base_ + ".gz", GzipCompress(payload));
  const std::string cmd =
      "gunzip -c " + base_ + ".gz > " + base_ + ".out 2> /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << "gunzip rejected our stream";
  EXPECT_EQ(ReadFile(base_ + ".out"), payload);
}

TEST_F(GzipInteropTest, WeReadSystemGzipOutput) {
  const std::vector<uint8_t> payload = MakePayload(50000, 2, 48);
  WriteFile(base_ + ".bin", payload);
  // gzip writes FNAME into the header; our decoder must skip it.
  const std::string cmd = "gzip -kf " + base_ + ".bin 2> /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  Result<std::vector<uint8_t>> out = GzipDecompress(ReadFile(base_ + ".bin.gz"));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, payload);
}

TEST_F(GzipInteropTest, WeReadSystemGzipBestCompression) {
  const std::vector<uint8_t> payload = MakePayload(80000, 3, 8);
  WriteFile(base_ + ".bin", payload);
  const std::string cmd = "gzip -9kf " + base_ + ".bin 2> /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  Result<std::vector<uint8_t>> out = GzipDecompress(ReadFile(base_ + ".bin.gz"));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, payload);
}

TEST_F(GzipInteropTest, RoundTripSweepThroughSystemTool) {
  for (size_t n : {0u, 1u, 100u, 10000u}) {
    const std::vector<uint8_t> payload = MakePayload(n, 4 + n, 200);
    WriteFile(base_ + ".gz", GzipCompress(payload));
    const std::string cmd =
        "gunzip -c " + base_ + ".gz > " + base_ + ".out 2> /dev/null";
    ASSERT_EQ(std::system(cmd.c_str()), 0) << "n=" << n;
    EXPECT_EQ(ReadFile(base_ + ".out"), payload) << "n=" << n;
  }
}

TEST_F(GzipInteropTest, OurRatioIsCompetitiveWithSystemGzip) {
  // Same low-entropy payload: our encoder should land within 2x of gzip -6.
  std::vector<uint8_t> payload;
  Rng rng(9);
  double x = 1000.0;
  for (int i = 0; i < 20000; ++i) {
    x += rng.Normal();
    const auto bits = static_cast<long long>(x * 100.0);
    payload.push_back(static_cast<uint8_t>(bits & 0xFF));
    payload.push_back(static_cast<uint8_t>((bits >> 8) & 0xFF));
  }
  WriteFile(base_ + ".bin", payload);
  ASSERT_EQ(std::system(("gzip -kf " + base_ + ".bin 2> /dev/null").c_str()),
            0);
  const size_t system_size = ReadFile(base_ + ".bin.gz").size();
  const size_t our_size = GzipCompress(payload).size();
  EXPECT_LT(our_size, system_size * 2) << "ours " << our_size << " vs gzip "
                                       << system_size;
}

}  // namespace
}  // namespace lossyts::zip
