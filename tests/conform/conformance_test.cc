#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "compress/pipeline.h"
#include "compress/serde.h"
#include "conform/corpus.h"
#include "conform/harness.h"
#include "conform/mutate.h"
#include "conform/oracles.h"

namespace lossyts::conform {
namespace {

// CI runs a small grid by default; set LOSSYTS_CONFORM_ITERS for a soak
// (>= 6 cycles the whole "lengths" family across the u16 segment cap).
int CasesPerFamily() {
  const char* env = std::getenv("LOSSYTS_CONFORM_ITERS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 2;
}

// ---------------------------------------------------------------------------
// The tentpole assertion: the full grid is clean for every codec.

TEST(ConformanceTest, FullGridIsClean) {
  ConformOptions options;
  options.cases_per_family = CasesPerFamily();
  Result<ConformSummary> summary = RunConform(options);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_GT(summary->cases, 0u);
  EXPECT_GT(summary->mutants, 0u);
  for (const ConformFailure& f : summary->failures) {
    ADD_FAILURE() << FormatFailure(f);
  }
}

TEST(ConformanceTest, RunIsDeterministic) {
  ConformOptions options;
  options.cases_per_family = 1;
  options.codecs = {"PMC", "SZ"};
  options.error_bounds = {0.05};
  Result<ConformSummary> a = RunConform(options);
  Result<ConformSummary> b = RunConform(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cases, b->cases);
  EXPECT_EQ(a->mutants, b->mutants);
  EXPECT_EQ(a->failures.size(), b->failures.size());
}

TEST(ConformanceTest, RejectsUnknownCodec) {
  ConformOptions options;
  options.codecs = {"NOSUCH"};
  EXPECT_FALSE(RunConform(options).ok());
}

TEST(ConformanceTest, RejectsInvalidErrorBound) {
  ConformOptions options;
  options.error_bounds = {1.5};
  Result<ConformSummary> summary = RunConform(options);
  ASSERT_FALSE(summary.ok());
  EXPECT_EQ(summary.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConformanceTest, RejectsNonPositiveCaseCount) {
  ConformOptions options;
  options.cases_per_family = 0;
  EXPECT_FALSE(RunConform(options).ok());
}

TEST(ConformanceTest, FormatFailureCarriesReproductionCoordinates) {
  ConformFailure f;
  f.codec = "SZ";
  f.error_bound = 0.05;
  f.family = "tiny";
  f.case_index = 3;
  f.seed = 42;
  f.oracle = "pointwise-bound";
  f.detail = "worst violator at index 7";
  const std::string line = FormatFailure(f);
  EXPECT_NE(line.find("SZ"), std::string::npos);
  EXPECT_NE(line.find("0.05"), std::string::npos);
  EXPECT_NE(line.find("tiny#3"), std::string::npos);
  EXPECT_NE(line.find("seed=42"), std::string::npos);
  EXPECT_NE(line.find("pointwise-bound"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Corpus generator.

TEST(CorpusTest, IsDeterministic) {
  const std::vector<CorpusCase> a = GenerateCorpus(7, 2);
  const std::vector<CorpusCase> b = GenerateCorpus(7, 2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].family, b[i].family);
    EXPECT_EQ(a[i].seed, b[i].seed);
    ASSERT_EQ(a[i].series.size(), b[i].series.size());
    EXPECT_EQ(a[i].series.start_timestamp(), b[i].series.start_timestamp());
    for (size_t k = 0; k < a[i].series.size(); ++k) {
      // Bit-compare so -0.0 vs 0.0 or NaN drift would be caught.
      uint64_t ba, bb;
      const double va = a[i].series[k];
      const double vb = b[i].series[k];
      std::memcpy(&ba, &va, sizeof(ba));
      std::memcpy(&bb, &vb, sizeof(bb));
      EXPECT_EQ(ba, bb) << a[i].family << " index " << k;
    }
  }
}

TEST(CorpusTest, CoversEveryFamily) {
  const std::vector<CorpusCase> corpus = GenerateCorpus(1, 1);
  std::set<std::string> families;
  for (const CorpusCase& c : corpus) families.insert(c.family);
  EXPECT_EQ(families.size(), CorpusFamilies().size());
}

TEST(CorpusTest, SeedsDeriveFromIdentityNotOrder) {
  Result<CorpusCase> direct = MakeCorpusCase("tiny", 1, 9);
  ASSERT_TRUE(direct.ok());
  const std::vector<CorpusCase> corpus = GenerateCorpus(9, 2);
  bool found = false;
  for (const CorpusCase& c : corpus) {
    if (c.family == "tiny" && c.index == 1) {
      found = true;
      EXPECT_EQ(c.seed, direct->seed);
      ASSERT_EQ(c.series.size(), direct->series.size());
      for (size_t k = 0; k < c.series.size(); ++k) {
        EXPECT_EQ(c.series[k], direct->series[k]);
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(CorpusTest, UnknownFamilyIsNotFound) {
  Result<CorpusCase> c = MakeCorpusCase("nope", 0, 1);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kNotFound);
}

TEST(CorpusTest, LengthsFamilyCrossesSegmentCap) {
  // Indices cycle {1, 65535, 2, 65536, 5, 65537}: both sides of the u16
  // segment-length cap plus the degenerate minimum.
  const size_t expected[] = {1, 65535, 2, 65536, 5, 65537};
  for (int i = 0; i < 6; ++i) {
    Result<CorpusCase> c = MakeCorpusCase("lengths", i, 1);
    ASSERT_TRUE(c.ok());
    EXPECT_EQ(c->series.size(), expected[i]) << "index " << i;
  }
}

TEST(CorpusTest, MetadataFitsTheWireHeader) {
  for (const CorpusCase& c : GenerateCorpus(3, 2)) {
    EXPECT_GE(c.series.start_timestamp(), INT32_MIN) << c.family;
    EXPECT_LE(c.series.start_timestamp(), INT32_MAX) << c.family;
    EXPECT_GE(c.series.interval_seconds(), 1) << c.family;
    EXPECT_LE(c.series.interval_seconds(), 65535) << c.family;
    for (size_t k = 0; k < c.series.size(); ++k) {
      EXPECT_TRUE(std::isfinite(c.series[k])) << c.family << " index " << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Oracles, exercised directly with hand-built series.

TEST(OracleTest, ShapeMismatchIsReported) {
  TimeSeries a(0, 1, {1.0, 2.0, 3.0});
  TimeSeries b(0, 1, {1.0, 2.0});
  auto f = CheckShape(a, b);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->oracle, "shape");
  EXPECT_FALSE(CheckShape(a, a).has_value());
}

TEST(OracleTest, HeaderMismatchIsReported) {
  TimeSeries a(100, 60, {1.0});
  TimeSeries wrong_ts(101, 60, {1.0});
  TimeSeries wrong_interval(100, 61, {1.0});
  EXPECT_TRUE(CheckHeaderRoundTrip(a, wrong_ts).has_value());
  EXPECT_TRUE(CheckHeaderRoundTrip(a, wrong_interval).has_value());
  EXPECT_FALSE(CheckHeaderRoundTrip(a, a).has_value());
}

TEST(OracleTest, PointwiseBoundFindsWorstViolator) {
  TimeSeries orig(0, 1, {10.0, 20.0, 30.0});
  // Index 1 violates by 5 (allowance half-width 2), index 2 by 12: worst is 2.
  TimeSeries rec(0, 1, {10.0, 27.0, 45.0});
  auto f = CheckPointwiseBound(orig, rec, 0.1);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->oracle, "pointwise-bound");
  EXPECT_EQ(f->index, 2u);
  EXPECT_NE(f->detail.find("index 2"), std::string::npos);
}

TEST(OracleTest, PointwiseBoundAcceptsExactEdges) {
  TimeSeries orig(0, 1, {10.0, -10.0});
  const compress::Allowance a = compress::RelativeAllowance(10.0, 0.1);
  const compress::Allowance b = compress::RelativeAllowance(-10.0, 0.1);
  TimeSeries rec(0, 1, {a.hi, b.lo});
  EXPECT_FALSE(CheckPointwiseBound(orig, rec, 0.1).has_value());
}

TEST(OracleTest, PointwiseBoundRejectsNaNReconstruction) {
  TimeSeries orig(0, 1, {10.0});
  TimeSeries rec(0, 1, {std::nan("")});
  auto f = CheckPointwiseBound(orig, rec, 0.5);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->oracle, "pointwise-bound");
}

TEST(OracleTest, ExactZeroDriftIsReported) {
  TimeSeries orig(0, 1, {0.0, 5.0});
  TimeSeries rec(0, 1, {1e-300, 5.0});
  auto f = CheckExactZeros(orig, rec);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->oracle, "exact-zero");
  EXPECT_EQ(f->index, 0u);
}

TEST(OracleTest, LosslessDistinguishesSignedZero) {
  TimeSeries orig(0, 1, {0.0});
  TimeSeries rec(0, 1, {-0.0});
  EXPECT_TRUE(CheckLossless(orig, rec).has_value());
  EXPECT_FALSE(CheckLossless(orig, orig).has_value());
}

// A deliberately broken lossy codec: round-trips the series but inflates
// every value by 50% on decode, far past any ε < 0.5 — RunOracles must
// report the pointwise-bound violation (and the zero drift).
class BrokenCompressor : public compress::Compressor {
 public:
  std::string_view name() const override { return "BROKEN"; }

  Result<std::vector<uint8_t>> Compress(const TimeSeries& series,
                                        double /*error_bound*/) const override {
    compress::ByteWriter writer;
    writer.PutI64(series.start_timestamp());
    writer.PutI32(series.interval_seconds());
    writer.PutU32(static_cast<uint32_t>(series.size()));
    for (size_t i = 0; i < series.size(); ++i) writer.PutDouble(series[i]);
    return writer.Finish();
  }

  Result<TimeSeries> Decompress(
      const std::vector<uint8_t>& blob) const override {
    compress::ByteReader reader(blob);
    Result<int64_t> ts = reader.GetI64();
    if (!ts.ok()) return ts.status();
    Result<int32_t> interval = reader.GetI32();
    if (!interval.ok()) return interval.status();
    Result<uint32_t> n = reader.GetU32();
    if (!n.ok()) return n.status();
    std::vector<double> values;
    values.reserve(*n);
    for (uint32_t i = 0; i < *n; ++i) {
      Result<double> v = reader.GetDouble();
      if (!v.ok()) return v.status();
      values.push_back(*v * 1.5 + 0.25);
    }
    return TimeSeries(*ts, *interval, std::move(values));
  }
};

TEST(OracleTest, RunOraclesCatchesABoundViolatingCodec) {
  BrokenCompressor broken;
  TimeSeries ts(0, 60, {0.0, 1.0, 2.0, 3.0});
  const std::vector<OracleFailure> failures = RunOracles(broken, ts, 0.05);
  bool bound = false;
  bool zero = false;
  for (const OracleFailure& f : failures) {
    if (f.oracle == "pointwise-bound") bound = true;
    if (f.oracle == "exact-zero") zero = true;
  }
  EXPECT_TRUE(bound);
  EXPECT_TRUE(zero);
}

TEST(OracleTest, RunOraclesIsCleanForAllRealCodecs) {
  TimeSeries ts(0, 60, {0.0, 1.0, 1.05, 1.1, 0.0, -2.0, -2.1, 5.0});
  for (const char* name :
       {"PMC", "SWING", "SZ", "PPA", "GORILLA", "CHIMP"}) {
    Result<std::unique_ptr<compress::Compressor>> codec =
        compress::MakeCompressor(name);
    ASSERT_TRUE(codec.ok());
    const std::vector<OracleFailure> failures =
        RunOracles(**codec, ts, 0.05);
    for (const OracleFailure& f : failures) {
      ADD_FAILURE() << name << ": " << f.oracle << ": " << f.detail;
    }
  }
}

// ---------------------------------------------------------------------------
// Mutator.

std::vector<uint8_t> SampleBlob() {
  Result<std::unique_ptr<compress::Compressor>> pmc =
      compress::MakeCompressor("PMC");
  EXPECT_TRUE(pmc.ok());
  TimeSeries ts(0, 60, std::vector<double>(100, 1.0));
  Result<std::vector<uint8_t>> blob = (*pmc)->Compress(ts, 0.1);
  EXPECT_TRUE(blob.ok());
  return *blob;
}

TEST(MutateTest, IsDeterministic) {
  const std::vector<uint8_t> blob = SampleBlob();
  const std::vector<Mutant> a = GenerateMutants(blob, 5, 8);
  const std::vector<Mutant> b = GenerateMutants(blob, 5, 8);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].blob, b[i].blob);
  }
}

TEST(MutateTest, CoversStructuralMutationClasses) {
  const std::vector<Mutant> mutants = GenerateMutants(SampleBlob(), 1, 4);
  bool truncation = false;
  bool header_flip = false;
  bool count_splice = false;
  bool payload_splice = false;
  bool random = false;
  for (const Mutant& m : mutants) {
    if (m.kind.rfind("truncate@", 0) == 0) truncation = true;
    if (m.kind.rfind("bit-flip@", 0) == 0) header_flip = true;
    if (m.kind.rfind("num-points=", 0) == 0) count_splice = true;
    if (m.kind.rfind("payload-count=", 0) == 0) payload_splice = true;
    if (m.kind.rfind("rand-", 0) == 0) random = true;
  }
  EXPECT_TRUE(truncation);
  EXPECT_TRUE(header_flip);
  EXPECT_TRUE(count_splice);
  EXPECT_TRUE(payload_splice);
  EXPECT_TRUE(random);
}

TEST(MutateTest, EveryMutantDecodeSatisfiesTheContract) {
  // Beyond the harness run: every mutant of every codec's blob must either
  // fail cleanly or decode self-consistently. This is the per-codec version
  // with a denser random battery.
  TimeSeries ts(10, 60, {0.0, 1.0, 2.5, 2.6, 0.0, -4.0, 8.0, 8.1});
  for (const char* name :
       {"PMC", "SWING", "SZ", "PPA", "GORILLA", "CHIMP"}) {
    Result<std::unique_ptr<compress::Compressor>> codec =
        compress::MakeCompressor(name);
    ASSERT_TRUE(codec.ok());
    Result<std::vector<uint8_t>> blob = (*codec)->Compress(ts, 0.1);
    ASSERT_TRUE(blob.ok()) << name;
    for (const Mutant& m : GenerateMutants(*blob, 99, 64)) {
      if (auto f = CheckMutantDecode(**codec, m); f.has_value()) {
        ADD_FAILURE() << name << ": " << f->detail;
      }
    }
  }
}

// A decoder that ignores the blob and always "succeeds" with three points:
// CheckMutantDecode must flag the count mismatch against the header claim.
class AcceptingCompressor : public compress::Compressor {
 public:
  std::string_view name() const override { return "ACCEPT"; }
  Result<std::vector<uint8_t>> Compress(const TimeSeries&,
                                        double) const override {
    return std::vector<uint8_t>{};
  }
  Result<TimeSeries> Decompress(const std::vector<uint8_t>&) const override {
    return TimeSeries(0, 1, {1.0, 2.0, 3.0});
  }
};

TEST(MutateTest, MisacceptingDecoderIsFlagged) {
  AcceptingCompressor accept;
  Mutant m;
  m.kind = "num-points=0x64";
  m.blob = SampleBlob();  // Header claims 100 points.
  auto f = CheckMutantDecode(accept, m);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->oracle, "mutant-accept");
}

}  // namespace
}  // namespace lossyts::conform
