// Shard semantics: group commit, per-op validation, checkpoint + idempotent
// WAL replay, crash failpoints at every stage, and snapshot-consistent
// concurrent reads (src/serve/shard.{h,cc}).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/failpoint.h"
#include "serve/shard.h"

namespace lossyts::serve {
namespace {

class ServeShardTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPoints::DisarmAll(); }
};

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  // Start from a clean slate: stale files from a previous run would change
  // recovery behaviour.
  std::string cmd = "rm -rf '" + dir + "'";
  [[maybe_unused]] const int rc = std::system(cmd.c_str());
  return dir;
}

ShardOptions LosslessOptions() {
  ShardOptions options;
  options.codecs = {"GORILLA"};  // Bit-exact recovery assertions.
  options.sync = false;          // In-process tests need no real fsync.
  return options;
}

AppendOp MakeOp(const std::string& series, int64_t first_timestamp,
                std::vector<double> values) {
  AppendOp op;
  op.series = series;
  op.first_timestamp = first_timestamp;
  op.interval_seconds = 60;
  op.values = std::move(values);
  return op;
}

TEST_F(ServeShardTest, GroupCommitAppliesTheWholeBatch) {
  const std::string dir = TempDir("shard_batch");
  auto shard = Shard::Open(dir, LosslessOptions());
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();

  const std::vector<Status> statuses = (*shard)->AppendBatch({
      MakeOp("cpu", 0, {1.0, 2.0}),
      MakeOp("mem", 500, {-3.5}),
      MakeOp("cpu", 120, {3.0, 4.0}),  // Chains onto the first op's grid.
  });
  ASSERT_EQ(statuses.size(), 3u);
  for (const Status& s : statuses) EXPECT_TRUE(s.ok()) << s.ToString();

  auto cpu = (*shard)->ReadRange("cpu", 0, 10000);
  ASSERT_TRUE(cpu.ok());
  EXPECT_EQ(cpu->values(), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
  auto mem = (*shard)->ReadRange("mem", 0, 10000);
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ(mem->start_timestamp(), 500);
  EXPECT_EQ((*shard)->ListSeries(),
            (std::vector<std::string>{"cpu", "mem"}));
}

TEST_F(ServeShardTest, InvalidOpsFailTheirSlotWithoutPoisoningTheBatch) {
  const std::string dir = TempDir("shard_slot");
  auto shard = Shard::Open(dir, LosslessOptions());
  ASSERT_TRUE(shard.ok());

  const std::vector<Status> statuses = (*shard)->AppendBatch({
      MakeOp("ok", 0, {1.0}),
      MakeOp("bad name!", 0, {1.0}),   // Invalid id.
      MakeOp("ok", 999, {2.0}),        // Breaks the grid (expected 60).
      MakeOp("ok", 60, {2.0}),         // Valid continuation.
      MakeOp("empty", 0, {}),          // No points.
  });
  ASSERT_EQ(statuses.size(), 5u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_EQ(statuses[1].code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(statuses[2].code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(statuses[3].ok()) << statuses[3].ToString();
  EXPECT_EQ(statuses[4].code(), StatusCode::kInvalidArgument);

  auto ok = (*shard)->ReadRange("ok", 0, 10000);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->values(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ((*shard)->ReadRange("empty", 0, 1).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ServeShardTest, CheckpointThenReopenIsBitExactWithLosslessCodecs) {
  const std::string dir = TempDir("shard_ckpt");
  std::vector<double> values;
  for (int i = 0; i < 700; ++i) values.push_back(i * 0.017 - 3.0);
  {
    auto shard = Shard::Open(dir, LosslessOptions());
    ASSERT_TRUE(shard.ok());
    for (size_t at = 0; at < values.size(); at += 100) {
      std::vector<double> slice(values.begin() + static_cast<long>(at),
                                values.begin() + static_cast<long>(at + 100));
      const auto statuses = (*shard)->AppendBatch(
          {MakeOp("walk", static_cast<int64_t>(at) * 60, std::move(slice))});
      ASSERT_TRUE(statuses[0].ok()) << statuses[0].ToString();
    }
    ASSERT_TRUE((*shard)->Flush().ok());
    const ShardStats stats = (*shard)->Stats();
    EXPECT_GE(stats.flushes, 1u);
    EXPECT_EQ(stats.points, 700u);
  }
  auto reopened = Shard::Open(dir, LosslessOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const ShardStats stats = (*reopened)->Stats();
  EXPECT_EQ(stats.points, 700u);
  EXPECT_EQ(stats.replayed_records, 0u);  // The WAL was reset by Flush.
  EXPECT_TRUE(stats.wal_clean);
  auto all = (*reopened)->ReadRange("walk", 0, 700 * 60);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->values().size(), values.size());
  EXPECT_EQ(0, std::memcmp(all->values().data(), values.data(),
                           values.size() * sizeof(double)));
}

TEST_F(ServeShardTest, CrashBetweenCheckpointAndWalResetReplaysIdempotently) {
  const std::string dir = TempDir("shard_midflush");
  {
    auto shard = Shard::Open(dir, LosslessOptions());
    ASSERT_TRUE(shard.ok());
    ASSERT_TRUE(
        (*shard)->AppendBatch({MakeOp("s", 0, {1.0, 2.0, 3.0})})[0].ok());
    // Hit 1 is before the store rewrite, hit 2 before the WAL reset: the
    // checkpoint store lands on disk but the old WAL survives — the
    // double-apply hazard first_index exists to kill.
    FailPoints::Arm("shard_flush", 2);
    EXPECT_EQ((*shard)->Flush().code(), StatusCode::kInternal);
    FailPoints::DisarmAll();
    EXPECT_EQ((*shard)->Stats().flush_failures, 1u);
    // The shard is still alive: a flush failure is not fatal.
    EXPECT_TRUE((*shard)->AppendBatch({MakeOp("s", 180, {4.0})})[0].ok());
  }
  auto reopened = Shard::Open(dir, LosslessOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto all = (*reopened)->ReadRange("s", 0, 10000);
  ASSERT_TRUE(all.ok());
  // Exactly once: the store covers {1,2,3}, the replayed WAL record for it
  // is skipped, and the post-crash append {4} applies as a suffix.
  EXPECT_EQ(all->values(), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST_F(ServeShardTest, WalWriteCrashMakesNothingVisibleAndKillsTheShard) {
  const std::string dir = TempDir("shard_walcrash");
  auto shard = Shard::Open(dir, LosslessOptions());
  ASSERT_TRUE(shard.ok());
  ASSERT_TRUE((*shard)->AppendBatch({MakeOp("s", 0, {1.0})})[0].ok());

  FailPoints::Arm("wal_write", 1);
  const auto statuses =
      (*shard)->AppendBatch({MakeOp("s", 60, {2.0}), MakeOp("t", 0, {9.0})});
  FailPoints::DisarmAll();
  EXPECT_EQ(statuses[0].code(), StatusCode::kInternal);
  EXPECT_EQ(statuses[1].code(), StatusCode::kInternal);

  // Nothing of the failed batch is visible; the shard writer is dead.
  auto s = (*shard)->ReadRange("s", 0, 10000);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->values(), (std::vector<double>{1.0}));
  EXPECT_EQ((*shard)->ReadRange("t", 0, 1).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE((*shard)->Stats().failed);
  EXPECT_EQ((*shard)->AppendBatch({MakeOp("u", 0, {1.0})})[0].code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*shard)->Flush().code(), StatusCode::kFailedPrecondition);

  // Recovery drops the torn frame: only the acked point survives.
  shard->reset();
  auto reopened = Shard::Open(dir, LosslessOptions());
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE((*reopened)->Stats().wal_clean);
  auto recovered = (*reopened)->ReadRange("s", 0, 10000);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->values(), (std::vector<double>{1.0}));
}

TEST_F(ServeShardTest, FsyncCrashNeverLeavesHalfAnOpVisible) {
  const std::string dir = TempDir("shard_fsynccrash");
  {
    auto shard = Shard::Open(dir, LosslessOptions());
    ASSERT_TRUE(shard.ok());
    FailPoints::Arm("wal_fsync", 1);
    const auto statuses = (*shard)->AppendBatch(
        {MakeOp("s", 0, {1.0, 2.0}), MakeOp("s", 120, {3.0})});
    FailPoints::DisarmAll();
    EXPECT_EQ(statuses[0].code(), StatusCode::kInternal);
    EXPECT_EQ(statuses[1].code(), StatusCode::kInternal);
    // Un-synced means un-acked means invisible, even though the records hit
    // the file.
    EXPECT_EQ((*shard)->ReadRange("s", 0, 1).status().code(),
              StatusCode::kNotFound);
  }
  // After the "crash", fully-written un-acked records may legitimately be
  // recovered — but only at op granularity, never split.
  auto reopened = Shard::Open(dir, LosslessOptions());
  ASSERT_TRUE(reopened.ok());
  auto recovered = (*reopened)->ReadRange("s", 0, 10000);
  if (recovered.ok()) {
    EXPECT_TRUE(recovered->values() == (std::vector<double>{1.0, 2.0}) ||
                recovered->values() ==
                    (std::vector<double>{1.0, 2.0, 3.0}))
        << "recovered " << recovered->values().size() << " points";
  } else {
    EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
  }
}

TEST_F(ServeShardTest, ValidSeriesNames) {
  EXPECT_TRUE(Shard::ValidSeriesName("cpu.load-1_a"));
  EXPECT_TRUE(Shard::ValidSeriesName("A"));
  EXPECT_FALSE(Shard::ValidSeriesName(""));
  EXPECT_FALSE(Shard::ValidSeriesName(".hidden"));
  EXPECT_FALSE(Shard::ValidSeriesName("has space"));
  EXPECT_FALSE(Shard::ValidSeriesName("slash/ok"));
  EXPECT_FALSE(Shard::ValidSeriesName(std::string(129, 'a')));
}

// Snapshot-consistent reads while a writer ingests: every read must observe
// a clean prefix of the deterministic sequence, never a half-applied batch.
// Named *ConcurrencyTest so the TSan CI leg picks it up.
TEST(ServeConcurrencyTest, ReadersSeeOnlyCleanPrefixesDuringIngest) {
  const std::string dir = TempDir("shard_concurrent");
  ShardOptions options;
  options.codecs = {"GORILLA"};
  options.sync = false;
  options.flush_wal_bytes = 1 << 14;  // Force checkpoints mid-run.
  auto shard = Shard::Open(dir, options);
  ASSERT_TRUE(shard.ok());

  constexpr int kBatches = 60;
  constexpr int kPerBatch = 5;  // Every batch is one op of 5 points.
  auto expected_value = [](size_t i) {
    return static_cast<double>(i) * 1.0625 - 7.0;
  };

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int b = 0; b < kBatches; ++b) {
      std::vector<double> values;
      for (int i = 0; i < kPerBatch; ++i) {
        values.push_back(expected_value(b * kPerBatch + i));
      }
      const auto statuses = (*shard)->AppendBatch(
          {MakeOp("hot", static_cast<int64_t>(b) * kPerBatch * 60,
                  std::move(values))});
      ASSERT_TRUE(statuses[0].ok()) << statuses[0].ToString();
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      size_t last_seen = 0;
      while (!done.load()) {
        auto read = (*shard)->ReadRange("hot", 0, 1LL << 40);
        if (!read.ok()) {
          ASSERT_EQ(read.status().code(), StatusCode::kNotFound);
          continue;
        }
        const std::vector<double>& got = read->values();
        // Prefix consistency: op-granular length, exact values.
        ASSERT_EQ(got.size() % kPerBatch, 0u);
        ASSERT_GE(got.size(), last_seen);  // Monotone visibility.
        last_seen = got.size();
        for (size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i], expected_value(i));
        }
        (*shard)->Stats();  // Exercise the stats path under contention.
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  auto final_read = (*shard)->ReadRange("hot", 0, 1LL << 40);
  ASSERT_TRUE(final_read.ok());
  EXPECT_EQ(final_read->values().size(),
            static_cast<size_t>(kBatches * kPerBatch));
}

}  // namespace
}  // namespace lossyts::serve
